#include "net/client.h"

#include <utility>

namespace aigs::net {

AigsClient& AigsClient::operator=(AigsClient&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    options_ = other.options_;
    read_buffer_ = std::move(other.read_buffer_);
  }
  return *this;
}

Status AigsClient::Connect(const Endpoint& endpoint, ClientOptions options) {
  Disconnect();
  IgnoreSigpipe();
  AIGS_ASSIGN_OR_RETURN(fd_, DialTcp(endpoint, options.connect_timeout_ms));
  endpoint_ = endpoint;
  options_ = options;
  return Status::OK();
}

void AigsClient::Disconnect() {
  CloseFd(fd_);
  fd_ = -1;
  read_buffer_.clear();
}

StatusOr<WireResponse> AigsClient::Call(const WireRequest& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  const Status sent = SendAll(fd_, EncodeRequest(request));
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  for (;;) {
    std::string_view payload;
    std::size_t consumed = 0;
    std::string error;
    const FrameStatus frame =
        ExtractFrame(read_buffer_, &payload, &consumed, &error,
                     options_.max_payload);
    if (frame == FrameStatus::kCorrupt) {
      Disconnect();
      return Status::IOError("corrupt response frame from " +
                             endpoint_.ToString() + ": " + error);
    }
    if (frame == FrameStatus::kFrame) {
      WireResponse response;
      const Status decoded = DecodeResponsePayload(payload, &response);
      read_buffer_.erase(0, consumed);
      if (!decoded.ok()) {
        Disconnect();
        return Status::IOError("malformed response from " +
                               endpoint_.ToString() + ": " +
                               decoded.message());
      }
      if (response.op != request.op) {
        Disconnect();
        return Status::IOError("response opcode mismatch: sent " +
                               std::string(WireOpName(request.op)) +
                               ", got " + WireOpName(response.op));
      }
      return response;
    }
    char buffer[16384];
    auto received = RecvSome(fd_, buffer, sizeof(buffer));
    if (!received.ok()) {
      Disconnect();
      return received.status();
    }
    if (*received == 0) {
      Disconnect();
      return Status::IOError("connection to " + endpoint_.ToString() +
                             " closed mid-response");
    }
    read_buffer_.append(buffer, *received);
  }
}

StatusOr<SessionId> AigsClient::Open(const std::string& policy_spec,
                                     SessionId proposed_id) {
  WireRequest request;
  request.op = WireOp::kOpen;
  request.id = proposed_id;
  request.text = policy_spec;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.id;
}

StatusOr<Query> AigsClient::Ask(SessionId id) {
  WireRequest request;
  request.op = WireOp::kAsk;
  request.id = id;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.query;
}

Status AigsClient::Answer(SessionId id, const SessionAnswer& answer) {
  WireRequest request;
  request.op = WireOp::kAnswer;
  request.id = id;
  request.answer = answer;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  return response.ToStatus();
}

StatusOr<std::string> AigsClient::Save(SessionId id) {
  WireRequest request;
  request.op = WireOp::kSave;
  request.id = id;
  AIGS_ASSIGN_OR_RETURN(WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return std::move(response.text);
}

StatusOr<SessionId> AigsClient::Resume(const std::string& blob,
                                       SessionId proposed_id) {
  WireRequest request;
  request.op = WireOp::kResume;
  request.id = proposed_id;
  request.text = blob;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.id;
}

StatusOr<MigrateResult> AigsClient::Migrate(SessionId id) {
  WireRequest request;
  request.op = WireOp::kMigrate;
  request.id = id;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.migrate;
}

StatusOr<MigrateResult> AigsClient::MigrateBlob(const std::string& blob,
                                                SessionId proposed_id) {
  WireRequest request;
  request.op = WireOp::kMigrate;
  request.id = proposed_id;
  request.text = blob;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.migrate;
}

Status AigsClient::Close(SessionId id) {
  WireRequest request;
  request.op = WireOp::kClose;
  request.id = id;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  return response.ToStatus();
}

StatusOr<WireStats> AigsClient::Stats() {
  WireRequest request;
  request.op = WireOp::kStats;
  AIGS_ASSIGN_OR_RETURN(const WireResponse response, Call(request));
  AIGS_RETURN_NOT_OK(response.ToStatus());
  return response.stats;
}

}  // namespace aigs::net
