// Parallel reachability-index builds must be indistinguishable from serial
// ones: dense closure rows bit-identical, compressed encodings
// byte-identical (same row table, chunk refs, and payload pools), for any
// worker count and on a caller-owned pool. The parallel path only engages
// above a node floor, so these tests run at graph sizes straddling it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/compressed_closure.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aigs {
namespace {

// The compressed parallel build engages at >= 8192 nodes; the dense one at
// >= 2048. Use sizes above both so the sharded paths actually run.
constexpr std::size_t kDagNodes = 10'000;

TEST(ParallelBuild, CompressedEncodingByteIdenticalAcrossThreadCounts) {
  Rng rng(3101);
  const Digraph dag = RandomDag(kDagNodes, rng, 0.25);

  CompressedClosure::BuildOptions serial;
  serial.threads = 1;
  const CompressedClosure reference(dag, serial);

  for (const int threads : {2, 8}) {
    CompressedClosure::BuildOptions options;
    options.threads = threads;
    const CompressedClosure parallel(dag, options);
    EXPECT_TRUE(reference.IdenticalEncoding(parallel))
        << "threads=" << threads;
  }
}

TEST(ParallelBuild, CompressedEncodingByteIdenticalOnTree) {
  Rng rng(3102);
  const Digraph tree = RandomTree(kDagNodes, rng);

  CompressedClosure::BuildOptions serial;
  serial.threads = 1;
  const CompressedClosure reference(tree, serial);

  CompressedClosure::BuildOptions options;
  options.threads = 8;
  const CompressedClosure parallel(tree, options);
  EXPECT_TRUE(reference.IdenticalEncoding(parallel));
}

TEST(ParallelBuild, CompressedBuildOnCallerOwnedPool) {
  Rng rng(3103);
  const Digraph dag = RandomDag(kDagNodes, rng, 0.3);

  CompressedClosure::BuildOptions serial;
  serial.threads = 1;
  const CompressedClosure reference(dag, serial);

  ThreadPool pool(4);
  CompressedClosure::BuildOptions options;
  options.pool = &pool;
  const CompressedClosure parallel(dag, options);
  EXPECT_TRUE(reference.IdenticalEncoding(parallel));
}

TEST(ParallelBuild, DenseClosureBitIdenticalAcrossThreadCounts) {
  Rng rng(3104);
  const Digraph dag = RandomDag(4'000, rng, 0.3);

  ReachabilityOptions serial;
  serial.closure = ReachabilityOptions::Closure::kDense;
  serial.build_threads = 1;
  const ReachabilityIndex reference(dag, serial);
  ASSERT_EQ(reference.storage(), ReachabilityIndex::Storage::kDenseClosure);

  for (const int threads : {2, 8}) {
    ReachabilityOptions options;
    options.closure = ReachabilityOptions::Closure::kDense;
    options.build_threads = threads;
    const ReachabilityIndex parallel(dag, options);
    for (NodeId u = 0; u < dag.NumNodes(); ++u) {
      ASSERT_TRUE(reference.ClosureRow(u) == parallel.ClosureRow(u))
          << "threads=" << threads << " row " << u;
      ASSERT_EQ(reference.ReachableCount(u), parallel.ReachableCount(u));
    }
  }
}

TEST(ParallelBuild, DenseClosureOnCallerOwnedPoolAndForcedTree) {
  Rng rng(3105);
  const Digraph tree = RandomTree(4'000, rng);

  ReachabilityOptions serial;
  serial.closure = ReachabilityOptions::Closure::kDense;
  serial.force_closure_on_trees = true;
  serial.build_threads = 1;
  const ReachabilityIndex reference(tree, serial);

  ThreadPool pool(4);
  ReachabilityOptions options;
  options.closure = ReachabilityOptions::Closure::kDense;
  options.force_closure_on_trees = true;
  options.build_pool = &pool;
  const ReachabilityIndex parallel(tree, options);
  for (NodeId u = 0; u < tree.NumNodes(); ++u) {
    ASSERT_TRUE(reference.ClosureRow(u) == parallel.ClosureRow(u));
  }
}

TEST(ParallelBuild, ReachabilityIndexRoutesBuildOptionsToCompressed) {
  Rng rng(3106);
  const Digraph dag = RandomDag(kDagNodes, rng, 0.2);

  ReachabilityOptions serial;
  serial.closure = ReachabilityOptions::Closure::kCompressed;
  serial.build_threads = 1;
  const ReachabilityIndex reference(dag, serial);
  ASSERT_EQ(reference.storage(),
            ReachabilityIndex::Storage::kCompressedClosure);

  ReachabilityOptions options;
  options.closure = ReachabilityOptions::Closure::kCompressed;
  options.build_threads = 8;
  const ReachabilityIndex parallel(dag, options);
  EXPECT_TRUE(reference.compressed().IdenticalEncoding(parallel.compressed()));

  // Spot-check semantics on top of the byte identity.
  Rng probe(3107);
  for (int i = 0; i < 2'000; ++i) {
    const NodeId u = static_cast<NodeId>(probe.UniformInt(dag.NumNodes()));
    const NodeId v = static_cast<NodeId>(probe.UniformInt(dag.NumNodes()));
    ASSERT_EQ(reference.Reaches(u, v), parallel.Reaches(u, v));
  }
}

}  // namespace
}  // namespace aigs
