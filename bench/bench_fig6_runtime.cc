// Fig. 6 reproduction: average per-search running time by target depth,
// GreedyNaive vs the efficient instantiations (GreedyTree on the tree,
// GreedyDAG on the DAG).
//
// GreedyNaive is O(n²m) per search, so this bench defaults to a smaller
// hierarchy scale than the table benches (AIGS_FIG6_SCALE_PCT, default 5%);
// the *gap* between the curves — about three orders of magnitude on trees —
// is the reproduction target, matching the paper's log-scale figure.
#include "bench/bench_common.h"
#include "eval/runtime_bench.h"
#include "util/ascii_table.h"
#include "util/csv.h"

namespace aigs::bench {
namespace {

void RunDataset(const Dataset& dataset, const Distribution& dist) {
  const Hierarchy& h = dataset.hierarchy;
  RuntimeByDepthOptions options;
  options.samples_per_depth = static_cast<std::size_t>(
      EnvInt("AIGS_FIG6_SAMPLES", EnvBool("AIGS_FULL", false) ? 50 : 5));
  options.seed = 7;

  GreedyNaivePolicy naive(h, dist);
  const RuntimeByDepthResult naive_times =
      MeasureRuntimeByDepth(naive, h, options);

  const auto fast = MakeGreedyPolicy(h, dist);
  const RuntimeByDepthResult fast_times =
      MeasureRuntimeByDepth(*fast, h, options);

  AsciiTable table({"depth", "#nodes", "GreedyNaive (ms)",
                    h.is_tree() ? "GreedyTree (ms)" : "GreedyDAG (ms)",
                    "speedup"});
  CsvWriter csv({"depth", "nodes", "naive_ms", "fast_ms"});
  for (std::size_t d = 0; d < naive_times.avg_millis.size(); ++d) {
    if (naive_times.nodes_at_depth[d] == 0) {
      continue;
    }
    const double naive_ms = naive_times.avg_millis[d];
    const double fast_ms = fast_times.avg_millis[d];
    table.AddRow({std::to_string(d),
                  std::to_string(naive_times.nodes_at_depth[d]),
                  FormatDouble(naive_ms, 3), FormatDouble(fast_ms, 4),
                  fast_ms > 0 ? FormatDouble(naive_ms / fast_ms, 0) + "x"
                              : ">10000x"});
    csv.AddRow({std::to_string(d),
                std::to_string(naive_times.nodes_at_depth[d]),
                FormatDouble(naive_ms, 6), FormatDouble(fast_ms, 6)});
  }
  std::printf("%s (n=%zu, %zu samples/depth)\n%s\n", dataset.name.c_str(),
              h.NumNodes(), options.samples_per_depth,
              table.ToString().c_str());
  if (const std::string dir = CsvDir(); !dir.empty()) {
    const std::string path = dir + "/fig6_" + dataset.name + ".csv";
    const Status status = csv.WriteToFile(path);
    std::printf("csv: %s\n\n",
                status.ok() ? path.c_str() : status.ToString().c_str());
  }
}

int Main() {
  std::printf("== Fig. 6: running time by target depth ==\n");
  const double scale =
      static_cast<double>(EnvInt("AIGS_FIG6_SCALE_PCT",
                                 EnvBool("AIGS_FULL", false) ? 100 : 15)) /
      100.0;
  std::printf("config: scale=%.0f%% (AIGS_FIG6_SCALE_PCT to change; naive "
              "greedy is O(n^2 m))\n\n",
              scale * 100.0);
  {
    const Dataset amazon = MakeAmazonDataset(scale);
    RunDataset(amazon, amazon.real_distribution);
  }
  {
    const Dataset imagenet = MakeImageNetDataset(scale);
    RunDataset(imagenet, imagenet.real_distribution);
  }
  std::printf("paper shape: GreedyTree ~3 orders of magnitude faster than "
              "GreedyNaive on the tree;\nGreedyDAG noticeably faster on the "
              "DAG.\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
