// Policy / SearchSession interfaces — the contract between question-asking
// strategies (the paper's "policies") and the harness that relays answers
// from an oracle (FrameworkIGS, Algorithm 1).
//
// A Policy is an immutable strategy bound to a (hierarchy, distribution)
// pair; NewSession() starts one search for one hidden target. Sessions are
// cheap (small overlays over shared base state) so evaluating the expected
// cost over all n possible targets stays fast.
#ifndef AIGS_CORE_POLICY_H_
#define AIGS_CORE_POLICY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace aigs {

/// What a session wants next.
struct Query {
  enum class Kind {
    kReach,       ///< boolean reachability question on `node`
    kReachBatch,  ///< several reachability questions asked in one round
                  ///< (§III-E batched extension); nodes in `choices`
    kChoice,      ///< multiple-choice question over `choices` (MIGS)
    kDone,        ///< search finished; `node` holds the identified target
  };

  static Query ReachQuery(NodeId node) {
    return Query{Kind::kReach, node, {}};
  }
  static Query ReachBatch(std::vector<NodeId> nodes) {
    return Query{Kind::kReachBatch, kInvalidNode, std::move(nodes)};
  }
  static Query ChoiceQuery(std::vector<NodeId> choices) {
    return Query{Kind::kChoice, kInvalidNode, std::move(choices)};
  }
  static Query Done(NodeId target) {
    return Query{Kind::kDone, target, {}};
  }

  Kind kind = Kind::kDone;
  /// Query node (kReach) or identified target (kDone).
  NodeId node = kInvalidNode;
  /// Presented categories (kChoice) or batched query nodes (kReachBatch).
  std::vector<NodeId> choices;
};

/// One interactive search for one hidden target. Implementations must be
/// deterministic: the same answer sequence always produces the same queries
/// (this is what makes a policy a decision tree, Definition 6).
class SearchSession {
 public:
  virtual ~SearchSession() = default;

  /// The pending question, or Done. Idempotent until an answer arrives.
  virtual Query Next() = 0;

  /// Delivers the answer to the pending kReach query on `q`.
  virtual void OnReach(NodeId q, bool yes) = 0;

  /// Delivers the answer to the pending kChoice query: `answer` is an index
  /// into `choices`, or -1 for "none of these". Default: fatal (policies
  /// that never ask choice questions).
  virtual void OnChoice(std::span<const NodeId> choices, int answer);

  /// Delivers the answers to the pending kReachBatch query; answers[i]
  /// corresponds to nodes[i]. Default: fatal (policies that never batch).
  virtual void OnReachBatch(std::span<const NodeId> nodes,
                            const std::vector<bool>& answers);

  /// Validating variant for untrusted callers (the service boundary): a
  /// batch whose answers are mutually inconsistent (no candidate survives
  /// all of them — possible from a buggy client or a noisy oracle) is
  /// rejected with InvalidArgument and the session state stays untouched,
  /// instead of tripping the fatal consistency checks. Default forwards to
  /// OnReachBatch (policies without content constraints).
  virtual Status TryOnReachBatch(std::span<const NodeId> nodes,
                                 const std::vector<bool>& answers);
};

/// A search strategy factory. Thread-safe for concurrent NewSession() calls
/// as long as the policy's shared base state is not mutated concurrently.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Human-readable name ("GreedyTree", "TopDown", ...).
  virtual std::string name() const = 0;

  /// Starts a fresh search.
  virtual std::unique_ptr<SearchSession> NewSession() const = 0;
};

}  // namespace aigs

#endif  // AIGS_CORE_POLICY_H_
