// Per-depth running-time measurement (§V-B2, Fig. 6): sample target nodes at
// each hierarchy depth and report the average wall-clock time one search
// takes, per depth. Nodes may be sampled multiple times (the paper samples
// 1000 per depth; depth 0 has only the root).
#ifndef AIGS_EVAL_RUNTIME_BENCH_H_
#define AIGS_EVAL_RUNTIME_BENCH_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "util/rng.h"

namespace aigs {

/// Parameters for MeasureRuntimeByDepth.
struct RuntimeByDepthOptions {
  /// Searches timed per depth level.
  std::size_t samples_per_depth = 50;
  std::uint64_t seed = 1;
  /// Measure depths [0, max_depth]; -1 = the full hierarchy height.
  int max_depth = -1;
};

/// Result: one entry per depth level (index = depth).
struct RuntimeByDepthResult {
  std::vector<double> avg_millis;
  std::vector<std::size_t> nodes_at_depth;
};

/// Times `policy` on targets sampled uniformly among nodes of each depth.
RuntimeByDepthResult MeasureRuntimeByDepth(
    const Policy& policy, const Hierarchy& hierarchy,
    const RuntimeByDepthOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_RUNTIME_BENCH_H_
