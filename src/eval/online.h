// Online-learning harness (§V-B, Fig. 4): label a stream of objects while
// learning the target distribution on the fly. Before any object is labeled
// every category is assumed equally likely (uniform prior); after each
// labeled object the empirical count of its category is incremented.
//
// The harness runs through the service layer: searches are driven as Engine
// sessions, and the learned counts are published as new CatalogSnapshot
// epochs every `publish_every` objects (default: once per reporting block).
// Publishing never pauses in-flight sessions — they finish on the epoch
// they opened on. publish_every = 1 reproduces the paper's per-object
// update exactly (each search sees all previous labels), at the price of an
// O(n) snapshot build per object.
#ifndef AIGS_EVAL_ONLINE_H_
#define AIGS_EVAL_ONLINE_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Parameters of the online experiment.
struct OnlineOptions {
  /// Objects labeled per trace (the paper runs 100k).
  std::size_t num_objects = 100'000;
  /// Reporting granularity (the paper averages per 10k objects).
  std::size_t block_size = 10'000;
  /// Independent shuffled traces averaged together (the paper uses 20).
  std::size_t num_traces = 5;
  /// Uniform pseudo-count prior per category.
  Weight prior = 1;
  /// Base seed; trace t uses seed + t.
  std::uint64_t seed = 1;
  /// Objects between snapshot publishes (epoch granularity of the learned
  /// distribution). 0 = block_size; 1 = the paper's per-object update.
  std::size_t publish_every = 0;
};

/// Result series: one entry per block.
struct OnlineSeries {
  /// Mean (over traces) of the average search cost within each block.
  std::vector<double> avg_cost_per_block;
  /// Grand mean over all objects and traces.
  double overall_avg_cost = 0;
  /// Snapshot epochs published across all traces (one per publish_every
  /// objects per trace, plus each trace's initial prior-only epoch).
  std::uint64_t epochs_published = 0;
};

/// Runs the experiment with the efficient greedy policy for the hierarchy
/// type (GreedyTree on trees, GreedyDAG with raw counts on DAGs). Objects
/// are drawn i.i.d. from `real_dist`; the policy only ever sees the learned
/// empirical counts, served from the engine's current snapshot epoch.
StatusOr<OnlineSeries> RunOnlineLearning(const Hierarchy& hierarchy,
                                         const Distribution& real_dist,
                                         const OnlineOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_ONLINE_H_
