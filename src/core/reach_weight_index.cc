#include "core/reach_weight_index.h"

namespace aigs {

ReachWeightBase::ReachWeightBase(const Hierarchy& hierarchy,
                                 std::vector<Weight> node_weights)
    : hierarchy_(&hierarchy), scratch_(hierarchy.NumNodes()) {
  SetWeights(std::move(node_weights));
}

void ReachWeightBase::SetWeights(std::vector<Weight> node_weights) {
  AIGS_CHECK(node_weights.size() == hierarchy_->NumNodes());
  node_weight_ = std::move(node_weights);
  reach_weight_ = hierarchy_->reach().AllReachableSetWeights(node_weight_);
}

void ReachWeightBase::AddWeight(NodeId v, Weight delta) {
  node_weight_[v] += delta;
  scratch_.BackwardBfs(
      hierarchy_->graph(), v, [](NodeId) { return true; },
      [this, delta](NodeId a) { reach_weight_[a] += delta; });
}

DagSearchState::DagSearchState(const ReachWeightBase& base)
    : base_(&base),
      candidates_(base.hierarchy().graph()),
      root_(base.hierarchy().root()),
      total_alive_(base.Total()),
      in_removal_(base.hierarchy().NumNodes()),
      reverse_visited_(base.hierarchy().NumNodes()) {}

void DagSearchState::ApplyYes(NodeId q) {
  AIGS_DCHECK(IsAlive(q));
  AIGS_DCHECK(q != root_);
  // New total is the session reach weight of q *before* restriction (the
  // restriction itself removes only nodes outside R(q), which w̃(q) never
  // counted).
  total_alive_ = ReachWeight(q);
  candidates_.RestrictToReachable(q);
  root_ = q;
}

void DagSearchState::ApplyNo(NodeId q) {
  AIGS_DCHECK(IsAlive(q));
  AIGS_DCHECK(q != root_);
  const Weight removed_total = ReachWeight(q);

  // Collect and kill D = R(q) ∩ C.
  removed_buffer_.clear();
  candidates_.RemoveReachable(q, &removed_buffer_);
  total_alive_ -= removed_total;

  // Corrected Algorithm 7: for every removed x, subtract w(x) from w̃(a) of
  // each surviving ancestor a. Ancestor paths may run through other removed
  // nodes (they were alive until this very removal), so the reverse BFS
  // traverses alive ∪ D but only adjusts alive nodes.
  in_removal_.NewEpoch();
  for (const NodeId x : removed_buffer_) {
    in_removal_.Visit(x);
  }
  const Digraph& g = graph();
  for (const NodeId x : removed_buffer_) {
    const Weight wx = base_->NodeWeight(x);
    if (wx == 0) {
      continue;  // nothing to subtract
    }
    reverse_visited_.NewEpoch();
    reverse_queue_.clear();
    reverse_queue_.push_back(x);
    reverse_visited_.Visit(x);
    for (std::size_t head = 0; head < reverse_queue_.size(); ++head) {
      const NodeId u = reverse_queue_[head];
      for (const NodeId p : g.Parents(u)) {
        if (reverse_visited_.IsVisited(p)) {
          continue;
        }
        const bool alive = candidates_.IsAlive(p);
        if (!alive && !in_removal_.IsVisited(p)) {
          continue;  // ancestor left the candidate set long ago
        }
        reverse_visited_.Visit(p);
        reverse_queue_.push_back(p);
        if (alive) {
          removed_weight_[p] += wx;
        }
      }
    }
  }
}

}  // namespace aigs
