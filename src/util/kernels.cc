#include "util/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/common.h"

// Every implementation is compiled into the binary via per-function target
// attributes (the translation unit itself stays at the default arch), and
// CPUID picks at runtime — so a binary built on a plain x86-64 box still
// runs the AVX-512 path on capable hardware, and never faults on old
// hardware.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define AIGS_KERNELS_X86 1
#include <immintrin.h>
// GCC's AVX-512 intrinsic wrappers pass _mm512_undefined_epi32() /
// _mm256_undefined_si256() as the ignored merge source of masked builtins,
// which -W(maybe-)uninitialized flags at -O2+ (GCC bug 105593). The values
// never reach a result; silence the false positive for this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#else
#define AIGS_KERNELS_X86 0
#endif

namespace aigs::kernels {
namespace {

// ---- scalar reference ------------------------------------------------------

void AndWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
  }
}

void AndNotWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

void OrWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
  }
}

std::size_t PopcountWordsScalar(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

std::size_t AndPopcountWordsScalar(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

CountAndWeight MaskedCountWeightScalar(const std::uint64_t* a,
                                       const std::uint64_t* b, std::size_t n,
                                       const Weight* weights,
                                       const Weight* block_sums) {
  CountAndWeight out;
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t word = a[w] & b[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

CountAndWeight CountWeightScalar(const std::uint64_t* words, std::size_t n,
                                 const Weight* weights,
                                 const Weight* block_sums) {
  CountAndWeight out;
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t word = words[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

constexpr Ops kScalarOps = {
    Mode::kScalar,       "scalar",
    AndWordsScalar,      AndNotWordsScalar,      OrWordsScalar,
    PopcountWordsScalar, AndPopcountWordsScalar, MaskedCountWeightScalar,
    CountWeightScalar,
};

#if AIGS_KERNELS_X86

// ---- AVX2 ------------------------------------------------------------------

__attribute__((target("avx2"))) inline std::uint64_t HSum256(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// Per-64-bit-lane popcounts via the classic nibble-LUT pshufb + psadbw.
__attribute__((target("avx2"))) inline __m256i PopcntEpi64(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void AndWordsAvx2(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

__attribute__((target("avx2"))) void AndNotWordsAvx2(std::uint64_t* dst,
                                                     const std::uint64_t* src,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot(a, b) = ~a & b.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

__attribute__((target("avx2"))) void OrWordsAvx2(std::uint64_t* dst,
                                                 const std::uint64_t* src,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

__attribute__((target("avx2"))) std::size_t PopcountWordsAvx2(
    const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, PopcntEpi64(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(words + i))));
  }
  std::size_t total = HSum256(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

__attribute__((target("avx2"))) std::size_t AndPopcountWordsAvx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, PopcntEpi64(_mm256_and_si256(va, vb)));
  }
  std::size_t total = HSum256(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

// Weight sum over the set bits of one mixed word, vectorized: each nibble
// of the word selects lanes of a 4-weight group via compare-against-bit
// masks, so the whole 64-weight block is swept in 16 independent masked
// adds instead of a popcount-long dependent scalar chain. Only worth it
// when the word is genuinely mixed — BlockedWordSum's bit loop (or its
// complement trick) wins on near-empty and near-full words.
__attribute__((target("avx2"))) inline __m256i WordWeightSum256(
    std::uint64_t word, const Weight* wp) {
  const __m256i bitsel = _mm256_setr_epi64x(1, 2, 4, 8);
  // Two accumulators halve the add dependency chain.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  for (int j = 0; j < 16; j += 2) {
    const __m256i nib0 = _mm256_set1_epi64x(
        static_cast<long long>((word >> (4 * j)) & 0xF));
    const __m256i nib1 = _mm256_set1_epi64x(
        static_cast<long long>((word >> (4 * (j + 1))) & 0xF));
    const __m256i m0 = _mm256_cmpeq_epi64(_mm256_and_si256(nib0, bitsel),
                                          bitsel);
    const __m256i m1 = _mm256_cmpeq_epi64(_mm256_and_si256(nib1, bitsel),
                                          bitsel);
    acc0 = _mm256_add_epi64(
        acc0, _mm256_and_si256(
                  m0, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(wp + 4 * j))));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_and_si256(
            m1, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(wp + 4 * (j + 1)))));
  }
  return _mm256_add_epi64(acc0, acc1);
}

// True when the vectorized 64-weight sweep beats BlockedWordSum's
// min(popcount, 64-popcount)-iteration scalar loop for this word.
inline bool MixedWordWide(std::uint64_t word) {
  const int pc = std::popcount(word);
  return pc >= 8 && pc <= 56;
}

// The fused kernel's vector fast paths: a 4-word group that intersects to
// zero costs one testz; a group of four fully-set words settles with one
// vector add of the block sums. Mixed words take the vectorized
// 64-weight sweep when dense enough, the shared BlockedWordSum otherwise.
// Weight is uint64_t, so splitting the sum across vector lanes + a scalar
// accumulator cannot change the result.
__attribute__((target("avx2"))) CountAndWeight MaskedCountWeightAvx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
    const Weight* weights, const Weight* block_sums) {
  CountAndWeight out;
  __m256i cacc = _mm256_setzero_si256();
  __m256i wacc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i v = _mm256_and_si256(va, vb);
    if (_mm256_testz_si256(v, v)) {
      continue;
    }
    cacc = _mm256_add_epi64(cacc, PopcntEpi64(v));
    if (_mm256_testc_si256(v, ones)) {
      wacc = _mm256_add_epi64(
          wacc, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(block_sums + w)));
      continue;
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    for (std::size_t k = 0; k < 4; ++k) {
      if (lanes[k] == 0) {
        continue;
      }
      if (MixedWordWide(lanes[k])) {
        wacc = _mm256_add_epi64(
            wacc, WordWeightSum256(lanes[k], weights + ((w + k) << 6)));
      } else {
        out.weight += BlockedWordSum(lanes[k], ~std::uint64_t{0},
                                     weights + ((w + k) << 6),
                                     block_sums[w + k]);
      }
    }
  }
  out.count += HSum256(cacc);
  out.weight += HSum256(wacc);
  for (; w < n; ++w) {
    const std::uint64_t word = a[w] & b[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

__attribute__((target("avx2"))) CountAndWeight CountWeightAvx2(
    const std::uint64_t* words, std::size_t n, const Weight* weights,
    const Weight* block_sums) {
  CountAndWeight out;
  __m256i cacc = _mm256_setzero_si256();
  __m256i wacc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(v, v)) {
      continue;
    }
    cacc = _mm256_add_epi64(cacc, PopcntEpi64(v));
    if (_mm256_testc_si256(v, ones)) {
      wacc = _mm256_add_epi64(
          wacc, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(block_sums + w)));
      continue;
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    for (std::size_t k = 0; k < 4; ++k) {
      if (lanes[k] == 0) {
        continue;
      }
      if (MixedWordWide(lanes[k])) {
        wacc = _mm256_add_epi64(
            wacc, WordWeightSum256(lanes[k], weights + ((w + k) << 6)));
      } else {
        out.weight += BlockedWordSum(lanes[k], ~std::uint64_t{0},
                                     weights + ((w + k) << 6),
                                     block_sums[w + k]);
      }
    }
  }
  out.count += HSum256(cacc);
  out.weight += HSum256(wacc);
  for (; w < n; ++w) {
    const std::uint64_t word = words[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

constexpr Ops kAvx2Ops = {
    Mode::kAvx2,       "avx2",
    AndWordsAvx2,      AndNotWordsAvx2,      OrWordsAvx2,
    PopcountWordsAvx2, AndPopcountWordsAvx2, MaskedCountWeightAvx2,
    CountWeightAvx2,
};

// ---- AVX-512 ---------------------------------------------------------------
// Requires avx512f + avx512vpopcntdq (Ice Lake / Zen 4 and newer) — the
// native per-lane popcount is the whole point; without it the AVX2 table
// wins anyway.

#define AIGS_T512 __attribute__((target("avx512f,avx512vpopcntdq")))

// Manual horizontal sum: _mm512_reduce_add_epi64 trips GCC 12's
// -Werror=uninitialized through _mm256_undefined_si256 in its expansion.
AIGS_T512 inline std::uint64_t HSum512(__m512i v) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

AIGS_T512 void AndWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
  }
}

AIGS_T512 void AndNotWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_andnot_si512(s, d));
  }
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
  }
}

AIGS_T512 void OrWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
  }
  for (; i < n; ++i) {
    dst[i] |= src[i];
  }
}

AIGS_T512 std::size_t PopcountWordsAvx512(const std::uint64_t* words,
                                          std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  }
  std::size_t total = HSum512(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

AIGS_T512 std::size_t AndPopcountWordsAvx512(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = HSum512(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

// Weight sum over the set bits of one mixed word: each byte of the word is
// a lane mask for one 8-weight group, so the 64-weight block is swept in 8
// independent masked adds — constant cost where the scalar bit loop pays
// one dependent iteration per set bit.
AIGS_T512 inline __m512i WordWeightSum512(std::uint64_t word,
                                          const Weight* wp) {
  // Two accumulators halve the masked-add dependency chain.
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  for (int j = 0; j < 8; j += 2) {
    const __mmask8 m0 = static_cast<__mmask8>(word >> (8 * j));
    const __mmask8 m1 = static_cast<__mmask8>(word >> (8 * (j + 1)));
    acc0 =
        _mm512_mask_add_epi64(acc0, m0, acc0, _mm512_loadu_si512(wp + 8 * j));
    acc1 = _mm512_mask_add_epi64(acc1, m1, acc1,
                                 _mm512_loadu_si512(wp + 8 * (j + 1)));
  }
  return _mm512_add_epi64(acc0, acc1);
}

AIGS_T512 CountAndWeight MaskedCountWeightAvx512(const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 std::size_t n,
                                                 const Weight* weights,
                                                 const Weight* block_sums) {
  CountAndWeight out;
  __m512i cacc = _mm512_setzero_si512();
  __m512i wacc = _mm512_setzero_si512();
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w));
    const __mmask8 nz = _mm512_test_epi64_mask(v, v);
    if (nz == 0) {
      continue;
    }
    cacc = _mm512_add_epi64(cacc, _mm512_popcnt_epi64(v));
    const __mmask8 dense = _mm512_cmpeq_epi64_mask(v, ones);
    wacc = _mm512_mask_add_epi64(wacc, dense, wacc,
                                 _mm512_loadu_si512(block_sums + w));
    std::uint32_t mixed = static_cast<std::uint32_t>(nz & ~dense) & 0xFFu;
    if (mixed != 0) {
      alignas(64) std::uint64_t lanes[8];
      _mm512_store_si512(lanes, v);
      while (mixed != 0) {
        const std::uint32_t k =
            static_cast<std::uint32_t>(std::countr_zero(mixed));
        if (MixedWordWide(lanes[k])) {
          wacc = _mm512_add_epi64(
              wacc, WordWeightSum512(lanes[k], weights + ((w + k) << 6)));
        } else {
          out.weight += BlockedWordSum(lanes[k], ~std::uint64_t{0},
                                       weights + ((w + k) << 6),
                                       block_sums[w + k]);
        }
        mixed &= mixed - 1;
      }
    }
  }
  out.count += HSum512(cacc);
  out.weight += HSum512(wacc);
  for (; w < n; ++w) {
    const std::uint64_t word = a[w] & b[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

AIGS_T512 CountAndWeight CountWeightAvx512(const std::uint64_t* words,
                                           std::size_t n,
                                           const Weight* weights,
                                           const Weight* block_sums) {
  CountAndWeight out;
  __m512i cacc = _mm512_setzero_si512();
  __m512i wacc = _mm512_setzero_si512();
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i v = _mm512_loadu_si512(words + w);
    const __mmask8 nz = _mm512_test_epi64_mask(v, v);
    if (nz == 0) {
      continue;
    }
    cacc = _mm512_add_epi64(cacc, _mm512_popcnt_epi64(v));
    const __mmask8 dense = _mm512_cmpeq_epi64_mask(v, ones);
    wacc = _mm512_mask_add_epi64(wacc, dense, wacc,
                                 _mm512_loadu_si512(block_sums + w));
    std::uint32_t mixed = static_cast<std::uint32_t>(nz & ~dense) & 0xFFu;
    if (mixed != 0) {
      alignas(64) std::uint64_t lanes[8];
      _mm512_store_si512(lanes, v);
      while (mixed != 0) {
        const std::uint32_t k =
            static_cast<std::uint32_t>(std::countr_zero(mixed));
        if (MixedWordWide(lanes[k])) {
          wacc = _mm512_add_epi64(
              wacc, WordWeightSum512(lanes[k], weights + ((w + k) << 6)));
        } else {
          out.weight += BlockedWordSum(lanes[k], ~std::uint64_t{0},
                                       weights + ((w + k) << 6),
                                       block_sums[w + k]);
        }
        mixed &= mixed - 1;
      }
    }
  }
  out.count += HSum512(cacc);
  out.weight += HSum512(wacc);
  for (; w < n; ++w) {
    const std::uint64_t word = words[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, weights + (w << 6),
                                 block_sums[w]);
  }
  return out;
}

#undef AIGS_T512

constexpr Ops kAvx512Ops = {
    Mode::kAvx512,       "avx512",
    AndWordsAvx512,      AndNotWordsAvx512,      OrWordsAvx512,
    PopcountWordsAvx512, AndPopcountWordsAvx512, MaskedCountWeightAvx512,
    CountWeightAvx512,
};

#endif  // AIGS_KERNELS_X86

// ---- dispatch --------------------------------------------------------------

const Ops& ResolveDefault() {
  Mode mode = Mode::kAuto;
  if (const char* env = std::getenv("AIGS_KERNELS")) {
    if (!ParseMode(env, &mode)) {
      std::fprintf(stderr,
                   "aigs: AIGS_KERNELS='%s' is not scalar|avx2|avx512|auto; "
                   "using auto\n",
                   env);
      mode = Mode::kAuto;
    } else if (mode != Mode::kAuto && !CpuSupports(mode)) {
      std::fprintf(stderr,
                   "aigs: AIGS_KERNELS=%s not supported by this CPU; "
                   "using %s\n",
                   ModeName(mode), ModeName(BestSupported()));
      mode = Mode::kAuto;
    }
  }
  return OpsFor(mode);
}

std::atomic<const Ops*> g_active{nullptr};

}  // namespace

bool CpuSupports(Mode mode) {
  switch (mode) {
    case Mode::kScalar:
    case Mode::kAuto:
      return true;
#if AIGS_KERNELS_X86
    case Mode::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Mode::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
    case Mode::kAvx2:
    case Mode::kAvx512:
      return false;
#endif
  }
  return false;
}

Mode BestSupported() {
  if (CpuSupports(Mode::kAvx512)) {
    return Mode::kAvx512;
  }
  if (CpuSupports(Mode::kAvx2)) {
    return Mode::kAvx2;
  }
  return Mode::kScalar;
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kScalar:
      return "scalar";
    case Mode::kAvx2:
      return "avx2";
    case Mode::kAvx512:
      return "avx512";
    case Mode::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseMode(std::string_view text, Mode* out) {
  if (text == "scalar") {
    *out = Mode::kScalar;
  } else if (text == "avx2") {
    *out = Mode::kAvx2;
  } else if (text == "avx512") {
    *out = Mode::kAvx512;
  } else if (text == "auto") {
    *out = Mode::kAuto;
  } else {
    return false;
  }
  return true;
}

const Ops& OpsFor(Mode mode) {
  if (mode == Mode::kAuto) {
    mode = BestSupported();
  }
  AIGS_CHECK(CpuSupports(mode));
  switch (mode) {
#if AIGS_KERNELS_X86
    case Mode::kAvx2:
      return kAvx2Ops;
    case Mode::kAvx512:
      return kAvx512Ops;
#endif
    default:
      return kScalarOps;
  }
}

const Ops& Active() {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    ops = &ResolveDefault();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Mode ActiveMode() { return Active().mode; }

void SetMode(Mode mode) {
  if (mode == Mode::kAuto) {
    g_active.store(&ResolveDefault(), std::memory_order_release);
    return;
  }
  AIGS_CHECK(CpuSupports(mode));
  g_active.store(&OpsFor(mode), std::memory_order_release);
}

}  // namespace aigs::kernels
