#include "graph/transitive_reduction.h"

#include "graph/reachability.h"

namespace aigs {

StatusOr<TransitiveReductionResult> TransitiveReduction(const Digraph& g) {
  if (!g.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  const ReachabilityIndex reach(g);

  TransitiveReductionResult result;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    result.graph.AddNode(g.Label(v));
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto children = g.Children(u);
    for (const NodeId v : children) {
      // u -> v is redundant iff a sibling path covers it. In a DAG, that is
      // exactly: some other child c of u reaches v.
      bool redundant = false;
      for (const NodeId c : children) {
        if (c != v && reach.Reaches(c, v)) {
          redundant = true;
          break;
        }
      }
      if (redundant) {
        ++result.removed_edges;
      } else {
        result.graph.AddEdge(u, v);
      }
    }
  }
  // The reduction preserves the root, so no dummy is ever needed.
  AIGS_RETURN_NOT_OK(result.graph.Finalize(/*add_dummy_root=*/false));
  return result;
}

}  // namespace aigs
