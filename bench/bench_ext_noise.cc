// §VII extension: noisy crowd answers. Sweeps the per-answer flip
// probability and reports the greedy policy's labeling accuracy and cost,
// with and without majority voting — quantifying the trade-off the paper
// flags as future work ("dealing with the negative influence of noise").
#include "bench/bench_common.h"
#include "eval/runner.h"
#include "oracle/noisy_oracle.h"
#include "prob/alias_table.h"
#include "util/ascii_table.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

struct NoiseOutcome {
  double accuracy = 0;
  double avg_crowd_answers = 0;  // total crowd answers incl. vote repeats
};

NoiseOutcome Measure(const Policy& policy, const Hierarchy& h,
                     const Distribution& dist, double flip_prob, int votes,
                     bool persistent, std::size_t trials, Rng& rng) {
  const AliasTable sampler(dist);
  std::size_t correct = 0;
  std::uint64_t crowd_answers = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const NodeId target = sampler.Sample(rng);
    ExactOracle exact(h.reach(), target);
    NoisyOracle transient(exact, flip_prob, rng.Fork());
    PersistentNoisyOracle sticky(exact, flip_prob, rng.Fork());
    Oracle& noisy = persistent ? static_cast<Oracle&>(sticky)
                               : static_cast<Oracle&>(transient);
    MajorityVoteOracle voted(noisy, votes);
    auto session = policy.NewSession();
    RunOptions options;
    options.max_questions = 1 << 20;
    const SearchResult r = RunSearch(*session, voted, options);
    correct += r.target == target ? 1 : 0;
    crowd_answers += r.reach_queries * static_cast<std::uint64_t>(votes);
  }
  return {static_cast<double>(correct) / static_cast<double>(trials),
          static_cast<double>(crowd_answers) / static_cast<double>(trials)};
}

int Main() {
  PrintBanner("Extension: noisy crowd answers (§VII future work)");
  const Dataset dataset = MakeAmazonDataset(std::min(DatasetScale(), 0.15));
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;
  const auto greedy = MakeGreedyPolicy(h, dist);
  const std::size_t trials = static_cast<std::size_t>(
      EnvInt("AIGS_NOISE_TRIALS", EnvBool("AIGS_FULL", false) ? 2000 : 300));

  AsciiTable table({"Flip prob", "Acc (1 vote)", "Acc (5 votes)",
                    "Acc (5 votes, persistent)", "Answers (5 votes)"});
  Rng rng(77);
  for (const double flip : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const NoiseOutcome single =
        Measure(*greedy, h, dist, flip, 1, /*persistent=*/false, trials, rng);
    const NoiseOutcome voted =
        Measure(*greedy, h, dist, flip, 5, /*persistent=*/false, trials, rng);
    const NoiseOutcome sticky =
        Measure(*greedy, h, dist, flip, 5, /*persistent=*/true, trials, rng);
    table.AddRow({FormatDouble(flip, 2),
                  FormatDouble(single.accuracy * 100, 1) + "%",
                  FormatDouble(voted.accuracy * 100, 1) + "%",
                  FormatDouble(sticky.accuracy * 100, 1) + "%",
                  FormatDouble(voted.avg_crowd_answers, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("takeaway: majority voting buys back accuracy under transient "
              "noise at ~5x crowd answers\nper object — but is powerless "
              "against persistent noise (the same wrong answer repeats),\n"
              "exactly the challenge §VII flags as future work.\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
