// MIGS baseline (Li et al., VLDB'20): search by multiple-choice questions.
// The crowd is shown batches of the current node's children and picks the
// one containing the object, or "none of these" (exhausting all batches
// makes the current node the answer). Following the paper's evaluation
// protocol, the cost of a k-choice query is k — "the number of choices read
// by the crowd, since a k-choice query can be decomposed to k binary
// queries" (§V-A).
//
// Li et al.'s questions present a handful of likelihood-ranked options per
// round; we default to batches of 4 choices sorted by descending subtree
// probability (when a Distribution is supplied). Full-fanout questions
// (max_choices_per_question = 0) reproduce the paper's remark that a root
// question on ImageNet reads ~100 choices.
#ifndef AIGS_BASELINES_MIGS_H_
#define AIGS_BASELINES_MIGS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "prob/distribution.h"

namespace aigs {

/// Tuning knobs for MIGS.
struct MigsOptions {
  /// Maximum choices shown per question; 0 presents all children at once.
  /// Small batches keep the per-question reading cost bounded (the crowd
  /// reads the whole question even when the match comes first).
  std::size_t max_choices_per_question = 4;
};

/// Multiple-choice search baseline (trees and DAGs).
class MigsPolicy : public Policy {
 public:
  /// Distribution-oblivious variant: choices in hierarchy insertion order.
  explicit MigsPolicy(const Hierarchy& hierarchy, MigsOptions options = {});

  /// Likelihood-ordered variant: each choice set sorted by descending
  /// subtree probability under `dist` (Li et al.'s arrangement).
  MigsPolicy(const Hierarchy& hierarchy, const Distribution& dist,
             MigsOptions options = {});

  std::string name() const override { return "MIGS"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  MigsOptions options_;
  // Per-node choice order; empty vectors fall back to insertion order.
  std::vector<std::vector<NodeId>> ordered_children_;
};

}  // namespace aigs

#endif  // AIGS_BASELINES_MIGS_H_
