#include "util/crc32.h"

#include <array>

namespace aigs {
namespace {

constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace aigs
