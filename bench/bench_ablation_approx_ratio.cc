// Empirical approximation ratios against the brute-force optimum (the DP of
// eval/optimal_dp.h) on exhaustive families of small instances — an
// experimental companion to Theorems 1, 2 and 4. The paper's bounds are
// (1+√5)/2 ≈ 1.618 on trees and 2(1+3 ln n) on DAGs; measured ratios are
// far smaller, and the worst observed tree ratio must stay under the golden
// ratio.
#include <algorithm>

#include "bench/bench_common.h"
#include "eval/optimal_dp.h"
#include "graph/generators.h"
#include "util/ascii_table.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

struct RatioStats {
  double worst = 0;
  double sum = 0;
  std::size_t count = 0;

  void Add(double ratio) {
    worst = std::max(worst, ratio);
    sum += ratio;
    ++count;
  }
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

int Main() {
  std::printf("== Empirical approximation ratios vs brute-force optimum ==\n");
  const std::size_t rounds = static_cast<std::size_t>(
      EnvInt("AIGS_APPROX_ROUNDS", EnvBool("AIGS_FULL", false) ? 400 : 120));
  std::printf("config: %zu random instances per family "
              "(AIGS_APPROX_ROUNDS)\n\n", rounds);

  Rng rng(2022);
  RatioStats tree_stats;
  RatioStats dag_stats;
  RatioStats equal_stats;
  RatioStats caigs_stats;

  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t n = 2 + rng.UniformInt(13);

    // Tree family: GreedyTree vs optimum.
    {
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomTree(n, g));
      AIGS_CHECK(h.ok());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(99);
      }
      auto dist = Distribution::FromWeights(weights);
      AIGS_CHECK(dist.ok());
      auto opt = OptimalExpectedCost(*h, *dist);
      AIGS_CHECK(opt.ok());
      GreedyTreePolicy greedy(*h, *dist);
      if (*opt > 0) {
        tree_stats.Add(Cost(greedy, *h, *dist) / *opt);
      }
    }

    // DAG family: GreedyDAG (rounded) vs optimum.
    {
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomDag(std::max<std::size_t>(n, 3), g, 0.5));
      AIGS_CHECK(h.ok());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(99);
      }
      auto dist = Distribution::FromWeights(weights);
      AIGS_CHECK(dist.ok());
      auto opt = OptimalExpectedCost(*h, *dist);
      AIGS_CHECK(opt.ok());
      GreedyDagPolicy greedy(*h, *dist);
      if (*opt > 0) {
        dag_stats.Add(Cost(greedy, *h, *dist) / *opt);
      }
    }

    // Equal-probability family (Theorem 3's O(log n / log log n) setting).
    {
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomDag(std::max<std::size_t>(n, 3), g, 0.4));
      AIGS_CHECK(h.ok());
      const Distribution dist = EqualDistribution(h->NumNodes());
      auto opt = OptimalExpectedCost(*h, dist);
      AIGS_CHECK(opt.ok());
      GreedyDagPolicy greedy(*h, dist);
      if (*opt > 0) {
        equal_stats.Add(Cost(greedy, *h, dist) / *opt);
      }
    }

    // CAIGS family: cost-sensitive greedy vs priced optimum.
    {
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomTree(n, g));
      AIGS_CHECK(h.ok());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(30);
      }
      auto dist = Distribution::FromWeights(weights);
      AIGS_CHECK(dist.ok());
      const CostModel costs =
          CostModel::UniformRandom(h->NumNodes(), 1, 8, g);
      auto opt = OptimalExpectedCost(*h, *dist, &costs);
      AIGS_CHECK(opt.ok());
      CostSensitiveGreedyPolicy greedy(*h, *dist, costs);
      EvalOptions options;
      options.cost_model = &costs;
      const double cost =
          EvaluateExact(greedy, *h, *dist, options).expected_priced_cost;
      if (*opt > 0) {
        caigs_stats.Add(cost / *opt);
      }
    }
  }

  AsciiTable table({"Family", "Mean ratio", "Worst ratio", "Theorem bound"});
  table.AddRow({"GreedyTree on trees (Thm 2)",
                FormatDouble(tree_stats.Mean(), 4),
                FormatDouble(tree_stats.worst, 4), "1.618 ((1+sqrt(5))/2)"});
  table.AddRow({"GreedyDAG on DAGs (Thm 1)",
                FormatDouble(dag_stats.Mean(), 4),
                FormatDouble(dag_stats.worst, 4), "2(1+3 ln n)"});
  table.AddRow({"GreedyDAG, equal probs (Thm 3)",
                FormatDouble(equal_stats.Mean(), 4),
                FormatDouble(equal_stats.worst, 4), "O(log n / log log n)"});
  table.AddRow({"Cost-sensitive on CAIGS (Thm 4)",
                FormatDouble(caigs_stats.Mean(), 4),
                FormatDouble(caigs_stats.worst, 4), "2(1+3 ln n)"});
  std::printf("%s\n", table.ToString().c_str());
  AIGS_CHECK(tree_stats.worst <= 1.6180339887498949 + 1e-9);
  std::printf("tree worst ratio within the golden-ratio bound: OK\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
