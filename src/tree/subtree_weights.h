// Subtree weight / size aggregation (Algorithm 5 `SetWeightDFS` of the
// paper), implemented as a reverse-preorder scan so arbitrarily deep trees
// cannot overflow the call stack.
#ifndef AIGS_TREE_SUBTREE_WEIGHTS_H_
#define AIGS_TREE_SUBTREE_WEIGHTS_H_

#include <vector>

#include "tree/tree.h"
#include "util/common.h"

namespace aigs {

/// Returns p̃(v) = Σ_{x ∈ T_v} weights[x] for every node v.
std::vector<Weight> ComputeSubtreeWeights(const Tree& tree,
                                          const std::vector<Weight>& weights);

/// Returns |T_v| for every node v.
std::vector<std::uint32_t> ComputeSubtreeSizes(const Tree& tree);

}  // namespace aigs

#endif  // AIGS_TREE_SUBTREE_WEIGHTS_H_
