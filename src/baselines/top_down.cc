#include "baselines/top_down.h"

namespace aigs {
namespace {

class TopDownSession final : public SearchSession {
 public:
  explicit TopDownSession(const Digraph& g) : graph_(&g), node_(g.root()) {}

  Query PlanQuestion() const override {
    const auto children = graph_->Children(node_);
    if (child_idx_ >= children.size()) {
      return Query::Done(node_);
    }
    return Query::ReachQuery(children[child_idx_]);
  }

  void ApplyReach(NodeId q, bool yes) override {
    AIGS_CHECK(child_idx_ < graph_->Children(node_).size());
    AIGS_CHECK(q == graph_->Children(node_)[child_idx_]);
    if (yes) {
      node_ = q;
      child_idx_ = 0;
    } else {
      ++child_idx_;
    }
  }

 private:
  const Digraph* graph_;
  NodeId node_;
  std::size_t child_idx_ = 0;
};

}  // namespace

std::unique_ptr<SearchSession> TopDownPolicy::NewSession() const {
  return std::make_unique<TopDownSession>(hierarchy_->graph());
}

}  // namespace aigs
