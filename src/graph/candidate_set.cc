#include "graph/candidate_set.h"

namespace aigs {

void CandidateSet::RestrictToReachable(NodeId q,
                                       std::vector<NodeId>* removed) {
  AIGS_CHECK(IsAlive(q));
  // Collect R(q) ∩ C via forward BFS among alive nodes, then flip everything
  // else off. The downward-closure invariant guarantees this BFS reaches all
  // alive nodes of R(q).
  DynamicBitset keep(alive_.size());
  std::size_t kept = 0;
  scratch_.ForwardBfs(
      *graph_, q, [this](NodeId v) { return IsAlive(v); },
      [&](NodeId v) {
        keep.Set(v);
        ++kept;
      });
  if (removed != nullptr) {
    alive_.ForEachSetBit([&](std::size_t v) {
      if (!keep.Test(v)) {
        removed->push_back(static_cast<NodeId>(v));
      }
    });
  }
  alive_ = std::move(keep);
  alive_count_ = kept;
}

void CandidateSet::RemoveReachable(NodeId q, std::vector<NodeId>* removed) {
  AIGS_CHECK(IsAlive(q));
  std::vector<NodeId> local;
  std::vector<NodeId>* sink = removed != nullptr ? removed : &local;
  const std::size_t before = sink->size();
  scratch_.ForwardBfs(
      *graph_, q, [this](NodeId v) { return IsAlive(v); },
      [&](NodeId v) { sink->push_back(v); });
  for (std::size_t i = before; i < sink->size(); ++i) {
    alive_.Reset((*sink)[i]);
  }
  alive_count_ -= sink->size() - before;
}

NodeId CandidateSet::SoleCandidate() const {
  AIGS_CHECK(alive_count_ == 1);
  return static_cast<NodeId>(alive_.FindFirst());
}

}  // namespace aigs
