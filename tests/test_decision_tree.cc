#include "eval/decision_tree.h"

#include <gtest/gtest.h>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "data/builtin.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::RunAllTargets;
using testing::WeightedAverage;

TEST(DecisionTree, LeavesBijectWithTargets) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(20, rng));
  const Distribution dist = UniformRandomDistribution(20, rng);
  GreedyTreePolicy policy(h, dist);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), h.NumNodes());
}

TEST(DecisionTree, DepthsMatchRunnerCosts) {
  Rng rng(2);
  for (const bool dag : {false, true}) {
    const Hierarchy h = MustBuild(
        dag ? RandomDag(18, rng, 0.4) : RandomTree(18, rng));
    const Distribution dist =
        ExponentialRandomDistribution(h.NumNodes(), rng);
    const GreedyDagPolicy policy(h, dist);
    auto tree = DecisionTree::Build(policy, h);
    ASSERT_TRUE(tree.ok());
    const auto costs = RunAllTargets(policy, h);
    for (NodeId target = 0; target < h.NumNodes(); ++target) {
      EXPECT_EQ(tree->LeafDepth(target), costs[target]);
    }
    EXPECT_DOUBLE_EQ(tree->ExpectedCost(dist), WeightedAverage(costs, dist));
  }
}

TEST(DecisionTree, TopDownOnDagHasOneSidedBranches) {
  // TopDown discards sibling information on DAGs, so some answer branches
  // are impossible; the builder must handle them (child index -1).
  const Hierarchy h = MustBuild(DiamondChain(2));
  TopDownPolicy policy(h);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), h.NumNodes());
  const auto costs = RunAllTargets(policy, h);
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    EXPECT_EQ(tree->LeafDepth(target), costs[target]);
  }
}

TEST(DecisionTree, RejectsChoicePolicies) {
  const Hierarchy h = MustBuild(BuildVehicleHierarchy());
  MigsPolicy migs(h);
  EXPECT_FALSE(DecisionTree::Build(migs, h).ok());
}

TEST(DecisionTree, RejectsBatchedPolicies) {
  const Hierarchy h = MustBuild(BuildVehicleHierarchy());
  const Distribution dist = VehicleDistribution();
  BatchedGreedyPolicy batched(h, dist,
                              BatchedGreedyOptions{.questions_per_round = 3});
  EXPECT_FALSE(DecisionTree::Build(batched, h).ok());
}

TEST(DecisionTree, RespectsNodeBudget) {
  Rng rng(3);
  const Hierarchy h = MustBuild(RandomTree(40, rng));
  const Distribution dist = EqualDistribution(40);
  GreedyTreePolicy policy(h, dist);
  EXPECT_FALSE(DecisionTree::Build(policy, h, /*max_nodes=*/5).ok());
}

TEST(DecisionTree, DotOutputMentionsQueriesAndLeaves) {
  const Hierarchy h = MustBuild(BuildVehicleHierarchy());
  const Distribution dist = VehicleDistribution();
  GreedyTreePolicy policy(h, dist);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  const std::string dot = tree->ToDot(h);
  EXPECT_NE(dot.find("digraph decision_tree"), std::string::npos);
  EXPECT_NE(dot.find("Maxima?"), std::string::npos);  // first greedy query
  EXPECT_NE(dot.find("[label=\"Y\"]"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"N\"]"), std::string::npos);
}

TEST(DecisionTree, SizeIsLinearInHierarchy) {
  // n leaves and at most n-1 internal nodes when every branch is feasible
  // (Section III-C: |D| ≤ 2|G|).
  Rng rng(4);
  const Hierarchy h = MustBuild(RandomTree(25, rng));
  const Distribution dist = UniformRandomDistribution(25, rng);
  GreedyTreePolicy policy(h, dist);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->nodes().size(), 2 * h.NumNodes());
}

TEST(DecisionTree, WigsTreeMatchesRunner) {
  Rng rng(5);
  const Hierarchy h = MustBuild(RandomTree(22, rng));
  WigsTreePolicy policy(h);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  const auto costs = RunAllTargets(policy, h);
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    EXPECT_EQ(tree->LeafDepth(target), costs[target]);
  }
}

}  // namespace
}  // namespace aigs
