#include "graph/reachability.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "util/thread_pool.h"

namespace aigs {

ReachabilityIndex::ReachabilityIndex(const Digraph& g,
                                     ReachabilityOptions options)
    : graph_(&g) {
  AIGS_CHECK(g.finalized());
  if (g.IsTree() && !options.force_closure_on_trees) {
    storage_ = Storage::kEuler;
    BuildEuler();
    return;
  }
  bool compressed = options.closure == ReachabilityOptions::Closure::kCompressed;
  if (options.closure == ReachabilityOptions::Closure::kAuto) {
    compressed = DenseClosureBytes(g.NumNodes()) >
                 static_cast<U128>(options.compress_threshold_bytes);
  }
  if (compressed) {
    storage_ = Storage::kCompressedClosure;
    compressed_ = std::make_unique<CompressedClosure>(
        g, CompressedClosure::BuildOptions{options.build_threads,
                                           options.build_pool});
    const std::size_t n = g.NumNodes();
    reach_count_.assign(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      reach_count_[u] = compressed_->RowCount(u);
    }
  } else {
    storage_ = Storage::kDenseClosure;
    BuildClosure(options);
  }
}

void ReachabilityIndex::BuildEuler() {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  euler_to_node_.assign(n, kInvalidNode);
  reach_count_.assign(n, 0);

  // Iterative DFS (hierarchies can be deep; no recursion).
  std::uint32_t clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, child index)
  stack.emplace_back(g.root(), 0);
  tin_[g.root()] = clock;
  euler_to_node_[clock++] = g.root();
  while (!stack.empty()) {
    auto& [u, next_child] = stack.back();
    const auto children = g.Children(u);
    if (next_child < children.size()) {
      const NodeId c = children[next_child++];
      tin_[c] = clock;
      euler_to_node_[clock++] = c;
      stack.emplace_back(c, 0);
    } else {
      tout_[u] = clock;
      reach_count_[u] = tout_[u] - tin_[u];
      stack.pop_back();
    }
  }
  AIGS_CHECK(clock == n);
}

void ReachabilityIndex::BuildClosure(const ReachabilityOptions& options) {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  // Guard the n² size math before touching the allocator: a million-node
  // catalog must be routed to compressed storage, not die in a 125 GB (or,
  // on 32-bit size_t, silently wrapped) allocation.
  AIGS_CHECK(DenseClosureBytes(n) <=
             static_cast<U128>(std::numeric_limits<std::size_t>::max()));
  closure_.resize(n);
  reach_count_.assign(n, 0);

  const std::vector<NodeId>& topo = g.TopologicalOrder();

  std::size_t workers = 1;
  if (options.build_pool != nullptr) {
    workers = options.build_pool->num_threads();
  } else if (options.build_threads > 0) {
    workers = static_cast<std::size_t>(options.build_threads);
  } else {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Below a couple thousand rows the serial loop finishes in well under a
  // millisecond; level barriers would dominate.
  constexpr std::size_t kParallelMinNodes = 2048;

  if (workers <= 1 || n < kParallelMinNodes) {
    // Reverse topological order: children first, then union into parents.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId u = *it;
      DynamicBitset& row = closure_[u];
      row.Resize(n);
      row.Set(u);
      for (const NodeId c : g.Children(u)) {
        row.OrWith(closure_[c]);
      }
      reach_count_[u] = row.Count();
    }
    return;
  }

  // Parallel build: rows grouped into dependency levels (level(u) =
  // 1 + max level over children, leaves at 0); rows within a level have no
  // edges between them, so they OR their children concurrently. OR is
  // commutative word-wise, so the resulting rows are bit-identical to the
  // serial build's.
  std::vector<std::uint32_t> level(n, 0);
  std::uint32_t num_levels = 1;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    std::uint32_t lv = 0;
    for (const NodeId c : g.Children(u)) {
      lv = std::max(lv, level[c] + 1);
    }
    level[u] = lv;
    num_levels = std::max(num_levels, lv + 1);
  }
  std::vector<std::uint32_t> level_begin(num_levels + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    ++level_begin[level[u] + 1];
  }
  for (std::uint32_t lv = 0; lv < num_levels; ++lv) {
    level_begin[lv + 1] += level_begin[lv];
  }
  std::vector<NodeId> by_level(n);
  {
    std::vector<std::uint32_t> cursor(level_begin.begin(),
                                      level_begin.end() - 1);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      by_level[cursor[level[*it]]++] = *it;
    }
  }

  ThreadPool& pool =
      options.build_pool != nullptr ? *options.build_pool : ThreadPool::Default();
  const std::size_t shard_cap = std::min<std::size_t>(workers, 64);
  for (std::uint32_t lv = 0; lv < num_levels; ++lv) {
    const std::size_t begin = level_begin[lv];
    const std::size_t len = level_begin[lv + 1] - begin;
    if (len == 0) {
      continue;
    }
    const std::size_t shards = std::min(shard_cap, len);
    const std::size_t per_shard = (len + shards - 1) / shards;
    pool.RunShards(shards, [&](std::size_t s) {
      const std::size_t sb = begin + s * per_shard;
      const std::size_t se = std::min(begin + len, sb + per_shard);
      for (std::size_t i = sb; i < se; ++i) {
        const NodeId u = by_level[i];
        DynamicBitset& row = closure_[u];
        row.Resize(n);
        row.Set(u);
        for (const NodeId c : g.Children(u)) {
          row.OrWith(closure_[c]);
        }
        reach_count_[u] = row.Count();
      }
    });
  }
}

Weight ReachabilityIndex::WeightOfReachableSet(
    NodeId u, const std::vector<Weight>& weights) const {
  AIGS_DCHECK(weights.size() == graph_->NumNodes());
  Weight total = 0;
  ForEachReachable(u, [&](NodeId v) { total += weights[v]; });
  return total;
}

std::vector<Weight> ReachabilityIndex::AllReachableSetWeights(
    const std::vector<Weight>& weights) const {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  AIGS_CHECK(weights.size() == n);
  std::vector<Weight> out(n, 0);
  switch (storage_) {
    case Storage::kEuler: {
      // Subtree sums over the Euler order: prefix sums of weights in Euler
      // positions give each subtree weight in O(n).
      std::vector<Weight> prefix(n + 1, 0);
      for (std::size_t t = 0; t < n; ++t) {
        prefix[t + 1] = prefix[t] + weights[euler_to_node_[t]];
      }
      for (NodeId v = 0; v < n; ++v) {
        out[v] = prefix[tout_[v]] - prefix[tin_[v]];
      }
      break;
    }
    case Storage::kDenseClosure:
      for (NodeId v = 0; v < n; ++v) {
        out[v] = WeightOfReachableSet(v, weights);
      }
      break;
    case Storage::kCompressedClosure: {
      // Same prefix-sum trick in position space: interval rows and runs
      // settle in O(1) each.
      std::vector<Weight> prefix(n + 1, 0);
      for (std::size_t p = 0; p < n; ++p) {
        prefix[p + 1] = prefix[p] + weights[compressed_->node_at_pos(p)];
      }
      for (NodeId v = 0; v < n; ++v) {
        out[v] = compressed_->RowWeightFromPrefix(v, prefix);
      }
      break;
    }
  }
  return out;
}

std::size_t ReachabilityIndex::MemoryBytes() const {
  std::size_t total = reach_count_.size() * sizeof(std::size_t);
  switch (storage_) {
    case Storage::kEuler:
      total += tin_.size() * sizeof(std::uint32_t) +
               tout_.size() * sizeof(std::uint32_t) +
               euler_to_node_.size() * sizeof(NodeId);
      break;
    case Storage::kDenseClosure:
      for (const DynamicBitset& row : closure_) {
        total += row.words().size() * sizeof(std::uint64_t);
      }
      break;
    case Storage::kCompressedClosure:
      total += compressed_->MemoryBytes();
      break;
  }
  return total;
}

}  // namespace aigs
