#include "graph/digraph.h"

#include <algorithm>
#include <queue>

namespace aigs {

NodeId Digraph::AddNode(std::string label) {
  AIGS_CHECK(!finalized_);
  AIGS_CHECK(labels_.size() < kInvalidNode);
  labels_.push_back(std::move(label));
  return static_cast<NodeId>(labels_.size() - 1);
}

NodeId Digraph::AddNodes(std::size_t count) {
  AIGS_CHECK(!finalized_);
  const NodeId first = static_cast<NodeId>(labels_.size());
  labels_.resize(labels_.size() + count);
  return first;
}

void Digraph::SetLabel(NodeId v, std::string label) {
  AIGS_CHECK(!finalized_);
  AIGS_CHECK(v < labels_.size());
  labels_[v] = std::move(label);
}

void Digraph::AddEdge(NodeId parent, NodeId child) {
  AIGS_CHECK(!finalized_);
  AIGS_CHECK(parent < labels_.size() && child < labels_.size());
  AIGS_CHECK(parent != child);
  edges_.push_back(Edge{parent, child});
}

Status Digraph::Finalize(bool add_dummy_root) {
  if (finalized_) {
    return Status::FailedPrecondition("graph already finalized");
  }
  if (labels_.empty()) {
    return Status::InvalidArgument("graph has no nodes");
  }

  // Reject duplicate edges.
  {
    std::vector<Edge> sorted = edges_;
    std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
      return a.parent != b.parent ? a.parent < b.parent : a.child < b.child;
    });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].parent == sorted[i - 1].parent &&
          sorted[i].child == sorted[i - 1].child) {
        return Status::InvalidArgument(
            "duplicate edge " + std::to_string(sorted[i].parent) + " -> " +
            std::to_string(sorted[i].child));
      }
    }
  }

  // Find sources; add a dummy root if needed.
  {
    std::vector<std::size_t> in_degree(labels_.size(), 0);
    for (const Edge& e : edges_) {
      ++in_degree[e.child];
    }
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < labels_.size(); ++v) {
      if (in_degree[v] == 0) {
        sources.push_back(v);
      }
    }
    if (sources.empty()) {
      return Status::InvalidArgument("graph has a cycle (no source node)");
    }
    if (sources.size() == 1) {
      root_ = sources[0];
    } else if (add_dummy_root) {
      labels_.push_back("<root>");
      root_ = static_cast<NodeId>(labels_.size() - 1);
      for (const NodeId s : sources) {
        edges_.push_back(Edge{root_, s});
      }
    } else {
      return Status::InvalidArgument("graph has " +
                                     std::to_string(sources.size()) +
                                     " roots and add_dummy_root is false");
    }
  }

  const std::size_t n = labels_.size();

  // Build CSR adjacency (children and parents), preserving insertion order.
  child_offsets_.assign(n + 1, 0);
  parent_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++child_offsets_[e.parent + 1];
    ++parent_offsets_[e.child + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    child_offsets_[v + 1] += child_offsets_[v];
    parent_offsets_[v + 1] += parent_offsets_[v];
  }
  children_.resize(edges_.size());
  parents_.resize(edges_.size());
  {
    std::vector<std::size_t> child_cursor(child_offsets_.begin(),
                                          child_offsets_.end() - 1);
    std::vector<std::size_t> parent_cursor(parent_offsets_.begin(),
                                           parent_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      children_[child_cursor[e.parent]++] = e.child;
      parents_[parent_cursor[e.child]++] = e.parent;
    }
  }

  // CSR is usable from here on; roll the flag back if cycle detection fails.
  finalized_ = true;

  // Kahn topological sort; detects cycles.
  topo_order_.clear();
  topo_order_.reserve(n);
  {
    std::vector<std::size_t> remaining(n);
    std::queue<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
      remaining[v] = InDegree(v);
      if (remaining[v] == 0) {
        ready.push(v);
      }
    }
    while (!ready.empty()) {
      const NodeId u = ready.front();
      ready.pop();
      topo_order_.push_back(u);
      for (const NodeId c : Children(u)) {
        if (--remaining[c] == 0) {
          ready.push(c);
        }
      }
    }
    if (topo_order_.size() != n) {
      finalized_ = false;
      return Status::InvalidArgument("graph has a cycle");
    }
  }

  // Longest-path depth from the root, and summary statistics.
  depth_.assign(n, 0);
  height_ = 0;
  for (const NodeId u : topo_order_) {
    for (const NodeId c : Children(u)) {
      depth_[c] = std::max(depth_[c], depth_[u] + 1);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    height_ = std::max(height_, depth_[v]);
  }

  max_out_degree_ = 0;
  is_tree_ = true;
  for (NodeId v = 0; v < n; ++v) {
    max_out_degree_ = std::max(max_out_degree_, OutDegree(v));
    if (v != root_ && InDegree(v) != 1) {
      is_tree_ = false;
    }
  }
  if (InDegree(root_) != 0) {
    is_tree_ = false;
  }

  finalized_ = true;
  return Status::OK();
}

}  // namespace aigs
