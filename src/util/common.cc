#include "util/common.h"

namespace aigs {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "AIGS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace aigs
