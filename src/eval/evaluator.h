// Expected-cost evaluation of a policy under a target distribution
// (Definition 7: cost(D) = Σ_v p(v)·ℓ(v)).
//
// EvaluateExact enumerates every node as the hidden target (weighting by its
// probability) — the search-session overlays make one search cheap, and
// targets fan out across a thread pool. EvaluateSampled draws targets from
// the distribution instead, for policies too slow to enumerate (GreedyNaive).
#ifndef AIGS_EVAL_EVALUATOR_H_
#define AIGS_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aigs {

/// Aggregated evaluation results.
struct EvalStats {
  /// Expected unit cost E[#queries] (reach queries + choices read).
  double expected_cost = 0;
  /// Expected priced cost (CAIGS; equals expected_cost for unit prices).
  double expected_priced_cost = 0;
  /// Worst-case unit cost over evaluated targets (the WIGS objective).
  std::uint64_t max_cost = 0;
  /// Number of (target, search) runs performed.
  std::uint64_t num_searches = 0;
  /// Per-target unit costs, indexed by node id (exact mode only; empty in
  /// sampled mode). Zero-weight targets are included — they are verified for
  /// correctness but carry no weight in expected_cost.
  std::vector<std::uint32_t> per_target_cost;
};

/// Evaluation options.
struct EvalOptions {
  /// Prices for reach queries (null = unit).
  const CostModel* cost_model = nullptr;
  /// Thread pool (null = ThreadPool::Default()).
  ThreadPool* pool = nullptr;
  /// Also run zero-probability targets to verify the policy identifies them
  /// (they contribute 0 to the expectation either way).
  bool include_zero_weight_targets = true;
};

/// Exact expectation: one search per node, weighted by dist. Fatally checks
/// that every search identifies its true target.
EvalStats EvaluateExact(const Policy& policy, const Hierarchy& hierarchy,
                        const Distribution& dist, const EvalOptions& options = {});

/// Monte-Carlo estimate over `num_samples` targets drawn from dist.
EvalStats EvaluateSampled(const Policy& policy, const Hierarchy& hierarchy,
                          const Distribution& dist, std::size_t num_samples,
                          Rng& rng, const EvalOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_EVALUATOR_H_
