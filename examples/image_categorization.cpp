// Image categorization on an ImageNet-like DAG with the distribution
// learned on the fly (§V-B): no prior knowledge of the label mix is needed —
// the empirical counts converge while the labeling campaign runs.
#include <cstdio>

#include "core/aigs.h"
#include "data/datasets.h"
#include "eval/evaluator.h"
#include "eval/online.h"
#include "util/string_util.h"

using namespace aigs;  // NOLINT — example brevity

int main() {
  const Dataset dataset = MakeImageNetDataset(0.10);
  const Hierarchy& h = dataset.hierarchy;
  std::printf("image hierarchy: %s\n\n", DescribeDataset(dataset).c_str());

  // Label 20k images drawn from the (unknown to us) real distribution,
  // learning the empirical distribution as we go.
  OnlineOptions options;
  options.num_objects = 20'000;
  options.block_size = 2'000;
  options.num_traces = 2;
  auto series = RunOnlineLearning(h, dataset.real_distribution, options);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  // Reference: greedy with the true distribution (a-priori known).
  GreedyDagPolicy offline(h, dataset.real_distribution);
  const double offline_cost =
      EvaluateExact(offline, h, dataset.real_distribution).expected_cost;

  std::printf("%-12s %s\n", "#images", "avg questions/image (learned dist)");
  for (std::size_t b = 0; b < series->avg_cost_per_block.size(); ++b) {
    std::printf("%-12zu %s\n", (b + 1) * options.block_size,
                FormatDouble(series->avg_cost_per_block[b]).c_str());
  }
  std::printf("\nwith the true distribution known a priori: %s\n",
              FormatDouble(offline_cost).c_str());
  std::printf("final-block gap to the a-priori policy: %.1f%%\n",
              (series->avg_cost_per_block.back() / offline_cost - 1) * 100);
  return 0;
}
