// AigsClient — the blocking aigs-wire/1 client: one TCP connection, one
// in-flight request, an Engine-shaped method per opcode. Status codes the
// server sends come back as the exact Status the remote Engine returned,
// so a caller cannot tell (by error contract) whether the engine is in
// process or across the network. Not thread-safe; one client per thread
// (the ShardRouter and loadgen own their pools).
#ifndef AIGS_NET_CLIENT_H_
#define AIGS_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/net_util.h"
#include "net/wire.h"
#include "service/engine.h"
#include "util/status.h"

namespace aigs::net {

struct ClientOptions {
  int connect_timeout_ms = 5'000;
  std::size_t max_payload = kMaxFramePayload;
};

class AigsClient {
 public:
  AigsClient() = default;
  ~AigsClient() { Disconnect(); }

  AigsClient(AigsClient&& other) noexcept { *this = std::move(other); }
  AigsClient& operator=(AigsClient&& other) noexcept;
  AigsClient(const AigsClient&) = delete;
  AigsClient& operator=(const AigsClient&) = delete;

  /// Dials `endpoint` (closing any previous connection first).
  Status Connect(const Endpoint& endpoint, ClientOptions options = {});
  void Disconnect();
  bool connected() const { return fd_ >= 0; }
  const Endpoint& endpoint() const { return endpoint_; }

  // ---- the Engine session API over the wire ---------------------------------

  /// `proposed_id` as in Engine::Open — 0 lets the server assign.
  StatusOr<SessionId> Open(const std::string& policy_spec,
                           SessionId proposed_id = 0);
  StatusOr<Query> Ask(SessionId id);
  Status Answer(SessionId id, const SessionAnswer& answer);
  StatusOr<std::string> Save(SessionId id);
  StatusOr<SessionId> Resume(const std::string& blob,
                             SessionId proposed_id = 0);
  /// Live in-place migration of session `id` on the server.
  StatusOr<MigrateResult> Migrate(SessionId id);
  /// Blob migration under `proposed_id` (0 = server assigns).
  StatusOr<MigrateResult> MigrateBlob(const std::string& blob,
                                      SessionId proposed_id = 0);
  Status Close(SessionId id);
  StatusOr<WireStats> Stats();

  /// One raw round trip: send the request frame, block for the response
  /// frame. Transport and framing failures are IOError (and poison the
  /// connection); a service error arrives as an OK round trip whose
  /// response carries the non-OK code.
  StatusOr<WireResponse> Call(const WireRequest& request);

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  ClientOptions options_;
  /// Bytes received past the last extracted frame (pipelined leftovers).
  std::string read_buffer_;
};

}  // namespace aigs::net

#endif  // AIGS_NET_CLIENT_H_
