#include "eval/cost_profile.h"

#include <algorithm>
#include <cmath>

namespace aigs {

CostProfile::CostProfile(const std::vector<std::uint32_t>& per_target_cost,
                         const Distribution& dist) {
  AIGS_CHECK(per_target_cost.size() == dist.size());
  std::vector<std::pair<std::uint32_t, Weight>> entries;
  long double weighted_sum = 0;
  for (NodeId v = 0; v < dist.size(); ++v) {
    const Weight w = dist.WeightOf(v);
    if (w == 0) {
      continue;
    }
    entries.emplace_back(per_target_cost[v], w);
    total_ += w;
    weighted_sum += static_cast<long double>(w) *
                    static_cast<long double>(per_target_cost[v]);
    max_ = std::max(max_, per_target_cost[v]);
  }
  AIGS_CHECK(total_ > 0);
  mean_ = static_cast<double>(weighted_sum / static_cast<long double>(total_));

  std::sort(entries.begin(), entries.end());
  cumulative_.reserve(entries.size());
  Weight running = 0;
  for (const auto& [cost, weight] : entries) {
    running += weight;
    if (!cumulative_.empty() && cumulative_.back().first == cost) {
      cumulative_.back().second = running;
    } else {
      cumulative_.emplace_back(cost, running);
    }
  }
}

std::uint32_t CostProfile::Quantile(double q) const {
  AIGS_CHECK(q > 0 && q <= 1);
  // Threshold weight: the smallest cost whose cumulative weight reaches
  // ceil(q * total).
  const auto threshold = static_cast<Weight>(
      std::ceil(q * static_cast<double>(total_)));
  const auto it = std::lower_bound(
      cumulative_.begin(), cumulative_.end(), threshold,
      [](const auto& entry, Weight t) { return entry.second < t; });
  AIGS_CHECK(it != cumulative_.end());
  return it->first;
}

}  // namespace aigs
