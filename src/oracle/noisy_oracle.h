// Noisy-crowd extension (§VII future work): workers answer incorrectly with
// a fixed probability. MajorityVoteOracle repeats each question k times and
// takes the majority — the textbook mitigation whose cost/accuracy trade-off
// bench_ext_noise measures.
#ifndef AIGS_ORACLE_NOISY_ORACLE_H_
#define AIGS_ORACLE_NOISY_ORACLE_H_

#include <unordered_map>

#include "oracle/oracle.h"
#include "util/rng.h"

namespace aigs {

/// Wraps an oracle and flips each boolean answer with probability
/// `flip_prob`. Choice questions return a uniformly random wrong answer
/// with the same probability.
class NoisyOracle : public Oracle {
 public:
  /// `inner` must outlive this wrapper.
  NoisyOracle(Oracle& inner, double flip_prob, Rng rng)
      : inner_(&inner), flip_prob_(flip_prob), rng_(rng) {
    AIGS_CHECK(flip_prob >= 0.0 && flip_prob < 0.5);
  }

  bool Reach(NodeId q) override {
    const bool truth = inner_->Reach(q);
    return rng_.Bernoulli(flip_prob_) ? !truth : truth;
  }

  int Choice(std::span<const NodeId> choices) override;

 private:
  Oracle* inner_;
  double flip_prob_;
  Rng rng_;
};

/// Persistent noise (§VII): some answers are wrong *consistently* — the
/// ground truth itself is questionable or the crowd shares a misconception —
/// so repeating the question reproduces the same wrong answer and majority
/// voting cannot help. Each query node's answer is flipped (or not) once,
/// deterministically for the lifetime of the oracle.
class PersistentNoisyOracle : public Oracle {
 public:
  /// `inner` must outlive this wrapper; each node's answer is flipped with
  /// probability `flip_prob`, decided on first ask and then frozen.
  PersistentNoisyOracle(Oracle& inner, double flip_prob, Rng rng)
      : inner_(&inner), flip_prob_(flip_prob), rng_(rng) {
    AIGS_CHECK(flip_prob >= 0.0 && flip_prob < 0.5);
  }

  bool Reach(NodeId q) override;

 private:
  Oracle* inner_;
  double flip_prob_;
  Rng rng_;
  // node -> 1 (flip) / 2 (truthful); 0 = undecided.
  std::unordered_map<NodeId, std::uint8_t> decisions_;
};

/// Asks the wrapped (noisy) oracle each boolean question `votes` times and
/// returns the majority answer; the effective per-question cost multiplier
/// is `votes` (the runner charges it via QueryCharge()).
class MajorityVoteOracle : public Oracle {
 public:
  /// `votes` must be odd so the majority is always defined.
  MajorityVoteOracle(Oracle& inner, int votes)
      : inner_(&inner), votes_(votes) {
    AIGS_CHECK(votes >= 1 && votes % 2 == 1);
  }

  bool Reach(NodeId q) override {
    int yes = 0;
    for (int i = 0; i < votes_; ++i) {
      yes += inner_->Reach(q) ? 1 : 0;
    }
    return 2 * yes > votes_;
  }

  /// Number of crowd answers consumed per boolean question.
  int votes() const { return votes_; }

 private:
  Oracle* inner_;
  int votes_;
};

}  // namespace aigs

#endif  // AIGS_ORACLE_NOISY_ORACLE_H_
