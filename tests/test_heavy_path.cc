#include "tree/heavy_path.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "tree/subtree_weights.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(HeavyPath, HeavyChildHasMaxSubtreeSize) {
  Rng rng(1);
  const Digraph g = RandomTree(80, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  const auto hpd = HeavyPathDecomposition::BySize(*tree);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const NodeId heavy = hpd.HeavyChild(v);
    if (tree->Children(v).empty()) {
      EXPECT_EQ(heavy, kInvalidNode);
      continue;
    }
    ASSERT_NE(heavy, kInvalidNode);
    for (const NodeId c : tree->Children(v)) {
      EXPECT_GE(tree->SubtreeSize(heavy), tree->SubtreeSize(c));
    }
  }
}

TEST(HeavyPath, EveryNodeOnExactlyOnePath) {
  Rng rng(2);
  const Digraph g = RandomTree(100, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  const auto hpd = HeavyPathDecomposition::BySize(*tree);
  std::set<NodeId> covered;
  std::size_t paths_walked = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (hpd.Head(v) != v) {
      continue;  // not a path head
    }
    ++paths_walked;
    for (const NodeId x : hpd.PathFrom(v)) {
      EXPECT_TRUE(covered.insert(x).second) << "node on two paths: " << x;
      EXPECT_EQ(hpd.Head(x), v);
    }
  }
  EXPECT_EQ(covered.size(), g.NumNodes());
  EXPECT_EQ(paths_walked, hpd.NumPaths());
}

TEST(HeavyPath, PathFromFollowsHeavyChildren) {
  Rng rng(3);
  const Digraph g = RandomTree(50, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  const auto hpd = HeavyPathDecomposition::BySize(*tree);
  const auto path = hpd.PathFrom(tree->root());
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), tree->root());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(hpd.HeavyChild(path[i]), path[i + 1]);
  }
  EXPECT_EQ(hpd.HeavyChild(path.back()), kInvalidNode);
}

TEST(HeavyPath, RootToLeafCrossesFewLightEdges) {
  // Theory: any root-to-leaf walk crosses O(log n) light edges.
  Rng rng(4);
  const Digraph g = RandomTree(1 << 10, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  const auto hpd = HeavyPathDecomposition::BySize(*tree);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    int light_edges = 0;
    for (NodeId x = v; tree->Parent(x) != kInvalidNode;
         x = tree->Parent(x)) {
      if (hpd.HeavyChild(tree->Parent(x)) != x) {
        ++light_edges;
      }
    }
    EXPECT_LE(light_edges, 10);  // log2(1024)
  }
}

TEST(HeavyPath, WeightedDecompositionUsesWeights) {
  // Root with two children: tiny subtree sizes but huge weight on child 2.
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);  // child 1 has the bigger subtree by size
  g.AddEdge(0, 2);
  ASSERT_TRUE(g.Finalize().ok());
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());

  const auto by_size = HeavyPathDecomposition::BySize(*tree);
  EXPECT_EQ(by_size.HeavyChild(0), 1u);

  const std::vector<Weight> weights{1, 1, 100, 1};
  const auto by_weight = HeavyPathDecomposition::ByWeight(*tree, weights);
  EXPECT_EQ(by_weight.HeavyChild(0), 2u);
}

TEST(HeavyPath, WeightedHeavyChildMaximizesSubtreeWeight) {
  Rng rng(5);
  const Digraph g = RandomTree(60, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  std::vector<Weight> weights(g.NumNodes());
  for (auto& w : weights) {
    w = rng.UniformInt(1000);
  }
  const auto hpd = HeavyPathDecomposition::ByWeight(*tree, weights);
  const auto subtree = ComputeSubtreeWeights(*tree, weights);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const NodeId heavy = hpd.HeavyChild(v);
    for (const NodeId c : tree->Children(v)) {
      ASSERT_NE(heavy, kInvalidNode);
      EXPECT_GE(subtree[heavy], subtree[c]);
    }
  }
}

}  // namespace
}  // namespace aigs
