#include "prob/distribution.h"

#include <algorithm>
#include <cmath>

namespace aigs {

StatusOr<Distribution> Distribution::FromWeights(std::vector<Weight> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("distribution over zero nodes");
  }
  Distribution d;
  d.weights_ = std::move(weights);
  d.total_ = 0;
  d.max_weight_ = 0;
  for (const Weight w : d.weights_) {
    AIGS_CHECK(d.total_ + w >= d.total_);  // overflow guard
    d.total_ += w;
    d.max_weight_ = std::max(d.max_weight_, w);
  }
  if (d.total_ == 0) {
    return Status::InvalidArgument("distribution has zero total weight");
  }
  return d;
}

StatusOr<Distribution> Distribution::FromReals(
    const std::vector<double>& masses) {
  if (masses.empty()) {
    return Status::InvalidArgument("distribution over zero nodes");
  }
  double max_mass = 0;
  for (const double m : masses) {
    if (!(m >= 0) || !std::isfinite(m)) {
      return Status::InvalidArgument("masses must be finite and >= 0");
    }
    max_mass = std::max(max_mass, m);
  }
  if (max_mass <= 0) {
    return Status::InvalidArgument("all masses are zero");
  }
  std::vector<Weight> weights(masses.size());
  for (std::size_t i = 0; i < masses.size(); ++i) {
    weights[i] = static_cast<Weight>(
        std::llround(masses[i] / max_mass * static_cast<double>(kRealScale)));
  }
  return FromWeights(std::move(weights));
}

double Distribution::EntropyBits() const {
  double h = 0;
  const double total = static_cast<double>(total_);
  for (const Weight w : weights_) {
    if (w > 0) {
      const double p = static_cast<double>(w) / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

Distribution EqualDistribution(std::size_t n) {
  auto d = Distribution::FromWeights(std::vector<Weight>(n, 1));
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

Distribution UniformRandomDistribution(std::size_t n, Rng& rng) {
  std::vector<double> masses(n);
  for (auto& m : masses) {
    m = rng.UniformRealOpenLow();  // open at 0 so every node is reachable
  }
  auto d = Distribution::FromReals(masses);
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

Distribution ExponentialRandomDistribution(std::size_t n, Rng& rng) {
  std::vector<double> masses(n);
  for (auto& m : masses) {
    m = rng.Exponential(1.0);
  }
  auto d = Distribution::FromReals(masses);
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

Distribution ZipfRandomDistribution(std::size_t n, double a, Rng& rng) {
  AIGS_CHECK(a > 1.0);
  // Inverse-CDF sampling of the Zipf pmf x^-a / ζ(a) truncated at kMaxX —
  // the tail beyond carries negligible mass for a > 1.2 and is folded into
  // the last bucket.
  constexpr int kMaxX = 1 << 20;
  std::vector<double> masses(n);
  // Precompute the (unnormalized) CDF lazily with geometric bucketing would
  // complicate determinism; n draws over a shared table is simpler.
  static thread_local std::vector<double> cdf;
  static thread_local double cdf_a = -1;
  if (cdf_a != a) {
    cdf.assign(kMaxX, 0.0);
    double acc = 0;
    for (int x = 1; x <= kMaxX; ++x) {
      acc += std::pow(static_cast<double>(x), -a);
      cdf[static_cast<std::size_t>(x - 1)] = acc;
    }
    for (auto& c : cdf) {
      c /= acc;
    }
    cdf_a = a;
  }
  for (auto& m : masses) {
    const double u = rng.UniformReal();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    m = static_cast<double>(std::distance(cdf.begin(), it) + 1);
  }
  auto d = Distribution::FromReals(masses);
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

Distribution PointMassDistribution(std::size_t n, NodeId target) {
  std::vector<Weight> weights(n, 0);
  AIGS_CHECK(target < n);
  weights[target] = 1;
  auto d = Distribution::FromWeights(std::move(weights));
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

}  // namespace aigs
