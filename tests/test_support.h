// Shared helpers for the aigs test suite.
#ifndef AIGS_TESTS_TEST_SUPPORT_H_
#define AIGS_TESTS_TEST_SUPPORT_H_

#include <memory>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/distribution.h"
#include "util/common.h"

namespace aigs::testing {

/// Builds a Hierarchy or dies.
inline Hierarchy MustBuild(Digraph g) {
  auto h = Hierarchy::Build(std::move(g));
  AIGS_CHECK(h.ok());
  return *std::move(h);
}

/// Builds a Distribution from weights or dies.
inline Distribution MustDist(std::vector<Weight> weights) {
  auto d = Distribution::FromWeights(std::move(weights));
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

/// Runs the policy against every possible target; returns per-target unit
/// costs. Dies if any search misidentifies its target.
inline std::vector<std::uint64_t> RunAllTargets(const Policy& policy,
                                                const Hierarchy& h) {
  std::vector<std::uint64_t> costs(h.NumNodes());
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle);
    AIGS_CHECK(r.target == target);
    costs[target] = r.UnitCost();
  }
  return costs;
}

/// Expected unit cost of per-target costs under a distribution.
inline double WeightedAverage(const std::vector<std::uint64_t>& costs,
                              const Distribution& dist) {
  long double total = 0;
  for (NodeId v = 0; v < costs.size(); ++v) {
    total += static_cast<long double>(dist.WeightOf(v)) *
             static_cast<long double>(costs[v]);
  }
  return static_cast<double>(total / static_cast<long double>(dist.Total()));
}

}  // namespace aigs::testing

#endif  // AIGS_TESTS_TEST_SUPPORT_H_
