#include "data/datasets.h"

#include <gtest/gtest.h>

#include "data/synthetic_catalog.h"

namespace aigs {
namespace {

TEST(SyntheticCatalog, AmazonScaleStatisticsMatchTableII) {
  // Full-scale generation is cheap (tree building only).
  const Digraph g = GenerateCatalogTree(AmazonParams());
  EXPECT_EQ(g.NumNodes(), 29240u);
  EXPECT_EQ(g.Height(), 10);
  EXPECT_EQ(g.MaxOutDegree(), 225u);
  EXPECT_TRUE(g.IsTree());
}

TEST(SyntheticCatalog, ImageNetScaleStatisticsMatchTableII) {
  const Digraph g = GenerateCatalogDag(ImageNetParams());
  EXPECT_EQ(g.NumNodes(), 27714u);
  EXPECT_EQ(g.Height(), 13);
  EXPECT_EQ(g.MaxOutDegree(), 402u);
  EXPECT_FALSE(g.IsTree());
}

TEST(SyntheticCatalog, GenerationIsDeterministic) {
  CatalogParams params;
  params.num_nodes = 2000;
  params.height = 8;
  params.max_out_degree = 40;
  params.seed = 99;
  const Digraph a = GenerateCatalogTree(params);
  const Digraph b = GenerateCatalogTree(params);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    const auto ca = a.Children(v);
    const auto cb = b.Children(v);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i], cb[i]);
    }
  }
}

TEST(SyntheticCatalog, DifferentSeedsDiffer) {
  CatalogParams a;
  a.num_nodes = 1500;
  a.height = 7;
  a.max_out_degree = 30;
  a.seed = 1;
  CatalogParams b = a;
  b.seed = 2;
  const Digraph ga = GenerateCatalogTree(a);
  const Digraph gb = GenerateCatalogTree(b);
  bool any_difference = false;
  for (NodeId v = 0; v < ga.NumNodes() && !any_difference; ++v) {
    any_difference = ga.OutDegree(v) != gb.OutDegree(v);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticCatalog, DagKeepsExactHeightWithExtraEdges) {
  CatalogParams params;
  params.num_nodes = 3000;
  params.height = 9;
  params.max_out_degree = 50;
  params.extra_parent_frac = 0.08;
  params.seed = 5;
  const Digraph g = GenerateCatalogDag(params);
  EXPECT_EQ(g.Height(), 9);
  EXPECT_EQ(g.NumEdges(),
            params.num_nodes - 1 +
                static_cast<std::size_t>(0.08 * 3000));
  EXPECT_FALSE(g.IsTree());
}

TEST(ZipfObjectCounts, TotalIsExact) {
  const Distribution d = AssignZipfObjectCounts(1000, 123456789, 1.0, 42);
  EXPECT_EQ(d.Total(), 123456789u);
  EXPECT_EQ(d.size(), 1000u);
}

TEST(ZipfObjectCounts, HeavilySkewed) {
  const Distribution d = AssignZipfObjectCounts(5000, 10'000'000, 1.0, 7);
  // Top category under Zipf(1) over 5000 ranks holds about 1/H(5000) ≈ 11%
  // of all objects.
  EXPECT_GT(d.MaxWeight(), d.Total() / 20);
  EXPECT_LT(d.EntropyBits(), EqualDistribution(5000).EntropyBits());
}

TEST(ZipfObjectCounts, DeterministicPerSeed) {
  const Distribution a = AssignZipfObjectCounts(500, 99999, 1.0, 3);
  const Distribution b = AssignZipfObjectCounts(500, 99999, 1.0, 3);
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(Datasets, ScaledDatasetsPreserveShape) {
  const Dataset amazon = MakeAmazonDataset(0.05);
  EXPECT_TRUE(amazon.hierarchy.is_tree());
  EXPECT_EQ(amazon.hierarchy.Height(), 10);
  EXPECT_EQ(amazon.real_distribution.Total(), amazon.num_objects);

  const Dataset imagenet = MakeImageNetDataset(0.05);
  EXPECT_FALSE(imagenet.hierarchy.is_tree());
  EXPECT_EQ(imagenet.hierarchy.Height(), 13);
  EXPECT_EQ(imagenet.real_distribution.Total(), imagenet.num_objects);
}

TEST(Datasets, DescribeMentionsKeyStatistics) {
  const Dataset d = MakeAmazonDataset(0.05);
  const std::string description = DescribeDataset(d);
  EXPECT_NE(description.find("Amazon"), std::string::npos);
  EXPECT_NE(description.find("height=10"), std::string::npos);
  EXPECT_NE(description.find("type=Tree"), std::string::npos);
}

}  // namespace
}  // namespace aigs
