// Empirical validation of the paper's approximation guarantees against the
// brute-force optimal policy (exponential DP over candidate subsets):
//  * Theorem 2 — greedy is (1+√5)/2-approximate on trees;
//  * Theorem 1 — rounded greedy is 2(1+3 ln n)-approximate on DAGs;
//  * Theorem 4 — cost-sensitive rounded greedy for CAIGS.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aigs.h"
#include "eval/evaluator.h"
#include "eval/optimal_dp.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::MustDist;

constexpr double kGoldenRatio = 1.6180339887498949;  // (1+√5)/2

TEST(OptimalDp, SingleNodeCostsZero) {
  const Hierarchy h = MustBuild(PathGraph(1));
  const Distribution dist = EqualDistribution(1);
  auto opt = OptimalExpectedCost(h, dist);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(*opt, 0.0);
}

TEST(OptimalDp, TwoNodeChainNeedsOneQuery) {
  const Hierarchy h = MustBuild(PathGraph(2));
  const Distribution dist = EqualDistribution(2);
  auto opt = OptimalExpectedCost(h, dist);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(*opt, 1.0);
}

TEST(OptimalDp, ChainIsBinarySearchable) {
  // On a fully ordered chain of 8 nodes with equal weights, the optimum is
  // 3 questions for every target except... exactly log2(8) on average since
  // balanced halving is available: expected cost = 3 (perfectly balanced,
  // 8 leaves at depth 3).
  const Hierarchy h = MustBuild(PathGraph(8));
  const Distribution dist = EqualDistribution(8);
  auto opt = OptimalExpectedCost(h, dist);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(*opt, 3.0);
}

TEST(OptimalDp, StarForcesLinearScan) {
  // Root with 3 leaves, equal weights: queries are leaf tests; best tree
  // asks leaves one by one: costs {1, 2, 3, 3}/4 = 2.25.
  const Hierarchy h = MustBuild(StarGraph(4));
  const Distribution dist = EqualDistribution(4);
  auto opt = OptimalExpectedCost(h, dist);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(*opt, 2.25);
}

TEST(OptimalDp, SkewFavorsPopularLeafFirst) {
  // Star with weights {0, 90, 5, 5}: ask the popular leaf first.
  // cost = 0.9·1 + 0.05·2 + 0.05·3 + 0·3 = 1.15.
  const Hierarchy h = MustBuild(StarGraph(4));
  const Distribution dist = MustDist({0, 90, 5, 5});
  auto opt = OptimalExpectedCost(h, dist);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(*opt, 1.15);
}

TEST(OptimalDp, RejectsLargeInstances) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(30, rng));
  EXPECT_FALSE(OptimalExpectedCost(h, EqualDistribution(30)).ok());
}

TEST(OptimalDp, GreedyNeverBeatsOptimal) {
  Rng rng(2);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 2 + rng.UniformInt(13);
    const Hierarchy h = MustBuild(rng.Bernoulli(0.5)
                                      ? RandomDag(n, rng, 0.4)
                                      : RandomTree(n, rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(50);
    }
    const Distribution dist = MustDist(w);
    auto opt = OptimalExpectedCost(h, dist);
    ASSERT_TRUE(opt.ok());
    const GreedyNaivePolicy greedy(h, dist);
    const double greedy_cost = EvaluateExact(greedy, h, dist).expected_cost;
    EXPECT_GE(greedy_cost + 1e-9, *opt);
  }
}

TEST(Approximation, Theorem2GoldenRatioOnTrees) {
  Rng rng(3);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.UniformInt(13);
    const Hierarchy h = MustBuild(RandomTree(n, rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(99);
    }
    const Distribution dist = MustDist(w);
    auto opt = OptimalExpectedCost(h, dist);
    ASSERT_TRUE(opt.ok());
    const GreedyTreePolicy greedy(h, dist);
    const double cost = EvaluateExact(greedy, h, dist).expected_cost;
    EXPECT_LE(cost, kGoldenRatio * *opt + 1e-9)
        << "n=" << h.NumNodes() << " round=" << round;
  }
}

TEST(Approximation, Theorem1LogBoundOnDags) {
  Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 3 + rng.UniformInt(12);
    const Hierarchy h = MustBuild(RandomDag(n, rng, 0.5));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(99);
    }
    const Distribution dist = MustDist(w);
    auto opt = OptimalExpectedCost(h, dist);
    ASSERT_TRUE(opt.ok());
    const GreedyDagPolicy greedy(h, dist);  // rounded by default
    const double cost = EvaluateExact(greedy, h, dist).expected_cost;
    const double bound =
        2.0 * (1.0 + 3.0 * std::log(static_cast<double>(h.NumNodes())));
    EXPECT_LE(cost, bound * *opt + 1e-9);
  }
}

TEST(Approximation, Theorem4CostSensitiveBound) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 3 + rng.UniformInt(10);
    const Hierarchy h = MustBuild(rng.Bernoulli(0.5)
                                      ? RandomDag(n, rng, 0.4)
                                      : RandomTree(n, rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(30);
    }
    const Distribution dist = MustDist(w);
    const CostModel costs =
        CostModel::UniformRandom(h.NumNodes(), 1, 8, rng);
    auto opt = OptimalExpectedCost(h, dist, &costs);
    ASSERT_TRUE(opt.ok());
    CostSensitiveGreedyPolicy greedy(h, dist, costs);
    EvalOptions options;
    options.cost_model = &costs;
    const double cost =
        EvaluateExact(greedy, h, dist, options).expected_priced_cost;
    const double bound =
        2.0 * (1.0 + 3.0 * std::log(static_cast<double>(h.NumNodes())));
    EXPECT_LE(cost, bound * *opt + 1e-9);
    EXPECT_GE(cost + 1e-9, *opt);
  }
}

TEST(Approximation, CostSensitiveBeatsCostBlindOnFig3LikeInstances) {
  // Chains with one expensive middle node: cost-awareness must not lose.
  Rng rng(6);
  int cost_sensitive_wins = 0;
  const int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t n = 4 + rng.UniformInt(8);
    const Hierarchy h = MustBuild(PathGraph(n));
    const Distribution dist = EqualDistribution(n);
    std::vector<std::uint32_t> prices(n, 1);
    prices[n / 2] = 10;  // expensive middle — exactly where greedy splits
    const CostModel costs((std::vector<std::uint32_t>(prices)));
    CostSensitiveGreedyPolicy aware(h, dist, costs);
    GreedyNaivePolicy blind(h, dist);
    EvalOptions options;
    options.cost_model = &costs;
    const double aware_cost =
        EvaluateExact(aware, h, dist, options).expected_priced_cost;
    const double blind_cost =
        EvaluateExact(blind, h, dist, options).expected_priced_cost;
    EXPECT_LE(aware_cost, blind_cost + 1e-9);
    cost_sensitive_wins += aware_cost < blind_cost - 1e-9 ? 1 : 0;
  }
  EXPECT_GT(cost_sensitive_wins, 0);
}

}  // namespace
}  // namespace aigs
