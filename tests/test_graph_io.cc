#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include "data/builtin.h"
#include "graph/dot_export.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(1);
  const Digraph original = RandomDag(30, rng, 0.4);
  const std::string text = SerializeHierarchy(original);
  auto parsed = ParseHierarchy(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Digraph& g = *parsed;
  ASSERT_EQ(g.NumNodes(), original.NumNodes());
  ASSERT_EQ(g.NumEdges(), original.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto a = original.Children(u);
    const auto b = g.Children(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(GraphIo, RoundTripPreservesLabels) {
  const Digraph original = BuildVehicleHierarchy();
  auto parsed = ParseHierarchy(SerializeHierarchy(original));
  ASSERT_TRUE(parsed.ok());
  for (NodeId v = 0; v < original.NumNodes(); ++v) {
    EXPECT_EQ(parsed->Label(v), original.Label(v));
  }
}

TEST(GraphIo, ParseRejectsMissingHeader) {
  EXPECT_FALSE(ParseHierarchy("e 0 1\n").ok());
}

TEST(GraphIo, ParseRejectsOutOfRangeEdge) {
  EXPECT_FALSE(ParseHierarchy("n 2\ne 0 5\n").ok());
}

TEST(GraphIo, ParseRejectsSelfLoop) {
  EXPECT_FALSE(ParseHierarchy("n 2\ne 1 1\n").ok());
}

TEST(GraphIo, ParseRejectsUnknownDirective) {
  EXPECT_FALSE(ParseHierarchy("n 1\nx nope\n").ok());
}

TEST(GraphIo, ParseRejectsDuplicateHeader) {
  EXPECT_FALSE(ParseHierarchy("n 2\nn 2\ne 0 1\n").ok());
}

TEST(GraphIo, ParseSkipsCommentsAndBlankLines) {
  auto parsed = ParseHierarchy("# hello\n\nn 2\n# mid\ne 0 1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumNodes(), 2u);
}

TEST(GraphIo, ParseAddsDummyRootForForests) {
  auto parsed = ParseHierarchy("n 4\ne 0 1\ne 2 3\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumNodes(), 5u);  // dummy root appended
  EXPECT_EQ(parsed->Label(parsed->root()), "<root>");
}

TEST(GraphIo, SaveAndLoadFile) {
  Rng rng(2);
  const Digraph original = RandomTree(15, rng);
  const std::string path = ::testing::TempDir() + "/aigs_hierarchy.txt";
  ASSERT_TRUE(SaveHierarchy(original, path).ok());
  auto loaded = LoadHierarchy(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
}

TEST(GraphIo, LoadMissingFileFails) {
  EXPECT_FALSE(LoadHierarchy("/nonexistent/path/file.txt").ok());
}

TEST(DotExport, ContainsNodesAndEdges) {
  const Digraph g = BuildVehicleHierarchy();
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Vehicle"), std::string::npos);
  EXPECT_NE(dot.find("Sentra"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, AnnotationsAppended) {
  const Digraph g = BuildVehicleHierarchy();
  DotOptions options;
  options.annotate = [](NodeId v) { return "id=" + std::to_string(v); };
  const std::string dot = ToDot(g, options);
  EXPECT_NE(dot.find("id=0"), std::string::npos);
}

TEST(DotExport, EscapesQuotes) {
  Digraph g;
  g.AddNode("with\"quote");
  ASSERT_TRUE(g.Finalize().ok());
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("with\\\"quote"), std::string::npos);
}

}  // namespace
}  // namespace aigs
