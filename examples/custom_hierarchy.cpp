// Ingesting your own category hierarchy: clean a scraped graph (drop
// redundant shortcut edges via transitive reduction), attach observed object
// counts, persist everything to disk, reload, and search. This is the path
// for plugging the real Amazon/ImageNet datasets into the benches.
#include <cstdio>

#include "core/aigs.h"
#include "data/dataset_io.h"
#include "eval/evaluator.h"
#include "graph/transitive_reduction.h"

using namespace aigs;  // NOLINT — example brevity

int main() {
  // A scraped product graph: electronics with a redundant shortcut edge
  // (store -> phones duplicates store -> electronics -> phones).
  Digraph scraped;
  const NodeId store = scraped.AddNode("store");
  const NodeId electronics = scraped.AddNode("electronics");
  const NodeId phones = scraped.AddNode("phones");
  const NodeId android = scraped.AddNode("android");
  const NodeId ios = scraped.AddNode("ios");
  const NodeId laptops = scraped.AddNode("laptops");
  scraped.AddEdge(store, electronics);
  scraped.AddEdge(electronics, phones);
  scraped.AddEdge(store, phones);  // redundant shortcut
  scraped.AddEdge(phones, android);
  scraped.AddEdge(phones, ios);
  scraped.AddEdge(electronics, laptops);
  if (const Status s = scraped.Finalize(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 1. Clean: reachability (and therefore every oracle answer) is invariant
  //    under transitive reduction.
  auto reduced = TransitiveReduction(scraped);
  if (!reduced.ok()) {
    std::fprintf(stderr, "%s\n", reduced.status().ToString().c_str());
    return 1;
  }
  std::printf("transitive reduction removed %zu shortcut edge(s); "
              "%zu remain\n",
              reduced->removed_edges, reduced->graph.NumEdges());

  // 2. Attach observed per-category object counts and bundle as a dataset.
  auto hierarchy = Hierarchy::Build(std::move(reduced->graph));
  auto counts = Distribution::FromWeights({2, 10, 40, 400, 340, 80});
  if (!hierarchy.ok() || !counts.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  Dataset dataset{.name = "electronics",
                  .hierarchy = *std::move(hierarchy),
                  .real_distribution = *std::move(counts),
                  .num_objects = 0};
  dataset.num_objects = dataset.real_distribution.Total();

  // 3. Persist and reload — the same files can carry any external dataset.
  const std::string prefix = "/tmp/aigs_electronics";
  if (const Status s = SaveDatasetFiles(dataset, prefix); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = LoadDatasetFiles("electronics", prefix);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round-tripped dataset: %s\n", DescribeDataset(*loaded).c_str());

  // 4. Search it.
  const auto greedy = MakeGreedyPolicy(loaded->hierarchy,
                                       loaded->real_distribution);
  const EvalStats stats = EvaluateExact(*greedy, loaded->hierarchy,
                                        loaded->real_distribution);
  std::printf("greedy expects %.2f questions per object "
              "(worst case %llu)\n",
              stats.expected_cost,
              static_cast<unsigned long long>(stats.max_cost));
  return 0;
}
