// SplitWeightIndex — the shared incremental selection layer behind the
// middle-point policies (GreedyNaive, BatchedGreedy, CostSensitiveGreedy).
//
// The naive selection rule recomputes w(R(v) ∩ C) with a fresh forward BFS
// from every alive candidate on every pick: O(n·m) per question. This index
// makes that quantity incremental, in one of two modes chosen by the
// hierarchy's reachability index:
//
//  * Euler mode (trees): candidate membership lives in a bitset over the
//    Euler tour and a Fenwick tree over Euler order holds the weights of
//    alive candidates. R(v) is the contiguous interval [tin(v), tout(v)), so
//    w(R(v) ∩ C) is one Fenwick range sum — O(log n) per candidate — and a
//    candidate kill is a point update. A yes/no answer is a range
//    keep/clear: O(killed · log n) amortized (each node dies once).
//
//  * Closure mode (DAGs): candidate membership is a node-indexed bitset and
//    w(R(v) ∩ C) is a masked weighted popcount of closure[v] & alive —
//    O(n/64) words per candidate instead of a BFS. A yes/no answer is one
//    word-parallel bitset intersection.
//
// Selection entry points:
//  * FindMiddlePoint(): minimizes |2·w(R(v) ∩ C) − w(C)| over alive v ≠
//    root with GreedyDAG-style dominance pruning — the descent only expands
//    below v when w(R(v) ∩ C) still exceeds half the alive weight (a better
//    split may exist below) or when v ties the best diff seen (an
//    equal-weight descendant with a smaller id could win the tie-break).
//    That rule provably enumerates every global minimizer, so the result is
//    bit-identical to the naive full scan with its smallest-id tie-break.
//  * FindSplittingMiddlePoint(): the batched variant — a flat scan over
//    alive candidates that additionally requires |R(v) ∩ C| < |C| (a
//    question whose yes-answer is certain is wasted). O(alive · log n) per
//    pick in Euler mode, O(alive · n/64) in closure mode.
//
// Both use the lexicographic (split_diff, node id) ordering, which matches
// the reference scan's first-wins-in-id-order tie-break exactly; the
// equivalence suite (tests/test_split_weight_index.cc) pins this.
#ifndef AIGS_CORE_SPLIT_WEIGHT_INDEX_H_
#define AIGS_CORE_SPLIT_WEIGHT_INDEX_H_

#include <span>
#include <vector>

#include "core/hierarchy.h"
#include "core/middle_point.h"
#include "util/bitset.h"
#include "util/common.h"
#include "util/epoch_marker.h"
#include "util/fenwick.h"

namespace aigs {

/// One search session's incremental view of (candidate set, split weights).
class SplitWeightIndex {
 public:
  /// Starts with every node alive. `weights` must have one entry per node
  /// and outlive the index (sessions typically borrow the policy's vector).
  SplitWeightIndex(const Hierarchy& hierarchy,
                   const std::vector<Weight>& weights);

  /// Restores the all-alive initial state.
  void Reset();

  /// Copies another index's session state without reallocating — the
  /// batched policy's per-round simulation scratch. Both must wrap the same
  /// (hierarchy, weights).
  void ResetFrom(const SplitWeightIndex& other);

  // ---- state queries --------------------------------------------------------

  std::size_t AliveCount() const { return alive_count_; }
  Weight TotalAlive() const { return total_alive_; }
  bool IsAlive(NodeId v) const {
    return alive_.Test(euler_ ? reach_->EulerBegin(v) : v);
  }
  /// Current search root (moves on ApplyYes; every candidate is reachable
  /// from it through alive nodes).
  NodeId root() const { return root_; }
  /// The identified target; requires AliveCount() == 1.
  NodeId Target() const;

  /// w(R(v) ∩ C): O(log n) in Euler mode, O(n/64) in closure mode.
  Weight ReachWeight(NodeId v) const;
  /// |R(v) ∩ C| with the same costs.
  std::size_t ReachCount(NodeId v) const;

  /// Invokes fn(NodeId) for every alive candidate. Euler mode iterates in
  /// Euler order, closure mode in node-id order — callers that care about
  /// order must impose their own tie-breaks.
  template <typename Fn>
  void ForEachAlive(Fn&& fn) const {
    if (euler_) {
      alive_.ForEachSetBit(
          [&](std::size_t t) { fn(reach_->NodeAtEuler(
              static_cast<std::uint32_t>(t))); });
    } else {
      alive_.ForEachSetBit(
          [&](std::size_t v) { fn(static_cast<NodeId>(v)); });
    }
  }

  // ---- answer application ---------------------------------------------------

  /// Applies reach(q) = yes: candidates ← R(q) ∩ C, root ← q. `q` may
  /// already be dead (batched rounds intersect answers for questions another
  /// answer of the same round eliminated).
  void ApplyYes(NodeId q);

  /// Applies reach(q) = no: candidates ← C \ R(q). Dead `q` allowed.
  void ApplyNo(NodeId q);

  /// Intersects a whole round of answers (one ApplyYes/ApplyNo per
  /// question) — each question costs one bitset intersection / range op.
  void ApplyBatch(std::span<const NodeId> nodes,
                  const std::vector<bool>& answers);

  // ---- selection ------------------------------------------------------------

  /// Middle point over alive candidates excluding root() (Definition 4),
  /// via the dominance-pruned descent. Requires AliveCount() > 1.
  MiddlePoint FindMiddlePoint() const;

  /// Middle point over alive candidates that split the set by count
  /// (|R(v) ∩ C| < |C|), via a flat scan; kInvalidNode when none splits.
  MiddlePoint FindSplittingMiddlePoint() const;

  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const std::vector<Weight>& weights() const { return *node_weights_; }

 private:
  // Zeroes the Fenwick entries of alive positions inside [begin, end)
  // (Euler mode). Returns nothing; counts/totals are the caller's job.
  void ZeroFenwickInRange(std::uint32_t begin, std::uint32_t end);

  const Hierarchy* hierarchy_;
  const ReachabilityIndex* reach_;
  const std::vector<Weight>* node_weights_;
  bool euler_;

  NodeId root_;
  std::size_t alive_count_ = 0;
  Weight total_alive_ = 0;
  // Euler mode: bit t = node at Euler position t is alive.
  // Closure mode: bit v = node v is alive.
  DynamicBitset alive_;

  // Euler mode only: weights permuted to Euler order (immutable) and the
  // Fenwick trees over the *alive* weights/counts in that order.
  std::vector<Weight> euler_weights_;
  FenwickTree<Weight> fenwick_weight_;
  FenwickTree<std::uint32_t> fenwick_count_;

  // Scratch for the dominance-pruned descent.
  mutable EpochMarker visited_;
  mutable std::vector<NodeId> queue_;
};

}  // namespace aigs

#endif  // AIGS_CORE_SPLIT_WEIGHT_INDEX_H_
