#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include "prob/weight_io.h"
#include "tests/test_support.h"

namespace aigs {
namespace {

TEST(WeightIo, RoundTrip) {
  auto d = Distribution::FromWeights({0, 5, 0, 7, 1});
  ASSERT_TRUE(d.ok());
  auto parsed = ParseDistribution(SerializeDistribution(*d));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->weights(), d->weights());
  EXPECT_EQ(parsed->Total(), d->Total());
}

TEST(WeightIo, ZeroWeightNodesOmittedButRestored) {
  auto d = Distribution::FromWeights({0, 0, 3});
  ASSERT_TRUE(d.ok());
  const std::string text = SerializeDistribution(*d);
  // Only one 'c' directive line for the single positive count.
  std::size_t count_lines = 0;
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] == 'c' && (pos == 0 || text[pos - 1] == '\n')) {
      ++count_lines;
    }
  }
  EXPECT_EQ(count_lines, 1u);
  auto parsed = ParseDistribution(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->WeightOf(0), 0u);
  EXPECT_EQ(parsed->WeightOf(2), 3u);
}

TEST(WeightIo, ParseErrors) {
  EXPECT_FALSE(ParseDistribution("c 0 5\n").ok());          // missing n
  EXPECT_FALSE(ParseDistribution("n 2\nc 5 1\n").ok());     // id out of range
  EXPECT_FALSE(ParseDistribution("n 2\nx 0 1\n").ok());     // bad directive
  EXPECT_FALSE(ParseDistribution("n 2\n").ok());            // zero total
  EXPECT_FALSE(ParseDistribution("n 2\nn 2\nc 0 1\n").ok());  // dup n
}

TEST(WeightIo, FileRoundTrip) {
  auto d = Distribution::FromWeights({10, 20, 30});
  ASSERT_TRUE(d.ok());
  const std::string path = ::testing::TempDir() + "/aigs_counts.txt";
  ASSERT_TRUE(SaveDistribution(*d, path).ok());
  auto loaded = LoadDistribution(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->weights(), d->weights());
}

TEST(DatasetIo, SaveAndLoadDataset) {
  const Dataset original = MakeAmazonDataset(0.05);
  const std::string prefix = ::testing::TempDir() + "/aigs_dataset";
  ASSERT_TRUE(SaveDatasetFiles(original, prefix).ok());

  auto loaded = LoadDatasetFiles("Amazon-reloaded", prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "Amazon-reloaded");
  EXPECT_EQ(loaded->hierarchy.NumNodes(), original.hierarchy.NumNodes());
  EXPECT_EQ(loaded->hierarchy.NumEdges(), original.hierarchy.NumEdges());
  EXPECT_EQ(loaded->hierarchy.Height(), original.hierarchy.Height());
  EXPECT_EQ(loaded->real_distribution.weights(),
            original.real_distribution.weights());
  EXPECT_EQ(loaded->num_objects, original.num_objects);
}

TEST(DatasetIo, LoadRejectsMismatchedSizes) {
  const Dataset dataset = MakeAmazonDataset(0.05);
  const std::string prefix = ::testing::TempDir() + "/aigs_mismatch";
  ASSERT_TRUE(SaveDatasetFiles(dataset, prefix).ok());
  // Overwrite the counts with a wrong-sized file.
  auto small = Distribution::FromWeights({1, 2, 3});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(SaveDistribution(*small, prefix + ".counts.txt").ok());
  EXPECT_FALSE(LoadDatasetFiles("broken", prefix).ok());
}

TEST(DatasetIo, LoadMissingFilesFails) {
  EXPECT_FALSE(LoadDatasetFiles("none", "/nonexistent/prefix").ok());
}

}  // namespace
}  // namespace aigs
