// Transitive reduction of a hierarchy: drops edges implied by longer paths
// (u → v is redundant when some other child of u already reaches v).
// Real-world category graphs scraped from catalogs routinely contain such
// shortcut edges; reachability — and therefore every IGS answer and every
// policy decision — is invariant under reduction, while traversals get
// cheaper and the DAG becomes the Hasse diagram of its reachability poset
// (§III-A's poset view).
#ifndef AIGS_GRAPH_TRANSITIVE_REDUCTION_H_
#define AIGS_GRAPH_TRANSITIVE_REDUCTION_H_

#include <cstddef>

#include "graph/digraph.h"
#include "util/status.h"

namespace aigs {

/// Result of a reduction.
struct TransitiveReductionResult {
  Digraph graph;
  /// Number of redundant edges removed.
  std::size_t removed_edges = 0;
};

/// Computes the transitive reduction of a finalized DAG. Labels carry over;
/// node ids are preserved. O(m·d) probes against a closure index.
StatusOr<TransitiveReductionResult> TransitiveReduction(const Digraph& g);

}  // namespace aigs

#endif  // AIGS_GRAPH_TRANSITIVE_REDUCTION_H_
