// Reachability backend equivalence: the three ReachabilityIndex storages
// (Euler intervals, dense closure, compressed closure) must answer every
// query identically, and every registered policy must emit bit-identical
// transcripts no matter which storage — or which greedy_naive/batched
// selection backend — it runs on. Transcript identity is the repo's core
// invariant: compression is allowed to change memory and latency, never a
// single question.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy_registry.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/traversal.h"
#include "oracle/cost_model.h"
#include "oracle/oracle.h"
#include "prob/distribution.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

ReachabilityOptions DenseOpts() {
  ReachabilityOptions options;
  options.closure = ReachabilityOptions::Closure::kDense;
  options.force_closure_on_trees = true;
  return options;
}

ReachabilityOptions CompressedOpts() {
  ReachabilityOptions options;
  options.closure = ReachabilityOptions::Closure::kCompressed;
  options.force_closure_on_trees = true;
  return options;
}

Hierarchy BuildWith(const Digraph& g, const ReachabilityOptions& options) {
  Digraph copy = g;
  auto h = Hierarchy::Build(std::move(copy), options);
  AIGS_CHECK(h.ok());
  return *std::move(h);
}

/// Drives one full search and serializes every question and answer. Two
/// policies are bit-identical iff these strings match for every target.
std::string TranscriptOf(const Policy& policy, const ReachabilityIndex& reach,
                         NodeId target) {
  ExactOracle oracle(reach, target);
  auto session = policy.NewSession();
  std::string out;
  for (int step = 0; step < 100'000; ++step) {
    const Query q = session->Next();
    switch (q.kind) {
      case Query::Kind::kDone:
        EXPECT_EQ(q.node, target);
        return out + "D" + std::to_string(q.node);
      case Query::Kind::kReach: {
        const bool yes = oracle.Reach(q.node);
        out += "R";
        out += std::to_string(q.node);
        out += yes ? "+;" : "-;";
        session->OnReach(q.node, yes);
        break;
      }
      case Query::Kind::kReachBatch: {
        out += "B";
        std::vector<bool> answers(q.choices.size());
        for (std::size_t i = 0; i < q.choices.size(); ++i) {
          answers[i] = oracle.Reach(q.choices[i]);
          out += std::to_string(q.choices[i]);
          out += answers[i] ? "+" : "-";
        }
        out += ";";
        AIGS_CHECK(session->TryOnReachBatch(q.choices, answers).ok());
        break;
      }
      case Query::Kind::kChoice: {
        const int answer = oracle.Choice(q.choices);
        out += "C";
        for (const NodeId v : q.choices) {
          out += std::to_string(v) + "|";
        }
        out += "=";
        out += std::to_string(answer);
        out += ";";
        session->OnChoice(q.choices, answer);
        break;
      }
    }
  }
  ADD_FAILURE() << "search did not terminate";
  return out;
}

/// All-target transcript, one string per target, concatenated.
std::string AllTranscripts(const Policy& policy,
                           const ReachabilityIndex& reach, std::size_t n) {
  std::string out;
  for (NodeId target = 0; target < n; ++target) {
    out += TranscriptOf(policy, reach, target) + "\n";
  }
  return out;
}

/// A constructible spec for every registered name on this hierarchy
/// (scripted needs an explicit order: ask every node, ids ascending).
std::string WorkingSpec(const std::string& name, std::size_t n) {
  if (name != "scripted") {
    return name;
  }
  std::string order;
  for (NodeId v = 0; v < n; ++v) {
    if (!order.empty()) {
      order += '+';
    }
    order += std::to_string(v);
  }
  return "scripted:order=" + order;
}

// ---- storage equivalence on raw reachability queries ----------------------

void ExpectIndexesAgree(const Digraph& g, const ReachabilityIndex& index,
                        const ReachabilityIndex::Storage want_storage) {
  ASSERT_EQ(index.storage(), want_storage);
  const std::size_t n = g.NumNodes();
  Rng rng(404);
  std::vector<Weight> weights(n);
  for (std::size_t v = 0; v < n; ++v) {
    weights[v] = 1 + rng.UniformInt(50);
  }
  const std::vector<Weight> all_weights = index.AllReachableSetWeights(weights);
  for (NodeId u = 0; u < n; ++u) {
    const std::vector<NodeId> reachable = CollectReachable(g, u);
    std::vector<bool> in_set(n, false);
    Weight want_weight = 0;
    for (const NodeId v : reachable) {
      in_set[v] = true;
      want_weight += weights[v];
    }
    EXPECT_EQ(index.ReachableCount(u), reachable.size()) << "u=" << u;
    EXPECT_EQ(index.WeightOfReachableSet(u, weights), want_weight) << "u=" << u;
    EXPECT_EQ(all_weights[u], want_weight) << "u=" << u;
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(index.Reaches(u, v), in_set[v]) << u << " -> " << v;
    }
    std::vector<bool> visited(n, false);
    index.ForEachReachable(u, [&](NodeId v) {
      ASSERT_LT(v, n);
      ASSERT_FALSE(visited[v]);
      visited[v] = true;
    });
    EXPECT_EQ(visited, in_set) << "u=" << u;
  }
}

TEST(ReachabilityStorages, AgreeOnTrees) {
  Rng rng(21);
  const Digraph g = RandomTree(80, rng);
  ExpectIndexesAgree(g, ReachabilityIndex(g),
                     ReachabilityIndex::Storage::kEuler);
  ExpectIndexesAgree(g, ReachabilityIndex(g, DenseOpts()),
                     ReachabilityIndex::Storage::kDenseClosure);
  ExpectIndexesAgree(g, ReachabilityIndex(g, CompressedOpts()),
                     ReachabilityIndex::Storage::kCompressedClosure);
}

TEST(ReachabilityStorages, AgreeOnDags) {
  Rng rng(22);
  for (const double density : {0.15, 0.5}) {
    const Digraph g = RandomDag(60, rng, density);
    ExpectIndexesAgree(g, ReachabilityIndex(g, DenseOpts()),
                       ReachabilityIndex::Storage::kDenseClosure);
    ExpectIndexesAgree(g, ReachabilityIndex(g, CompressedOpts()),
                       ReachabilityIndex::Storage::kCompressedClosure);
  }
}

// ---- transcript identity for every registered policy ----------------------

/// Runs every registered policy on dense-closure and compressed-closure
/// builds of the same graph and requires identical all-target transcripts.
/// Policies a hierarchy shape legitimately rejects (greedy_tree on a DAG)
/// must be rejected identically by both builds.
void ExpectAllPoliciesStorageInvariant(const Digraph& g) {
  const Hierarchy dense = BuildWith(g, DenseOpts());
  const Hierarchy compressed = BuildWith(g, CompressedOpts());
  ASSERT_EQ(dense.reach().storage(),
            ReachabilityIndex::Storage::kDenseClosure);
  ASSERT_EQ(compressed.reach().storage(),
            ReachabilityIndex::Storage::kCompressedClosure);

  const std::size_t n = g.NumNodes();
  Rng rng(77);
  std::vector<Weight> weights(n);
  for (std::size_t v = 0; v < n; ++v) {
    weights[v] = 1 + rng.UniformInt(9);
  }
  const Distribution dist = testing::MustDist(weights);
  std::vector<std::uint32_t> costs(n);
  for (std::size_t v = 0; v < n; ++v) {
    costs[v] = 1 + rng.UniformInt(5);
  }
  const CostModel cost_model(costs);

  PolicyContext dense_ctx{&dense, &dist, &cost_model};
  PolicyContext comp_ctx{&compressed, &dist, &cost_model};

  for (const auto& entry : PolicyRegistry::Global().List()) {
    SCOPED_TRACE(entry.name);
    const std::string spec = WorkingSpec(entry.name, n);
    auto on_dense = PolicyRegistry::Global().Create(spec, dense_ctx);
    auto on_comp = PolicyRegistry::Global().Create(spec, comp_ctx);
    ASSERT_EQ(on_dense.ok(), on_comp.ok());
    if (!on_dense.ok()) {
      EXPECT_EQ(on_dense.status().code(), on_comp.status().code());
      continue;  // shape-rejected on both builds alike
    }
    EXPECT_EQ(AllTranscripts(**on_dense, dense.reach(), n),
              AllTranscripts(**on_comp, compressed.reach(), n));
  }
}

TEST(BackendTranscripts, EveryPolicyIdenticalOnTree) {
  Rng rng(31);
  ExpectAllPoliciesStorageInvariant(RandomTree(40, rng));
}

TEST(BackendTranscripts, EveryPolicyIdenticalOnDag) {
  Rng rng(32);
  ExpectAllPoliciesStorageInvariant(RandomDag(36, rng, 0.3));
}

/// The explicit backend= pins: bfs rescans, closure (dense rows), and
/// compressed (compressed rows) must all reproduce the index backend's
/// transcripts exactly, for both selection-backed policies.
TEST(BackendTranscripts, PinnedBackendsIdenticalAcrossStorages) {
  Rng rng(33);
  const Digraph graphs[] = {RandomTree(40, rng), RandomDag(36, rng, 0.35)};
  for (const Digraph& g : graphs) {
    const Hierarchy dense = BuildWith(g, DenseOpts());
    const Hierarchy compressed = BuildWith(g, CompressedOpts());
    const std::size_t n = g.NumNodes();
    const Distribution dist = EqualDistribution(n);
    PolicyContext dense_ctx{&dense, &dist, nullptr};
    PolicyContext comp_ctx{&compressed, &dist, nullptr};

    for (const std::string& base :
         {std::string("greedy_naive"), std::string("batched:k=3")}) {
      SCOPED_TRACE(base);
      const char sep = base.find(':') == std::string::npos ? ':' : ',';
      auto make = [&](const PolicyContext& ctx, const std::string& backend) {
        auto policy = PolicyRegistry::Global().Create(
            base + sep + "backend=" + backend, ctx);
        AIGS_CHECK(policy.ok());
        return *std::move(policy);
      };
      const std::string reference =
          AllTranscripts(*make(dense_ctx, "index"), dense.reach(), n);
      EXPECT_EQ(reference,
                AllTranscripts(*make(dense_ctx, "bfs"), dense.reach(), n));
      EXPECT_EQ(reference,
                AllTranscripts(*make(dense_ctx, "closure"), dense.reach(), n));
      EXPECT_EQ(reference, AllTranscripts(*make(comp_ctx, "compressed"),
                                          compressed.reach(), n));
      EXPECT_EQ(reference,
                AllTranscripts(*make(comp_ctx, "bfs"), compressed.reach(), n));
    }
  }
}

// ---- backend option validation --------------------------------------------

TEST(BackendOption, PinsRejectMismatchedStorage) {
  Rng rng(41);
  const Digraph tree = RandomTree(24, rng);
  const Digraph dag = RandomDag(24, rng, 0.4);
  const Hierarchy euler = testing::MustBuild(Digraph(tree));
  const Hierarchy dense = BuildWith(dag, DenseOpts());
  const Hierarchy compressed = BuildWith(dag, CompressedOpts());
  ASSERT_EQ(euler.reach().storage(), ReachabilityIndex::Storage::kEuler);
  const Distribution tree_dist = EqualDistribution(tree.NumNodes());
  const Distribution dag_dist = EqualDistribution(dag.NumNodes());

  const auto expect_invalid = [](const PolicyContext& ctx,
                                 const std::string& spec,
                                 const std::string& want_substring) {
    const auto result = PolicyRegistry::Global().Create(spec, ctx);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << spec;
    EXPECT_NE(result.status().message().find(want_substring),
              std::string::npos)
        << spec << ": " << result.status().ToString();
  };

  PolicyContext euler_ctx{&euler, &tree_dist, nullptr};
  PolicyContext dense_ctx{&dense, &dag_dist, nullptr};
  PolicyContext comp_ctx{&compressed, &dag_dist, nullptr};

  // Euler trees carry no closure rows of either flavor.
  expect_invalid(euler_ctx, "greedy_naive:backend=closure", "Euler");
  expect_invalid(euler_ctx, "greedy_naive:backend=compressed", "Euler");
  // Each closure pin names the storage the hierarchy actually has.
  expect_invalid(dense_ctx, "greedy_naive:backend=compressed", "dense");
  expect_invalid(comp_ctx, "greedy_naive:backend=closure", "compressed");
  expect_invalid(comp_ctx, "batched:k=2,backend=closure", "compressed");
  // Unknown backend values fail regardless of storage.
  expect_invalid(dense_ctx, "greedy_naive:backend=magic", "backend");

  // The pins succeed when the storage matches.
  EXPECT_TRUE(PolicyRegistry::Global()
                  .Create("greedy_naive:backend=closure", dense_ctx)
                  .ok());
  EXPECT_TRUE(PolicyRegistry::Global()
                  .Create("greedy_naive:backend=compressed", comp_ctx)
                  .ok());
}

}  // namespace
}  // namespace aigs
