// Consistency of the incremental weight indexes (session overlays) against
// from-scratch recomputation — the key engineering invariant behind the
// efficient policies.
#include <gtest/gtest.h>

#include <set>

#include "core/hierarchy.h"
#include "core/middle_point.h"
#include "core/reach_weight_index.h"
#include "core/tree_weight_index.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

std::vector<Weight> RandomWeights(std::size_t n, Rng& rng,
                                  Weight max_value = 1000) {
  std::vector<Weight> w(n);
  for (auto& x : w) {
    x = rng.UniformInt(max_value + 1);
  }
  return w;
}

// ---- TreeWeightBase ---------------------------------------------------------

TEST(TreeWeightBase, SubtreeWeightsMatchDefinition) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(50, rng));
  const auto weights = RandomWeights(50, rng);
  const TreeWeightBase base(h.tree(), weights);
  EXPECT_EQ(base.Total(), h.reach().WeightOfReachableSet(h.root(), weights));
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(base.SubtreeWeight(v),
              h.reach().WeightOfReachableSet(v, weights));
    EXPECT_EQ(base.SubtreeSize(v), h.tree().SubtreeSize(v));
  }
}

TEST(TreeWeightBase, AddWeightUpdatesAncestorsOnly) {
  Rng rng(2);
  const Hierarchy h = MustBuild(RandomTree(40, rng));
  auto weights = RandomWeights(40, rng);
  TreeWeightBase base(h.tree(), weights);
  const NodeId v = 23;
  base.AddWeight(v, 7);
  weights[v] += 7;
  const TreeWeightBase fresh(h.tree(), weights);
  for (NodeId x = 0; x < 40; ++x) {
    EXPECT_EQ(base.SubtreeWeight(x), fresh.SubtreeWeight(x)) << x;
    EXPECT_EQ(base.NodeWeight(x), fresh.NodeWeight(x)) << x;
  }
}

TEST(TreeSearchState, OverlayMatchesScratchRecomputation) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const Hierarchy h = MustBuild(RandomTree(30, rng));
    const auto weights = RandomWeights(30, rng);
    const TreeWeightBase base(h.tree(), weights);
    TreeSearchState state(base);

    // Mirror of candidate membership.
    std::set<NodeId> alive;
    for (NodeId v = 0; v < 30; ++v) {
      alive.insert(v);
    }
    Rng steps(rng.Next());
    for (int step = 0; step < 10 && alive.size() > 1; ++step) {
      // Pick a random alive descendant of the current root, not the root.
      std::vector<NodeId> options;
      for (const NodeId v : alive) {
        if (v != state.root()) {
          options.push_back(v);
        }
      }
      const NodeId q =
          options[static_cast<std::size_t>(steps.UniformInt(options.size()))];
      if (steps.Bernoulli(0.5)) {
        state.ApplyYes(q);
        std::set<NodeId> next;
        for (const NodeId v : alive) {
          if (h.tree().InSubtree(q, v)) {
            next.insert(v);
          }
        }
        alive = std::move(next);
      } else {
        state.ApplyNo(q);
        for (auto it = alive.begin(); it != alive.end();) {
          it = h.tree().InSubtree(q, *it) ? alive.erase(it) : std::next(it);
        }
      }
      // Session subtree weight/size must equal the sum over alive nodes,
      // for every node in the current root's alive subtree.
      for (const NodeId v : alive) {
        Weight expected_w = 0;
        std::uint32_t expected_s = 0;
        for (const NodeId x : alive) {
          if (h.tree().InSubtree(v, x)) {
            expected_w += weights[x];
            ++expected_s;
          }
        }
        ASSERT_EQ(state.SubtreeWeight(v), expected_w) << "node " << v;
        ASSERT_EQ(state.SubtreeSize(v), expected_s) << "node " << v;
      }
      ASSERT_EQ(state.CandidateCount(), alive.size());
    }
  }
}

// ---- ReachWeightBase / DagSearchState ----------------------------------------

TEST(ReachWeightBase, MatchesReachabilityIndex) {
  Rng rng(4);
  const Hierarchy h = MustBuild(RandomDag(40, rng, 0.5));
  const auto weights = RandomWeights(40, rng);
  const ReachWeightBase base(h, weights);
  for (NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(base.ReachWeight(v),
              h.reach().WeightOfReachableSet(v, weights));
  }
  EXPECT_EQ(base.Total(), base.ReachWeight(h.root()));
}

TEST(ReachWeightBase, AddWeightMatchesRecomputation) {
  Rng rng(5);
  const Hierarchy h = MustBuild(RandomDag(35, rng, 0.6));
  auto weights = RandomWeights(35, rng);
  ReachWeightBase base(h, weights);
  for (const NodeId v : {NodeId{3}, NodeId{17}, NodeId{34}}) {
    base.AddWeight(v, 11);
    weights[v] += 11;
  }
  const ReachWeightBase fresh(h, weights);
  for (NodeId v = 0; v < 35; ++v) {
    EXPECT_EQ(base.ReachWeight(v), fresh.ReachWeight(v)) << v;
  }
}

TEST(DagSearchState, OverlayMatchesScratchRecomputation) {
  Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    const Hierarchy h = MustBuild(RandomDag(25, rng, 0.5));
    const std::size_t n = h.NumNodes();
    const auto weights = RandomWeights(n, rng);
    const ReachWeightBase base(h, weights);
    DagSearchState state(base);

    std::set<NodeId> alive;
    for (NodeId v = 0; v < n; ++v) {
      alive.insert(v);
    }
    Rng steps(rng.Next());
    for (int step = 0; step < 10 && alive.size() > 1; ++step) {
      std::vector<NodeId> options;
      for (const NodeId v : alive) {
        if (v != state.root()) {
          options.push_back(v);
        }
      }
      const NodeId q =
          options[static_cast<std::size_t>(steps.UniformInt(options.size()))];
      if (steps.Bernoulli(0.5)) {
        state.ApplyYes(q);
        std::set<NodeId> next;
        for (const NodeId v : alive) {
          if (h.reach().Reaches(q, v)) {
            next.insert(v);
          }
        }
        alive = std::move(next);
      } else {
        state.ApplyNo(q);
        for (auto it = alive.begin(); it != alive.end();) {
          it = h.reach().Reaches(q, *it) ? alive.erase(it) : std::next(it);
        }
      }
      // Session reach weights must equal Σ weights over R(v) ∩ alive.
      Weight expected_total = 0;
      for (const NodeId x : alive) {
        expected_total += weights[x];
      }
      ASSERT_EQ(state.TotalAlive(), expected_total);
      ASSERT_EQ(state.AliveCount(), alive.size());
      for (const NodeId v : alive) {
        Weight expected = 0;
        for (const NodeId x : alive) {
          if (h.reach().Reaches(v, x)) {
            expected += weights[x];
          }
        }
        ASSERT_EQ(state.ReachWeight(v), expected)
            << "round " << round << " node " << v;
      }
    }
  }
}

// ---- Differential: the two session kinds must agree on trees ----------------

TEST(SessionDifferential, TreeAndDagStatesAgreeOnTrees) {
  // A tree is a DAG: for identical operation sequences, TreeSearchState's
  // subtree weights and DagSearchState's reach weights must match exactly.
  Rng rng(21);
  for (int round = 0; round < 15; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(40), rng));
    const std::size_t n = h.NumNodes();
    const auto weights = RandomWeights(n, rng);
    const TreeWeightBase tree_base(h.tree(), weights);
    const ReachWeightBase dag_base(h, weights);
    TreeSearchState tree_state(tree_base);
    DagSearchState dag_state(dag_base);

    Rng steps(rng.Next());
    while (dag_state.AliveCount() > 1) {
      // Pick any alive non-root node; both states see the same candidates.
      std::vector<NodeId> options;
      dag_state.candidates().bits().ForEachSetBit([&](std::size_t raw) {
        if (static_cast<NodeId>(raw) != dag_state.root()) {
          options.push_back(static_cast<NodeId>(raw));
        }
      });
      const NodeId q =
          options[static_cast<std::size_t>(steps.UniformInt(options.size()))];
      if (steps.Bernoulli(0.5)) {
        tree_state.ApplyYes(q);
        dag_state.ApplyYes(q);
      } else {
        tree_state.ApplyNo(q);
        dag_state.ApplyNo(q);
      }
      ASSERT_EQ(tree_state.root(), dag_state.root());
      ASSERT_EQ(tree_state.CandidateCount(), dag_state.AliveCount());
      ASSERT_EQ(tree_state.SubtreeWeight(tree_state.root()),
                dag_state.TotalAlive());
      dag_state.candidates().bits().ForEachSetBit([&](std::size_t raw) {
        const NodeId v = static_cast<NodeId>(raw);
        ASSERT_EQ(tree_state.SubtreeWeight(v), dag_state.ReachWeight(v))
            << "node " << v;
      });
      if (steps.UniformInt(4) == 0) {
        break;  // vary sequence lengths
      }
    }
  }
}

// ---- Naive middle point -------------------------------------------------------

TEST(MiddlePoint, NaiveScanFindsDefinitionalArgmin) {
  Rng rng(7);
  const Hierarchy h = MustBuild(RandomDag(30, rng, 0.4));
  const auto weights = RandomWeights(30, rng, 100);
  CandidateSet candidates(h.graph());
  Weight total = 0;
  for (const Weight w : weights) {
    total += w;
  }
  BfsScratch scratch(h.NumNodes());
  const MiddlePoint mp = FindMiddlePointNaive(h.graph(), candidates, h.root(),
                                              weights, total, scratch);
  ASSERT_NE(mp.node, kInvalidNode);
  // No other non-root candidate does strictly better.
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    const Weight reach = h.reach().WeightOfReachableSet(v, weights);
    const Weight twice = 2 * reach;
    const Weight diff = twice > total ? twice - total : total - twice;
    EXPECT_GE(diff, mp.split_diff);
  }
}

TEST(MiddlePoint, GetReachableSetWeightHonorsCandidates) {
  // Chain 0 -> 1 -> 2; removing node 2 shrinks node 1's reach weight.
  const Hierarchy h = MustBuild(PathGraph(3));
  const std::vector<Weight> weights{1, 2, 4};
  CandidateSet candidates(h.graph());
  BfsScratch scratch(3);
  EXPECT_EQ(
      GetReachableSetWeight(h.graph(), candidates, 1, weights, scratch), 6u);
  candidates.RemoveReachable(2);
  EXPECT_EQ(
      GetReachableSetWeight(h.graph(), candidates, 1, weights, scratch), 2u);
}

}  // namespace
}  // namespace aigs
