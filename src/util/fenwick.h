// Fenwick (binary-indexed) tree over a fixed-size array of weights.
//
// The selection layer (SplitWeightIndex) keeps one of these over the Euler
// order of a tree hierarchy: a candidate kill is a point update and a
// subtree weight w(T_v ∩ C) is one range sum over [tin(v), tout(v)) — both
// O(log n), replacing the O(m) BFS the naive middle-point scan pays per
// candidate.
//
// T must be an unsigned integer type: updates subtract via modular
// wrap-around (Add(i, T{0} - delta)), which is exact as long as every true
// prefix sum is non-negative — the invariant a weight index maintains by
// construction (a kill removes weight that was previously added).
#ifndef AIGS_UTIL_FENWICK_H_
#define AIGS_UTIL_FENWICK_H_

#include <cstddef>
#include <vector>

#include "util/common.h"

namespace aigs {

template <typename T>
class FenwickTree {
 public:
  FenwickTree() = default;

  /// Builds over `values` in O(n) (no per-element logarithmic inserts).
  explicit FenwickTree(const std::vector<T>& values) { Build(values); }

  /// Rebuilds over `values` in O(n), reusing storage when sizes match.
  void Build(const std::vector<T>& values) {
    tree_.assign(values.size() + 1, T{});
    // O(n) construction: seed each slot, then push its partial sum up to the
    // parent slot that covers it.
    for (std::size_t k = 1; k < tree_.size(); ++k) {
      tree_[k] += values[k - 1];
      const std::size_t parent = k + (k & (0 - k));
      if (parent < tree_.size()) {
        tree_[parent] += tree_[k];
      }
    }
  }

  /// Number of addressable positions.
  std::size_t size() const { return tree_.empty() ? 0 : tree_.size() - 1; }

  /// values[i] += delta. Subtraction: pass T{0} - delta (see header note).
  void Add(std::size_t i, T delta) {
    AIGS_DCHECK(i < size());
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (0 - k)) {
      tree_[k] += delta;
    }
  }

  /// Σ values[0, end).
  T PrefixSum(std::size_t end) const {
    AIGS_DCHECK(end <= size());
    T total{};
    for (std::size_t k = end; k > 0; k -= k & (0 - k)) {
      total += tree_[k];
    }
    return total;
  }

  /// Σ values[begin, end).
  T RangeSum(std::size_t begin, std::size_t end) const {
    AIGS_DCHECK(begin <= end);
    return PrefixSum(end) - PrefixSum(begin);
  }

  /// Σ over all positions.
  T Total() const { return PrefixSum(size()); }

  /// Copies another tree's state without reallocating when sizes match.
  void ResetFrom(const FenwickTree& other) { tree_ = other.tree_; }

 private:
  // tree_[k] holds the sum of the (k & -k) values ending at position k-1;
  // tree_[0] is an unused sentinel that keeps the index arithmetic branch-free.
  std::vector<T> tree_;
};

}  // namespace aigs

#endif  // AIGS_UTIL_FENWICK_H_
