// SessionCodec — serializable session state via the answer transcript.
//
// A policy is a deterministic decision tree (Definition 6): the same answer
// sequence always reproduces the same questions. A session's complete state
// is therefore its compact transcript — one line per answered question —
// plus the identity of the catalog it ran against. Restore replays the
// transcript into a fresh session and verifies, step by step, that the
// regenerated questions equal the recorded ones; any divergence (changed
// weights, changed hierarchy, changed policy code) is detected instead of
// silently producing a corrupted search.
//
// Wire format (line-oriented text, versioned):
//
//   aigs-session/2
//   fingerprint <hex catalog digest>
//   hierarchy <hex hierarchy-only digest>      (v2 only)
//   epoch <n>
//   policy <registry spec>
//   steps <k>
//   reach <node> <y|n> [d]
//   batch <node+node+...> <answer pattern, e.g. ynny> [d]
//   choice <node+node+...> <answer index, -1 = none> [d]
//   end
//
// The trailing "d" marks a divergent step: its question was folded in by
// TryApplyObserved during a cross-epoch migration rather than asked by the
// session's own planner (v2 only). The hierarchy-only digest is what
// Engine::Migrate checks — migration tolerates changed WEIGHTS, never a
// changed node space. Decode still accepts v1 blobs (no hierarchy line, no
// flags); those can only be restored by exact-fingerprint Resume.
#ifndef AIGS_SERVICE_SESSION_CODEC_H_
#define AIGS_SERVICE_SESSION_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "util/status.h"

namespace aigs {

/// Decoded form of a saved session. (TranscriptStep itself lives in
/// core/policy.h — it is also the unit of divergence-tolerant replay.)
struct SerializedSession {
  std::uint64_t fingerprint = 0;
  /// Digest of the hierarchy structure alone (0 for v1 blobs, which
  /// predate it).
  std::uint64_t hierarchy_fingerprint = 0;
  std::uint64_t epoch = 0;
  std::string policy_spec;
  std::vector<TranscriptStep> steps;
};

/// Stateless encoder/decoder for the wire format above.
class SessionCodec {
 public:
  static std::string Encode(const SerializedSession& session);
  /// Rejects malformed input with InvalidArgument; never aborts. Accepts
  /// both aigs-session/1 and aigs-session/2 input.
  static StatusOr<SerializedSession> Decode(const std::string& text);

  /// Appends the compact one-line encoding of `step` (the line Encode
  /// writes, newline-terminated, WITHOUT the divergence flag — divergence
  /// is replay bookkeeping, not transcript content) to `*out`. The
  /// service-layer PlanCache uses these lines as its trie edges, so cache
  /// edges and saved transcripts share one encoding.
  static void AppendStepKey(const TranscriptStep& step, std::string* out);

  /// Parses one step line (the AppendStepKey encoding, with or without the
  /// trailing divergence flag and/or newline) back into a TranscriptStep —
  /// the inverse the warm-publish seeder uses to replay a hot trie prefix
  /// onto a fresh snapshot. InvalidArgument on malformed input.
  static StatusOr<TranscriptStep> ParseStepLine(std::string_view line);
};

}  // namespace aigs

#endif  // AIGS_SERVICE_SESSION_CODEC_H_
