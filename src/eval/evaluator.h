// Expected-cost evaluation of a policy under a target distribution
// (Definition 7: cost(D) = Σ_v p(v)·ℓ(v)).
//
// The engine is target-sharded: the target space is split into fixed-size
// shards (independent of the worker count), each shard runs its searches
// against per-shard state (session + RNG derived from seed and shard id),
// and shard aggregates merge in shard order. Parallel output is therefore
// bit-identical to the threads=1 reference path for any thread count.
//
// Evaluator::Exact enumerates every node as the hidden target (weighting by
// its probability) — the search-session overlays make one search cheap.
// Evaluator::Sampled draws targets from the distribution instead, for
// policies too slow to enumerate (GreedyNaive).
#ifndef AIGS_EVAL_EVALUATOR_H_
#define AIGS_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "oracle/cost_model.h"
#include "oracle/oracle.h"
#include "prob/distribution.h"
#include "service/engine.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aigs {

/// Aggregated evaluation results.
struct EvalStats {
  /// Expected unit cost E[#queries] (reach queries + choices read).
  double expected_cost = 0;
  /// Expected priced cost (CAIGS; equals expected_cost for unit prices).
  double expected_priced_cost = 0;
  /// Expected number of boolean reach queries (excludes choice reading).
  double expected_reach_queries = 0;
  /// Expected interaction rounds (what the §III-E batched extension cuts).
  double expected_rounds = 0;
  /// Worst-case unit cost over evaluated targets (the WIGS objective).
  std::uint64_t max_cost = 0;
  /// Number of (target, search) runs performed.
  std::uint64_t num_searches = 0;
  /// Fraction of searches that identified their true target — 1.0 under a
  /// truthful oracle, the measured quantity under noisy ones.
  double accuracy = 1.0;
  /// Per-target unit costs, indexed by node id (exact mode only; empty in
  /// sampled mode). Zero-weight targets are included — they are verified for
  /// correctness but carry no weight in expected_cost.
  std::vector<std::uint32_t> per_target_cost;
};

/// Evaluation options.
struct EvalOptions {
  /// Prices for reach queries (null = unit).
  const CostModel* cost_model = nullptr;
  /// Explicit worker pool. Takes precedence over `threads` when set.
  ThreadPool* pool = nullptr;
  /// Worker count when `pool` is null: 0 = the shared default pool
  /// (hardware concurrency), 1 = serial reference path (no pool, no
  /// synchronization), N > 1 = a dedicated pool of N workers owned by the
  /// Evaluator. Results are bit-identical across all settings.
  int threads = 0;
  /// Targets per shard. Shard structure determines the aggregation order
  /// and the sampled-mode RNG streams but never the per-target results;
  /// leave at the default unless profiling shard overhead.
  std::size_t shard_size = 256;
  /// Also run zero-probability targets to verify the policy identifies them
  /// (they contribute 0 to the expectation either way).
  bool include_zero_weight_targets = true;
  /// Builds the oracle for one search; null = truthful ExactOracle. The
  /// per-search seed derives from (oracle_seed, search index), never from
  /// the shard or thread, so noisy results stay thread-count invariant.
  std::function<std::unique_ptr<Oracle>(const Hierarchy&, NodeId target,
                                        std::uint64_t seed)>
      oracle_factory;
  std::uint64_t oracle_seed = 0;
  /// Fatally check that every search identifies its target (the default).
  /// Disable for noisy-oracle workloads, where misidentification is the
  /// measured quantity (EvalStats::accuracy).
  bool require_correct = true;
};

/// Reusable evaluation engine: bind options (and a possibly dedicated
/// worker pool) once, evaluate many policies.
class Evaluator {
 public:
  explicit Evaluator(EvalOptions options = {});
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Exact expectation: one search per node, weighted by dist. Fatally
  /// checks that every search identifies its true target.
  EvalStats Exact(const Policy& policy, const Hierarchy& hierarchy,
                  const Distribution& dist) const;

  /// Monte-Carlo estimate over `num_samples` targets. Shard s draws its
  /// targets from an RNG seeded by (seed, s), so the estimate depends on
  /// (seed, shard_size) but not on the thread count.
  EvalStats Sampled(const Policy& policy, const Hierarchy& hierarchy,
                    const Distribution& dist, std::size_t num_samples,
                    std::uint64_t seed) const;

  /// Service-path evaluation: drives every sharded search through Engine
  /// sessions (Open/Ask/Answer/Close on the engine's current snapshot)
  /// instead of in-process Policy::NewSession calls. Results are
  /// bit-identical to the in-process overloads for the same policy spec;
  /// shards hammer the lock-sharded SessionManager concurrently.
  StatusOr<EvalStats> Exact(Engine& engine,
                            const std::string& policy_spec) const;
  StatusOr<EvalStats> Sampled(Engine& engine, const std::string& policy_spec,
                              std::size_t num_samples,
                              std::uint64_t seed) const;

  /// Effective parallelism (1 for the serial reference path).
  std::size_t num_workers() const;

  const EvalOptions& options() const { return options_; }

  /// Opaque per-shard accumulator (public so the .cc's free helpers can
  /// name it; not part of the API).
  struct Shard;

 private:

  /// Runs every shard through `run_shard` — serially in shard order on the
  /// reference path, or fanned out on the worker pool — then merges the
  /// shard aggregates in shard order and divides by `denominator`.
  EvalStats RunShards(std::vector<Shard>& shards,
                      const std::function<void(Shard&)>& run_shard,
                      long double denominator) const;

  EvalOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // null = serial reference path
};

/// Convenience wrappers constructing a transient Evaluator.
EvalStats EvaluateExact(const Policy& policy, const Hierarchy& hierarchy,
                        const Distribution& dist,
                        const EvalOptions& options = {});

EvalStats EvaluateSampled(const Policy& policy, const Hierarchy& hierarchy,
                          const Distribution& dist, std::size_t num_samples,
                          std::uint64_t seed, const EvalOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_EVALUATOR_H_
