// Reachable-set-weight bookkeeping for DAG policies (GreedyDAG, WIGS-DAG,
// cost-sensitive greedy).
//
// ReachWeightBase stores w̃(v) = w(G_v) for the full hierarchy (Algorithm 6
// line 2, computed once from the reachability index) plus the raw node
// weights; it supports incremental single-node weight updates for online
// learning (reverse BFS over ancestors).
//
// DagSearchState is one session's view of the candidate sub-DAG:
//  * a "yes" on q restricts candidates to R(q) ∩ C — by the downward-closure
//    invariant (DESIGN.md §2) no weight changes are needed;
//  * a "no" on q removes D = R(q) ∩ C and, per the corrected Algorithm 7,
//    subtracts w(x) of every removed x from w̃(a) of each alive ancestor a
//    (reverse BFS per removed node), recorded in a small delta overlay.
#ifndef AIGS_CORE_REACH_WEIGHT_INDEX_H_
#define AIGS_CORE_REACH_WEIGHT_INDEX_H_

#include <vector>

#include "core/hierarchy.h"
#include "graph/candidate_set.h"
#include "graph/traversal.h"
#include "util/common.h"
#include "util/epoch_marker.h"
#include "util/node_map.h"

namespace aigs {

/// Shared base weights for a DAG hierarchy.
class ReachWeightBase {
 public:
  /// `node_weights` must have one entry per node; the hierarchy must outlive
  /// the base.
  ReachWeightBase(const Hierarchy& hierarchy,
                  std::vector<Weight> node_weights);

  const Hierarchy& hierarchy() const { return *hierarchy_; }

  /// w(v): the node's own weight.
  Weight NodeWeight(NodeId v) const { return node_weight_[v]; }

  /// w̃(v) = Σ_{x ∈ R(v)} w(x) over the full hierarchy.
  Weight ReachWeight(NodeId v) const { return reach_weight_[v]; }

  /// Σ w over all nodes (= w̃(root)).
  Weight Total() const { return reach_weight_[hierarchy_->root()]; }

  /// Adds `delta` to w(v) and to w̃(a) for every ancestor a of v (O(m) worst
  /// case, O(depth) for tree-like DAGs). Not thread-safe with concurrent
  /// sessions.
  void AddWeight(NodeId v, Weight delta);

  /// Replaces all node weights and recomputes w̃ (O(closure)).
  void SetWeights(std::vector<Weight> node_weights);

 private:
  const Hierarchy* hierarchy_;
  std::vector<Weight> node_weight_;
  std::vector<Weight> reach_weight_;
  BfsScratch scratch_;
};

/// Per-search overlay over a ReachWeightBase.
class DagSearchState {
 public:
  explicit DagSearchState(const ReachWeightBase& base);

  const ReachWeightBase& base() const { return *base_; }
  const Digraph& graph() const { return base_->hierarchy().graph(); }

  /// Current search root (reaches every candidate).
  NodeId root() const { return root_; }

  std::size_t AliveCount() const { return candidates_.alive_count(); }
  bool IsAlive(NodeId v) const { return candidates_.IsAlive(v); }
  const CandidateSet& candidates() const { return candidates_; }

  /// Session w̃(v) = Σ_{x ∈ R(v) ∩ C} w(x). Only meaningful for alive v.
  Weight ReachWeight(NodeId v) const {
    AIGS_DCHECK(IsAlive(v));
    return base_->ReachWeight(v) - removed_weight_.GetOr(v, 0);
  }

  /// Σ w over alive candidates (= session w̃(root)).
  Weight TotalAlive() const { return total_alive_; }

  /// Applies reach(q) = yes: candidates ← R(q) ∩ C, root ← q.
  void ApplyYes(NodeId q);

  /// Applies reach(q) = no: candidates ← C \ R(q) with weight adjustment.
  void ApplyNo(NodeId q);

  /// The identified target; requires AliveCount() == 1.
  NodeId Target() const { return candidates_.SoleCandidate(); }

 private:
  const ReachWeightBase* base_;
  CandidateSet candidates_;
  NodeId root_;
  Weight total_alive_;
  NodeMap<Weight> removed_weight_;
  // Scratch for the removal reverse BFS.
  std::vector<NodeId> removed_buffer_;
  EpochMarker in_removal_;
  EpochMarker reverse_visited_;
  std::vector<NodeId> reverse_queue_;
};

}  // namespace aigs

#endif  // AIGS_CORE_REACH_WEIGHT_INDEX_H_
