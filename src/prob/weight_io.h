// Text serialization for distributions (object counts per category), the
// companion of graph/graph_io.h: together they let users plug the *real*
// Amazon/ImageNet datasets into every bench in place of the synthetic
// stand-ins.
//
// Format ("aigs-counts v1"):
//   # comment lines start with '#'
//   n <num_nodes>
//   c <node_id> <count>      (unlisted nodes default to 0)
#ifndef AIGS_PROB_WEIGHT_IO_H_
#define AIGS_PROB_WEIGHT_IO_H_

#include <string>

#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Serializes a distribution (zero-weight nodes omitted).
std::string SerializeDistribution(const Distribution& dist);

/// Parses the text format above.
StatusOr<Distribution> ParseDistribution(const std::string& text);

/// Writes SerializeDistribution(dist) to `path`.
Status SaveDistribution(const Distribution& dist, const std::string& path);

/// Reads and parses a distribution file.
StatusOr<Distribution> LoadDistribution(const std::string& path);

}  // namespace aigs

#endif  // AIGS_PROB_WEIGHT_IO_H_
