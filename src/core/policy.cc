#include "core/policy.h"

namespace aigs {

void SearchSession::ApplyReach(NodeId q, bool yes) {
  (void)q;
  (void)yes;
  AIGS_CHECK(false && "this policy does not ask reachability questions");
}

void SearchSession::ApplyChoice(std::span<const NodeId> choices, int answer) {
  (void)choices;
  (void)answer;
  AIGS_CHECK(false && "this policy does not ask multiple-choice questions");
}

void SearchSession::ApplyReachBatch(std::span<const NodeId> nodes,
                                    const std::vector<bool>& answers) {
  (void)nodes;
  (void)answers;
  AIGS_CHECK(false && "this policy does not ask batched questions");
}

Status SearchSession::TryApplyReachBatch(std::span<const NodeId> nodes,
                                         const std::vector<bool>& answers) {
  ApplyReachBatch(nodes, answers);
  return Status::OK();
}

Status SearchSession::TryApplyObserved(const TranscriptStep& step) {
  // Centralized shape validation: overrides index step.nodes[0] etc., so a
  // malformed step must never reach them (this wrapper is public API; the
  // engine validates too, but direct library callers get the same guard).
  const bool well_formed =
      !step.nodes.empty() &&
      ((step.kind == Query::Kind::kReach && step.nodes.size() == 1) ||
       (step.kind == Query::Kind::kReachBatch &&
        step.batch_answers.size() == step.nodes.size()) ||
       (step.kind == Query::Kind::kChoice && step.choice >= -1 &&
        step.choice < static_cast<int>(step.nodes.size())));
  if (!well_formed) {
    return Status::InvalidArgument(
        "malformed observed step (wrong node/answer shape for its kind)");
  }
  const Status status = ApplyObservedStep(step);
  if (status.ok()) {
    plan_valid_ = false;
  }
  return status;
}

Status SearchSession::ApplyObservedStep(const TranscriptStep& step) {
  (void)step;
  return Status::Unimplemented(
      "this policy cannot fold an answer for a question its planner did not "
      "ask (phase-automaton state; divergent replay unsupported)");
}

}  // namespace aigs
