#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "baselines/top_down.h"
#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/decision_tree.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

TEST(Runner, CountsReachQueries) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  TopDownPolicy policy(h);
  ExactOracle oracle(h.reach(), nodes.sentra);
  auto session = policy.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.sentra);
  EXPECT_EQ(r.reach_queries, 4u);
  EXPECT_EQ(r.priced_cost, 4u);  // unit prices
  EXPECT_EQ(r.UnitCost(), 4u);
}

TEST(Runner, AppliesCostModel) {
  const Hierarchy h = MustBuild(BuildFig3Hierarchy());
  const Distribution equal = EqualDistribution(4);
  const CostModel costs = Fig3CostModel();
  GreedyTreePolicy policy(h, equal);
  RunOptions options;
  options.cost_model = &costs;
  ExactOracle oracle(h.reach(), 3);  // target node "4"
  auto session = policy.NewSession();
  const SearchResult r = RunSearch(*session, oracle, options);
  // Plain greedy asks node "3" (price 5) then node "4" (price 1).
  EXPECT_EQ(r.reach_queries, 2u);
  EXPECT_EQ(r.priced_cost, 6u);
}

TEST(EvaluateExact, MatchesDecisionTreeCost) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(20, rng));
  const Distribution dist = UniformRandomDistribution(20, rng);
  GreedyTreePolicy policy(h, dist);
  const EvalStats stats = EvaluateExact(policy, h, dist);
  auto tree = DecisionTree::Build(policy, h);
  ASSERT_TRUE(tree.ok());
  EXPECT_NEAR(stats.expected_cost, tree->ExpectedCost(dist), 1e-9);
  EXPECT_EQ(stats.num_searches, h.NumNodes());
  EXPECT_EQ(stats.per_target_cost.size(), h.NumNodes());
}

TEST(EvaluateExact, VehicleDistribution) {
  const Hierarchy h = MustBuild(BuildVehicleHierarchy());
  const Distribution dist = VehicleDistribution();
  GreedyTreePolicy policy(h, dist);
  const EvalStats stats = EvaluateExact(policy, h, dist);
  EXPECT_DOUBLE_EQ(stats.expected_cost, 2.04);  // Example 2's better policy
}

TEST(EvaluateExact, MaxCostIsWorstCase) {
  Rng rng(2);
  const Hierarchy h = MustBuild(RandomTree(30, rng));
  const Distribution dist = EqualDistribution(30);
  GreedyTreePolicy policy(h, dist);
  const EvalStats stats = EvaluateExact(policy, h, dist);
  const auto costs = testing::RunAllTargets(policy, h);
  EXPECT_EQ(stats.max_cost, *std::max_element(costs.begin(), costs.end()));
}

TEST(EvaluateExact, SingleThreadPoolProducesSameNumbers) {
  Rng rng(3);
  const Hierarchy h = MustBuild(RandomDag(25, rng, 0.4));
  const Distribution dist = ExponentialRandomDistribution(25, rng);
  GreedyDagPolicy policy(h, dist);
  ThreadPool single(1);
  EvalOptions serial;
  serial.pool = &single;
  const EvalStats a = EvaluateExact(policy, h, dist, serial);
  const EvalStats b = EvaluateExact(policy, h, dist);
  EXPECT_DOUBLE_EQ(a.expected_cost, b.expected_cost);
  EXPECT_EQ(a.per_target_cost, b.per_target_cost);
}

TEST(EvaluateSampled, ConvergesToExact) {
  Rng rng(4);
  const Hierarchy h = MustBuild(RandomTree(40, rng));
  const Distribution dist = ExponentialRandomDistribution(40, rng);
  GreedyTreePolicy policy(h, dist);
  const EvalStats exact = EvaluateExact(policy, h, dist);
  const EvalStats sampled =
      EvaluateSampled(policy, h, dist, 20000, /*seed=*/5);
  EXPECT_EQ(sampled.num_searches, 20000u);
  EXPECT_NEAR(sampled.expected_cost, exact.expected_cost,
              0.05 * exact.expected_cost + 0.05);
}

TEST(EvaluateExact, PricedCostUsesCostModel) {
  const Hierarchy h = MustBuild(BuildFig3Hierarchy());
  const Distribution equal = EqualDistribution(4);
  const CostModel costs = Fig3CostModel();
  CostSensitiveGreedyPolicy policy(h, equal, costs);
  EvalOptions options;
  options.cost_model = &costs;
  const EvalStats stats = EvaluateExact(policy, h, equal, options);
  EXPECT_DOUBLE_EQ(stats.expected_priced_cost, 4.25);
}

}  // namespace
}  // namespace aigs
