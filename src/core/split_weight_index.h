// SplitWeightIndex — the shared incremental selection layer behind the
// middle-point policies (GreedyNaive, BatchedGreedy, CostSensitiveGreedy).
//
// The naive selection rule recomputes w(R(v) ∩ C) with a fresh forward BFS
// from every alive candidate on every pick: O(n·m) per question. This layer
// makes that quantity incremental AND makes starting a search O(1): an
// immutable SplitWeightBase (built once per policy, shared by every
// session) holds all O(n) precomputation, and each SplitWeightIndex session
// is a small overlay whose state is proportional to the answers received —
// the same base+overlay shape TreeSearchState uses. No per-session Fenwick
// rebuild, no per-session O(n) anything; a service front end can open
// sessions per user request at memory-bandwidth cost.
//
// Two modes, chosen by the hierarchy's reachability index:
//
//  * Euler mode (trees): the base stores prefix sums of the weights in
//    Euler-tour order. A session's alive set is always one window (the
//    current root's Euler interval) minus a sorted list of disjoint removed
//    intervals (one per distinct no-answer; Euler intervals are laminar, so
//    nested removals merge away). w(R(v) ∩ C) is two O(log answers) binary
//    searches over that list plus a prefix-sum difference; a yes-answer
//    narrows the window, a no-answer inserts one interval.
//
//  * Closure mode (DAGs): a session starts in a pristine zero-allocation
//    state that answers every query from the base's full reachable-set
//    weights; the first answer materializes the alive bitset (one O(n/64)
//    word-parallel copy), after which w(R(v) ∩ C) is a blocked weighted
//    popcount of closure[v] & alive (util/bitset BlockedWeights kernel) and
//    each answer is one bitset intersection. When the reachability index
//    stores compressed rows, the same overlay runs directly on them: the
//    alive bitset and the blocked weight table live in the compressed
//    closure's DFS-preorder *position* space, and every kernel
//    (fused count+weight, AND, ANDNOT) consumes the interval / chunked
//    encodings without materializing a dense row — cost proportional to the
//    compressed row size instead of n/64.
//
// Selection entry points:
//  * FindMiddlePoint(): minimizes |2·w(R(v) ∩ C) − w(C)| over alive v ≠
//    root with GreedyDAG-style dominance pruning — the descent only expands
//    below v when w(R(v) ∩ C) still exceeds half the alive weight (a better
//    split may exist below) or when v ties the best diff seen (an
//    equal-weight descendant with a smaller id could win the tie-break).
//    That rule provably enumerates every global minimizer, so the result is
//    bit-identical to the naive full scan with its smallest-id tie-break.
//  * FindSplittingMiddlePoint(): the batched variant — additionally
//    requires |R(v) ∩ C| < |C| (a question whose yes-answer is certain is
//    wasted). Euler mode uses a pruned/rooted descent (covering nodes
//    always expand, splitting nodes expand under the FindMiddlePoint
//    dominance rule); closure mode keeps the flat scan with the fused
//    count+weight kernel.
//
// Both use the lexicographic (split_diff, node id) ordering, which matches
// the reference scan's first-wins-in-id-order tie-break exactly; the
// equivalence suite (tests/test_split_weight_index.cc) pins this.
#ifndef AIGS_CORE_SPLIT_WEIGHT_INDEX_H_
#define AIGS_CORE_SPLIT_WEIGHT_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/hierarchy.h"
#include "core/middle_point.h"
#include "util/bitset.h"
#include "util/common.h"
#include "util/epoch_marker.h"
#include "util/status.h"

namespace aigs {

/// Immutable per-(hierarchy, weights) precomputation shared by every search
/// session. Borrows `weights`; both the hierarchy and the weight vector
/// must outlive the base (policies own the vector, the base, and hand
/// sessions out — the snapshot layer pins all three).
class SplitWeightBase {
 public:
  SplitWeightBase(const Hierarchy& hierarchy,
                  const std::vector<Weight>& weights);

  SplitWeightBase(const SplitWeightBase&) = delete;
  SplitWeightBase& operator=(const SplitWeightBase&) = delete;

  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const ReachabilityIndex& reach() const { return *reach_; }
  const std::vector<Weight>& weights() const { return *node_weights_; }
  bool euler_mode() const { return euler_; }
  /// True when closure mode runs on compressed rows (position space).
  bool compressed_mode() const { return compressed_; }
  /// Σ w over all nodes.
  Weight Total() const { return total_; }

  // ---- Euler mode ----------------------------------------------------------

  /// Σ weights over Euler positions [begin, end).
  Weight EulerRangeWeight(std::uint32_t begin, std::uint32_t end) const {
    return euler_prefix_[end] - euler_prefix_[begin];
  }

  // ---- closure mode --------------------------------------------------------

  /// w(R(v)) over the full hierarchy (the pristine session's ReachWeight).
  Weight FullReachWeight(NodeId v) const { return full_reach_weight_[v]; }
  /// Block-sum table over `weights` for the popcount kernels (dense mode).
  const BlockedWeights& blocked_weights() const { return blocked_; }
  /// Block-sum table over the position-permuted weights (compressed mode).
  const BlockedWeights& pos_blocked_weights() const { return pos_blocked_; }

 private:
  const Hierarchy* hierarchy_;
  const ReachabilityIndex* reach_;
  const std::vector<Weight>* node_weights_;
  bool euler_;
  bool compressed_ = false;
  Weight total_ = 0;

  // Euler mode: prefix sums of weights permuted to Euler order (size n+1).
  std::vector<Weight> euler_prefix_;

  // Closure mode: full reachable-set weights and the blocked weight table.
  std::vector<Weight> full_reach_weight_;
  BlockedWeights blocked_;

  // Compressed closure mode: weights permuted into position space and their
  // block sums (sessions' alive bitsets live in position space too).
  std::vector<Weight> pos_weights_;
  BlockedWeights pos_blocked_;
};

/// One search session's view of (candidate set, split weights): an overlay
/// over a shared SplitWeightBase. Construction is O(1); state grows with
/// the answers applied, never with n (the closure-mode alive bitset
/// materializes lazily on the first answer).
class SplitWeightIndex {
 public:
  /// Starts with every node alive. The base must outlive the index.
  explicit SplitWeightIndex(const SplitWeightBase& base);

  /// Restores the all-alive initial state.
  void Reset();

  /// Copies another index's session state without rebuilding base data —
  /// the batched policy's per-round simulation scratch. Both must share the
  /// same base.
  void ResetFrom(const SplitWeightIndex& other);

  // ---- state queries --------------------------------------------------------

  std::size_t AliveCount() const { return alive_count_; }
  Weight TotalAlive() const { return total_alive_; }
  bool IsAlive(NodeId v) const;
  /// Current search root (moves on ApplyYes; every candidate is reachable
  /// from it through alive nodes).
  NodeId root() const { return root_; }
  /// The identified target; requires AliveCount() == 1.
  NodeId Target() const;

  /// w(R(v) ∩ C): O(log answers) in Euler mode, O(n/64) in closure mode
  /// (O(1) while pristine).
  Weight ReachWeight(NodeId v) const;
  /// |R(v) ∩ C| with the same costs.
  std::size_t ReachCount(NodeId v) const;

  /// Invokes fn(NodeId) for every alive candidate. Euler mode iterates in
  /// Euler order, dense closure mode in node-id order, compressed closure
  /// mode in DFS-preorder position order — callers that care about order
  /// must impose their own tie-breaks.
  template <typename Fn>
  void ForEachAlive(Fn&& fn) const {
    if (euler_) {
      std::uint32_t pos = window_begin_;
      for (const RemovedRange& r : removed_) {
        for (std::uint32_t t = pos; t < r.begin; ++t) {
          fn(base_->reach().NodeAtEuler(t));
        }
        pos = r.end;
      }
      for (std::uint32_t t = pos; t < window_end_; ++t) {
        fn(base_->reach().NodeAtEuler(t));
      }
    } else if (!materialized_) {
      const std::size_t n = base_->hierarchy().NumNodes();
      for (std::size_t v = 0; v < n; ++v) {
        fn(static_cast<NodeId>(v));
      }
    } else if (compressed_) {
      const CompressedClosure& cc = base_->reach().compressed();
      alive_.ForEachSetBit(
          [&](std::size_t p) { fn(cc.node_at_pos(p)); });
    } else {
      alive_.ForEachSetBit(
          [&](std::size_t v) { fn(static_cast<NodeId>(v)); });
    }
  }

  // ---- answer application ---------------------------------------------------

  /// Applies reach(q) = yes: candidates ← R(q) ∩ C; root ← q when the
  /// current root reaches q (the root only ever moves down — a batched
  /// round may also answer yes for an ancestor, which adds no information).
  /// `q` may already be dead (batched rounds intersect answers for
  /// questions another answer of the same round eliminated).
  void ApplyYes(NodeId q);

  /// Applies reach(q) = no: candidates ← C \ R(q). Dead `q` allowed.
  void ApplyNo(NodeId q);

  /// Intersects a whole round of answers (one ApplyYes/ApplyNo per
  /// question) — each question costs one bitset intersection / interval op.
  void ApplyBatch(std::span<const NodeId> nodes,
                  const std::vector<bool>& answers);

  // ---- selection ------------------------------------------------------------

  /// Middle point over alive candidates excluding root() (Definition 4),
  /// via the dominance-pruned descent. Requires AliveCount() > 1.
  MiddlePoint FindMiddlePoint() const;

  /// Middle point over alive candidates that split the set by count
  /// (|R(v) ∩ C| < |C|); kInvalidNode when none splits. Euler mode runs a
  /// pruned/rooted descent, closure mode a fused-kernel flat scan; both are
  /// bit-identical to a full (diff, id)-argmin scan.
  MiddlePoint FindSplittingMiddlePoint() const;

  const SplitWeightBase& base() const { return *base_; }

  /// Divergence-tolerant fold of an observed reachability answer (a
  /// question possibly planned under another epoch's weights — see
  /// SearchSession::TryApplyObserved) into this index. A reachability
  /// answer is a fact about the hidden target, so it folds into the
  /// candidate set under any weights; this validates first and leaves the
  /// state untouched on failure:
  ///  * InvalidArgument when the answer would eliminate every candidate
  ///    (inconsistent with the transcript so far);
  ///  * Unimplemented when q was already eliminated yet the answer still
  ///    splits the candidates (never produced by a genuine same-hierarchy
  ///    transcript — the rooted descents cannot survive a dead root);
  ///  * otherwise applies, moving the root only downward (ApplyYes rule).
  Status TryApplyObservedReach(NodeId q, bool yes);
  const Hierarchy& hierarchy() const { return base_->hierarchy(); }
  const std::vector<Weight>& weights() const { return base_->weights(); }

 private:
  /// One maximal dead Euler interval (Euler mode). Intervals are disjoint,
  /// sorted by begin, and fully inside the window; every position inside
  /// one is dead, so its dead weight is the base's full range weight.
  struct RemovedRange {
    std::uint32_t begin;
    std::uint32_t end;
  };

  // Rebuilds removed-interval prefix sums starting at entry `from`.
  void RebuildRemovedPrefixes(std::size_t from);
  // Σ dead weight/count over removed intervals nested inside [a, b).
  Weight RemovedWeightWithin(std::uint32_t a, std::uint32_t b) const;
  std::uint32_t RemovedCountWithin(std::uint32_t a, std::uint32_t b) const;
  // True iff [a, b) lies inside one removed interval (fully dead).
  bool CoveredByRemoved(std::uint32_t a, std::uint32_t b) const;
  // Index of the first removed interval with begin >= pos.
  std::size_t FirstRemovedAtOrAfter(std::uint32_t pos) const;
  // Collapses the session to the all-dead state over [begin, end).
  void MarkWindowDead(std::uint32_t begin, std::uint32_t end);
  // Materializes the closure-mode alive bitset from the pristine state.
  void MaterializeAllAlive();

  const SplitWeightBase* base_;
  bool euler_;
  bool compressed_;

  NodeId root_;
  std::size_t alive_count_ = 0;
  Weight total_alive_ = 0;

  // Euler mode: the current root's Euler window minus removed intervals,
  // with prefix sums of each interval's dead weight/count for O(log)
  // range queries. All O(answers)-sized.
  std::uint32_t window_begin_ = 0;
  std::uint32_t window_end_ = 0;
  std::vector<RemovedRange> removed_;
  std::vector<Weight> removed_prefix_weight_;   // size removed_.size() + 1
  std::vector<std::uint32_t> removed_prefix_count_;

  // Closure mode: bit v = node v alive (dense) or bit p = the node at
  // position p alive (compressed). Empty until the first answer (pristine
  // sessions answer from the base).
  bool materialized_ = false;
  DynamicBitset alive_;

  // Scratch for the dominance-pruned descent; sized lazily on first use so
  // session construction stays O(1).
  mutable EpochMarker visited_;
  mutable std::vector<NodeId> queue_;
};

}  // namespace aigs

#endif  // AIGS_CORE_SPLIT_WEIGHT_INDEX_H_
