// Weighted cost profiles: beyond the expectation (AIGS objective) and the
// maximum (WIGS objective), operators budgeting a labeling campaign care
// about the tail — "how many questions will the 99th-percentile object
// need?". Computes weighted quantiles of per-target costs.
#ifndef AIGS_EVAL_COST_PROFILE_H_
#define AIGS_EVAL_COST_PROFILE_H_

#include <cstdint>
#include <vector>

#include "prob/distribution.h"
#include "util/common.h"

namespace aigs {

/// Weighted summary of per-target costs.
class CostProfile {
 public:
  /// `per_target_cost[v]` = cost of identifying target v (as produced by
  /// EvaluateExact); weights come from the distribution. Zero-weight targets
  /// are excluded from quantiles (they never occur).
  CostProfile(const std::vector<std::uint32_t>& per_target_cost,
              const Distribution& dist);

  /// Weighted mean (the AIGS objective).
  double Mean() const { return mean_; }

  /// Maximum cost over positive-weight targets (the WIGS objective).
  std::uint32_t Max() const { return max_; }

  /// Smallest cost c such that P(cost ≤ c) >= q, for q ∈ (0, 1].
  std::uint32_t Quantile(double q) const;

  /// Convenience accessors.
  std::uint32_t Median() const { return Quantile(0.5); }
  std::uint32_t P90() const { return Quantile(0.9); }
  std::uint32_t P99() const { return Quantile(0.99); }

 private:
  // (cost, cumulative weight) sorted by cost.
  std::vector<std::pair<std::uint32_t, Weight>> cumulative_;
  Weight total_ = 0;
  double mean_ = 0;
  std::uint32_t max_ = 0;
};

}  // namespace aigs

#endif  // AIGS_EVAL_COST_PROFILE_H_
