#include "data/dataset_io.h"

#include "graph/graph_io.h"
#include "prob/weight_io.h"

namespace aigs {

Status SaveDatasetFiles(const Dataset& dataset, const std::string& prefix) {
  AIGS_RETURN_NOT_OK(
      SaveHierarchy(dataset.hierarchy.graph(), prefix + ".hierarchy.txt"));
  AIGS_RETURN_NOT_OK(
      SaveDistribution(dataset.real_distribution, prefix + ".counts.txt"));
  return Status::OK();
}

StatusOr<Dataset> LoadDatasetFiles(const std::string& name,
                                   const std::string& prefix) {
  AIGS_ASSIGN_OR_RETURN(Digraph graph,
                        LoadHierarchy(prefix + ".hierarchy.txt"));
  AIGS_ASSIGN_OR_RETURN(Hierarchy hierarchy,
                        Hierarchy::Build(std::move(graph)));
  AIGS_ASSIGN_OR_RETURN(Distribution counts,
                        LoadDistribution(prefix + ".counts.txt"));
  if (counts.size() != hierarchy.NumNodes()) {
    return Status::InvalidArgument(
        "count file covers " + std::to_string(counts.size()) +
        " nodes but the hierarchy has " +
        std::to_string(hierarchy.NumNodes()));
  }
  Dataset dataset{.name = name,
                  .hierarchy = std::move(hierarchy),
                  .real_distribution = std::move(counts),
                  .num_objects = 0};
  dataset.num_objects = dataset.real_distribution.Total();
  return dataset;
}

}  // namespace aigs
