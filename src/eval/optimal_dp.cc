#include "eval/optimal_dp.h"

#include <bit>
#include <unordered_map>
#include <vector>

namespace aigs {
namespace {

using Mask = std::uint32_t;

struct DpContext {
  std::vector<Mask> reach_mask;       // R(v) as a bitmask
  std::vector<Weight> weight;         // w(v)
  std::vector<std::uint32_t> price;   // c(v)
  std::unordered_map<Mask, std::uint64_t> memo;
};

std::uint64_t Solve(DpContext& ctx, Mask candidates) {
  if (std::popcount(candidates) <= 1) {
    return 0;
  }
  const auto it = ctx.memo.find(candidates);
  if (it != ctx.memo.end()) {
    return it->second;
  }
  std::uint64_t total_weight = 0;
  for (Mask m = candidates; m != 0; m &= m - 1) {
    total_weight += ctx.weight[static_cast<std::size_t>(std::countr_zero(m))];
  }
  std::uint64_t best = ~std::uint64_t{0};
  for (Mask m = candidates; m != 0; m &= m - 1) {
    const auto q = static_cast<std::size_t>(std::countr_zero(m));
    const Mask yes = candidates & ctx.reach_mask[q];
    const Mask no = candidates & ~ctx.reach_mask[q];
    if (no == 0) {
      continue;  // question cannot distinguish anything
    }
    const std::uint64_t cost = ctx.price[q] * total_weight +
                               Solve(ctx, yes) + Solve(ctx, no);
    best = std::min(best, cost);
  }
  AIGS_CHECK(best != ~std::uint64_t{0});
  ctx.memo.emplace(candidates, best);
  return best;
}

}  // namespace

StatusOr<double> OptimalExpectedCost(const Hierarchy& hierarchy,
                                     const Distribution& dist,
                                     const CostModel* costs) {
  const std::size_t n = hierarchy.NumNodes();
  if (n > 24) {
    return Status::InvalidArgument(
        "optimal DP supports n <= 24 (got " + std::to_string(n) + ")");
  }
  AIGS_CHECK(dist.size() == n);

  DpContext ctx;
  ctx.reach_mask.assign(n, 0);
  ctx.weight.resize(n);
  ctx.price.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    hierarchy.reach().ForEachReachable(
        v, [&](NodeId x) { ctx.reach_mask[v] |= Mask{1} << x; });
    ctx.weight[v] = dist.WeightOf(v);
    ctx.price[v] = costs != nullptr ? costs->CostOf(v) : 1;
  }

  const Mask all = n == 32 ? ~Mask{0} : (Mask{1} << n) - 1;
  const std::uint64_t f = Solve(ctx, all);
  return static_cast<double>(f) / static_cast<double>(dist.Total());
}

}  // namespace aigs
