// SIMD kernel dispatch correctness: every implementation table must be
// BIT-IDENTICAL to the scalar reference on every input shape — word counts
// from 0 through several vector widths plus remainders, dense/sparse/run
// data, and every partial-tail length at the bitset layer. On top of the
// raw kernels, pinning AIGS_KERNELS=scalar must reproduce the exact policy
// transcripts the dispatched build produces on trees and DAGs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy_registry.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "oracle/oracle.h"
#include "prob/distribution.h"
#include "tests/test_support.h"
#include "util/bitset.h"
#include "util/kernels.h"
#include "util/rng.h"

namespace aigs {
namespace {

using kernels::CountAndWeight;
using kernels::Mode;
using kernels::Ops;
using kernels::OpsFor;

/// The modes the running CPU can execute, scalar first.
std::vector<Mode> SupportedModes() {
  std::vector<Mode> modes = {Mode::kScalar};
  if (kernels::CpuSupports(Mode::kAvx2)) {
    modes.push_back(Mode::kAvx2);
  }
  if (kernels::CpuSupports(Mode::kAvx512)) {
    modes.push_back(Mode::kAvx512);
  }
  return modes;
}

enum class Fill { kSparse, kDense, kRuns, kAllOnes, kAllZeros };

std::vector<std::uint64_t> MakeWords(std::size_t n, Fill fill, Rng& rng) {
  std::vector<std::uint64_t> words(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    switch (fill) {
      case Fill::kSparse:
        words[i] = std::uint64_t{1} << rng.UniformInt(64);
        if (rng.UniformInt(4) == 0) {
          words[i] = 0;
        }
        break;
      case Fill::kDense:
        words[i] = rng.Next() | rng.Next();
        break;
      case Fill::kRuns:
        words[i] = (~std::uint64_t{0}) << rng.UniformInt(64);
        if (rng.UniformInt(8) == 0) {
          words[i] = ~words[i];
        }
        break;
      case Fill::kAllOnes:
        words[i] = ~std::uint64_t{0};
        break;
      case Fill::kAllZeros:
        words[i] = 0;
        break;
    }
  }
  return words;
}

std::vector<Weight> MakeWeights(std::size_t n_words, Rng& rng) {
  std::vector<Weight> weights(n_words * 64);
  for (Weight& w : weights) {
    w = 1 + rng.UniformInt(1000);
  }
  return weights;
}

std::vector<Weight> BlockSums(const std::vector<Weight>& weights) {
  std::vector<Weight> sums(weights.size() / 64, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sums[i / 64] += weights[i];
  }
  return sums;
}

constexpr Fill kFills[] = {Fill::kSparse, Fill::kDense, Fill::kRuns,
                           Fill::kAllOnes, Fill::kAllZeros};

// Every mutating word kernel against scalar, all word counts 0..257 (covers
// empty input, sub-vector sizes, and every remainder of the 4- and 8-word
// vector strides), for every data shape.
TEST(Kernels, MutatingKernelsMatchScalarAcrossSizes) {
  const Ops& scalar = OpsFor(Mode::kScalar);
  for (const Mode mode : SupportedModes()) {
    if (mode == Mode::kScalar) {
      continue;
    }
    const Ops& ops = OpsFor(mode);
    Rng rng(77);
    for (std::size_t n = 0; n <= 257; ++n) {
      for (const Fill fill : kFills) {
        const std::vector<std::uint64_t> src = MakeWords(n, fill, rng);
        const std::vector<std::uint64_t> dst0 = MakeWords(n, Fill::kDense, rng);

        std::vector<std::uint64_t> a = dst0;
        std::vector<std::uint64_t> b = dst0;
        scalar.and_words(a.data(), src.data(), n);
        ops.and_words(b.data(), src.data(), n);
        ASSERT_EQ(a, b) << kernels::ModeName(mode) << " and_words n=" << n;

        a = dst0;
        b = dst0;
        scalar.andnot_words(a.data(), src.data(), n);
        ops.andnot_words(b.data(), src.data(), n);
        ASSERT_EQ(a, b) << kernels::ModeName(mode) << " andnot_words n=" << n;

        a = dst0;
        b = dst0;
        scalar.or_words(a.data(), src.data(), n);
        ops.or_words(b.data(), src.data(), n);
        ASSERT_EQ(a, b) << kernels::ModeName(mode) << " or_words n=" << n;
      }
    }
  }
}

TEST(Kernels, CountingKernelsMatchScalarAcrossSizes) {
  const Ops& scalar = OpsFor(Mode::kScalar);
  for (const Mode mode : SupportedModes()) {
    if (mode == Mode::kScalar) {
      continue;
    }
    const Ops& ops = OpsFor(mode);
    Rng rng(78);
    for (std::size_t n = 0; n <= 257; ++n) {
      for (const Fill fill : kFills) {
        const std::vector<std::uint64_t> a = MakeWords(n, fill, rng);
        const std::vector<std::uint64_t> b = MakeWords(n, Fill::kDense, rng);
        ASSERT_EQ(scalar.popcount_words(a.data(), n),
                  ops.popcount_words(a.data(), n))
            << kernels::ModeName(mode) << " popcount n=" << n;
        ASSERT_EQ(scalar.and_popcount_words(a.data(), b.data(), n),
                  ops.and_popcount_words(a.data(), b.data(), n))
            << kernels::ModeName(mode) << " and_popcount n=" << n;
      }
    }
  }
}

TEST(Kernels, FusedWeightKernelsMatchScalarAcrossSizes) {
  const Ops& scalar = OpsFor(Mode::kScalar);
  for (const Mode mode : SupportedModes()) {
    if (mode == Mode::kScalar) {
      continue;
    }
    const Ops& ops = OpsFor(mode);
    Rng rng(79);
    for (std::size_t n = 0; n <= 257; ++n) {
      const std::vector<Weight> weights = MakeWeights(n, rng);
      const std::vector<Weight> block_sums = BlockSums(weights);
      for (const Fill fill : kFills) {
        const std::vector<std::uint64_t> a = MakeWords(n, fill, rng);
        const std::vector<std::uint64_t> b = MakeWords(n, Fill::kDense, rng);

        const CountAndWeight sm = scalar.masked_count_weight(
            a.data(), b.data(), n, weights.data(), block_sums.data());
        const CountAndWeight vm = ops.masked_count_weight(
            a.data(), b.data(), n, weights.data(), block_sums.data());
        ASSERT_EQ(sm.count, vm.count)
            << kernels::ModeName(mode) << " masked count n=" << n;
        ASSERT_EQ(sm.weight, vm.weight)
            << kernels::ModeName(mode) << " masked weight n=" << n;

        const CountAndWeight sc = scalar.count_weight(
            a.data(), n, weights.data(), block_sums.data());
        const CountAndWeight vc =
            ops.count_weight(a.data(), n, weights.data(), block_sums.data());
        ASSERT_EQ(sc.count, vc.count)
            << kernels::ModeName(mode) << " count n=" << n;
        ASSERT_EQ(sc.weight, vc.weight)
            << kernels::ModeName(mode) << " weight n=" << n;
      }
    }
  }
}

// Bitset layer: the fused count/weight paths must agree with a per-bit
// reference for EVERY tail length 0..63 under every active mode (the tail
// word is settled scalar regardless of the dispatched interior).
TEST(Kernels, BitsetFusedOpsExactForEveryTailLength) {
  const Mode before = kernels::ActiveMode();
  for (const Mode mode : SupportedModes()) {
    kernels::SetMode(mode);
    Rng rng(80);
    for (std::size_t tail = 0; tail < 64; ++tail) {
      const std::size_t size = 256 + tail;  // 4 full words + every tail
      DynamicBitset row(size);
      DynamicBitset alive(size);
      std::vector<Weight> weights(size);
      for (std::size_t p = 0; p < size; ++p) {
        if (rng.UniformInt(3) != 0) {
          row.Set(p);
        }
        if (rng.UniformInt(2) != 0) {
          alive.Set(p);
        }
        weights[p] = 1 + rng.UniformInt(100);
      }
      const BlockedWeights blocked(weights);

      std::size_t want_count = 0;
      Weight want_weight = 0;
      for (std::size_t p = 0; p < size; ++p) {
        if (row.Test(p) && alive.Test(p)) {
          ++want_count;
          want_weight += weights[p];
        }
      }
      const auto got = row.MaskedCountAndWeightedSum(alive, blocked);
      ASSERT_EQ(want_count, got.count) << "tail=" << tail;
      ASSERT_EQ(want_weight, got.weight) << "tail=" << tail;
      ASSERT_EQ(want_count, row.IntersectionCount(alive)) << "tail=" << tail;

      const std::size_t begin = rng.UniformInt(size);
      const std::size_t end =
          begin + rng.UniformInt(static_cast<std::uint32_t>(size - begin + 1));
      std::size_t range_count = 0;
      Weight range_weight = 0;
      for (std::size_t p = begin; p < end; ++p) {
        if (alive.Test(p)) {
          ++range_count;
          range_weight += weights[p];
        }
      }
      const auto range = alive.RangeCountAndWeightedSum(begin, end, blocked);
      ASSERT_EQ(range_count, range.count) << "tail=" << tail;
      ASSERT_EQ(range_weight, range.weight) << "tail=" << tail;
    }
  }
  kernels::SetMode(before);
}

TEST(Kernels, ParseModeGrammar) {
  Mode mode;
  EXPECT_TRUE(kernels::ParseMode("scalar", &mode));
  EXPECT_EQ(mode, Mode::kScalar);
  EXPECT_TRUE(kernels::ParseMode("avx2", &mode));
  EXPECT_EQ(mode, Mode::kAvx2);
  EXPECT_TRUE(kernels::ParseMode("avx512", &mode));
  EXPECT_EQ(mode, Mode::kAvx512);
  EXPECT_TRUE(kernels::ParseMode("auto", &mode));
  EXPECT_EQ(mode, Mode::kAuto);
  EXPECT_FALSE(kernels::ParseMode("sse9", &mode));
  EXPECT_FALSE(kernels::ParseMode("", &mode));
  EXPECT_STREQ(kernels::ModeName(Mode::kScalar), "scalar");
  EXPECT_STREQ(kernels::ModeName(Mode::kAuto), "auto");
}

TEST(Kernels, ActiveNeverReportsAuto) {
  const Mode before = kernels::ActiveMode();
  kernels::SetMode(Mode::kAuto);
  // kAuto restores the env/CPU default: BestSupported() unless AIGS_KERNELS
  // pins something else (the scalar-pinned CI leg runs exactly that way).
  EXPECT_NE(kernels::ActiveMode(), Mode::kAuto);
  const char* env = std::getenv("AIGS_KERNELS");
  if (env == nullptr || std::string_view(env) == "auto") {
    EXPECT_EQ(kernels::ActiveMode(), kernels::BestSupported());
  }
  kernels::SetMode(before);
}

// ---- transcript pinning: scalar vs dispatched ----------------------------

/// Serializes one full search: every question, every answer, the verdict.
std::string TranscriptOf(const Policy& policy, const ReachabilityIndex& reach,
                         NodeId target) {
  ExactOracle oracle(reach, target);
  auto session = policy.NewSession();
  std::string out;
  for (int step = 0; step < 100'000; ++step) {
    const Query q = session->Next();
    switch (q.kind) {
      case Query::Kind::kDone:
        EXPECT_EQ(q.node, target);
        return out + "D" + std::to_string(q.node);
      case Query::Kind::kReach: {
        const bool yes = oracle.Reach(q.node);
        out += 'R';
        out += std::to_string(q.node);
        out += yes ? "+;" : "-;";
        session->OnReach(q.node, yes);
        break;
      }
      case Query::Kind::kReachBatch: {
        out += "B";
        std::vector<bool> answers(q.choices.size());
        for (std::size_t i = 0; i < q.choices.size(); ++i) {
          answers[i] = oracle.Reach(q.choices[i]);
          out += std::to_string(q.choices[i]) + (answers[i] ? "+" : "-");
        }
        out += ";";
        AIGS_CHECK(session->TryOnReachBatch(q.choices, answers).ok());
        break;
      }
      case Query::Kind::kChoice: {
        const int answer = oracle.Choice(q.choices);
        out += "C";
        for (const NodeId v : q.choices) {
          out += std::to_string(v) + "|";
        }
        out += '=';
        out += std::to_string(answer);
        out += ';';
        session->OnChoice(q.choices, answer);
        break;
      }
    }
  }
  ADD_FAILURE() << "search did not terminate";
  return out;
}

/// All-target transcripts of several policies on one hierarchy under the
/// currently pinned kernel mode.
std::string AllTranscriptsUnderActiveMode(const Digraph& g) {
  Digraph copy = g;
  ReachabilityOptions reach;
  reach.force_closure_on_trees = true;
  reach.closure = ReachabilityOptions::Closure::kCompressed;
  auto built = Hierarchy::Build(std::move(copy), reach);
  AIGS_CHECK(built.ok());
  const Hierarchy& h = *built;
  const std::size_t n = h.NumNodes();
  std::vector<Weight> weights(n);
  Rng rng(91);
  for (std::size_t v = 0; v < n; ++v) {
    weights[v] = 1 + rng.UniformInt(40);
  }
  const Distribution dist = testing::MustDist(std::move(weights));
  PolicyContext context;
  context.hierarchy = &h;
  context.distribution = &dist;

  std::string out;
  for (const char* spec : {"greedy", "batched:k=4"}) {
    auto policy = PolicyRegistry::Global().Create(spec, context);
    AIGS_CHECK(policy.ok());
    for (NodeId target = 0; target < n; ++target) {
      out += TranscriptOf(**policy, h.reach(), target) + "\n";
    }
  }
  return out;
}

TEST(Kernels, ScalarAndDispatchedTranscriptsIdentical) {
  const Mode best = kernels::BestSupported();
  if (best == Mode::kScalar) {
    GTEST_SKIP() << "no SIMD implementation supported on this CPU";
  }
  const Mode before = kernels::ActiveMode();
  Rng rng(17);
  const Digraph tree = RandomTree(120, rng);
  const Digraph dag = RandomDag(100, rng, 0.35);
  for (const Digraph* g : {&tree, &dag}) {
    kernels::SetMode(Mode::kScalar);
    const std::string scalar_transcripts = AllTranscriptsUnderActiveMode(*g);
    kernels::SetMode(best);
    const std::string simd_transcripts = AllTranscriptsUnderActiveMode(*g);
    EXPECT_EQ(scalar_transcripts, simd_transcripts);
  }
  kernels::SetMode(before);
}

}  // namespace
}  // namespace aigs
