// WIGS baseline — the worst-case interactive graph search of Tao et al.
// (SIGMOD'19), re-implemented as heavy-path binary search (DESIGN.md §2).
//
// Tree variant: binary-search the static (size-based) heavy path from the
// current root for the deepest yes-node u_t, then probe u_t's light children
// in decreasing subtree-size order; a yes recurses, all-no identifies u_t.
//
// DAG variant: reachability is monotone along any directed chain, so the
// session repeatedly builds the count-heaviest chain of the alive sub-DAG
// (child with max |R(c) ∩ C|, maintained incrementally by DagSearchState
// with unit weights) and binary-searches it, applying each answer eagerly.
//
// Both variants ignore the target distribution — reproducing the paper's
// observation that WIGS cost is insensitive to the probability setting
// (Tables IV/V).
#ifndef AIGS_BASELINES_WIGS_H_
#define AIGS_BASELINES_WIGS_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/reach_weight_index.h"
#include "tree/heavy_path.h"

namespace aigs {

/// Worst-case-oriented baseline for tree hierarchies.
class WigsTreePolicy : public Policy {
 public:
  /// The hierarchy must satisfy is_tree().
  explicit WigsTreePolicy(const Hierarchy& hierarchy);

  std::string name() const override { return "WIGS"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  HeavyPathDecomposition hpd_;
  std::vector<std::uint32_t> subtree_size_;
  // Children of each node in decreasing subtree-size order (scan order).
  std::vector<std::vector<NodeId>> ordered_children_;
};

/// Worst-case-oriented baseline for DAG hierarchies (also valid on trees).
class WigsDagPolicy : public Policy {
 public:
  explicit WigsDagPolicy(const Hierarchy& hierarchy);

  std::string name() const override { return "WIGS"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  ReachWeightBase unit_base_;  // w ≡ 1: reach weights are candidate counts
};

/// Picks the matching WIGS variant for the hierarchy.
std::unique_ptr<Policy> MakeWigsPolicy(const Hierarchy& hierarchy);

}  // namespace aigs

#endif  // AIGS_BASELINES_WIGS_H_
