#include "baselines/migs.h"

#include <algorithm>
#include <vector>

namespace aigs {
namespace {

class MigsSession final : public SearchSession {
 public:
  MigsSession(const Digraph& g,
              const std::vector<std::vector<NodeId>>* ordered_children,
              std::size_t max_choices)
      : graph_(&g),
        ordered_children_(ordered_children),
        max_choices_(max_choices),
        node_(g.root()) {}

  Query PlanQuestion() const override {
    const std::vector<NodeId>& children = ChildrenOf(node_);
    if (offset_ >= children.size()) {
      return Query::Done(node_);
    }
    const std::size_t batch =
        max_choices_ == 0
            ? children.size() - offset_
            : std::min(max_choices_, children.size() - offset_);
    std::vector<NodeId> choices(
        children.begin() + static_cast<std::ptrdiff_t>(offset_),
        children.begin() + static_cast<std::ptrdiff_t>(offset_ + batch));
    return Query::ChoiceQuery(std::move(choices));
  }

  void ApplyChoice(std::span<const NodeId> choices, int answer) override {
    AIGS_CHECK(!choices.empty());
    if (answer < 0) {
      offset_ += choices.size();  // none of this batch; next batch (or done)
      return;
    }
    AIGS_CHECK(static_cast<std::size_t>(answer) < choices.size());
    node_ = choices[static_cast<std::size_t>(answer)];
    offset_ = 0;
  }

 private:
  const std::vector<NodeId>& ChildrenOf(NodeId v) const {
    if (!ordered_children_->empty()) {
      return (*ordered_children_)[v];
    }
    // Insertion order; materialize once per visited node.
    scratch_.assign(graph_->Children(v).begin(), graph_->Children(v).end());
    return scratch_;
  }

  const Digraph* graph_;
  const std::vector<std::vector<NodeId>>* ordered_children_;
  std::size_t max_choices_;
  NodeId node_;
  std::size_t offset_ = 0;
  mutable std::vector<NodeId> scratch_;
};

}  // namespace

MigsPolicy::MigsPolicy(const Hierarchy& hierarchy, MigsOptions options)
    : hierarchy_(&hierarchy), options_(options) {}

MigsPolicy::MigsPolicy(const Hierarchy& hierarchy, const Distribution& dist,
                       MigsOptions options)
    : hierarchy_(&hierarchy), options_(options) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  const std::vector<Weight> reach_weight =
      hierarchy.reach().AllReachableSetWeights(dist.weights());
  ordered_children_.resize(hierarchy.NumNodes());
  for (NodeId v = 0; v < hierarchy.NumNodes(); ++v) {
    const auto children = hierarchy.graph().Children(v);
    ordered_children_[v].assign(children.begin(), children.end());
    std::stable_sort(
        ordered_children_[v].begin(), ordered_children_[v].end(),
        [&reach_weight](NodeId a, NodeId b) {
          return reach_weight[a] > reach_weight[b];
        });
  }
}

std::unique_ptr<SearchSession> MigsPolicy::NewSession() const {
  return std::make_unique<MigsSession>(hierarchy_->graph(),
                                       &ordered_children_,
                                       options_.max_choices_per_question);
}

}  // namespace aigs
