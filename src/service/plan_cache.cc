#include "service/plan_cache.h"

#include <functional>
#include <utility>

#include "util/common.h"

namespace aigs {
namespace {

/// Approximate resident size of one entry: the key, the query's choice
/// vector, and a flat allowance for the map node + LRU link overhead.
constexpr std::size_t kEntryOverhead = 96;

std::size_t EntryBytes(std::string_view key, const Query& query) {
  return key.size() + query.choices.size() * sizeof(NodeId) + kEntryOverhead;
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(options),
      stripes_(options.num_stripes == 0 ? 1 : options.num_stripes) {
  stripe_budget_ = options_.max_bytes / stripes_.size();
  if (stripe_budget_ == 0) {
    stripe_budget_ = 1;
  }
}

PlanCache::Stripe& PlanCache::StripeFor(std::string_view key) {
  // Remix before striping: the per-stripe map consumes the raw hash, and
  // routing on `raw % stripes` would pin its low bits per stripe —
  // degenerate bucket distribution on power-of-two hash tables.
  std::size_t h = std::hash<std::string_view>{}(key);
  h ^= h >> 33;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  return stripes_[h % stripes_.size()];
}

std::optional<Query> PlanCache::Lookup(std::string_view key) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  return it->second.query;
}

void PlanCache::Insert(std::string_view key, const Query& query) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  // Transparent existence check first: duplicate inserts (racing sibling
  // sessions, Resume replays over a warm trie) must not pay a key copy.
  if (const auto existing = stripe.entries.find(key);
      existing != stripe.entries.end()) {
    // Determinism makes both values identical, so only the recency changes.
    stripe.lru.splice(stripe.lru.begin(), stripe.lru,
                      existing->second.lru_it);
    return;
  }
  const auto [it, inserted] = stripe.entries.try_emplace(std::string(key));
  AIGS_DCHECK(inserted);
  it->second.query = query;
  it->second.bytes = EntryBytes(key, query);
  stripe.lru.push_front(&it->first);
  it->second.lru_it = stripe.lru.begin();
  stripe.bytes += it->second.bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);

  // LRU eviction from the stripe tail. The freshly inserted entry is never
  // evicted (a single oversized entry beats thrashing on every insert).
  while (stripe.bytes > stripe_budget_ && stripe.entries.size() > 1) {
    const std::string* victim_key = stripe.lru.back();
    const auto victim = stripe.entries.find(*victim_key);
    AIGS_DCHECK(victim != stripe.entries.end());
    stripe.bytes -= victim->second.bytes;
    stripe.lru.pop_back();
    stripe.entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.entries += stripe.entries.size();
    stats.bytes += stripe.bytes;
  }
  return stats;
}

}  // namespace aigs
