#include "eval/evaluator.h"

#include <algorithm>
#include <atomic>

#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"

namespace aigs {
namespace {

/// Decorrelates shard RNG streams from a single user seed (splitmix64-style
/// odd-multiplier mix; Rng itself re-mixes through splitmix64 on Seed()).
std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard_index) {
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(shard_index) + 1);
}

/// Per-search oracle seed: a function of the search index only (never the
/// shard or thread), so noisy-oracle results are thread-count invariant.
std::uint64_t SearchSeed(std::uint64_t seed, std::uint64_t search_index) {
  return seed ^ (0xD1B54A32D192ED03ULL * (search_index + 1));
}

}  // namespace

/// One contiguous range of targets (exact) or sample indices (sampled),
/// with its aggregate outputs. Aggregates use long double so the merged
/// expectation matches the serial reference bit-for-bit: shard-internal
/// accumulation order is fixed by target order and the merge happens in
/// shard order on one thread.
struct Evaluator::Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t rng_seed = 0;  // sampled mode only

  long double weighted_unit = 0;
  long double weighted_priced = 0;
  long double weighted_reach = 0;
  long double weighted_rounds = 0;
  std::uint64_t max_cost = 0;
  std::uint64_t searches = 0;
  std::uint64_t correct = 0;
  Status status;  // first service-layer error, when driving an Engine
};

Evaluator::Evaluator(EvalOptions options) : options_(options) {
  AIGS_CHECK(options_.threads >= 0);
  AIGS_CHECK(options_.shard_size >= 1);
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else if (options_.threads == 0) {
    pool_ = &ThreadPool::Default();
  } else if (options_.threads > 1) {
    owned_pool_ =
        std::make_unique<ThreadPool>(static_cast<std::size_t>(options_.threads));
    pool_ = owned_pool_.get();
  }
  // threads == 1: pool_ stays null — the serial reference path.
}

Evaluator::~Evaluator() = default;

std::size_t Evaluator::num_workers() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

namespace {

/// Splits [0, n) into consecutive shards of `shard_size` (the last may be
/// short). The shard structure depends only on (n, shard_size) — never on
/// the worker count — which is what makes parallel aggregation exactly
/// reproduce the serial reference.
std::size_t NumShards(std::size_t n, std::size_t shard_size) {
  return (n + shard_size - 1) / shard_size;
}

/// The oracle for one search: a stack ExactOracle on the truthful fast
/// path, or whatever the options' factory builds (seeded by the search
/// index, so results are thread-count invariant). Shared by all four shard
/// loops — the per-search oracle policy lives here and nowhere else.
class PerSearchOracle {
 public:
  PerSearchOracle(const EvalOptions& options, const Hierarchy& hierarchy,
                  NodeId target, std::uint64_t search_index)
      : exact_(hierarchy.reach(), target) {
    if (options.oracle_factory) {
      custom_ = options.oracle_factory(
          hierarchy, target, SearchSeed(options.oracle_seed, search_index));
    }
  }

  Oracle& get() { return custom_ != nullptr ? *custom_ : exact_; }

 private:
  ExactOracle exact_;
  std::unique_ptr<Oracle> custom_;
};

/// Accumulates one finished search into its shard.
void Accumulate(Evaluator::Shard& shard, const SearchResult& r,
                NodeId true_target, Weight probability_weight,
                bool weight_by_probability) {
  // Sampled mode weights every draw equally; exact mode by probability.
  const long double lw =
      weight_by_probability ? static_cast<long double>(probability_weight)
                            : 1.0L;
  const std::uint64_t unit = r.UnitCost();
  shard.weighted_unit += lw * static_cast<long double>(unit);
  shard.weighted_priced +=
      lw * static_cast<long double>(r.priced_cost + r.choices_read);
  shard.weighted_reach += lw * static_cast<long double>(r.reach_queries);
  shard.weighted_rounds +=
      lw * static_cast<long double>(r.interaction_rounds);
  shard.max_cost = std::max(shard.max_cost, unit);
  ++shard.searches;
  shard.correct += r.target == true_target ? 1 : 0;
}

}  // namespace

EvalStats Evaluator::Exact(const Policy& policy, const Hierarchy& hierarchy,
                           const Distribution& dist) const {
  const std::size_t n = hierarchy.NumNodes();
  AIGS_CHECK(dist.size() == n);

  EvalStats stats;
  stats.per_target_cost.assign(n, 0);
  std::uint32_t* per_target = stats.per_target_cost.data();

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;
  // Noisy oracles can produce mutually inconsistent rounds; such a search
  // dead-ends as a misidentification instead of dying on a CHECK.
  run_options.tolerate_inconsistent_answers =
      options_.oracle_factory != nullptr;
  const bool include_zero = options_.include_zero_weight_targets;

  std::vector<Shard> shards(NumShards(n, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(n, shards[s].begin + options_.shard_size);
  }

  const auto run_shard = [&](Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = static_cast<NodeId>(i);
      const Weight w = dist.WeightOf(target);
      if (w == 0 && !include_zero) {
        continue;
      }
      PerSearchOracle oracle(options_, hierarchy, target, i);
      auto session = policy.NewSession();
      const SearchResult r = RunSearch(*session, oracle.get(), run_options);
      per_target[i] = static_cast<std::uint32_t>(r.UnitCost());
      Accumulate(shard, r, target, w, /*weight_by_probability=*/true);
    }
  };

  const EvalStats merged =
      RunShards(shards, run_shard, static_cast<long double>(dist.Total()));
  stats.expected_cost = merged.expected_cost;
  stats.expected_priced_cost = merged.expected_priced_cost;
  stats.expected_reach_queries = merged.expected_reach_queries;
  stats.expected_rounds = merged.expected_rounds;
  stats.max_cost = merged.max_cost;
  stats.num_searches = merged.num_searches;
  stats.accuracy = merged.accuracy;
  return stats;
}

EvalStats Evaluator::Sampled(const Policy& policy, const Hierarchy& hierarchy,
                             const Distribution& dist,
                             std::size_t num_samples,
                             std::uint64_t seed) const {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  const AliasTable sampler(dist);

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;
  // Noisy oracles can produce mutually inconsistent rounds; such a search
  // dead-ends as a misidentification instead of dying on a CHECK.
  run_options.tolerate_inconsistent_answers =
      options_.oracle_factory != nullptr;

  std::vector<Shard> shards(NumShards(num_samples, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(num_samples, shards[s].begin + options_.shard_size);
    shards[s].rng_seed = ShardSeed(seed, s);
  }

  const auto run_shard = [&](Shard& shard) {
    Rng rng(shard.rng_seed);
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = sampler.Sample(rng);
      PerSearchOracle oracle(options_, hierarchy, target, i);
      auto session = policy.NewSession();
      const SearchResult r = RunSearch(*session, oracle.get(), run_options);
      Accumulate(shard, r, target, 1, /*weight_by_probability=*/false);
    }
  };

  if (num_samples == 0) {
    return EvalStats{};
  }
  return RunShards(shards, run_shard,
                   static_cast<long double>(num_samples));
}

StatusOr<EvalStats> Evaluator::Exact(Engine& engine,
                                     const std::string& policy_spec) const {
  const std::shared_ptr<const CatalogSnapshot> snapshot = engine.snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "engine has no published snapshot to evaluate");
  }
  AIGS_RETURN_NOT_OK(snapshot->PolicyFor(policy_spec).status());
  const Hierarchy& hierarchy = snapshot->hierarchy();
  const Distribution& dist = snapshot->distribution();
  const std::size_t n = hierarchy.NumNodes();

  EvalStats stats;
  stats.per_target_cost.assign(n, 0);
  std::uint32_t* per_target = stats.per_target_cost.data();

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;
  // Noisy oracles can produce mutually inconsistent rounds; such a search
  // dead-ends as a misidentification instead of dying on a CHECK.
  run_options.tolerate_inconsistent_answers =
      options_.oracle_factory != nullptr;
  const bool include_zero = options_.include_zero_weight_targets;

  std::vector<Shard> shards(NumShards(n, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(n, shards[s].begin + options_.shard_size);
  }

  const auto run_shard = [&](Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = static_cast<NodeId>(i);
      const Weight w = dist.WeightOf(target);
      if (w == 0 && !include_zero) {
        continue;
      }
      PerSearchOracle oracle(options_, hierarchy, target, i);
      const StatusOr<SessionId> id = engine.Open(policy_spec);
      if (!id.ok()) {
        shard.status = id.status();
        return;
      }
      const StatusOr<SearchResult> r =
          RunSearch(engine, *id, oracle.get(), run_options);
      (void)engine.Close(*id);
      if (!r.ok()) {
        shard.status = r.status();
        return;
      }
      per_target[i] = static_cast<std::uint32_t>(r->UnitCost());
      Accumulate(shard, *r, target, w, /*weight_by_probability=*/true);
    }
  };

  const EvalStats merged = RunShards(shards, run_shard,
                                     static_cast<long double>(dist.Total()));
  for (const Shard& shard : shards) {
    AIGS_RETURN_NOT_OK(shard.status);
  }
  stats.expected_cost = merged.expected_cost;
  stats.expected_priced_cost = merged.expected_priced_cost;
  stats.expected_reach_queries = merged.expected_reach_queries;
  stats.expected_rounds = merged.expected_rounds;
  stats.max_cost = merged.max_cost;
  stats.num_searches = merged.num_searches;
  stats.accuracy = merged.accuracy;
  return stats;
}

StatusOr<EvalStats> Evaluator::Sampled(Engine& engine,
                                       const std::string& policy_spec,
                                       std::size_t num_samples,
                                       std::uint64_t seed) const {
  const std::shared_ptr<const CatalogSnapshot> snapshot = engine.snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "engine has no published snapshot to evaluate");
  }
  AIGS_RETURN_NOT_OK(snapshot->PolicyFor(policy_spec).status());
  const Hierarchy& hierarchy = snapshot->hierarchy();
  const AliasTable sampler(snapshot->distribution());

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;
  // Noisy oracles can produce mutually inconsistent rounds; such a search
  // dead-ends as a misidentification instead of dying on a CHECK.
  run_options.tolerate_inconsistent_answers =
      options_.oracle_factory != nullptr;

  std::vector<Shard> shards(NumShards(num_samples, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(num_samples, shards[s].begin + options_.shard_size);
    shards[s].rng_seed = ShardSeed(seed, s);
  }

  const auto run_shard = [&](Shard& shard) {
    Rng rng(shard.rng_seed);
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = sampler.Sample(rng);
      PerSearchOracle oracle(options_, hierarchy, target, i);
      const StatusOr<SessionId> id = engine.Open(policy_spec);
      if (!id.ok()) {
        shard.status = id.status();
        return;
      }
      const StatusOr<SearchResult> r =
          RunSearch(engine, *id, oracle.get(), run_options);
      (void)engine.Close(*id);
      if (!r.ok()) {
        shard.status = r.status();
        return;
      }
      Accumulate(shard, *r, target, 1, /*weight_by_probability=*/false);
    }
  };

  if (num_samples == 0) {
    return EvalStats{};
  }
  const EvalStats merged = RunShards(shards, run_shard,
                                     static_cast<long double>(num_samples));
  for (const Shard& shard : shards) {
    AIGS_RETURN_NOT_OK(shard.status);
  }
  return merged;
}

EvalStats Evaluator::RunShards(
    std::vector<Shard>& shards,
    const std::function<void(Shard&)>& run_shard,
    long double denominator) const {
  if (pool_ == nullptr) {
    // Serial reference path: same shard structure, same merge, no pool.
    for (Shard& shard : shards) {
      run_shard(shard);
    }
  } else {
    pool_->ParallelFor(
        shards.size(), [&](std::size_t s) { run_shard(shards[s]); },
        /*min_chunk=*/1);
  }

  // Deterministic merge: shard order, one thread.
  long double unit = 0, priced = 0, reach = 0, rounds = 0;
  EvalStats stats;
  std::uint64_t correct = 0;
  for (const Shard& shard : shards) {
    unit += shard.weighted_unit;
    priced += shard.weighted_priced;
    reach += shard.weighted_reach;
    rounds += shard.weighted_rounds;
    stats.max_cost = std::max(stats.max_cost, shard.max_cost);
    stats.num_searches += shard.searches;
    correct += shard.correct;
  }
  if (options_.require_correct && options_.oracle_factory == nullptr) {
    AIGS_CHECK(correct == stats.num_searches &&
               "policy misidentified a target");
  }
  stats.accuracy = stats.num_searches == 0
                       ? 1.0
                       : static_cast<double>(correct) /
                             static_cast<double>(stats.num_searches);
  stats.expected_cost = static_cast<double>(unit / denominator);
  stats.expected_priced_cost = static_cast<double>(priced / denominator);
  stats.expected_reach_queries = static_cast<double>(reach / denominator);
  stats.expected_rounds = static_cast<double>(rounds / denominator);
  return stats;
}

EvalStats EvaluateExact(const Policy& policy, const Hierarchy& hierarchy,
                        const Distribution& dist, const EvalOptions& options) {
  return Evaluator(options).Exact(policy, hierarchy, dist);
}

EvalStats EvaluateSampled(const Policy& policy, const Hierarchy& hierarchy,
                          const Distribution& dist, std::size_t num_samples,
                          std::uint64_t seed, const EvalOptions& options) {
  return Evaluator(options).Sampled(policy, hierarchy, dist, num_samples,
                                    seed);
}

}  // namespace aigs
