// Environment-driven run configuration shared by the unified bench harness
// (aigs_bench) and the micro benchmark.
//
// Every run defaults to a scaled-down configuration that finishes in
// seconds; environment variables unlock paper-scale runs:
//   AIGS_FULL=1        — full Table II scale (29,240 / 27,714 nodes)
//   AIGS_SCALE_PCT=n   — explicit dataset scale percentage (default 25)
//   AIGS_REPS=n        — repetitions for randomized distributions
//   AIGS_THREADS=n     — evaluator workers (0 = hardware concurrency)
//   AIGS_CSV_DIR=dir   — directory for optional CSV dumps
#ifndef AIGS_BENCH_BENCH_COMMON_H_
#define AIGS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/env.h"

namespace aigs::bench {

/// Dataset scale selected by the environment.
inline double DatasetScale() {
  if (EnvBool("AIGS_FULL", false)) {
    return 1.0;
  }
  const std::int64_t pct = EnvInt("AIGS_SCALE_PCT", 25);
  return static_cast<double>(pct) / 100.0;
}

/// Repetitions for randomized distributions (paper: 20).
inline std::size_t Reps() {
  return static_cast<std::size_t>(
      EnvInt("AIGS_REPS", EnvBool("AIGS_FULL", false) ? 20 : 3));
}

/// Directory for optional CSV dumps of figure series (AIGS_CSV_DIR); empty
/// string disables export.
inline std::string CsvDir() {
  const char* dir = std::getenv("AIGS_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace aigs::bench

#endif  // AIGS_BENCH_BENCH_COMMON_H_
