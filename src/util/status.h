// RocksDB-style Status / StatusOr error handling. Library code never throws;
// fallible operations return Status (or StatusOr<T> when they produce a
// value) and callers propagate with AIGS_RETURN_NOT_OK / AIGS_ASSIGN_OR_RETURN.
#ifndef AIGS_UTIL_STATUS_H_
#define AIGS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/common.h"

namespace aigs {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kIOError,
  kInternal,
  kUnimplemented,
};

/// Human-readable name for a StatusCode ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
class Status {
 public:
  /// Default constructor produces OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    AIGS_DCHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr is a fatal programmer error.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value — enables `return some_t;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error — enables `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    AIGS_CHECK(!status_.ok());  // OK without a value is meaningless
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AIGS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    AIGS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    AIGS_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define AIGS_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::aigs::Status _aigs_status = (expr); \
    if (!_aigs_status.ok()) {             \
      return _aigs_status;                \
    }                                     \
  } while (0)

#define AIGS_STATUS_CONCAT_INNER_(x, y) x##y
#define AIGS_STATUS_CONCAT_(x, y) AIGS_STATUS_CONCAT_INNER_(x, y)

/// `AIGS_ASSIGN_OR_RETURN(auto v, MakeV());` — assign on success, propagate
/// the error Status otherwise.
#define AIGS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  AIGS_ASSIGN_OR_RETURN_IMPL_(                                        \
      AIGS_STATUS_CONCAT_(_aigs_statusor_, __LINE__), lhs, rexpr)

#define AIGS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) {                                   \
    return statusor.status();                             \
  }                                                       \
  lhs = std::move(statusor).value()

}  // namespace aigs

#endif  // AIGS_UTIL_STATUS_H_
