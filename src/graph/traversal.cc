#include "graph/traversal.h"

namespace aigs {

std::vector<NodeId> CollectReachable(const Digraph& g, NodeId start) {
  std::vector<NodeId> out;
  BfsScratch scratch(g.NumNodes());
  scratch.ForwardBfs(
      g, start, [](NodeId) { return true; },
      [&out](NodeId v) { out.push_back(v); });
  return out;
}

std::vector<NodeId> CollectAncestors(const Digraph& g, NodeId start) {
  std::vector<NodeId> out;
  BfsScratch scratch(g.NumNodes());
  scratch.BackwardBfs(
      g, start, [](NodeId) { return true; },
      [&out](NodeId v) { out.push_back(v); });
  return out;
}

}  // namespace aigs
