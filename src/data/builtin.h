// The paper's worked-example hierarchies, reproduced node-for-node:
//  * Fig. 1 — the vehicle categorization hierarchy with its probability
//    annotations (Examples 1 and 2);
//  * Fig. 2(a) — the 7-node hierarchy of Example 3 (greedy cost 3 under
//    equal weights);
//  * Fig. 3(a) — the 4-node chain of Example 4 with heterogeneous prices
//    (cost-sensitive greedy 4.25 vs cost-blind 6).
#ifndef AIGS_DATA_BUILTIN_H_
#define AIGS_DATA_BUILTIN_H_

#include "graph/digraph.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"

namespace aigs {

/// Node indexes of the vehicle hierarchy (Fig. 1).
struct VehicleNodes {
  NodeId vehicle, car, nissan, honda, mercedes, maxima, sentra;
};

/// Fig. 1: labeled hierarchy; child order matches the paper's narration
/// (TopDown asks Car, then Nissan, Maxima, Sentra for a Sentra image).
Digraph BuildVehicleHierarchy(VehicleNodes* nodes = nullptr);

/// Fig. 1's probability annotations as object counts per 100 images:
/// Vehicle 4, Car 2, Nissan 8, Honda 4, Mercedes 2, Maxima 40, Sentra 40.
Distribution VehicleDistribution();

/// Fig. 2(a): root 1 with child 2; 2 → {3,4,5}; 3 → {6,7}. Node ids are the
/// paper's labels minus one.
Digraph BuildFig2Hierarchy();

/// Fig. 3(a): the chain 1 → 2 → 3 → 4 (ids 0..3).
Digraph BuildFig3Hierarchy();

/// Fig. 3's prices: c(1)=c(2)=c(4)=1, c(3)=5.
CostModel Fig3CostModel();

}  // namespace aigs

#endif  // AIGS_DATA_BUILTIN_H_
