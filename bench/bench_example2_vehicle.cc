// Example 2 reproduction: on the Fig. 1 vehicle hierarchy with 100 objects,
// the worst-case-optimal policy (WIGS objective) costs 260 total while the
// average-aware query order costs 204 — and the greedy policy matches the
// latter.
#include "bench/bench_common.h"
#include "data/builtin.h"
#include "eval/decision_tree.h"
#include "eval/scripted_policy.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

int Main() {
  std::printf("== Example 2: vehicle hierarchy, 100 objects ==\n\n");
  VehicleNodes nodes;
  auto h = Hierarchy::Build(BuildVehicleHierarchy(&nodes));
  AIGS_CHECK(h.ok());
  const Distribution dist = VehicleDistribution();

  const ScriptedPolicy wigs_optimal(
      *h,
      {nodes.nissan, nodes.maxima, nodes.sentra, nodes.car, nodes.honda,
       nodes.mercedes},
      "WIGS-optimal");
  const ScriptedPolicy average_aware(
      *h,
      {nodes.maxima, nodes.sentra, nodes.nissan, nodes.car, nodes.honda,
       nodes.mercedes},
      "average-aware");
  GreedyTreePolicy greedy(*h, dist);

  AsciiTable table({"Policy", "Total cost (100 objects)", "Average cost",
                    "Worst case"});
  for (const Policy* policy :
       {static_cast<const Policy*>(&wigs_optimal),
        static_cast<const Policy*>(&average_aware),
        static_cast<const Policy*>(&greedy)}) {
    const EvalStats stats = EvaluateExact(*policy, *h, dist);
    table.AddRow({policy->name(),
                  FormatDouble(stats.expected_cost * 100, 0),
                  FormatDouble(stats.expected_cost),
                  std::to_string(stats.max_cost)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: WIGS-optimal total 260 (worst case 4); average-aware "
              "total 204 (worst case 6).\n\n");

  auto tree = DecisionTree::Build(greedy, *h);
  AIGS_CHECK(tree.ok());
  std::printf("greedy decision tree (Definition 6):\n%s\n",
              tree->ToDot(*h).c_str());
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
