#include "util/csv.h"

#include <fstream>

#include "util/common.h"

namespace aigs {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(std::string& out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : arity_(header.size()) {
  AIGS_CHECK(arity_ > 0);
  rows_.push_back(std::move(header));
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  AIGS_CHECK(row.size() == arity_);
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      AppendField(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const std::string text = ToString();
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) {
    return Status::IOError("write failed for '" + path + "'");
  }
  return Status::OK();
}

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field += c;
        row_has_content = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (row_has_content || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace aigs
