#include "eval/cost_profile.h"

#include <gtest/gtest.h>

#include "core/aigs.h"
#include "eval/evaluator.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::MustDist;

TEST(CostProfile, MeanMatchesWeightedAverage) {
  const std::vector<std::uint32_t> costs{1, 2, 3, 4};
  const Distribution dist = MustDist({10, 20, 30, 40});
  const CostProfile profile(costs, dist);
  EXPECT_DOUBLE_EQ(profile.Mean(), (10.0 + 40 + 90 + 160) / 100.0);
  EXPECT_EQ(profile.Max(), 4u);
}

TEST(CostProfile, QuantilesOnUniformWeights) {
  const std::vector<std::uint32_t> costs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Distribution dist = EqualDistribution(10);
  const CostProfile profile(costs, dist);
  EXPECT_EQ(profile.Quantile(0.1), 1u);
  EXPECT_EQ(profile.Median(), 5u);
  EXPECT_EQ(profile.P90(), 9u);
  EXPECT_EQ(profile.P99(), 10u);
  EXPECT_EQ(profile.Quantile(1.0), 10u);
}

TEST(CostProfile, SkewPullsQuantilesDown) {
  // 99% of the mass on the cheapest target.
  const std::vector<std::uint32_t> costs{1, 50, 60};
  const Distribution dist = MustDist({99, 1, 0});
  const CostProfile profile(costs, dist);
  EXPECT_EQ(profile.Median(), 1u);
  EXPECT_EQ(profile.P90(), 1u);
  EXPECT_EQ(profile.P99(), 1u);
  EXPECT_EQ(profile.Quantile(0.995), 50u);
  // Zero-weight targets are invisible to the profile.
  EXPECT_EQ(profile.Max(), 50u);
}

TEST(CostProfile, IgnoresZeroWeightTargets) {
  const std::vector<std::uint32_t> costs{100, 2};
  const Distribution dist = MustDist({0, 7});
  const CostProfile profile(costs, dist);
  EXPECT_EQ(profile.Max(), 2u);
  EXPECT_DOUBLE_EQ(profile.Mean(), 2.0);
  EXPECT_EQ(profile.Median(), 2u);
}

TEST(CostProfile, TiedCostsMergeCorrectly) {
  const std::vector<std::uint32_t> costs{3, 3, 3, 7};
  const Distribution dist = EqualDistribution(4);
  const CostProfile profile(costs, dist);
  EXPECT_EQ(profile.Quantile(0.75), 3u);
  EXPECT_EQ(profile.Quantile(0.76), 7u);
}

TEST(CostProfile, EndToEndWithEvaluator) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(40, rng));
  const Distribution dist = ExponentialRandomDistribution(40, rng);
  GreedyTreePolicy greedy(h, dist);
  const EvalStats stats = EvaluateExact(greedy, h, dist);
  const CostProfile profile(stats.per_target_cost, dist);
  EXPECT_NEAR(profile.Mean(), stats.expected_cost, 1e-9);
  EXPECT_LE(profile.Median(), profile.P90());
  EXPECT_LE(profile.P90(), profile.P99());
  EXPECT_LE(profile.P99(), profile.Max());
  EXPECT_LE(profile.Max(), stats.max_cost);
}

}  // namespace
}  // namespace aigs
