// GreedyNaive (Algorithm 2): the definitional greedy policy — every round
// queries the exact weighted middle point of the alive candidate set.
//
// Two selection backends compute that argmin:
//  * kSplitIndex (default): the shared SplitWeightIndex — O(alive · log n)
//    per pick on trees (Fenwick over Euler order), O(alive · n/64) on DAGs
//    (masked weighted popcount over closure rows), with dominance pruning
//    cutting the scanned frontier further.
//  * kBfsRescan: the original Algorithm 2/3 loop — a fresh forward BFS per
//    candidate per pick, O(n·m) per question. Kept as the reference oracle
//    the equivalence suite and the fig6 runtime figure measure against.
// Both backends ask bit-identical question sequences (same argmin, same
// smallest-id tie-break); see tests/test_split_weight_index.cc.
#ifndef AIGS_CORE_GREEDY_NAIVE_H_
#define AIGS_CORE_GREEDY_NAIVE_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/selection_backend.h"
#include "core/split_weight_index.h"
#include "prob/distribution.h"
#include "prob/rounding.h"

namespace aigs {

/// Tuning knobs for GreedyNaive.
struct GreedyNaiveOptions {
  /// Round weights per Eq. (1) first. Off by default (Algorithm 2 uses raw
  /// probabilities); enable to mirror a GreedyDAG configuration exactly.
  bool use_rounded_weights = false;
  RoundingOptions rounding;
  /// Selection backend; kBfsRescan reproduces the seed's runtime behavior.
  SelectionBackend backend = SelectionBackend::kSplitIndex;
};

/// Definitional greedy policy; works on any hierarchy (tree or DAG).
class GreedyNaivePolicy : public Policy {
 public:
  GreedyNaivePolicy(const Hierarchy& hierarchy, const Distribution& dist,
                    GreedyNaiveOptions options = {});

  std::string name() const override {
    return options_.backend == SelectionBackend::kBfsRescan
               ? "GreedyNaive[bfs]"
               : "GreedyNaive";
  }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  std::vector<Weight> weights_;
  GreedyNaiveOptions options_;
  // Shared immutable selection base; sessions are O(1) overlays over it
  // (null for the BFS reference backend, which needs no precomputation).
  std::unique_ptr<SplitWeightBase> base_;
};

}  // namespace aigs

#endif  // AIGS_CORE_GREEDY_NAIVE_H_
