// Graphviz DOT export for hierarchies and decision trees — handy when
// debugging small instances or producing paper-style figures.
#ifndef AIGS_GRAPH_DOT_EXPORT_H_
#define AIGS_GRAPH_DOT_EXPORT_H_

#include <functional>
#include <string>

#include "graph/digraph.h"

namespace aigs {

/// Rendering options for ToDot.
struct DotOptions {
  /// Graph name in the DOT header.
  std::string name = "hierarchy";
  /// Optional per-node annotation appended to the label (e.g. "p=0.4").
  std::function<std::string(NodeId)> annotate;
};

/// Renders a finalized graph as DOT text. Nodes show their label (or id when
/// unlabeled) plus any annotation.
std::string ToDot(const Digraph& g, const DotOptions& options = {});

}  // namespace aigs

#endif  // AIGS_GRAPH_DOT_EXPORT_H_
