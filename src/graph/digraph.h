// Directed graph substrate for category hierarchies. A Digraph is built by
// adding nodes and edges, then Finalize()d into an immutable CSR form
// exposing children/parents spans, topological order and root information.
#ifndef AIGS_GRAPH_DIGRAPH_H_
#define AIGS_GRAPH_DIGRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace aigs {

/// A rooted directed acyclic graph (validated on Finalize). Node ids are
/// dense in [0, NumNodes). Parallel edges and self-loops are rejected.
class Digraph {
 public:
  Digraph() = default;

  // ---- Construction phase -------------------------------------------------

  /// Adds a node with an optional human-readable label; returns its id.
  NodeId AddNode(std::string label = {});

  /// Adds `count` unlabeled nodes; returns the id of the first.
  NodeId AddNodes(std::size_t count);

  /// Replaces the label of an existing node (construction phase only).
  void SetLabel(NodeId v, std::string label);

  /// Adds the directed edge parent -> child. Both ids must exist.
  void AddEdge(NodeId parent, NodeId child);

  /// Validates (acyclic, at least one node, no duplicate edges) and freezes
  /// the graph: builds CSR adjacency, topological order and depth array.
  /// If the graph has several source nodes and `add_dummy_root` is true, a
  /// dummy root labeled "<root>" is appended with an edge to every source
  /// (the paper's multi-root convention); otherwise several sources are an
  /// error.
  Status Finalize(bool add_dummy_root = true);

  // ---- Frozen accessors ---------------------------------------------------

  /// True after a successful Finalize().
  bool finalized() const { return finalized_; }

  /// Number of nodes (including any dummy root).
  std::size_t NumNodes() const { return labels_.size(); }

  /// Number of edges.
  std::size_t NumEdges() const { return edges_.size(); }

  /// The unique root (in-degree 0) node.
  NodeId root() const {
    AIGS_DCHECK(finalized_);
    return root_;
  }

  /// Children of v in insertion order.
  std::span<const NodeId> Children(NodeId v) const {
    AIGS_DCHECK(finalized_ && v < NumNodes());
    return {children_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }

  /// Parents of v.
  std::span<const NodeId> Parents(NodeId v) const {
    AIGS_DCHECK(finalized_ && v < NumNodes());
    return {parents_.data() + parent_offsets_[v],
            parent_offsets_[v + 1] - parent_offsets_[v]};
  }

  std::size_t OutDegree(NodeId v) const { return Children(v).size(); }
  std::size_t InDegree(NodeId v) const { return Parents(v).size(); }

  /// True iff v has no children.
  bool IsLeaf(NodeId v) const { return OutDegree(v) == 0; }

  /// Label of v (may be empty).
  const std::string& Label(NodeId v) const {
    AIGS_DCHECK(v < NumNodes());
    return labels_[v];
  }

  /// Nodes in a topological order (root first).
  const std::vector<NodeId>& TopologicalOrder() const {
    AIGS_DCHECK(finalized_);
    return topo_order_;
  }

  /// Length of the longest edge path from the root to v.
  int Depth(NodeId v) const {
    AIGS_DCHECK(finalized_ && v < NumNodes());
    return depth_[v];
  }

  /// Length of the longest path from the root (the paper's hierarchy
  /// "height" h).
  int Height() const {
    AIGS_DCHECK(finalized_);
    return height_;
  }

  /// Maximum out-degree over all nodes (the paper's d).
  std::size_t MaxOutDegree() const {
    AIGS_DCHECK(finalized_);
    return max_out_degree_;
  }

  /// True iff every non-root node has exactly one parent (rooted tree).
  bool IsTree() const {
    AIGS_DCHECK(finalized_);
    return is_tree_;
  }

 private:
  struct Edge {
    NodeId parent;
    NodeId child;
  };

  bool finalized_ = false;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;

  // CSR adjacency, filled by Finalize().
  std::vector<std::size_t> child_offsets_;
  std::vector<NodeId> children_;
  std::vector<std::size_t> parent_offsets_;
  std::vector<NodeId> parents_;

  NodeId root_ = kInvalidNode;
  std::vector<NodeId> topo_order_;
  std::vector<int> depth_;
  int height_ = 0;
  std::size_t max_out_degree_ = 0;
  bool is_tree_ = false;
};

}  // namespace aigs

#endif  // AIGS_GRAPH_DIGRAPH_H_
