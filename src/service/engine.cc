#include "service/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "util/thread_pool.h"

namespace aigs {

/// Background drain pipeline: one coordinator thread consuming publish
/// jobs plus a small private pool that migrates sessions within a batch.
///
/// Cancellation model: Enqueue bumps a generation; the coordinator checks
/// it between batches (and per tick inside a batch pass), so a newer
/// Publish rolls the in-flight drain forward instead of letting it finish
/// against a stale epoch. A job never pins an epoch itself — it re-reads
/// the engine's current state when it runs, so the sweep always targets
/// the newest snapshot no matter how Enqueues interleave.
///
/// Safety model: every per-session step re-checks liveness through
/// SessionManager::Peek (no TTL refresh — an evicted session is never
/// resurrected), takes the session mutex with try_lock (a session touched
/// by a live request is retried next tick, never blocked on), and leaves
/// mid-question sessions pinned exactly like the inline sweep.
class EpochDrainWorker {
 public:
  EpochDrainWorker(Engine* engine, DrainOptions options)
      : engine_(engine),
        options_(options),
        pool_(std::max<std::size_t>(1, options.max_concurrency)),
        coordinator_([this] { Loop(); }) {}

  ~EpochDrainWorker() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      stop_.store(true, std::memory_order_relaxed);
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    coordinator_.join();
  }

  /// Replaces any pending job (the newest publish wins) and cancels the
  /// running one at its next batch boundary.
  void Enqueue(std::shared_ptr<PlanCache> cache,
               std::shared_ptr<PlanCache> warm_source, bool sweep) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ = Job{std::move(cache), std::move(warm_source), sweep};
      has_pending_ = true;
      generation_.fetch_add(1, std::memory_order_relaxed);
      drains_.fetch_add(1, std::memory_order_relaxed);
    }
    work_cv_.notify_all();
  }

  /// Blocks until no job is pending or running.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return shutdown_ || (!has_pending_ && !active_); });
  }

  DrainStats Snapshot() const {
    DrainStats stats;
    stats.background = true;
    stats.phase =
        static_cast<DrainPhase>(phase_.load(std::memory_order_relaxed));
    stats.target_epoch = target_epoch_.load(std::memory_order_relaxed);
    stats.sessions_remaining = remaining_.load(std::memory_order_relaxed);
    stats.warm_total = warm_total_.load(std::memory_order_relaxed);
    stats.warm_seeded = warm_seeded_.load(std::memory_order_relaxed);
    stats.batches = batches_.load(std::memory_order_relaxed);
    stats.last_batch = last_batch_.load(std::memory_order_relaxed);
    stats.migrated = migrated_.load(std::memory_order_relaxed);
    stats.failed = failed_.load(std::memory_order_relaxed);
    stats.skipped_pinned = skipped_pinned_.load(std::memory_order_relaxed);
    stats.retried_busy = retried_busy_.load(std::memory_order_relaxed);
    stats.expired = expired_.load(std::memory_order_relaxed);
    stats.drains = drains_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.rolled_forward = rolled_forward_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  struct Job {
    /// The freshly published trie and its warm-seed source; either may be
    /// null (cache disabled or warm-publish off).
    std::shared_ptr<PlanCache> cache;
    std::shared_ptr<PlanCache> warm_source;
    bool sweep = false;
  };

  bool Superseded(std::uint64_t generation) const {
    return stop_.load(std::memory_order_relaxed) ||
           generation_.load(std::memory_order_relaxed) != generation;
  }

  void Loop() {
    for (;;) {
      Job job;
      std::uint64_t generation = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return shutdown_ || has_pending_; });
        if (shutdown_) {
          return;  // abandon pending work; old epochs just stay pinned
        }
        job = std::move(pending_);
        has_pending_ = false;
        active_ = true;
        generation = generation_.load(std::memory_order_relaxed);
      }
      RunJob(job, generation);
      phase_.store(static_cast<std::uint8_t>(DrainPhase::kIdle),
                   std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        active_ = false;
      }
      idle_cv_.notify_all();
    }
  }

  void RunJob(const Job& job, std::uint64_t generation) {
    // Re-read the engine's CURRENT epoch state: publishes are serialized
    // by the snapshot mutex, so this is the newest epoch even when the
    // Enqueue that carried `job` raced another publish.
    std::shared_ptr<const CatalogSnapshot> snapshot;
    std::shared_ptr<PlanCache> current_cache;
    engine_->CurrentEpochState(&snapshot, &current_cache);
    if (snapshot == nullptr) {
      return;
    }
    target_epoch_.store(snapshot->epoch(), std::memory_order_relaxed);

    // WARM phase. Only when the job's trie is still the live one — a
    // superseded publish's trie has already been retired, and seeding it
    // would be wasted work.
    if (job.cache != nullptr && job.cache == current_cache &&
        job.warm_source != nullptr) {
      if (!Warm(job, *snapshot, generation)) {
        rolled_forward_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }

    // SWEEP phase.
    if (job.sweep) {
      if (!Sweep(*snapshot, generation)) {
        rolled_forward_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Warm phase body; false when superseded mid-way.
  bool Warm(const Job& job, const CatalogSnapshot& snapshot,
            std::uint64_t generation) {
    phase_.store(static_cast<std::uint8_t>(DrainPhase::kWarming),
                 std::memory_order_relaxed);
    const std::vector<HotPrefix> prefixes = job.warm_source->HottestPrefixes(
        engine_->options_.plan_cache.warm_budget);
    warm_total_.store(prefixes.size(), std::memory_order_relaxed);
    warm_seeded_.store(0, std::memory_order_relaxed);
    std::size_t done = 0;
    while (done < prefixes.size()) {
      if (Superseded(generation)) {
        return false;
      }
      const std::size_t end =
          std::min(done + options_.batch_size, prefixes.size());
      std::size_t seeded = 0;
      for (; done < end; ++done) {
        seeded += engine_->WarmSeedPrefix(snapshot, *job.cache,
                                          prefixes[done])
                      ? 1
                      : 0;
      }
      warm_seeded_.fetch_add(seeded, std::memory_order_relaxed);
    }
    return true;
  }

  /// Sweep phase body; false when superseded mid-way.
  bool Sweep(const CatalogSnapshot& snapshot, std::uint64_t generation) {
    using Clock = std::chrono::steady_clock;
    phase_.store(static_cast<std::uint8_t>(DrainPhase::kSweeping),
                 std::memory_order_relaxed);
    const std::uint64_t target_epoch = snapshot.epoch();
    std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>> work;
    for (auto& [id, session] : engine_->sessions_.SnapshotSessions()) {
      if (session != nullptr &&
          session->epoch.load(std::memory_order_relaxed) != target_epoch) {
        work.emplace_back(id, std::move(session));
      }
    }
    remaining_.store(work.size(), std::memory_order_relaxed);

    while (!work.empty()) {
      std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>>
          retry;
      std::mutex retry_mu;
      Clock::time_point tick_deadline =
          Clock::now() + std::chrono::milliseconds(options_.tick_budget_ms);
      for (std::size_t start = 0; start < work.size();
           start += options_.batch_size) {
        if (Superseded(generation)) {
          return false;
        }
        if (Clock::now() >= tick_deadline) {
          std::this_thread::yield();  // tick boundary: give traffic a gap
          tick_deadline = Clock::now() +
                          std::chrono::milliseconds(options_.tick_budget_ms);
        }
        const std::size_t end =
            std::min(start + options_.batch_size, work.size());
        pool_.ParallelFor(end - start, [&](std::size_t i) {
          DrainSession(work[start + i].first, work[start + i].second,
                       target_epoch, &retry, &retry_mu);
        });
        batches_.fetch_add(1, std::memory_order_relaxed);
        last_batch_.store(end - start, std::memory_order_relaxed);
        remaining_.store(work.size() - end + retry.size(),
                         std::memory_order_relaxed);
      }
      if (retry.size() == work.size()) {
        // Every remaining session was lock-busy; back off briefly instead
        // of spinning against live traffic (a newer publish or shutdown
        // wakes the wait immediately).
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
          return shutdown_ || has_pending_;
        });
        if (shutdown_ || has_pending_) {
          return false;
        }
      }
      work = std::move(retry);
    }
    remaining_.store(0, std::memory_order_relaxed);
    return true;
  }

  /// One session's drain step (runs on the pool).
  void DrainSession(
      SessionId id, const std::shared_ptr<ServiceSession>& session,
      std::uint64_t target_epoch,
      std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>>*
          retry,
      std::mutex* retry_mu) {
    // Liveness re-check WITHOUT a TTL refresh: a session the manager
    // evicted (or replaced) since the sweep captured it is dropped, never
    // resurrected or double-counted.
    if (engine_->sessions_.Peek(id) != session) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::unique_lock<std::mutex> lock(session->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      retried_busy_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> retry_lock(*retry_mu);
      retry->emplace_back(id, session);
      return;
    }
    if (session->epoch.load(std::memory_order_relaxed) >= target_epoch) {
      return;  // a live request or an explicit Migrate got there first
    }
    if (session->has_pending) {
      // The client owes an answer to a question it has already been
      // shown. Migrating would change it under them — leave the session
      // pinned (it migrates after its next answer or drains naturally);
      // retrying next tick would just re-skip it.
      skipped_pinned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (engine_->MigrateLocked(id, *session).ok()) {
      migrated_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Engine* engine_;
  DrainOptions options_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  Job pending_;
  bool has_pending_ = false;
  bool active_ = false;
  bool shutdown_ = false;

  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint8_t> phase_{
      static_cast<std::uint8_t>(DrainPhase::kIdle)};
  std::atomic<std::uint64_t> target_epoch_{0};
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::size_t> warm_total_{0};
  std::atomic<std::size_t> warm_seeded_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::size_t> last_batch_{0};
  std::atomic<std::uint64_t> migrated_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> skipped_pinned_{0};
  std::atomic<std::uint64_t> retried_busy_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rolled_forward_{0};

  std::thread coordinator_;  // last: joined before members die
};

const char* DrainPhaseName(DrainPhase phase) {
  switch (phase) {
    case DrainPhase::kIdle:
      return "idle";
    case DrainPhase::kWarming:
      return "warming";
    case DrainPhase::kSweeping:
      return "sweeping";
  }
  return "?";
}

namespace {

const char* KindName(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kReach:
      return "reach";
    case Query::Kind::kReachBatch:
      return "reach-batch";
    case Query::Kind::kChoice:
      return "choice";
    case Query::Kind::kDone:
      return "done";
  }
  return "?";
}

/// True iff `planned` poses exactly the question `step` records (the
/// answer is data, not part of the match).
bool QuestionMatchesStep(const Query& planned, const TranscriptStep& step) {
  if (planned.kind != step.kind) {
    return false;
  }
  return planned.kind == Query::Kind::kReach
             ? (step.nodes.size() == 1 && planned.node == step.nodes[0])
             : planned.choices == step.nodes;
}

/// Shape validation for replayed steps — adversarial blobs must fail with
/// a Status before any applier sees them.
Status ValidateStepShape(const TranscriptStep& step, std::size_t num_nodes,
                         std::size_t index) {
  const std::string at = " (step " + std::to_string(index) + ")";
  if (step.nodes.empty()) {
    return Status::InvalidArgument("transcript step names no nodes" + at);
  }
  for (const NodeId v : step.nodes) {
    if (v >= num_nodes) {
      return Status::OutOfRange("transcript node " + std::to_string(v) +
                                " outside the current hierarchy" + at);
    }
  }
  switch (step.kind) {
    case Query::Kind::kReach:
      if (step.nodes.size() != 1) {
        return Status::InvalidArgument("reach step with " +
                                       std::to_string(step.nodes.size()) +
                                       " nodes" + at);
      }
      break;
    case Query::Kind::kReachBatch:
      if (step.batch_answers.size() != step.nodes.size()) {
        return Status::InvalidArgument("batch step with mismatched answer "
                                       "count" + at);
      }
      break;
    case Query::Kind::kChoice:
      if (step.choice < -1 ||
          step.choice >= static_cast<int>(step.nodes.size())) {
        return Status::OutOfRange("choice answer outside [-1, " +
                                  std::to_string(step.nodes.size()) + ")" +
                                  at);
      }
      break;
    case Query::Kind::kDone:
      return Status::InvalidArgument("transcript contains a 'done' step" +
                                     at);
  }
  return Status::OK();
}

/// Applies a step whose question the session's planner just reproduced —
/// the exact-replay path (identical to the live Answer switch).
Status ApplyMatchedStep(SearchSession& search, const TranscriptStep& step) {
  switch (step.kind) {
    case Query::Kind::kReach:
      search.OnReach(step.nodes[0], step.yes);
      return Status::OK();
    case Query::Kind::kReachBatch:
      // A crafted blob may contain an inconsistent round the live engine
      // would have rejected; reject it here the same way.
      return search.TryOnReachBatch(step.nodes, step.batch_answers);
    case Query::Kind::kChoice:
      search.OnChoice(step.nodes, step.choice);
      return Status::OK();
    case Query::Kind::kDone:
      break;  // excluded by ValidateStepShape
  }
  AIGS_CHECK(false);
  return Status::Internal("unreachable");
}

/// The session's complete serializable state (Save, WAL open records, and
/// checkpoint blobs all encode exactly this). Caller holds the session
/// mutex (or the session is still private).
SerializedSession SnapshotState(const ServiceSession& session) {
  SerializedSession out;
  out.fingerprint = session.snapshot->fingerprint();
  out.hierarchy_fingerprint = session.snapshot->hierarchy_fingerprint();
  out.epoch = session.snapshot->epoch();
  out.policy_spec = session.policy_spec;
  out.steps = session.transcript;
  return out;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), sessions_(std::move(options.sessions)) {
  if (options_.drain.background) {
    drain_ = std::make_unique<EpochDrainWorker>(this, options_.drain);
  }
}

// Out of line so ~EpochDrainWorker is visible; drain_ is declared last and
// therefore destroyed first, stopping its threads while the rest of the
// engine is still alive.
Engine::~Engine() = default;

void Engine::WaitForDrain() {
  if (drain_ != nullptr) {
    drain_->Wait();
  }
}

DrainStats Engine::DrainProgress() const {
  return drain_ != nullptr ? drain_->Snapshot() : DrainStats{};
}

StatusOr<std::shared_ptr<const CatalogSnapshot>> Engine::Publish(
    CatalogConfig config) {
  std::shared_ptr<const CatalogSnapshot> snapshot;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<const CatalogSnapshot> old_snapshot;
  std::shared_ptr<PlanCache> old_cache;
  if (config.build_pool == nullptr) {
    // Publish runs on a caller thread, never on a shared-pool worker, so
    // sharding the per-spec policy builds on the default pool is safe.
    config.build_pool = &ThreadPool::Default();
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    AIGS_ASSIGN_OR_RETURN(
        snapshot, CatalogSnapshot::Build(std::move(config), next_epoch_));
    ++next_epoch_;
    old_snapshot = std::exchange(snapshot_, snapshot);
    // A fresh epoch gets a fresh plan trie; the old one is retained once
    // (the warm-seed source and the `warm` REPL command) and then retires
    // with its snapshot's refcount — a publish invalidates every stale plan
    // without any flush or version check on the hot path.
    old_cache = std::exchange(
        plan_cache_, options_.plan_cache.enabled
                         ? std::make_shared<PlanCache>(options_.plan_cache)
                         : nullptr);
    previous_snapshot_ = old_snapshot;
    previous_plan_cache_ = old_cache;
    cache = plan_cache_;
  }
  // Both follow-ups run outside the snapshot mutex: they only touch the
  // captured shared_ptrs and per-session mutexes, so concurrent traffic
  // (and even a concurrent Publish) proceeds. With a background worker
  // they are handed off entirely — Publish stays O(1) in the session
  // count — and a drain already in flight rolls forward to this epoch.
  const bool warm = cache != nullptr && old_cache != nullptr &&
                    options_.plan_cache.warm_publish;
  const bool sweep =
      options_.migration.sweep_on_publish && old_snapshot != nullptr;
  if (drain_ != nullptr) {
    if (warm || sweep) {
      drain_->Enqueue(warm ? cache : nullptr, warm ? old_cache : nullptr,
                      sweep);
    }
  } else {
    if (warm) {
      WarmSeed(*snapshot, *cache, *old_cache,
               options_.plan_cache.warm_budget);
    }
    if (sweep) {
      MigrateIdleSessions();
    }
  }
  return snapshot;
}

std::shared_ptr<const CatalogSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Engine::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ == nullptr ? 0 : snapshot_->epoch();
}

void Engine::CurrentEpochState(
    std::shared_ptr<const CatalogSnapshot>* snap,
    std::shared_ptr<PlanCache>* cache) const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  *snap = snapshot_;
  *cache = plan_cache_;
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::BuildSession(
    std::shared_ptr<const CatalogSnapshot> snap,
    std::shared_ptr<PlanCache> cache, const std::string& policy_spec) {
  AIGS_ASSIGN_OR_RETURN(const Policy* policy, snap->PolicyFor(policy_spec));
  auto session = std::make_shared<ServiceSession>();
  session->epoch.store(snap->epoch(), std::memory_order_relaxed);
  session->snapshot = std::move(snap);
  session->policy_spec = policy_spec;
  session->policy = policy;
  session->plan_cache = std::move(cache);
  session->search = policy->NewSession();
  session->plan_prefix = session->plan_cache != nullptr
                             ? session->plan_cache->RootFor(policy_spec)
                             : kNoPlanPrefix;
  return session;
}

// ---- per-op traffic counters (OpStats) -------------------------------------

void Engine::CountOp(OpKind op, const Status& status) {
  op_counts_[op].fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    const auto code = static_cast<std::size_t>(status.code());
    if (code < rejected_by_code_.size()) {
      rejected_by_code_[code].fetch_add(1, std::memory_order_relaxed);
    }
  }
}

StatusOr<SessionId> Engine::Open(const std::string& policy_spec,
                                 SessionId proposed_id) {
  StatusOr<SessionId> result = OpenImpl(policy_spec, proposed_id);
  CountOp(kOpOpen, result.status());
  return result;
}

StatusOr<Query> Engine::Ask(SessionId id) {
  StatusOr<Query> result = AskImpl(id);
  CountOp(kOpAsk, result.status());
  return result;
}

Status Engine::Answer(SessionId id, const SessionAnswer& answer) {
  const Status status = AnswerImpl(id, answer);
  CountOp(kOpAnswer, status);
  return status;
}

StatusOr<std::string> Engine::Save(SessionId id) {
  StatusOr<std::string> result = SaveImpl(id);
  CountOp(kOpSave, result.status());
  return result;
}

StatusOr<SessionId> Engine::Resume(const std::string& serialized,
                                   SessionId proposed_id) {
  StatusOr<SessionId> result = ResumeImpl(serialized, proposed_id);
  CountOp(kOpResume, result.status());
  return result;
}

StatusOr<MigrateResult> Engine::Migrate(SessionId id) {
  StatusOr<MigrateResult> result = MigrateImpl(id);
  CountOp(kOpMigrate, result.status());
  return result;
}

StatusOr<MigrateResult> Engine::Migrate(const std::string& serialized,
                                        SessionId proposed_id) {
  StatusOr<MigrateResult> result = MigrateBlobImpl(serialized, proposed_id);
  CountOp(kOpMigrate, result.status());
  return result;
}

Status Engine::Close(SessionId id) {
  const Status status = CloseImpl(id);
  CountOp(kOpClose, status);
  return status;
}

StatusOr<SessionId> Engine::InsertSession(
    std::shared_ptr<ServiceSession> session, SessionId proposed_id) {
  if (proposed_id == 0) {
    return sessions_.Insert(std::move(session));
  }
  AIGS_RETURN_NOT_OK(sessions_.InsertWithId(proposed_id, std::move(session)));
  return proposed_id;
}

StatusOr<SessionId> Engine::OpenImpl(const std::string& policy_spec,
                                     SessionId proposed_id) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), policy_spec));
  AIGS_ASSIGN_OR_RETURN(const SessionId id,
                        InsertSession(session, proposed_id));
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (const Status logged = store->AppendOpen(id, SnapshotState(*session));
        !logged.ok()) {
      // Not durable ⇒ not acked: the id never reaches the client.
      (void)sessions_.Erase(id);
      return logged;
    }
  }
  MaybeAutoCheckpoint();
  return id;
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::FindSession(SessionId id) {
  return sessions_.Find(id);
}

Query Engine::ResolvePending(ServiceSession& session) {
  if (session.has_pending) {
    return session.pending;
  }
  Query query;
  PlanCache* cache = session.plan_cache.get();
  if (cache != nullptr &&
      session.transcript.size() <= cache->options().max_depth) {
    if (std::optional<Query> hit = cache->Lookup(session.plan_prefix)) {
      // Warm path: the question was planned once by some session at this
      // (policy, transcript) prefix — or pre-seeded at publish time — so
      // Ask skips the planner here. (The candidate-state policies skip it
      // entirely; the phase-automata baselines still settle their derived
      // state inside the applier — their planners are O(children) cheap,
      // and the cache exists for the expensive middle-point planners.)
      query = *std::move(hit);
    } else {
      query = session.search->Next();
      cache->Insert(session.plan_prefix, query);
    }
  } else {
    query = session.search->Next();
  }
  session.pending = query;
  session.has_pending = true;
  return query;
}

StatusOr<Query> Engine::AskImpl(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  session->reask_after_migration = false;
  return ResolvePending(*session);
}

Status Engine::AnswerImpl(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    AIGS_RETURN_NOT_OK(AnswerLocked(id, *session, answer));
  }
  // Off the hot lock: a threshold-crossing answer pays for the checkpoint
  // (bounded, amortized), every other answer only reads one atomic.
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status Engine::AnswerLocked(SessionId id, ServiceSession& session_ref,
                            const SessionAnswer& answer) {
  ServiceSession* const session = &session_ref;
  if (session->reask_after_migration) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " was migrated to a new epoch after its question was shown; ask "
        "again before answering");
  }
  const Query query = ResolvePending(*session);
  if (query.kind == Query::Kind::kDone) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " already identified its target; nothing to answer");
  }
  // Service-boundary guard for the SearchSession default-fatal paths: a
  // mismatched answer kind is a client error, not a process abort.
  if (answer.kind != query.kind) {
    return Status::InvalidArgument(
        std::string("pending question expects a ") + KindName(query.kind) +
        " answer, got " + KindName(answer.kind));
  }

  TranscriptStep step;
  step.kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kReach:
      step.nodes = {query.node};
      step.yes = answer.yes;
      session->search->OnReach(query.node, answer.yes);
      break;
    case Query::Kind::kReachBatch:
      if (answer.batch.size() != query.choices.size()) {
        return Status::InvalidArgument(
            "batch answer has " + std::to_string(answer.batch.size()) +
            " entries; the pending batch asks " +
            std::to_string(query.choices.size()) + " questions");
      }
      step.nodes = query.choices;
      step.batch_answers = answer.batch;
      // Content validation too: a mutually inconsistent round (it would
      // eliminate every candidate) bounces with InvalidArgument and leaves
      // the question pending — never the fatal in-process path.
      AIGS_RETURN_NOT_OK(
          session->search->TryOnReachBatch(query.choices, answer.batch));
      break;
    case Query::Kind::kChoice:
      if (answer.choice < -1 ||
          answer.choice >= static_cast<int>(query.choices.size())) {
        return Status::OutOfRange(
            "choice answer " + std::to_string(answer.choice) +
            " outside [-1, " + std::to_string(query.choices.size()) + ")");
      }
      step.nodes = query.choices;
      step.choice = answer.choice;
      session->search->OnChoice(query.choices, answer.choice);
      break;
    case Query::Kind::kDone:
      AIGS_CHECK(false);  // handled above
  }
  // Advance the rolling plan key by this step's trie edge (one O(edge)
  // intern, depth-independent) and drop the consumed plan. Past the depth
  // cap the key is never read again, so stop maintaining it.
  if (session->plan_cache != nullptr &&
      session->transcript.size() < session->plan_cache->options().max_depth) {
    std::string edge;
    SessionCodec::AppendStepKey(step, &edge);
    session->plan_prefix =
        session->plan_cache->Advance(session->plan_prefix, edge);
  }
  session->has_pending = false;
  session->transcript.push_back(std::move(step));
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    // Logged under the session mutex so a session's step records hit the
    // WAL in transcript order. An IOError here means the step is applied
    // in memory but NOT acked durable — the error return tells the client
    // exactly that, and the store counts the degradation.
    AIGS_RETURN_NOT_OK(store->AppendStep(
        id, session->snapshot->fingerprint(),
        session->transcript.size() - 1, session->transcript.back()));
  }
  return Status::OK();
}

StatusOr<std::string> Engine::SaveImpl(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return SessionCodec::Encode(SnapshotState(*session));
}

Status Engine::ReplayTranscript(ServiceSession& session,
                                std::vector<TranscriptStep> steps,
                                ReplayMode mode, std::size_t max_divergence,
                                std::size_t* divergent_steps) {
  const std::size_t num_nodes = session.snapshot->hierarchy().NumNodes();
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    TranscriptStep& step = steps[i];
    AIGS_RETURN_NOT_OK(ValidateStepShape(step, num_nodes, i));
    const Query planned = session.search->Next();
    // The replay already paid the planner; memoize its answer so restores
    // and migrations warm the trie exactly like Ask's miss path would.
    // Sound even past a divergence: the trie key is the actual transcript
    // prefix, and the planner is a pure function of it.
    if (session.plan_cache != nullptr &&
        session.transcript.size() <=
            session.plan_cache->options().max_depth) {
      session.plan_cache->Insert(session.plan_prefix, planned);
    }
    if (QuestionMatchesStep(planned, step)) {
      step.diverged = false;  // this epoch's planner reproduces it after all
      AIGS_RETURN_NOT_OK(ApplyMatchedStep(*session.search, step));
    } else if (step.diverged) {
      // Recorded divergence from an earlier migration: the step was never
      // this epoch's plan, so fold it observed in BOTH modes (an exact
      // Resume of a migrated session must round-trip) without charging the
      // fresh-divergence budget it already passed once.
      AIGS_RETURN_NOT_OK(session.search->TryApplyObserved(step));
    } else if (mode == ReplayMode::kExact) {
      return Status::Internal(
          "transcript replay diverged at step " + std::to_string(i) +
          ": the snapshot no longer reproduces the saved question sequence");
    } else {
      ++divergent;
      if (divergent > max_divergence) {
        return Status::FailedPrecondition(
            "migration divergence budget (" +
            std::to_string(max_divergence) + ") exceeded at step " +
            std::to_string(i) + " of " + std::to_string(steps.size()));
      }
      step.diverged = true;
      // The planner would ask something else here; fold the recorded
      // answer through the policy's observed-step applier instead.
      AIGS_RETURN_NOT_OK(session.search->TryApplyObserved(step));
    }
    if (session.plan_cache != nullptr &&
        session.transcript.size() <
            session.plan_cache->options().max_depth) {
      std::string edge;
      SessionCodec::AppendStepKey(step, &edge);
      session.plan_prefix =
          session.plan_cache->Advance(session.plan_prefix, edge);
    }
    session.transcript.push_back(std::move(step));
  }
  if (divergent_steps != nullptr) {
    // Surface the total divergence of the resulting transcript (recorded
    // flags that persisted plus fresh ones); the budget above only charges
    // the fresh ones.
    *divergent_steps = 0;
    for (const TranscriptStep& step : session.transcript) {
      *divergent_steps += step.diverged ? 1 : 0;
    }
  }
  return Status::OK();
}

StatusOr<SessionId> Engine::ResumeImpl(const std::string& serialized,
                                       SessionId proposed_id) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session was recorded on a different catalog (fingerprint "
        "mismatch); replay would not be exact — use Migrate to replay onto "
        "the current epoch with divergence tolerated");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));
  // Replay with verification: determinism (Definition 6) guarantees the
  // fresh session regenerates the recorded questions in order; any
  // divergence means the catalog or policy changed under us.
  AIGS_RETURN_NOT_OK(ReplayTranscript(*session, saved.steps,
                                      ReplayMode::kExact,
                                      /*max_divergence=*/0, nullptr));
  AIGS_ASSIGN_OR_RETURN(const SessionId id,
                        InsertSession(session, proposed_id));
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (const Status logged = store->AppendOpen(id, SnapshotState(*session));
        !logged.ok()) {
      (void)sessions_.Erase(id);
      return logged;
    }
  }
  return id;
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::MigrateDecoded(
    const SerializedSession& saved, std::size_t* divergent_steps) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  // Migration tolerates changed weights, never a changed node space: a v1
  // blob carries no hierarchy digest, so it only qualifies when its full
  // fingerprint still matches (the exact case).
  if (saved.hierarchy_fingerprint != 0) {
    if (saved.hierarchy_fingerprint != snap->hierarchy_fingerprint()) {
      return Status::FailedPrecondition(
          "saved session was recorded on a different hierarchy; its node "
          "ids do not transfer");
    }
  } else if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session predates hierarchy fingerprints (aigs-session/1) "
        "and its catalog fingerprint no longer matches");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));
  AIGS_RETURN_NOT_OK(ReplayTranscript(
      *session, saved.steps, ReplayMode::kTolerant,
      options_.migration.max_divergence, divergent_steps));
  return session;
}

StatusOr<MigrateResult> Engine::MigrateBlobImpl(const std::string& serialized,
                                                SessionId proposed_id) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  MigrateResult result;
  result.from_epoch = saved.epoch;
  result.steps = saved.steps.size();
  auto session = MigrateDecoded(saved, &result.divergent_steps);
  if (!session.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return session.status();
  }
  result.to_epoch = (*session)->snapshot->epoch();
  AIGS_ASSIGN_OR_RETURN(result.id, InsertSession(*session, proposed_id));
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock((*session)->mutex);
    if (const Status logged =
            store->AppendOpen(result.id, SnapshotState(**session));
        !logged.ok()) {
      (void)sessions_.Erase(result.id);
      return logged;
    }
  }
  sessions_migrated_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<MigrateResult> Engine::MigrateLocked(SessionId id,
                                              ServiceSession& session) {
  MigrateResult result;
  result.id = id;
  result.from_epoch = session.snapshot->epoch();
  result.steps = session.transcript.size();

  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  AIGS_CHECK(snap != nullptr);  // the session exists, so Publish happened
  result.to_epoch = snap->epoch();
  if (snap.get() == session.snapshot.get()) {
    result.to_epoch = result.from_epoch;
    return result;  // already current: zero-step no-op
  }
  if (session.snapshot->hierarchy_fingerprint() !=
      snap->hierarchy_fingerprint()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "current epoch runs a different hierarchy; node ids do not "
        "transfer");
  }
  // Build and replay into a private scratch session; the live one is only
  // touched on success, so failures leave it intact on its old epoch.
  auto rebuilt = BuildSession(std::move(snap), std::move(cache),
                              session.policy_spec);
  if (!rebuilt.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return rebuilt.status();
  }
  if (const Status replay = ReplayTranscript(
          **rebuilt, session.transcript, ReplayMode::kTolerant,
          options_.migration.max_divergence, &result.divergent_steps);
      !replay.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return replay;
  }
  ServiceSession& fresh = **rebuilt;
  const bool had_pending = session.has_pending;
  session.snapshot = std::move(fresh.snapshot);
  session.policy = fresh.policy;
  session.plan_cache = std::move(fresh.plan_cache);
  session.search = std::move(fresh.search);
  session.transcript = std::move(fresh.transcript);
  session.plan_prefix = fresh.plan_prefix;
  session.has_pending = false;
  // A question the client already saw may differ on the new epoch; force a
  // re-Ask instead of silently applying their answer to a new question.
  session.reask_after_migration = had_pending;
  session.epoch.store(result.to_epoch, std::memory_order_relaxed);
  sessions_migrated_.fetch_add(1, std::memory_order_relaxed);
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    // Re-log the whole session: the migration rewrote its fingerprint and
    // divergence flags, so subsequent step records chain off this state.
    // Best-effort — an IOError leaves the WAL describing the pre-migration
    // prefix (still a consistent recovery) and is counted by the store.
    (void)store->AppendOpen(id, SnapshotState(session));
  }
  return result;
}

StatusOr<MigrateResult> Engine::MigrateImpl(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return MigrateLocked(id, *session);
}

MigrateSweepStats Engine::MigrateIdleSessions() {
  MigrateSweepStats stats;
  std::shared_ptr<const CatalogSnapshot> current;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&current, &cache);
  if (current == nullptr) {
    return stats;
  }
  for (auto& [id, session] : sessions_.SnapshotSessions()) {
    if (session == nullptr) {
      continue;
    }
    ++stats.scanned;
    // Liveness re-check WITHOUT a TTL refresh (same contract as the
    // background sweep): an entry the manager evicted since the capture is
    // dropped, never resurrected or double-counted.
    if (sessions_.Peek(id) != session) {
      ++stats.expired;
      continue;
    }
    std::unique_lock<std::mutex> lock(session->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      ++stats.skipped_busy;  // another operation holds it: not idle
      continue;
    }
    if (session->snapshot.get() == current.get()) {
      ++stats.already_current;
      continue;
    }
    if (session->has_pending) {
      // The client owes an answer to a question it has already been shown;
      // migrating now would change that question under them. Leave the
      // session pinned — it migrates after its next answer, or drains.
      ++stats.skipped_busy;
      continue;
    }
    if (const auto result = MigrateLocked(id, *session); result.ok()) {
      ++stats.migrated;
      stats.divergent_steps += result->divergent_steps;
    } else {
      ++stats.failed;
    }
  }
  return stats;
}

std::size_t Engine::WarmSeed(const CatalogSnapshot& snap, PlanCache& target,
                             const PlanCache& source, std::size_t budget) {
  std::size_t seeded = 0;
  for (const HotPrefix& prefix : source.HottestPrefixes(budget)) {
    seeded += WarmSeedPrefix(snap, target, prefix) ? 1 : 0;
  }
  return seeded;
}

bool Engine::WarmSeedPrefix(const CatalogSnapshot& snap, PlanCache& target,
                            const HotPrefix& prefix) {
  const std::size_t num_nodes = snap.hierarchy().NumNodes();
  const auto policy = snap.PolicyFor(prefix.policy_spec);
  if (!policy.ok()) {
    return false;  // the new epoch no longer serves this spec
  }
  std::unique_ptr<SearchSession> search = (*policy)->NewSession();
  PlanPrefixId at = target.RootFor(prefix.policy_spec);
  for (const std::string& line : prefix.step_lines) {
    auto step = SessionCodec::ParseStepLine(line);
    if (!step.ok() || !ValidateStepShape(*step, num_nodes, 0).ok()) {
      return false;  // e.g. a node the new snapshot no longer has
    }
    const Query planned = search->Next();
    target.Insert(at, planned, /*seeded=*/true);
    if (QuestionMatchesStep(planned, *step)) {
      if (!ApplyMatchedStep(*search, *step).ok()) {
        return false;
      }
    } else if (!search->TryApplyObserved(*step).ok()) {
      // The prefix no longer folds onto the new snapshot; the plans
      // inserted so far are still exact, only the tail is abandoned.
      return false;
    }
    at = target.Advance(at, line);
  }
  // Only fully replayed prefixes count toward the report.
  target.Insert(at, search->Next(), /*seeded=*/true);
  return true;
}

StatusOr<std::size_t> Engine::Warm() {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<PlanCache> source;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snap = snapshot_;
    cache = plan_cache_;
    source = previous_plan_cache_;
  }
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (cache == nullptr) {
    return Status::FailedPrecondition("the plan cache is disabled");
  }
  if (source == nullptr) {
    return Status::FailedPrecondition(
        "no previous epoch's trie to seed from (publish at least twice)");
  }
  return WarmSeed(*snap, *cache, *source,
                  options_.plan_cache.warm_budget);
}

Status Engine::CloseImpl(SessionId id) {
  AIGS_RETURN_NOT_OK(sessions_.Erase(id));
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    AIGS_RETURN_NOT_OK(store->AppendClose(id));
  }
  return Status::OK();
}

Status Engine::EnableDurability(DurabilityOptions options) {
  std::lock_guard<std::mutex> lock(durable_mutex_);
  if (durable_owner_ != nullptr) {
    return Status::FailedPrecondition("durability is already enabled");
  }
  if (DurableStore::HasState(options.dir)) {
    return Status::FailedPrecondition(
        "'" + options.dir +
        "' already holds durable session state; Recover it (or remove the "
        "directory) instead of overwriting it");
  }
  DurableScan scan;
  AIGS_ASSIGN_OR_RETURN(durable_owner_,
                        DurableStore::Open(std::move(options), &scan));
  durable_.store(durable_owner_.get(), std::memory_order_release);
  // Sessions opened before durability was enabled exist only in memory;
  // an immediate checkpoint makes them (and the id watermark) durable.
  std::lock_guard<std::mutex> checkpoint(checkpoint_mutex_);
  return CheckpointLocked(*durable_owner_);
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::RecoverSession(
    const SerializedSession& saved, std::size_t* divergent_steps) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  AIGS_CHECK(snap != nullptr);  // Recover checks before scanning
  if (saved.fingerprint != snap->fingerprint()) {
    // The catalog changed across the restart; fall back to the migration
    // contract (same hierarchy, tolerated divergence within budget).
    return MigrateDecoded(saved, divergent_steps);
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));
  AIGS_RETURN_NOT_OK(ReplayTranscript(*session, saved.steps,
                                      ReplayMode::kExact,
                                      /*max_divergence=*/0, divergent_steps));
  return session;
}

StatusOr<RecoveryStats> Engine::Recover(DurabilityOptions options) {
  if (snapshot() == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — recovery replays transcripts "
        "against the current snapshot, so Publish first");
  }
  std::lock_guard<std::mutex> lock(durable_mutex_);
  if (durable_owner_ != nullptr) {
    return Status::FailedPrecondition("durability is already enabled");
  }
  DurableScan scan;
  AIGS_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                        DurableStore::Open(std::move(options), &scan));
  RecoveryStats stats;
  stats.checkpoint_sessions = scan.checkpoint_sessions;
  stats.wal_records = scan.wal_records;
  stats.torn_tails = scan.torn_tails;
  stats.torn_bytes = scan.torn_bytes;
  stats.malformed_records = scan.malformed_records;
  stats.invalid_checkpoints = scan.invalid_checkpoints;

  const std::uint64_t now_wall = store->NowWallMillis();
  const std::uint64_t ttl = options_.sessions.ttl_millis;
  for (const RecoveredSessionRecord& record : scan.sessions) {
    // The recovery half of the TTL contract: a session that would have
    // been evicted had the process lived is dropped here, never
    // resurrected. (Recovered survivors restart their idle clock.)
    if (ttl != 0 && now_wall > record.last_active_wall_ms &&
        now_wall - record.last_active_wall_ms > ttl) {
      ++stats.expired_dropped;
      continue;
    }
    std::size_t divergent = 0;
    auto session = RecoverSession(record.saved, &divergent);
    if (!session.ok() ||
        !sessions_.InsertWithId(record.id, *std::move(session)).ok()) {
      ++stats.replay_failures;
      continue;
    }
    ++stats.recovered;
    if (divergent > 0) {
      ++stats.divergent_sessions;
    }
  }
  sessions_.ReserveIds(scan.next_session_id);

  durable_owner_ = std::move(store);
  durable_.store(durable_owner_.get(), std::memory_order_release);
  recovered_.fetch_add(stats.recovered, std::memory_order_relaxed);
  expired_dropped_.fetch_add(stats.expired_dropped,
                             std::memory_order_relaxed);
  last_recovery_ = stats;
  has_recovery_ = true;
  // Collapse the replayed segments into one fresh checkpoint so the next
  // recovery starts from here. Best-effort: a failure leaves the old
  // files, which still recover (that is what just happened).
  std::lock_guard<std::mutex> checkpoint(checkpoint_mutex_);
  (void)CheckpointLocked(*durable_owner_);
  return stats;
}

Status Engine::CheckpointLocked(DurableStore& store) {
  AIGS_ASSIGN_OR_RETURN(const std::uint64_t seq, store.BeginCheckpoint());
  // Rotation happened FIRST: every append from here lands in the new
  // segment. A step both inside a blob below and in that segment replays
  // idempotently via its transcript index.
  const std::uint64_t now_wall = store.NowWallMillis();
  std::vector<DurableStore::CheckpointSession> sessions;
  for (const auto& entry : sessions_.SnapshotWithIdle()) {
    if (entry.session == nullptr || sessions_.Peek(entry.id) != entry.session) {
      continue;  // evicted or replaced since capture; never resurrected
    }
    DurableStore::CheckpointSession record;
    record.id = entry.id;
    record.last_active_wall_ms = now_wall > entry.idle_millis
                                     ? now_wall - entry.idle_millis
                                     : 0;
    {
      std::lock_guard<std::mutex> lock(entry.session->mutex);
      record.blob = SessionCodec::Encode(SnapshotState(*entry.session));
    }
    sessions.push_back(std::move(record));
  }
  return store.CommitCheckpoint(seq, sessions, sessions_.next_id());
}

Status Engine::Checkpoint() {
  DurableStore* store = durable_.load(std::memory_order_acquire);
  if (store == nullptr) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  return CheckpointLocked(*store);
}

void Engine::MaybeAutoCheckpoint() {
  DurableStore* store = durable_.load(std::memory_order_acquire);
  if (store == nullptr || !store->ShouldCheckpoint()) {
    return;
  }
  std::unique_lock<std::mutex> lock(checkpoint_mutex_, std::try_to_lock);
  if (!lock.owns_lock() || !store->ShouldCheckpoint()) {
    return;  // a checkpoint is already running (it resets the counter)
  }
  // Best-effort: on failure the WAL simply keeps growing and the next
  // threshold crossing retries; durability of acked records is unaffected.
  (void)CheckpointLocked(*store);
}

Status Engine::FlushDurable() {
  DurableStore* store = durable_.load(std::memory_order_acquire);
  return store == nullptr ? Status::OK() : store->Sync();
}

std::shared_ptr<PlanCache> Engine::plan_cache() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return plan_cache_;
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<PlanCache> previous_cache;
  std::uint64_t previous_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    stats.epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
    cache = plan_cache_;
    previous_cache = previous_plan_cache_;
    previous_epoch =
        previous_snapshot_ == nullptr ? 0 : previous_snapshot_->epoch();
  }
  stats.sessions_by_epoch = sessions_.SessionsByEpoch();
  for (const auto& [epoch, count] : stats.sessions_by_epoch) {
    stats.live_sessions += count;
  }
  if (cache != nullptr) {
    stats.plan_cache_enabled = true;
    stats.plan_cache = cache->stats();
    stats.plan_cache_by_epoch.emplace(stats.epoch, stats.plan_cache);
  }
  if (previous_cache != nullptr) {
    stats.plan_cache_by_epoch.emplace(previous_epoch,
                                      previous_cache->stats());
  }
  stats.sessions_migrated =
      sessions_migrated_.load(std::memory_order_relaxed);
  stats.migration_failures =
      migration_failures_.load(std::memory_order_relaxed);
  stats.ops.opens = op_counts_[kOpOpen].load(std::memory_order_relaxed);
  stats.ops.asks = op_counts_[kOpAsk].load(std::memory_order_relaxed);
  stats.ops.answers = op_counts_[kOpAnswer].load(std::memory_order_relaxed);
  stats.ops.saves = op_counts_[kOpSave].load(std::memory_order_relaxed);
  stats.ops.resumes = op_counts_[kOpResume].load(std::memory_order_relaxed);
  stats.ops.migrates = op_counts_[kOpMigrate].load(std::memory_order_relaxed);
  stats.ops.closes = op_counts_[kOpClose].load(std::memory_order_relaxed);
  for (std::size_t code = 0; code < rejected_by_code_.size(); ++code) {
    stats.ops.rejected_by_code[code] =
        rejected_by_code_[code].load(std::memory_order_relaxed);
    stats.ops.rejected += stats.ops.rejected_by_code[code];
  }
  if (drain_ != nullptr) {
    stats.drain = drain_->Snapshot();
  }
  if (DurableStore* store = durable_.load(std::memory_order_acquire)) {
    stats.durable = true;
    stats.durability = store->Stats();
  }
  stats.recovered = recovered_.load(std::memory_order_relaxed);
  stats.expired_dropped = expired_dropped_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(durable_mutex_);
    stats.has_recovery = has_recovery_;
    stats.last_recovery = last_recovery_;
  }
  return stats;
}

}  // namespace aigs
