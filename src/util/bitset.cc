#include "util/bitset.h"

#include <algorithm>

#include "util/kernels.h"

namespace aigs {

BlockedWeights::BlockedWeights(const std::vector<Weight>& weights)
    : weights_(&weights), block_sums_((weights.size() + 63) / 64, 0) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    block_sums_[i >> 6] += weights[i];
  }
}

void DynamicBitset::Resize(std::size_t size, bool value) {
  const std::size_t words = (size + 63) / 64;
  if (value && size > size_ && size_ % 64 != 0 && !words_.empty()) {
    // Bits in the old tail word beyond old size must become 1.
    words_[size_ / 64] |= ~std::uint64_t{0} << (size_ % 64);
  }
  words_.resize(words, value ? ~std::uint64_t{0} : 0);
  size_ = size;
  TrimTail();
}

void DynamicBitset::TrimTail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
  }
}

void DynamicBitset::ClearAll() {
  std::fill(words_.begin(), words_.end(), 0);
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  TrimTail();
}

void DynamicBitset::AndWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  kernels::Active().and_words(words_.data(), other.words_.data(),
                              words_.size());
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  kernels::Active().or_words(words_.data(), other.words_.data(),
                             words_.size());
}

void DynamicBitset::AndNotWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  kernels::Active().andnot_words(words_.data(), other.words_.data(),
                                 words_.size());
}

std::size_t DynamicBitset::Count() const {
  return kernels::Active().popcount_words(words_.data(), words_.size());
}

std::size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  AIGS_CHECK(size_ == other.size_);
  return kernels::Active().and_popcount_words(words_.data(),
                                              other.words_.data(),
                                              words_.size());
}

Weight DynamicBitset::MaskedWeightedSum(
    const DynamicBitset& mask, const std::vector<Weight>& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.size() == size_);
  Weight total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w] & mask.words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      total += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedCountAndWeightedSum(
    const DynamicBitset& mask, const std::vector<Weight>& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.size() == size_);
  CountAndWeight out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w] & mask.words_[w];
    out.count += static_cast<std::size_t>(std::popcount(word));
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.weight += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return out;
}

Weight DynamicBitset::MaskedWeightedSum(const DynamicBitset& mask,
                                        const BlockedWeights& weights) const {
  return MaskedCountAndWeightedSum(mask, weights).weight;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedCountAndWeightedSum(
    const DynamicBitset& mask, const BlockedWeights& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.weights().size() == size_);
  const Weight* values = weights.weights().data();
  CountAndWeight out;
  // The dispatched kernel covers the full words; the partial tail word (if
  // any) is settled after, so the hot loop needs no per-word valid-mask
  // bookkeeping.
  const std::size_t tail = (size_ & 63) != 0 ? words_.size() - 1 : words_.size();
  const kernels::CountAndWeight full = kernels::Active().masked_count_weight(
      words_.data(), mask.words_.data(), tail, values,
      weights.block_sums().data());
  out.count = full.count;
  out.weight = full.weight;
  if (tail < words_.size()) {
    const std::uint64_t word = words_[tail] & mask.words_[tail];
    if (word != 0) {
      out.count += static_cast<std::size_t>(std::popcount(word));
      out.weight += kernels::BlockedWordSum(
          word, (std::uint64_t{1} << (size_ & 63)) - 1, values + (tail << 6),
          weights.BlockSum(tail));
    }
  }
  return out;
}

Weight DynamicBitset::WeightedSum(const std::vector<Weight>& weights) const {
  AIGS_DCHECK(weights.size() == size_);
  Weight total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      total += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

namespace {

// Word-aligned mask for bit positions [begin, end) intersected with word w.
std::uint64_t RangeMaskForWord(std::size_t w, std::size_t begin,
                               std::size_t end) {
  const std::size_t word_begin = w << 6;
  const std::size_t word_end = word_begin + 64;
  if (end <= word_begin || begin >= word_end) {
    return 0;
  }
  std::uint64_t mask = ~std::uint64_t{0};
  if (begin > word_begin) {
    mask &= ~std::uint64_t{0} << (begin - word_begin);
  }
  if (end < word_end) {
    mask &= (std::uint64_t{1} << (end - word_begin)) - 1;
  }
  return mask;
}

}  // namespace

void DynamicBitset::ClearRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    words_[w] &= ~RangeMaskForWord(w, begin, end);
  }
}

void DynamicBitset::KeepOnlyRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= RangeMaskForWord(w, begin, end);
  }
}

std::size_t DynamicBitset::CountInRange(std::size_t begin,
                                        std::size_t end) const {
  AIGS_DCHECK(begin <= end && end <= size_);
  std::size_t total = 0;
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    total += static_cast<std::size_t>(
        std::popcount(words_[w] & RangeMaskForWord(w, begin, end)));
  }
  return total;
}

void DynamicBitset::SetRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    words_[w] |= RangeMaskForWord(w, begin, end);
  }
}

void DynamicBitset::AndWordsAt(std::size_t word_offset,
                               std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  kernels::Active().and_words(words_.data() + word_offset, mask.data(),
                              mask.size());
}

void DynamicBitset::AndNotWordsAt(std::size_t word_offset,
                                  std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  kernels::Active().andnot_words(words_.data() + word_offset, mask.data(),
                                 mask.size());
}

void DynamicBitset::OrWordsAt(std::size_t word_offset,
                              std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  kernels::Active().or_words(words_.data() + word_offset, mask.data(),
                             mask.size());
}

DynamicBitset::CountAndWeight DynamicBitset::RangeCountAndWeightedSum(
    std::size_t begin, std::size_t end, const BlockedWeights& weights) const {
  AIGS_DCHECK(begin <= end && end <= size_);
  AIGS_DCHECK(weights.weights().size() == size_);
  CountAndWeight out;
  if (begin >= end) {
    return out;
  }
  const Weight* values = weights.weights().data();
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  // Settles one boundary word. `valid` = the bit positions whose weights the
  // block sum covers. The block sum settles a word only when the range
  // covers all of them; true boundary words gather per bit inside
  // BlockedWordSum's sparse branch (their intersection word is never equal
  // to `valid`).
  const auto boundary = [&](std::size_t w) {
    const std::uint64_t range_mask = RangeMaskForWord(w, begin, end);
    const std::uint64_t word = words_[w] & range_mask;
    if (word == 0) {
      return;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    const std::uint64_t valid =
        (w == words_.size() - 1 && (size_ & 63) != 0)
            ? (std::uint64_t{1} << (size_ & 63)) - 1
            : ~std::uint64_t{0};
    if (range_mask == valid) {
      out.weight += kernels::BlockedWordSum(word, valid, values + (w << 6),
                                            weights.BlockSum(w));
    } else {
      std::uint64_t bits = word;
      while (bits != 0) {
        out.weight += values[(w << 6) + std::countr_zero(bits)];
        bits &= bits - 1;
      }
    }
  };
  // Words fully covered by the range are also fully valid (a full 64-bit
  // span inside [0, size) can't be the partial tail word), so they run
  // through the dispatched kernel; at most one word on each side is a true
  // boundary.
  const std::size_t ib = (begin + 63) >> 6;  // first word fully inside
  const std::size_t ie = end >> 6;           // one past the last full word
  if (ib >= ie) {
    for (std::size_t w = first_word; w <= last_word; ++w) {
      boundary(w);
    }
    return out;
  }
  for (std::size_t w = first_word; w < ib; ++w) {
    boundary(w);
  }
  const kernels::CountAndWeight interior = kernels::Active().count_weight(
      words_.data() + ib, ie - ib, values + (ib << 6),
      weights.block_sums().data() + ib);
  out.count += interior.count;
  out.weight += interior.weight;
  for (std::size_t w = ie; w <= last_word; ++w) {
    boundary(w);
  }
  return out;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedWordsCountAndWeightedSum(
    std::size_t word_offset, std::span<const std::uint64_t> mask,
    const BlockedWeights& weights) const {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  AIGS_DCHECK(weights.weights().size() == size_);
  const Weight* values = weights.weights().data();
  // Only the bitset's final partial word (when the window reaches it) needs
  // a valid mask; everything before runs through the dispatched kernel.
  std::size_t full = mask.size();
  if (!mask.empty() && (size_ & 63) != 0 &&
      word_offset + mask.size() == words_.size()) {
    full = mask.size() - 1;
  }
  const kernels::CountAndWeight head = kernels::Active().masked_count_weight(
      words_.data() + word_offset, mask.data(), full,
      values + (word_offset << 6), weights.block_sums().data() + word_offset);
  CountAndWeight out{head.count, head.weight};
  if (full < mask.size()) {
    const std::size_t w = word_offset + full;
    const std::uint64_t word = words_[w] & mask[full];
    if (word != 0) {
      out.count += static_cast<std::size_t>(std::popcount(word));
      out.weight += kernels::BlockedWordSum(
          word, (std::uint64_t{1} << (size_ & 63)) - 1, values + (w << 6),
          weights.BlockSum(w));
    }
  }
  return out;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  AIGS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool DynamicBitset::None() const {
  for (const std::uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

std::size_t DynamicBitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

}  // namespace aigs
