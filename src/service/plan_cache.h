// PlanCache — the shared per-epoch question-plan trie behind Engine::Ask.
//
// Every registry policy is deterministic given (catalog snapshot, answer
// transcript): the question a session faces is a pure function of the
// transcript prefix it has accumulated (Definition 6; PR 3's replay-verified
// Resume pins this for every policy on trees and DAGs). A million sessions
// answering the same first three questions therefore need the planner run
// ONCE per distinct prefix — every other session can read the memoized
// question. That is what this cache does: it memoizes the pure planner
// (SearchSession::PlanQuestion) per (policy spec, transcript prefix) so the
// common-prefix hot path of Engine::Ask degenerates to one hash probe.
//
// Shape. The cache is a trie over answer transcripts: the root of each
// policy spec is the empty transcript, an edge is one answered question
// (encoded exactly as the SessionCodec transcript line — "reach 5 y",
// "batch 1+2 yn", ...), and each node memoizes the question the policy asks
// at that prefix. Nodes are INTERNED: `Advance(parent, edge)` assigns each
// distinct (parent id, edge line) pair a PlanPrefixId, and a session keeps
// only its current id — the O(1) rolling plan key. The hot-path Lookup
// hashes one 64-bit id instead of re-hashing an O(depth) concatenated key
// string (the PR-4 scheme this replaces); per-answer maintenance is one
// O(edge) intern probe, independent of depth. Interning compares full edge
// strings under the parent id, so two different transcripts can never
// share an id — cached and uncached transcript equality stays bit-exact,
// no rolling-hash collision caveats.
//
// Lifecycle. An Engine creates one PlanCache per published CatalogSnapshot
// and hands each session the cache of the epoch it opened on. An epoch
// hot-swap stops handing out the old trie: it dies with its snapshot's
// refcount as sessions drain or migrate off it. Before it does, its
// hottest prefixes (per-node hit counts) are harvested and replayed
// against the new snapshot's planners to pre-seed the fresh trie — the
// warm-publish path that removes the post-publish cold start. By default
// the replay runs on the engine's background drain worker in bounded
// batches, concurrent with live Ask traffic on the same trie (every
// method is thread-safe, so seeding and organic population interleave
// freely). Seeded entries are flagged so Stats can split seeded from
// organic hits.
//
// Budgeting. Nodes live in lock stripes; a node's home stripe is chosen by
// hashing (parent, edge), and its id encodes that stripe, so Advance,
// Lookup, Insert, and eviction each lock exactly one stripe. Each stripe
// owns max_bytes/num_stripes and evicts LRU nodes (plus their intern
// entries) when an insert pushes it over. Ids are never reused: a session
// holding an evicted id simply misses until its path is re-interned —
// correctness never depends on residency. A depth cap keeps long-tail
// transcripts (which nobody shares) from churning the budget.
#ifndef AIGS_SERVICE_PLAN_CACHE_H_
#define AIGS_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/policy.h"

namespace aigs {

/// Interned transcript-prefix handle — a session's O(1) rolling plan key.
/// Never reused within one cache's lifetime; kNoPlanPrefix means "no
/// position" (cache disabled or past the depth cap).
using PlanPrefixId = std::uint64_t;
inline constexpr PlanPrefixId kNoPlanPrefix = 0;

struct PlanCacheOptions {
  /// Master switch; a disabled engine never consults or populates a cache.
  bool enabled = true;
  /// Approximate memory budget over all stripes (edges + intern entries +
  /// memoized queries).
  std::size_t max_bytes = 32u << 20;
  /// Transcript depth (answered questions) beyond which Ask bypasses the
  /// cache — deep prefixes are effectively unique per session, so caching
  /// them only churns the LRU.
  std::size_t max_depth = 16;
  /// Lock stripes. More stripes = less contention; the budget splits evenly
  /// across them.
  std::size_t num_stripes = 16;
  /// Pre-seed a freshly published epoch's trie by replaying the previous
  /// trie's hottest prefixes against the new snapshot's planners.
  bool warm_publish = true;
  /// Maximum prefixes replayed per warm-publish seeding pass.
  std::size_t warm_budget = 256;
};

/// Monotonic counters (hits/misses/evictions/inserts, with the seeded
/// split) plus a point-in-time size reading, surfaced through
/// Engine::Stats and the serve REPL.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  /// Entries created by warm-publish seeding (subset of inserts) and hits
  /// they served (subset of hits). organic = total − seeded.
  std::uint64_t seeded_inserts = 0;
  std::uint64_t seeded_hits = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One exported hot prefix: the policy spec plus the SessionCodec step
/// lines from the trie root to the node, with its accumulated hit count.
/// The warm-publish seeder replays these against a fresh snapshot.
struct HotPrefix {
  std::string policy_spec;
  std::vector<std::string> step_lines;
  std::uint64_t hits = 0;
};

/// Concurrent, lock-striped, budgeted, interned question-plan trie.
/// All methods are thread-safe; every operation locks exactly one stripe.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Interns the empty-transcript root for `policy_spec`.
  PlanPrefixId RootFor(std::string_view policy_spec);

  /// Interns the child of `from` along `edge_line` (one SessionCodec step
  /// line) and returns its id — the per-answer rolling-key update, O(edge)
  /// regardless of depth. `from` may be an evicted id: the child is
  /// re-interned fresh and stays correct (ids are position witnesses, not
  /// storage addresses).
  PlanPrefixId Advance(PlanPrefixId from, std::string_view edge_line);

  /// The memoized question at `id`, refreshing its LRU position. Counts a
  /// hit or a miss; kNoPlanPrefix and evicted ids miss.
  std::optional<Query> Lookup(PlanPrefixId id);

  /// Memoizes `query` at `id`, evicting LRU entries of the stripe while it
  /// is over its budget share. Re-inserting an existing id only refreshes
  /// it (determinism makes the value identical by construction). `seeded`
  /// marks warm-publish entries for the stats split.
  void Insert(PlanPrefixId id, const Query& query, bool seeded = false);

  /// The up-to-`max_prefixes` most-hit memoized prefixes, hottest first
  /// (ties toward shallower prefixes — cheaper to replay and their plans
  /// serve more sessions). Prefixes whose ancestor chain was partially
  /// evicted are skipped: they can no longer be reconstructed.
  std::vector<HotPrefix> HottestPrefixes(std::size_t max_prefixes) const;

  PlanCacheStats stats() const;
  const PlanCacheOptions& options() const { return options_; }

 private:
  /// One trie node: its position witness (parent + edge) for export, and
  /// the memoized question once some session planned here.
  struct Node {
    PlanPrefixId parent = kNoPlanPrefix;
    std::string edge;
    bool has_question = false;
    bool seeded = false;
    Query question;
    std::uint64_t hits = 0;
    std::size_t bytes = 0;
    std::list<PlanPrefixId>::iterator lru_it;
  };
  /// Intern-map key; heterogeneous lookup avoids materializing a string on
  /// the hot path.
  struct ChildKey {
    PlanPrefixId parent;
    std::string edge;
    bool operator==(const ChildKey& other) const = default;
  };
  struct ChildRef {
    PlanPrefixId parent;
    std::string_view edge;
  };
  struct ChildHash {
    using is_transparent = void;
    std::size_t operator()(const ChildKey& k) const {
      return Mix(k.parent, k.edge);
    }
    std::size_t operator()(const ChildRef& k) const {
      return Mix(k.parent, k.edge);
    }
    static std::size_t Mix(PlanPrefixId parent, std::string_view edge);
  };
  struct ChildEq {
    using is_transparent = void;
    bool operator()(const ChildKey& a, const ChildKey& b) const {
      return a.parent == b.parent && a.edge == b.edge;
    }
    bool operator()(const ChildKey& a, const ChildRef& b) const {
      return a.parent == b.parent && a.edge == b.edge;
    }
    bool operator()(const ChildRef& a, const ChildKey& b) const {
      return a.parent == b.parent && a.edge == b.edge;
    }
  };
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<PlanPrefixId, Node> nodes;
    std::unordered_map<ChildKey, PlanPrefixId, ChildHash, ChildEq> children;
    std::list<PlanPrefixId> lru;  // front = most recently used
    std::size_t bytes = 0;
    std::uint64_t next_seq = 0;
  };

  /// A node's id encodes its home stripe (the stripe its (parent, edge)
  /// hash chose), so Advance and Lookup agree on the lock without a second
  /// table.
  std::size_t StripeOf(PlanPrefixId id) const {
    return static_cast<std::size_t>((id - 1) % stripes_.size());
  }
  void EvictOver(Stripe& stripe);

  PlanCacheOptions options_;
  std::size_t stripe_budget_ = 0;
  std::vector<Stripe> stripes_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> seeded_inserts_{0};
  std::atomic<std::uint64_t> seeded_hits_{0};
};

}  // namespace aigs

#endif  // AIGS_SERVICE_PLAN_CACHE_H_
