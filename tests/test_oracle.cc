#include "oracle/oracle.h"

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "data/builtin.h"
#include "graph/generators.h"
#include "oracle/cost_model.h"
#include "oracle/noisy_oracle.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

TEST(ExactOracle, AnswersReachabilityTruthfully) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle oracle(h.reach(), nodes.sentra);
  EXPECT_TRUE(oracle.Reach(nodes.vehicle));
  EXPECT_TRUE(oracle.Reach(nodes.car));
  EXPECT_TRUE(oracle.Reach(nodes.nissan));
  EXPECT_TRUE(oracle.Reach(nodes.sentra));
  EXPECT_FALSE(oracle.Reach(nodes.maxima));
  EXPECT_FALSE(oracle.Reach(nodes.honda));
  EXPECT_FALSE(oracle.Reach(nodes.mercedes));
}

TEST(ExactOracle, ChoiceReturnsFirstContainingOption) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle oracle(h.reach(), nodes.sentra);
  const std::vector<NodeId> choices{nodes.honda, nodes.nissan,
                                    nodes.mercedes};
  EXPECT_EQ(oracle.Choice(choices), 1);
}

TEST(ExactOracle, ChoiceReturnsMinusOneWhenAbsent) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle oracle(h.reach(), nodes.vehicle);
  const std::vector<NodeId> choices{nodes.car};
  EXPECT_EQ(oracle.Choice(choices), -1);
}

TEST(NoisyOracle, ZeroNoiseIsTruthful) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  NoisyOracle noisy(exact, 0.0, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(noisy.Reach(nodes.nissan));
    EXPECT_FALSE(noisy.Reach(nodes.honda));
  }
}

TEST(NoisyOracle, FlipRateMatchesParameter) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  NoisyOracle noisy(exact, 0.2, Rng(2));
  int wrong = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    wrong += noisy.Reach(nodes.nissan) ? 0 : 1;  // truth is yes
  }
  EXPECT_NEAR(static_cast<double>(wrong) / kTrials, 0.2, 0.02);
}

TEST(NoisyOracle, ChoiceNoiseNeverReturnsTruthWhenFlipping) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.sentra);
  NoisyOracle noisy(exact, /*flip_prob=*/0.49, Rng(3));
  const std::vector<NodeId> choices{nodes.honda, nodes.nissan,
                                    nodes.mercedes};
  // Answers are always a valid index or -1.
  for (int i = 0; i < 2000; ++i) {
    const int a = noisy.Choice(choices);
    EXPECT_GE(a, -1);
    EXPECT_LT(a, 3);
  }
}

TEST(MajorityVoteOracle, ReducesErrorRate) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  NoisyOracle noisy(exact, 0.2, Rng(4));
  MajorityVoteOracle voted(noisy, 5);
  int wrong = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    wrong += voted.Reach(nodes.nissan) ? 0 : 1;
  }
  // 5-vote majority with p=0.2 flips errs with probability
  // P(Bin(5, 0.2) >= 3) ≈ 0.058 — well below the raw 0.2 flip rate.
  EXPECT_LT(static_cast<double>(wrong) / kTrials, 0.12);
  EXPECT_EQ(voted.votes(), 5);
}

TEST(PersistentNoisyOracle, AnswersAreStickyPerNode) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  PersistentNoisyOracle sticky(exact, 0.4, Rng(9));
  // Whatever each node's first answer is, repeats agree with it.
  for (NodeId q = 0; q < h.NumNodes(); ++q) {
    const bool first = sticky.Reach(q);
    for (int repeat = 0; repeat < 20; ++repeat) {
      EXPECT_EQ(sticky.Reach(q), first) << "node " << q;
    }
  }
}

TEST(PersistentNoisyOracle, FlipRateMatchesParameterAcrossNodes) {
  // Flip decisions are per node; measure across many fresh oracles.
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  int wrong = 0;
  const int kOracles = 5000;
  for (int i = 0; i < kOracles; ++i) {
    PersistentNoisyOracle sticky(exact, 0.3, Rng(100 + i));
    wrong += sticky.Reach(nodes.nissan) ? 0 : 1;  // truth is yes
  }
  EXPECT_NEAR(static_cast<double>(wrong) / kOracles, 0.3, 0.03);
}

TEST(PersistentNoisyOracle, MajorityVotingCannotFixIt) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  ExactOracle exact(h.reach(), nodes.maxima);
  int wrong_voted = 0;
  const int kOracles = 3000;
  for (int i = 0; i < kOracles; ++i) {
    PersistentNoisyOracle sticky(exact, 0.25, Rng(500 + i));
    MajorityVoteOracle voted(sticky, 9);
    wrong_voted += voted.Reach(nodes.nissan) ? 0 : 1;
  }
  // Nine votes of the same persistent answer change nothing: the error
  // rate stays at the flip probability.
  EXPECT_NEAR(static_cast<double>(wrong_voted) / kOracles, 0.25, 0.03);
}

TEST(CostModel, UnitModel) {
  const CostModel m = CostModel::Unit(5);
  EXPECT_TRUE(m.IsUnit());
  EXPECT_EQ(m.CostOf(3), 1u);
}

TEST(CostModel, ExplicitPrices) {
  const CostModel m({1, 2, 5});
  EXPECT_FALSE(m.IsUnit());
  EXPECT_EQ(m.CostOf(2), 5u);
  EXPECT_EQ(m.size(), 3u);
}

TEST(CostModel, UniformRandomWithinRange) {
  Rng rng(5);
  const CostModel m = CostModel::UniformRandom(200, 2, 9, rng);
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_GE(m.CostOf(v), 2u);
    EXPECT_LE(m.CostOf(v), 9u);
  }
}

TEST(CostModel, Fig3Prices) {
  const CostModel m = Fig3CostModel();
  EXPECT_EQ(m.CostOf(0), 1u);
  EXPECT_EQ(m.CostOf(1), 1u);
  EXPECT_EQ(m.CostOf(2), 5u);
  EXPECT_EQ(m.CostOf(3), 1u);
}

}  // namespace
}  // namespace aigs
