#include "net/wire.h"

#include <algorithm>
#include <csignal>
#include <cstring>

#include "util/common.h"
#include "util/crc32.h"

namespace aigs::net {
namespace {

// ---- little-endian primitives ----------------------------------------------

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes);
}

std::uint32_t ReadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Bounds-checked sequential reader over one frame payload. Every method
/// returns Status; a failed read leaves the cursor unspecified but never
/// reads out of bounds.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) {
      return Truncated("u8");
    }
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status U32(std::uint32_t* v) {
    if (pos_ + 4 > data_.size()) {
      return Truncated("u32");
    }
    *v = ReadU32(data_.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status U64(std::uint64_t* v) {
    if (pos_ + 8 > data_.size()) {
      return Truncated("u64");
    }
    std::uint64_t lo = ReadU32(data_.data() + pos_);
    std::uint64_t hi = ReadU32(data_.data() + pos_ + 4);
    *v = lo | (hi << 32);
    pos_ += 8;
    return Status::OK();
  }

  Status Bytes(std::string* v) {
    std::uint32_t len = 0;
    AIGS_RETURN_NOT_OK(U32(&len));
    if (pos_ + len > data_.size()) {
      return Truncated("byte string");
    }
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          "wire payload carries " + std::to_string(data_.size() - pos_) +
          " trailing byte(s) past the message");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::InvalidArgument(std::string("wire payload truncated: ") +
                                   what + " at offset " +
                                   std::to_string(pos_));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- field codecs ----------------------------------------------------------

bool ValidOp(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(WireOp::kOpen) &&
         raw <= static_cast<std::uint8_t>(WireOp::kStats);
}

void PutQuery(std::string* out, const Query& q) {
  PutU8(out, static_cast<std::uint8_t>(q.kind));
  PutU32(out, q.node);
  PutU32(out, static_cast<std::uint32_t>(q.choices.size()));
  for (const NodeId v : q.choices) {
    PutU32(out, v);
  }
}

Status ReadQuery(WireReader& reader, Query* q) {
  std::uint8_t kind = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&kind));
  if (kind > static_cast<std::uint8_t>(Query::Kind::kDone)) {
    return Status::InvalidArgument("invalid query kind byte " +
                                   std::to_string(kind));
  }
  q->kind = static_cast<Query::Kind>(kind);
  AIGS_RETURN_NOT_OK(reader.U32(&q->node));
  std::uint32_t count = 0;
  AIGS_RETURN_NOT_OK(reader.U32(&count));
  q->choices.clear();
  q->choices.reserve(std::min<std::uint32_t>(count, 4096));
  for (std::uint32_t i = 0; i < count; ++i) {
    NodeId v = 0;
    AIGS_RETURN_NOT_OK(reader.U32(&v));
    q->choices.push_back(v);
  }
  return Status::OK();
}

void PutAnswer(std::string* out, const SessionAnswer& answer) {
  PutU8(out, static_cast<std::uint8_t>(answer.kind));
  switch (answer.kind) {
    case Query::Kind::kReach:
      PutU8(out, answer.yes ? 1 : 0);
      break;
    case Query::Kind::kReachBatch:
      PutU32(out, static_cast<std::uint32_t>(answer.batch.size()));
      for (const bool yes : answer.batch) {
        PutU8(out, yes ? 1 : 0);
      }
      break;
    case Query::Kind::kChoice:
      PutU32(out, static_cast<std::uint32_t>(answer.choice));
      break;
    case Query::Kind::kDone:
      break;  // never sent; tolerated as an empty body
  }
}

Status ReadAnswer(WireReader& reader, SessionAnswer* answer) {
  std::uint8_t kind = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&kind));
  if (kind > static_cast<std::uint8_t>(Query::Kind::kChoice)) {
    return Status::InvalidArgument("invalid answer kind byte " +
                                   std::to_string(kind));
  }
  answer->kind = static_cast<Query::Kind>(kind);
  switch (answer->kind) {
    case Query::Kind::kReach: {
      std::uint8_t yes = 0;
      AIGS_RETURN_NOT_OK(reader.U8(&yes));
      if (yes > 1) {
        return Status::InvalidArgument("reach answer byte must be 0 or 1");
      }
      answer->yes = yes == 1;
      break;
    }
    case Query::Kind::kReachBatch: {
      std::uint32_t count = 0;
      AIGS_RETURN_NOT_OK(reader.U32(&count));
      answer->batch.clear();
      answer->batch.reserve(std::min<std::uint32_t>(count, 4096));
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint8_t yes = 0;
        AIGS_RETURN_NOT_OK(reader.U8(&yes));
        if (yes > 1) {
          return Status::InvalidArgument("batch answer byte must be 0 or 1");
        }
        answer->batch.push_back(yes == 1);
      }
      break;
    }
    case Query::Kind::kChoice: {
      std::uint32_t raw = 0;
      AIGS_RETURN_NOT_OK(reader.U32(&raw));
      answer->choice = static_cast<int>(static_cast<std::int32_t>(raw));
      break;
    }
    case Query::Kind::kDone:
      break;
  }
  return Status::OK();
}

void PutStats(std::string* out, const WireStats& stats) {
  PutU64(out, stats.epoch);
  PutU64(out, stats.live_sessions);
  PutU64(out, stats.ops.opens);
  PutU64(out, stats.ops.asks);
  PutU64(out, stats.ops.answers);
  PutU64(out, stats.ops.saves);
  PutU64(out, stats.ops.resumes);
  PutU64(out, stats.ops.migrates);
  PutU64(out, stats.ops.closes);
  for (const std::uint64_t n : stats.ops.rejected_by_code) {
    PutU64(out, n);
  }
}

Status ReadStats(WireReader& reader, WireStats* stats) {
  AIGS_RETURN_NOT_OK(reader.U64(&stats->epoch));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->live_sessions));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.opens));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.asks));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.answers));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.saves));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.resumes));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.migrates));
  AIGS_RETURN_NOT_OK(reader.U64(&stats->ops.closes));
  stats->ops.rejected = 0;
  for (std::uint64_t& n : stats->ops.rejected_by_code) {
    AIGS_RETURN_NOT_OK(reader.U64(&n));
    stats->ops.rejected += n;
  }
  return Status::OK();
}

}  // namespace

const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kOpen:
      return "open";
    case WireOp::kAsk:
      return "ask";
    case WireOp::kAnswer:
      return "answer";
    case WireOp::kSave:
      return "save";
    case WireOp::kResume:
      return "resume";
    case WireOp::kMigrate:
      return "migrate";
    case WireOp::kClose:
      return "close";
    case WireOp::kStats:
      return "stats";
  }
  return "?";
}

Status WireResponse::ToStatus() const {
  if (code == StatusCode::kOk) {
    return Status::OK();
  }
  return Status(code, message);
}

WireResponse ErrorResponse(WireOp op, const Status& status) {
  AIGS_DCHECK(!status.ok());
  WireResponse response;
  response.op = op;
  response.code = status.code();
  response.message = status.message();
  return response;
}

// ---- framing ---------------------------------------------------------------

void AppendFrame(std::string* out, std::string_view payload) {
  AIGS_CHECK(payload.size() <= kMaxFramePayload);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

FrameStatus ExtractFrame(std::string_view buffer, std::string_view* payload,
                         std::size_t* consumed, std::string* error,
                         std::size_t max_payload) {
  if (buffer.size() < kFrameHeaderBytes) {
    return FrameStatus::kNeedMore;
  }
  const std::uint32_t length = ReadU32(buffer.data());
  const std::uint32_t crc = ReadU32(buffer.data() + 4);
  if (length > max_payload) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(length) +
               " exceeds the frame cap of " + std::to_string(max_payload) +
               " bytes";
    }
    return FrameStatus::kCorrupt;
  }
  if (buffer.size() < kFrameHeaderBytes + length) {
    return FrameStatus::kNeedMore;
  }
  const std::string_view body = buffer.substr(kFrameHeaderBytes, length);
  if (Crc32(body) != crc) {
    if (error != nullptr) {
      *error = "frame CRC mismatch over " + std::to_string(length) +
               " payload byte(s)";
    }
    return FrameStatus::kCorrupt;
  }
  if (payload != nullptr) {
    *payload = body;
  }
  if (consumed != nullptr) {
    *consumed = kFrameHeaderBytes + length;
  }
  return FrameStatus::kFrame;
}

// ---- message codec ---------------------------------------------------------

std::string EncodeRequest(const WireRequest& request) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<std::uint8_t>(request.op));
  PutU64(&payload, request.id);
  switch (request.op) {
    case WireOp::kOpen:
    case WireOp::kResume:
    case WireOp::kMigrate:
      PutBytes(&payload, request.text);
      break;
    case WireOp::kAnswer:
      PutAnswer(&payload, request.answer);
      break;
    case WireOp::kAsk:
    case WireOp::kSave:
    case WireOp::kClose:
    case WireOp::kStats:
      break;
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&frame, payload);
  return frame;
}

Status DecodeRequestPayload(std::string_view payload, WireRequest* request) {
  WireReader reader(payload);
  std::uint8_t version = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (want " +
                                   std::to_string(kWireVersion) + ")");
  }
  std::uint8_t raw_op = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&raw_op));
  if (!ValidOp(raw_op)) {
    return Status::InvalidArgument("unknown request opcode " +
                                   std::to_string(raw_op));
  }
  request->op = static_cast<WireOp>(raw_op);
  AIGS_RETURN_NOT_OK(reader.U64(&request->id));
  switch (request->op) {
    case WireOp::kOpen:
    case WireOp::kResume:
    case WireOp::kMigrate:
      AIGS_RETURN_NOT_OK(reader.Bytes(&request->text));
      break;
    case WireOp::kAnswer:
      AIGS_RETURN_NOT_OK(ReadAnswer(reader, &request->answer));
      break;
    case WireOp::kAsk:
    case WireOp::kSave:
    case WireOp::kClose:
    case WireOp::kStats:
      break;
  }
  return reader.ExpectEnd();
}

std::string EncodeResponse(const WireResponse& response) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<std::uint8_t>(response.op));
  PutU8(&payload, static_cast<std::uint8_t>(response.code));
  PutBytes(&payload, response.message);
  if (response.code == StatusCode::kOk) {
    switch (response.op) {
      case WireOp::kOpen:
      case WireOp::kResume:
        PutU64(&payload, response.id);
        break;
      case WireOp::kAsk:
        PutQuery(&payload, response.query);
        break;
      case WireOp::kSave:
        PutBytes(&payload, response.text);
        break;
      case WireOp::kMigrate:
        PutU64(&payload, response.migrate.id);
        PutU64(&payload, response.migrate.from_epoch);
        PutU64(&payload, response.migrate.to_epoch);
        PutU64(&payload, response.migrate.steps);
        PutU64(&payload, response.migrate.divergent_steps);
        break;
      case WireOp::kStats:
        PutStats(&payload, response.stats);
        break;
      case WireOp::kAnswer:
      case WireOp::kClose:
        break;
    }
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&frame, payload);
  return frame;
}

Status DecodeResponsePayload(std::string_view payload,
                             WireResponse* response) {
  WireReader reader(payload);
  std::uint8_t version = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (want " +
                                   std::to_string(kWireVersion) + ")");
  }
  std::uint8_t raw_op = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&raw_op));
  if (!ValidOp(raw_op)) {
    return Status::InvalidArgument("unknown response opcode " +
                                   std::to_string(raw_op));
  }
  response->op = static_cast<WireOp>(raw_op);
  std::uint8_t raw_code = 0;
  AIGS_RETURN_NOT_OK(reader.U8(&raw_code));
  if (raw_code > static_cast<std::uint8_t>(StatusCode::kUnimplemented)) {
    return Status::InvalidArgument("unknown status code byte " +
                                   std::to_string(raw_code));
  }
  response->code = static_cast<StatusCode>(raw_code);
  AIGS_RETURN_NOT_OK(reader.Bytes(&response->message));
  if (response->code == StatusCode::kOk) {
    switch (response->op) {
      case WireOp::kOpen:
      case WireOp::kResume:
        AIGS_RETURN_NOT_OK(reader.U64(&response->id));
        break;
      case WireOp::kAsk:
        AIGS_RETURN_NOT_OK(ReadQuery(reader, &response->query));
        break;
      case WireOp::kSave:
        AIGS_RETURN_NOT_OK(reader.Bytes(&response->text));
        break;
      case WireOp::kMigrate: {
        AIGS_RETURN_NOT_OK(reader.U64(&response->migrate.id));
        AIGS_RETURN_NOT_OK(reader.U64(&response->migrate.from_epoch));
        AIGS_RETURN_NOT_OK(reader.U64(&response->migrate.to_epoch));
        std::uint64_t steps = 0;
        AIGS_RETURN_NOT_OK(reader.U64(&steps));
        response->migrate.steps = static_cast<std::size_t>(steps);
        std::uint64_t divergent = 0;
        AIGS_RETURN_NOT_OK(reader.U64(&divergent));
        response->migrate.divergent_steps =
            static_cast<std::size_t>(divergent);
        break;
      }
      case WireOp::kStats:
        AIGS_RETURN_NOT_OK(ReadStats(reader, &response->stats));
        break;
      case WireOp::kAnswer:
      case WireOp::kClose:
        break;
    }
  }
  return reader.ExpectEnd();
}

// ---- shared helpers --------------------------------------------------------

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t HashBytes64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return Mix64(h);
}

void IgnoreSigpipe() {
  std::signal(SIGPIPE, SIG_IGN);
}

}  // namespace aigs::net
