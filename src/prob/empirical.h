// Empirical distribution learned on the fly (§V-B "Learning Distribution on
// the Fly"): before any object is labeled, every category is assumed equally
// likely; after each labeled object the corresponding category count is
// incremented. Policies observe the counts through their weight index, so
// updating is O(depth) per object.
#ifndef AIGS_PROB_EMPIRICAL_H_
#define AIGS_PROB_EMPIRICAL_H_

#include <vector>

#include "prob/distribution.h"
#include "util/common.h"

namespace aigs {

/// Mutable category counts with a uniform prior.
class EmpiricalCounts {
 public:
  /// `prior` pseudo-counts per node model the paper's "equal probability at
  /// the very beginning" state (prior >= 1).
  explicit EmpiricalCounts(std::size_t n, Weight prior = 1)
      : counts_(n, prior), total_(prior * n), prior_(prior) {
    AIGS_CHECK(prior >= 1);
  }

  std::size_t size() const { return counts_.size(); }

  /// Registers one labeled object of category v.
  void Observe(NodeId v) {
    AIGS_DCHECK(v < counts_.size());
    ++counts_[v];
    ++total_;
    ++observed_;
  }

  /// Current weight of node v (prior + observations).
  Weight WeightOf(NodeId v) const { return counts_[v]; }

  /// Σ weights.
  Weight Total() const { return total_; }

  /// Number of Observe() calls so far.
  std::uint64_t NumObserved() const { return observed_; }

  /// Snapshot as an immutable Distribution.
  Distribution ToDistribution() const {
    auto d = Distribution::FromWeights(counts_);
    AIGS_CHECK(d.ok());
    return *std::move(d);
  }

  /// Resets to the prior-only state.
  void Reset() {
    std::fill(counts_.begin(), counts_.end(), prior_);
    total_ = prior_ * counts_.size();
    observed_ = 0;
  }

  const std::vector<Weight>& counts() const { return counts_; }

 private:
  std::vector<Weight> counts_;
  Weight total_;
  Weight prior_;
  std::uint64_t observed_ = 0;
};

/// Total-variation distance between two distributions over the same support
/// (used to test convergence of the learned distribution).
double TotalVariationDistance(const Distribution& a, const Distribution& b);

}  // namespace aigs

#endif  // AIGS_PROB_EMPIRICAL_H_
