#include "core/batched_greedy.h"

#include <vector>

#include "core/split_weight_index.h"
#include "graph/candidate_set.h"

namespace aigs {
namespace {

// Reference backend: per-pick BFS scans over a scratch candidate set.
class BatchedGreedyBfsSession final : public SearchSession {
 public:
  BatchedGreedyBfsSession(const Hierarchy& h,
                          const std::vector<Weight>& weights,
                          std::size_t questions_per_round)
      : hierarchy_(&h),
        weights_(&weights),
        questions_per_round_(questions_per_round),
        candidates_(h.graph()),
        simulated_(h.graph()),
        scratch_(h.NumNodes()) {}

  Query PlanQuestion() const override {
    if (candidates_.alive_count() == 1) {
      return Query::Done(candidates_.SoleCandidate());
    }
    return Query::ReachBatch(SelectBatch());
  }

  void ApplyReachBatch(std::span<const NodeId> nodes,
                       const std::vector<bool>& answers) override {
    AIGS_CHECK(TryApplyReachBatch(nodes, answers).ok() &&
               "batch answers eliminated every candidate");
  }

  Status TryApplyReachBatch(std::span<const NodeId> nodes,
                            const std::vector<bool>& answers) override {
    AIGS_CHECK(answers.size() == nodes.size());
    const ReachabilityIndex& reach = hierarchy_->reach();
    // Intersect all answers: t survives iff Reaches(q_i, t) == answers[i]
    // for every question of the round. (Answers may reference nodes already
    // excluded by other answers of the same round — intersection handles
    // every combination uniformly.)
    std::vector<NodeId> to_kill;
    candidates_.bits().ForEachSetBit([&](std::size_t raw) {
      const NodeId t = static_cast<NodeId>(raw);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (reach.Reaches(nodes[i], t) != answers[i]) {
          to_kill.push_back(t);
          return;
        }
      }
    });
    if (to_kill.size() == candidates_.alive_count()) {
      // Mutually inconsistent answers: no candidate survives. Leave the
      // round pending so a (service) caller can re-answer.
      return Status::InvalidArgument(
          "batch answers are mutually inconsistent — they eliminate every "
          "candidate");
    }
    // Kill via single-node removals on the bitset; counts stay consistent.
    for (const NodeId t : to_kill) {
      candidates_.KillOne(t);
    }
    return Status::OK();
  }

  Status ApplyObservedStep(const TranscriptStep& step) override {
    // The batch applier is already a pure intersection over arbitrary
    // (node, answer) rounds, so an observed round from another epoch folds
    // through the same validating path.
    if (step.kind != Query::Kind::kReachBatch) {
      return SearchSession::ApplyObservedStep(step);
    }
    for (const NodeId q : step.nodes) {
      if (q >= hierarchy_->NumNodes()) {
        return Status::OutOfRange("observed question node " +
                                  std::to_string(q) +
                                  " outside the hierarchy");
      }
    }
    return TryApplyReachBatch(step.nodes, step.batch_answers);
  }

 private:
  // Picks up to k questions: each is the middle point of the region that
  // remains after assuming "no" to the round's earlier picks. The member
  // scratch set is reset from the live one instead of copy-constructed.
  std::vector<NodeId> SelectBatch() const {
    std::vector<NodeId> batch;
    simulated_.ResetFrom(candidates_);
    while (batch.size() < questions_per_round_ &&
           simulated_.alive_count() > 1) {
      const NodeId q = MiddlePointOf(simulated_);
      if (q == kInvalidNode) {
        break;
      }
      batch.push_back(q);
      simulated_.RemoveReachable(q);
    }
    AIGS_CHECK(!batch.empty());
    return batch;
  }

  // Middle point over `set`: minimizes |2·w(R(v) ∩ set) − w(set)| among
  // nodes that actually split the set (0 < |R(v) ∩ set| < |set| by count),
  // so progress never stalls on zero-weight regions.
  NodeId MiddlePointOf(CandidateSet& set) const {
    const Digraph& g = hierarchy_->graph();
    Weight total = 0;
    set.bits().ForEachSetBit(
        [&](std::size_t v) { total += (*weights_)[v]; });
    NodeId best = kInvalidNode;
    Weight best_diff = 0;
    const std::size_t set_count = set.alive_count();
    set.bits().ForEachSetBit([&](std::size_t raw) {
      const NodeId v = static_cast<NodeId>(raw);
      Weight reach_weight = 0;
      std::size_t reach_count = 0;
      scratch_.ForwardBfs(
          g, v, [&set](NodeId x) { return set.IsAlive(x); },
          [&](NodeId x) {
            reach_weight += (*weights_)[x];
            ++reach_count;
          });
      if (reach_count == set_count) {
        return;  // "yes" is certain; the question is wasted
      }
      // Overflow-safe |2*reach - total| (same pattern as middle_point.cc).
      const Weight rest = total - reach_weight;
      const Weight diff =
          reach_weight > rest ? reach_weight - rest : rest - reach_weight;
      if (best == kInvalidNode || diff < best_diff) {
        best = v;
        best_diff = diff;
      }
    });
    return best;
  }

  const Hierarchy* hierarchy_;
  const std::vector<Weight>* weights_;
  std::size_t questions_per_round_;
  CandidateSet candidates_;
  // Planning scratch (round simulation + BFS) — memoized derived state,
  // reset from `candidates_` on every plan.
  mutable CandidateSet simulated_;
  mutable BfsScratch scratch_;
};

// Fast backend: SplitWeightIndex state + a ResetFrom simulation scratch.
// Construction is O(1) — both overlays share the policy's base.
class BatchedGreedyIndexSession final : public SearchSession {
 public:
  BatchedGreedyIndexSession(const SplitWeightBase& base,
                            std::size_t questions_per_round)
      : questions_per_round_(questions_per_round),
        state_(base),
        simulated_(base) {}

  Query PlanQuestion() const override {
    if (state_.AliveCount() == 1) {
      return Query::Done(state_.Target());
    }
    return Query::ReachBatch(SelectBatch());
  }

  void ApplyReachBatch(std::span<const NodeId> nodes,
                       const std::vector<bool>& answers) override {
    AIGS_CHECK(TryApplyReachBatch(nodes, answers).ok() &&
               "batch answers eliminated every candidate");
  }

  Status TryApplyReachBatch(std::span<const NodeId> nodes,
                            const std::vector<bool>& answers) override {
    AIGS_CHECK(answers.size() == nodes.size());
    // Fold the round into the simulation scratch first — one bitset
    // intersection / Euler-range operation per question — so mutually
    // inconsistent answers can be rejected without touching the session.
    simulated_.ResetFrom(state_);
    simulated_.ApplyBatch(nodes, answers);
    if (simulated_.AliveCount() == 0) {
      return Status::InvalidArgument(
          "batch answers are mutually inconsistent — they eliminate every "
          "candidate");
    }
    state_.ResetFrom(simulated_);
    return Status::OK();
  }

  Status ApplyObservedStep(const TranscriptStep& step) override {
    // ApplyBatch tolerates arbitrary (node, answer) rounds — dead nodes,
    // down-only root moves — so the observed fold is the validating batch
    // path itself.
    if (step.kind != Query::Kind::kReachBatch) {
      return SearchSession::ApplyObservedStep(step);
    }
    for (const NodeId q : step.nodes) {
      if (q >= state_.base().hierarchy().NumNodes()) {
        return Status::OutOfRange("observed question node " +
                                  std::to_string(q) +
                                  " outside the hierarchy");
      }
    }
    return TryApplyReachBatch(step.nodes, step.batch_answers);
  }

 private:
  std::vector<NodeId> SelectBatch() const {
    std::vector<NodeId> batch;
    simulated_.ResetFrom(state_);
    while (batch.size() < questions_per_round_ &&
           simulated_.AliveCount() > 1) {
      const MiddlePoint mp = simulated_.FindSplittingMiddlePoint();
      if (mp.node == kInvalidNode) {
        break;
      }
      batch.push_back(mp.node);
      simulated_.ApplyNo(mp.node);
    }
    AIGS_CHECK(!batch.empty());
    return batch;
  }

  std::size_t questions_per_round_;
  SplitWeightIndex state_;
  // Round-simulation scratch — memoized derived state, reset from `state_`
  // before every use (both planning and batch validation).
  mutable SplitWeightIndex simulated_;
};

}  // namespace

BatchedGreedyPolicy::BatchedGreedyPolicy(const Hierarchy& hierarchy,
                                         const Distribution& dist,
                                         BatchedGreedyOptions options)
    : hierarchy_(&hierarchy), weights_(dist.weights()), options_(options) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  AIGS_CHECK(options.questions_per_round >= 1);
  if (options_.backend == SelectionBackend::kSplitIndex) {
    base_ = std::make_unique<SplitWeightBase>(hierarchy, weights_);
  }
}

std::unique_ptr<SearchSession> BatchedGreedyPolicy::NewSession() const {
  if (options_.backend == SelectionBackend::kBfsRescan) {
    return std::make_unique<BatchedGreedyBfsSession>(
        *hierarchy_, weights_, options_.questions_per_round);
  }
  return std::make_unique<BatchedGreedyIndexSession>(
      *base_, options_.questions_per_round);
}

}  // namespace aigs
