// GreedyTree (Algorithm 4): the paper's efficient instantiation of the
// greedy policy on tree hierarchies. Each round descends the weighted heavy
// path from the current root — Theorem 5 proves it contains a middle point —
// so query selection costs O(h·d) (or O(h log d) with the lazy-heap child
// scan) instead of the naive O(n·m).
//
// Approximation guarantee: (1+√5)/2 ≈ 1.618 on trees (Theorem 2).
#ifndef AIGS_CORE_GREEDY_TREE_H_
#define AIGS_CORE_GREEDY_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/tree_weight_index.h"
#include "prob/distribution.h"
#include "prob/rounding.h"

namespace aigs {

/// Tuning knobs for GreedyTree.
struct GreedyTreeOptions {
  /// Apply the Eq. (1) rounding before searching. The paper's tree analysis
  /// (Theorem 2) uses raw weights, so this defaults to off; enabling it
  /// reproduces the Theorem 1 configuration on trees (ablation).
  bool use_rounded_weights = false;
  RoundingOptions rounding;

  /// How the descent finds the max-weight child: linear scan (the paper's
  /// O(nhd) bound) or a lazily-maintained per-node max-heap (the footnote's
  /// O(nh log d) variant).
  enum class ChildScan { kLinear, kLazyHeap };
  ChildScan child_scan = ChildScan::kLinear;
};

/// Greedy policy on trees. The hierarchy must satisfy is_tree().
class GreedyTreePolicy : public Policy {
 public:
  /// Binds the policy to a hierarchy and a target distribution. Both must
  /// outlive the policy; the distribution's weights are copied.
  GreedyTreePolicy(const Hierarchy& hierarchy, const Distribution& dist,
                   GreedyTreeOptions options = {});

  std::string name() const override { return "GreedyTree"; }
  std::unique_ptr<SearchSession> NewSession() const override;

  /// Live weight access for the online-learning harness. Only meaningful
  /// with use_rounded_weights == false; do not mutate while sessions from
  /// this policy are in flight.
  TreeWeightBase* mutable_base() { return &base_; }
  const TreeWeightBase& base() const { return base_; }

  const GreedyTreeOptions& options() const { return options_; }

 private:
  const Hierarchy* hierarchy_;
  GreedyTreeOptions options_;
  TreeWeightBase base_;
};

}  // namespace aigs

#endif  // AIGS_CORE_GREEDY_TREE_H_
