// Text serialization for hierarchies so external datasets (the real Amazon /
// ImageNet category graphs, for users who have them) can be plugged into the
// benchmark harnesses.
//
// Format ("aigs-hierarchy v1"):
//   # comment lines start with '#'
//   n <num_nodes>
//   l <node_id> <label...>          (optional, any subset of nodes)
//   e <parent_id> <child_id>        (one per edge)
#ifndef AIGS_GRAPH_GRAPH_IO_H_
#define AIGS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/digraph.h"
#include "util/status.h"

namespace aigs {

/// Serializes a finalized graph to the text format above.
std::string SerializeHierarchy(const Digraph& g);

/// Parses the text format and finalizes the graph (dummy root allowed).
StatusOr<Digraph> ParseHierarchy(const std::string& text);

/// Writes SerializeHierarchy(g) to `path`.
Status SaveHierarchy(const Digraph& g, const std::string& path);

/// Reads and parses a hierarchy file.
StatusOr<Digraph> LoadHierarchy(const std::string& path);

}  // namespace aigs

#endif  // AIGS_GRAPH_GRAPH_IO_H_
