// Named experiment suites of the unified bench harness. Each suite is the
// config-driven successor of one former bench_* binary: it builds
// ScenarioSpec rows (dataset × distribution × policy × cost model ×
// threads), runs them through the shared scenario engine, prints the
// familiar ASCII table, and contributes to the uniform JSON/CSV sink.
#ifndef AIGS_BENCH_SUITES_H_
#define AIGS_BENCH_SUITES_H_

#include <functional>
#include <string>
#include <vector>

#include "bench/scenario.h"

namespace aigs::bench {

/// Shared run configuration handed to every suite.
struct SuiteContext {
  /// Base dataset scale (fraction of Table II size).
  double scale = 0.25;
  /// Repetitions for randomized distributions / prices.
  std::size_t reps = 3;
  /// Evaluator worker count (0 = shared default pool).
  int threads = 0;
  /// Minimal configuration: every suite shrinks to one repetition and its
  /// smallest sweep so CI can exercise all policies cheaply.
  bool smoke = false;
  /// Dataset cache shared across suites in one invocation.
  DatasetCache* cache = nullptr;
  /// Uniform result sink for --json / --csv; may be null.
  std::vector<ScenarioResult>* results = nullptr;
};

struct Suite {
  std::string name;
  std::string help;
  std::function<int(SuiteContext&)> fn;  // returns a process exit code
};

/// Every registered suite, in presentation order.
const std::vector<Suite>& AllSuites();

/// Lookup by name; null when unknown.
const Suite* FindSuite(const std::string& name);

}  // namespace aigs::bench

#endif  // AIGS_BENCH_SUITES_H_
