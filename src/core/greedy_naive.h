// GreedyNaive (Algorithm 2): the baseline instantiation of the greedy
// policy. Every round it recomputes p(G_v ∩ C) from scratch for every
// candidate v (Algorithm 3) — O(n·m) per query, O(n²·m) per search — which
// is exactly the inefficiency Fig. 6 measures GreedyTree/GreedyDAG against.
#ifndef AIGS_CORE_GREEDY_NAIVE_H_
#define AIGS_CORE_GREEDY_NAIVE_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "prob/distribution.h"
#include "prob/rounding.h"

namespace aigs {

/// Tuning knobs for GreedyNaive.
struct GreedyNaiveOptions {
  /// Round weights per Eq. (1) first. Off by default (Algorithm 2 uses raw
  /// probabilities); enable to mirror a GreedyDAG configuration exactly.
  bool use_rounded_weights = false;
  RoundingOptions rounding;
};

/// Naive greedy policy; works on any hierarchy (tree or DAG).
class GreedyNaivePolicy : public Policy {
 public:
  GreedyNaivePolicy(const Hierarchy& hierarchy, const Distribution& dist,
                    GreedyNaiveOptions options = {});

  std::string name() const override { return "GreedyNaive"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  std::vector<Weight> weights_;
};

}  // namespace aigs

#endif  // AIGS_CORE_GREEDY_NAIVE_H_
