#include "eval/online.h"

#include <gtest/gtest.h>

#include "core/aigs.h"
#include "eval/evaluator.h"
#include "eval/runtime_bench.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

TEST(Online, RejectsBadBlockConfiguration) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomTree(20, rng));
  const Distribution dist = EqualDistribution(20);
  OnlineOptions options;
  options.num_objects = 105;
  options.block_size = 10;  // not a divisor
  EXPECT_FALSE(RunOnlineLearning(h, dist, options).ok());
  options.num_objects = 0;
  EXPECT_FALSE(RunOnlineLearning(h, dist, options).ok());
}

TEST(Online, ProducesOneEntryPerBlock) {
  Rng rng(2);
  const Hierarchy h = MustBuild(RandomTree(30, rng));
  const Distribution dist = ExponentialRandomDistribution(30, rng);
  OnlineOptions options;
  options.num_objects = 400;
  options.block_size = 100;
  options.num_traces = 2;
  auto series = RunOnlineLearning(h, dist, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->avg_cost_per_block.size(), 4u);
  EXPECT_GT(series->overall_avg_cost, 0.0);
}

TEST(Online, LearnedCostApproachesOfflineGreedy) {
  // With a skewed true distribution the learned policy's late blocks must
  // get close to the offline greedy cost and beat the equal-prior start
  // (the paper's Fig. 4 convergence claim).
  Rng rng(3);
  const Hierarchy h = MustBuild(RandomTree(60, rng));
  Rng dist_rng(4);
  const Distribution truth = ZipfRandomDistribution(60, 2.0, dist_rng);

  OnlineOptions options;
  options.num_objects = 4000;
  options.block_size = 500;
  options.num_traces = 3;
  options.seed = 7;
  auto series = RunOnlineLearning(h, truth, options);
  ASSERT_TRUE(series.ok());

  GreedyTreePolicy offline(h, truth);
  const double offline_cost = EvaluateExact(offline, h, truth).expected_cost;
  const double first_block = series->avg_cost_per_block.front();
  const double last_block = series->avg_cost_per_block.back();
  // Converging: the last block is closer to the offline optimum than the
  // first block was (allowing sampling noise).
  EXPECT_LT(std::abs(last_block - offline_cost),
            std::abs(first_block - offline_cost) + 0.5);
  // And within 25% of offline after 4k observations.
  EXPECT_LT(last_block, offline_cost * 1.25 + 0.5);
}

TEST(Online, WorksOnDags) {
  Rng rng(5);
  const Hierarchy h = MustBuild(RandomDag(40, rng, 0.3));
  Rng dist_rng(6);
  const Distribution truth = ZipfRandomDistribution(40, 2.0, dist_rng);
  OnlineOptions options;
  options.num_objects = 600;
  options.block_size = 200;
  options.num_traces = 2;
  auto series = RunOnlineLearning(h, truth, options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->avg_cost_per_block.size(), 3u);
}

TEST(Online, DeterministicForSameSeed) {
  Rng rng(7);
  const Hierarchy h = MustBuild(RandomTree(25, rng));
  Rng dist_rng(8);
  const Distribution truth = ExponentialRandomDistribution(25, dist_rng);
  OnlineOptions options;
  options.num_objects = 300;
  options.block_size = 100;
  options.num_traces = 2;
  options.seed = 11;
  auto a = RunOnlineLearning(h, truth, options);
  auto b = RunOnlineLearning(h, truth, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->avg_cost_per_block, b->avg_cost_per_block);
}

TEST(RuntimeBench, ReportsPerDepthAverages) {
  Rng rng(9);
  const Hierarchy h = MustBuild(RandomTree(200, rng));
  const Distribution dist = EqualDistribution(200);
  GreedyTreePolicy policy(h, dist);
  RuntimeByDepthOptions options;
  options.samples_per_depth = 3;
  const RuntimeByDepthResult result = MeasureRuntimeByDepth(policy, h, options);
  ASSERT_EQ(result.avg_millis.size(),
            static_cast<std::size_t>(h.Height()) + 1);
  EXPECT_EQ(result.nodes_at_depth[0], 1u);  // only the root at depth 0
  std::size_t total = 0;
  for (const std::size_t c : result.nodes_at_depth) {
    total += c;
  }
  EXPECT_EQ(total, h.NumNodes());
  for (const double ms : result.avg_millis) {
    EXPECT_GE(ms, 0.0);
  }
}

TEST(RuntimeBench, MaxDepthLimitsMeasurement) {
  Rng rng(10);
  const Hierarchy h = MustBuild(RandomTree(100, rng));
  const Distribution dist = EqualDistribution(100);
  GreedyTreePolicy policy(h, dist);
  RuntimeByDepthOptions options;
  options.samples_per_depth = 2;
  options.max_depth = 2;
  const RuntimeByDepthResult result = MeasureRuntimeByDepth(policy, h, options);
  EXPECT_EQ(result.avg_millis.size(), 3u);
}

}  // namespace
}  // namespace aigs
