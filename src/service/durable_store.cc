#include "service/durable_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace aigs {
namespace {

namespace fs = std::filesystem;

std::string SeqName(const char* prefix, std::uint64_t seq,
                    const char* suffix) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%06" PRIu64 "%s", prefix, seq,
                suffix);
  return buffer;
}

std::string SegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + SeqName("wal-", seq, ".log");
}

std::string CheckpointPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + SeqName("checkpoint-", seq, ".ckpt");
}

/// The sequence number of a "prefix<seq>suffix" file name, or 0.
std::uint64_t ParseSeqName(std::string_view name, std::string_view prefix,
                           std::string_view suffix) {
  if (!name.starts_with(prefix) || !name.ends_with(suffix) ||
      name.size() <= prefix.size() + suffix.size()) {
    return 0;
  }
  const auto digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  const auto seq = ParseUint64(digits);
  return seq.ok() ? *seq : 0;
}

/// Pops the next space-delimited token off `*rest`.
std::string_view NextToken(std::string_view* rest) {
  while (!rest->empty() && rest->front() == ' ') {
    rest->remove_prefix(1);
  }
  const std::size_t end = rest->find(' ');
  const std::string_view token = rest->substr(0, end);
  rest->remove_prefix(end == std::string_view::npos ? rest->size() : end);
  return token;
}

/// Best-effort directory fsync so a rename survives power loss. Some
/// filesystems refuse O_DIRECTORY fsync; that downgrade is not an error.
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

struct DirListing {
  std::map<std::uint64_t, std::string> wals;         // seq -> path
  std::map<std::uint64_t, std::string> checkpoints;  // seq -> path
};

StatusOr<DirListing> ListDir(const std::string& dir) {
  DirListing listing;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const std::uint64_t seq = ParseSeqName(name, "wal-", ".log");
        seq != 0) {
      listing.wals.emplace(seq, entry.path().string());
    } else if (const std::uint64_t cseq =
                   ParseSeqName(name, "checkpoint-", ".ckpt");
               cseq != 0) {
      listing.checkpoints.emplace(cseq, entry.path().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list durable dir '" + dir +
                           "': " + ec.message());
  }
  return listing;
}

/// In-progress recovery state for one session.
using SessionMap = std::map<SessionId, RecoveredSessionRecord>;

void ApplyOpenRecord(std::string_view payload, SessionMap* state,
                     DurableScan* scan) {
  const std::size_t newline = payload.find('\n');
  std::string_view header =
      newline == std::string_view::npos ? payload : payload.substr(0, newline);
  NextToken(&header);  // "open"
  const auto id = ParseUint64(NextToken(&header));
  const auto wall = ParseUint64(NextToken(&header));
  if (!id.ok() || !wall.ok() || *id == 0 ||
      newline == std::string_view::npos) {
    ++scan->malformed_records;
    return;
  }
  auto saved = SessionCodec::Decode(std::string(payload.substr(newline + 1)));
  if (!saved.ok()) {
    ++scan->malformed_records;
    return;
  }
  RecoveredSessionRecord& record = (*state)[*id];
  record.id = *id;
  record.last_active_wall_ms = *wall;
  record.saved = *std::move(saved);
  scan->next_session_id = std::max(scan->next_session_id, *id + 1);
}

void ApplyStepRecord(std::string_view payload, SessionMap* state,
                     DurableScan* scan) {
  std::string_view rest = payload;
  NextToken(&rest);  // "step"
  const auto id = ParseUint64(NextToken(&rest));
  const auto wall = ParseUint64(NextToken(&rest));
  const std::string fp_hex(NextToken(&rest));
  const auto index = ParseUint64(NextToken(&rest));
  char* end = nullptr;
  const std::uint64_t fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
  if (!id.ok() || !wall.ok() || !index.ok() || fp_hex.empty() ||
      end == fp_hex.c_str() || *end != '\0') {
    ++scan->malformed_records;
    return;
  }
  const auto it = state->find(*id);
  if (it == state->end() ||
      it->second.saved.fingerprint != fingerprint) {
    // A step for a session this scan never opened (or for a different
    // incarnation of the catalog): corruption or tampering — dropped, the
    // session keeps its last consistent prefix.
    ++scan->malformed_records;
    return;
  }
  RecoveredSessionRecord& record = it->second;
  if (*index < record.saved.steps.size()) {
    return;  // already inside the checkpoint blob (rotation overlap)
  }
  if (*index > record.saved.steps.size()) {
    ++scan->malformed_records;  // gap: a record between was lost
    return;
  }
  auto step = SessionCodec::ParseStepLine(rest);
  if (!step.ok()) {
    ++scan->malformed_records;
    return;
  }
  record.saved.steps.push_back(*std::move(step));
  record.last_active_wall_ms = *wall;
}

void ApplyCloseRecord(std::string_view payload, SessionMap* state,
                      DurableScan* scan) {
  std::string_view rest = payload;
  NextToken(&rest);  // "close"
  const auto id = ParseUint64(NextToken(&rest));
  if (!id.ok()) {
    ++scan->malformed_records;
    return;
  }
  // Erasing an id the scan does not hold is benign: the open lived in a
  // segment an earlier checkpoint already collapsed away.
  state->erase(*id);
}

void ApplyWalRecord(std::string_view payload, SessionMap* state,
                    DurableScan* scan) {
  if (payload.starts_with("open ")) {
    ApplyOpenRecord(payload, state, scan);
  } else if (payload.starts_with("step ")) {
    ApplyStepRecord(payload, state, scan);
  } else if (payload.starts_with("close ")) {
    ApplyCloseRecord(payload, state, scan);
  } else {
    ++scan->malformed_records;
  }
}

/// Loads the newest fully-valid checkpoint into `*state`; returns its
/// sequence number (0 = none usable, start empty from the oldest segment).
StatusOr<std::uint64_t> LoadNewestCheckpoint(const DirListing& listing,
                                             SessionMap* state,
                                             DurableScan* scan) {
  for (auto it = listing.checkpoints.rbegin();
       it != listing.checkpoints.rend(); ++it) {
    const auto& [seq, path] = *it;
    auto file = ReadWal(path);
    if (!file.ok()) {
      return file.status();  // unreadable device, not just damaged content
    }
    // A checkpoint was renamed into place whole; any damage means bit rot,
    // so the whole file is distrusted and an older one is tried.
    if (file->torn_bytes != 0 || file->records.empty()) {
      ++scan->invalid_checkpoints;
      continue;
    }
    std::string_view meta = file->records.front();
    NextToken(&meta);  // "meta"
    const auto meta_seq = ParseUint64(NextToken(&meta));
    NextToken(&meta);  // wall_ms (informational)
    const auto next_id = ParseUint64(NextToken(&meta));
    if (!file->records.front().starts_with("meta ") || !meta_seq.ok() ||
        *meta_seq != seq || !next_id.ok()) {
      ++scan->invalid_checkpoints;
      continue;
    }
    SessionMap loaded;
    std::uint64_t malformed = 0;
    for (std::size_t i = 1; i < file->records.size(); ++i) {
      std::string_view payload = file->records[i];
      const std::size_t newline = payload.find('\n');
      std::string_view header = newline == std::string_view::npos
                                    ? payload
                                    : payload.substr(0, newline);
      NextToken(&header);  // "session"
      const auto id = ParseUint64(NextToken(&header));
      const auto last = ParseUint64(NextToken(&header));
      if (!file->records[i].starts_with("session ") || !id.ok() ||
          !last.ok() || *id == 0 || newline == std::string_view::npos) {
        ++malformed;
        continue;
      }
      auto saved =
          SessionCodec::Decode(std::string(payload.substr(newline + 1)));
      if (!saved.ok()) {
        ++malformed;
        continue;
      }
      RecoveredSessionRecord& record = loaded[*id];
      record.id = *id;
      record.last_active_wall_ms = *last;
      record.saved = *std::move(saved);
    }
    *state = std::move(loaded);
    scan->checkpoint_sessions = state->size();
    scan->malformed_records += malformed;
    scan->next_session_id = std::max(scan->next_session_id, *next_id);
    return seq;
  }
  return std::uint64_t{0};
}

/// Full directory scan: newest valid checkpoint + the valid prefix of
/// every segment at or after it, in order. Returns the highest sequence
/// number any file used (0 for an empty directory).
StatusOr<std::uint64_t> ScanDir(const std::string& dir, DurableScan* scan) {
  AIGS_ASSIGN_OR_RETURN(const DirListing listing, ListDir(dir));
  SessionMap state;
  AIGS_ASSIGN_OR_RETURN(const std::uint64_t base_seq,
                        LoadNewestCheckpoint(listing, &state, scan));
  for (const auto& [seq, path] : listing.wals) {
    if (seq < base_seq) {
      continue;  // collapsed into the checkpoint already
    }
    AIGS_ASSIGN_OR_RETURN(const WalScan file, ReadWal(path));
    // Each segment's valid prefix is applied even when its tail is torn:
    // the post-crash run that opened the NEXT segment recovered from
    // exactly this prefix, so later segments compose on top of it.
    if (file.torn_bytes != 0) {
      ++scan->torn_tails;
      scan->torn_bytes += file.torn_bytes;
    }
    for (const std::string& payload : file.records) {
      ++scan->wal_records;
      ApplyWalRecord(payload, &state, scan);
    }
  }
  for (auto& [id, record] : state) {
    scan->sessions.push_back(std::move(record));
  }
  std::uint64_t max_seq = base_seq;
  if (!listing.wals.empty()) {
    max_seq = std::max(max_seq, listing.wals.rbegin()->first);
  }
  if (!listing.checkpoints.empty()) {
    max_seq = std::max(max_seq, listing.checkpoints.rbegin()->first);
  }
  return max_seq;
}

}  // namespace

DurableStore::DurableStore(DurabilityOptions options)
    : options_(std::move(options)) {}

std::uint64_t DurableStore::NowWallMillis() const {
  if (options_.wall_clock_millis) {
    return options_.wall_clock_millis();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool DurableStore::HasState(const std::string& dir) {
  auto listing = ListDir(dir);
  return listing.ok() &&
         (!listing->wals.empty() || !listing->checkpoints.empty());
}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    DurabilityOptions options, DurableScan* scan) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability needs a directory");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create durable dir '" + options.dir +
                           "': " + ec.message());
  }
  *scan = DurableScan{};
  AIGS_ASSIGN_OR_RETURN(const std::uint64_t max_seq,
                        ScanDir(options.dir, scan));
  std::unique_ptr<DurableStore> store(new DurableStore(std::move(options)));
  store->seq_ = max_seq + 1;
  AIGS_ASSIGN_OR_RETURN(
      store->wal_,
      WalWriter::Open(SegmentPath(store->options_.dir, store->seq_),
                      store->options_.sync));
  return store;
}

Status DurableStore::AppendRecord(const std::string& payload) {
  Status status;
  {
    std::shared_lock<std::shared_mutex> lock(rotate_mu_);
    status = wal_->Append(payload);
    if (status.ok()) {
      appends_.fetch_add(1, std::memory_order_relaxed);
      records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t syncs = wal_->syncs();
      std::uint64_t seen = seen_syncs_.load(std::memory_order_relaxed);
      if (syncs != seen &&
          seen_syncs_.compare_exchange_strong(seen, syncs,
                                              std::memory_order_relaxed)) {
        last_sync_wall_ms_.store(NowWallMillis(), std::memory_order_relaxed);
      }
    } else {
      append_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (status.ok() && options_.after_append_hook) {
    // Crash-injection seam: the record is durable (to the policy's
    // promise) but the caller has NOT acked yet.
    options_.after_append_hook();
  }
  return status;
}

Status DurableStore::AppendOpen(SessionId id, const SerializedSession& state) {
  std::string payload = "open " + std::to_string(id) + " " +
                        std::to_string(NowWallMillis()) + "\n";
  payload += SessionCodec::Encode(state);
  return AppendRecord(payload);
}

Status DurableStore::AppendStep(SessionId id, std::uint64_t fingerprint,
                                std::size_t index,
                                const TranscriptStep& step) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, fingerprint);
  std::string payload = "step " + std::to_string(id) + " " +
                        std::to_string(NowWallMillis()) + " " + fp + " " +
                        std::to_string(index) + " ";
  SessionCodec::AppendStepKey(step, &payload);
  return AppendRecord(payload);
}

Status DurableStore::AppendClose(SessionId id) {
  return AppendRecord("close " + std::to_string(id) + " " +
                      std::to_string(NowWallMillis()));
}

Status DurableStore::Sync() {
  std::shared_lock<std::shared_mutex> lock(rotate_mu_);
  AIGS_RETURN_NOT_OK(wal_->Sync());
  last_sync_wall_ms_.store(NowWallMillis(), std::memory_order_relaxed);
  seen_syncs_.store(wal_->syncs(), std::memory_order_relaxed);
  return Status::OK();
}

bool DurableStore::ShouldCheckpoint() const {
  return options_.checkpoint_every != 0 &&
         records_since_checkpoint_.load(std::memory_order_relaxed) >=
             options_.checkpoint_every;
}

StatusOr<std::uint64_t> DurableStore::BeginCheckpoint() {
  std::unique_lock<std::shared_mutex> lock(rotate_mu_);
  const std::uint64_t next = seq_ + 1;
  AIGS_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> fresh,
      WalWriter::Open(SegmentPath(options_.dir, next), options_.sync));
  // The outgoing segment must be durable before any checkpoint built on
  // its contents can delete it.
  AIGS_RETURN_NOT_OK(wal_->Sync());
  wal_ = std::move(fresh);
  seq_ = next;
  records_since_checkpoint_.store(0, std::memory_order_relaxed);
  seen_syncs_.store(0, std::memory_order_relaxed);
  return next;
}

Status DurableStore::CommitCheckpoint(
    std::uint64_t seq, const std::vector<CheckpointSession>& sessions,
    SessionId next_id) {
  const std::string tmp = options_.dir + "/" + SeqName("checkpoint-", seq,
                                                       ".tmp");
  const std::string final_path = CheckpointPath(options_.dir, seq);
  std::error_code ec;
  fs::remove(tmp, ec);  // a leftover from an earlier crashed attempt
  {
    AIGS_ASSIGN_OR_RETURN(
        std::unique_ptr<WalWriter> out,
        WalWriter::Open(tmp, WalSyncOptions{FsyncPolicy::kNone, 1}));
    AIGS_RETURN_NOT_OK(out->Append(
        "meta " + std::to_string(seq) + " " +
        std::to_string(NowWallMillis()) + " " + std::to_string(next_id)));
    for (const CheckpointSession& session : sessions) {
      AIGS_RETURN_NOT_OK(out->Append(
          "session " + std::to_string(session.id) + " " +
          std::to_string(session.last_active_wall_ms) + "\n" +
          session.blob));
    }
    AIGS_RETURN_NOT_OK(out->Sync());
  }
  ec.clear();
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return Status::IOError("cannot publish checkpoint '" + final_path +
                           "': " + ec.message());
  }
  FsyncDir(options_.dir);

  // Everything strictly older than this checkpoint is now redundant.
  if (auto listing = ListDir(options_.dir); listing.ok()) {
    for (const auto& [old_seq, path] : listing->wals) {
      if (old_seq < seq) {
        fs::remove(path, ec);
      }
    }
    for (const auto& [old_seq, path] : listing->checkpoints) {
      if (old_seq < seq) {
        fs::remove(path, ec);
      }
    }
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_wall_ms_.store(NowWallMillis(), std::memory_order_relaxed);
  return Status::OK();
}

DurableStoreStats DurableStore::Stats() const {
  DurableStoreStats stats;
  stats.dir = options_.dir;
  stats.fsync_policy = FormatFsyncPolicy(options_.sync);
  {
    std::shared_lock<std::shared_mutex> lock(rotate_mu_);
    stats.segment_seq = seq_;
    stats.wal_bytes = wal_->bytes();
    stats.wal_records = wal_->records();
    stats.wal_syncs = wal_->syncs();
  }
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.append_failures = append_failures_.load(std::memory_order_relaxed);
  stats.records_since_checkpoint =
      records_since_checkpoint_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.last_checkpoint_wall_ms =
      last_checkpoint_wall_ms_.load(std::memory_order_relaxed);
  stats.last_sync_wall_ms =
      last_sync_wall_ms_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aigs
