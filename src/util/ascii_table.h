// Fixed-width ASCII table rendering so benchmark binaries can print rows that
// mirror the paper's tables.
#ifndef AIGS_UTIL_ASCII_TABLE_H_
#define AIGS_UTIL_ASCII_TABLE_H_

#include <string>
#include <vector>

namespace aigs {

/// Accumulates rows of string cells and renders an aligned table with a
/// header rule, e.g.:
///
///   Dataset   | TopDown | MIGS  | WIGS  | Greedy
///   ----------+---------+-------+-------+-------
///   Amazon    | 92.23   | 89.19 | 37.35 | 21.02
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a data row; must have exactly one cell per header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (trailing newline included).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aigs

#endif  // AIGS_UTIL_ASCII_TABLE_H_
