#include "tree/tree.h"

#include <bit>
#include <utility>

namespace aigs {

StatusOr<Tree> Tree::Build(const Digraph& g) {
  if (!g.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  if (!g.IsTree()) {
    return Status::InvalidArgument("graph is not a rooted tree");
  }
  Tree t;
  t.graph_ = &g;
  const std::size_t n = g.NumNodes();
  t.parent_.assign(n, kInvalidNode);
  t.tin_.assign(n, 0);
  t.tout_.assign(n, 0);
  t.order_.reserve(n);

  // Iterative preorder DFS.
  std::uint32_t clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(g.root(), 0);
  t.tin_[g.root()] = clock++;
  t.order_.push_back(g.root());
  while (!stack.empty()) {
    auto& [u, next_child] = stack.back();
    const auto children = g.Children(u);
    if (next_child < children.size()) {
      const NodeId c = children[next_child++];
      t.parent_[c] = u;
      t.tin_[c] = clock++;
      t.order_.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      t.tout_[u] = clock;
      stack.pop_back();
    }
  }
  if (t.order_.size() != n) {
    return Status::InvalidArgument("tree is not connected");
  }

  // Binary-lifting table for LCA.
  const int levels =
      std::max(1, std::bit_width(n) > 0 ? static_cast<int>(std::bit_width(n))
                                        : 1);
  t.up_.assign(static_cast<std::size_t>(levels), std::vector<NodeId>(n));
  for (NodeId v = 0; v < n; ++v) {
    t.up_[0][v] = t.parent_[v] == kInvalidNode ? v : t.parent_[v];
  }
  for (int k = 1; k < levels; ++k) {
    for (NodeId v = 0; v < n; ++v) {
      t.up_[static_cast<std::size_t>(k)][v] =
          t.up_[static_cast<std::size_t>(k - 1)]
               [t.up_[static_cast<std::size_t>(k - 1)][v]];
    }
  }
  return t;
}

NodeId Tree::Lca(NodeId u, NodeId v) const {
  if (InSubtree(u, v)) {
    return u;
  }
  if (InSubtree(v, u)) {
    return v;
  }
  // Lift u until its parent contains v.
  NodeId x = u;
  for (std::size_t k = up_.size(); k-- > 0;) {
    const NodeId candidate = up_[k][x];
    if (!InSubtree(candidate, v)) {
      x = candidate;
    }
  }
  return up_[0][x];
}

}  // namespace aigs
