// Deterministic pseudo-random number generation (xoshiro256** seeded via
// splitmix64). All stochastic components of the library (synthetic
// hierarchies, distributions, object streams, noisy oracles) take an explicit
// Rng so experiments are reproducible bit-for-bit.
#ifndef AIGS_UTIL_RNG_H_
#define AIGS_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/common.h"

namespace aigs {

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformIntInclusive(std::int64_t lo, std::int64_t hi) {
    AIGS_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double UniformRealOpenLow() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponential(rate) variate, rate > 0.
  double Exponential(double rate) {
    AIGS_DCHECK(rate > 0);
    return -std::log(UniformRealOpenLow()) / rate;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child generator (for per-thread / per-trace
  /// streams).
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  std::uint64_t state_[4];
};

}  // namespace aigs

#endif  // AIGS_UTIL_RNG_H_
