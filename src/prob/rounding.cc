#include "prob/rounding.h"

namespace aigs {

std::vector<Weight> RoundWeights(const Distribution& dist,
                                 const RoundingOptions& options) {
  const std::size_t n = dist.size();
  const Weight max_weight = dist.MaxWeight();
  AIGS_CHECK(max_weight > 0);
  const U128 n_sq = static_cast<U128>(n) * static_cast<U128>(n);
  std::vector<Weight> rounded(n);
  for (NodeId v = 0; v < n; ++v) {
    const U128 numerator = n_sq * static_cast<U128>(dist.WeightOf(v));
    // Ceiling division; exact because p(u)/p_max == weight(u)/max_weight.
    Weight w = static_cast<Weight>(
        (numerator + static_cast<U128>(max_weight) - 1) /
        static_cast<U128>(max_weight));
    if (options.clamp_min_one && w == 0) {
      w = 1;
    }
    rounded[v] = w;
  }
  return rounded;
}

}  // namespace aigs
