#include "net/shard_router.h"

#include <algorithm>

#include "util/common.h"

namespace aigs::net {

ShardRing::ShardRing(const std::vector<Endpoint>& endpoints,
                     std::size_t vnodes)
    : num_shards_(endpoints.size()) {
  AIGS_CHECK(!endpoints.empty());
  vnodes = std::max<std::size_t>(vnodes, 1);
  ring_.reserve(endpoints.size() * vnodes);
  for (std::size_t shard = 0; shard < endpoints.size(); ++shard) {
    const std::uint64_t base = HashBytes64(endpoints[shard].ToString());
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(Mix64(base ^ Mix64(v)), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRing::ShardFor(std::uint64_t id) const {
  const std::uint64_t point = Mix64(id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap past the highest point
  }
  return it->second;
}

ShardRouter::ShardRouter(std::vector<Endpoint> endpoints,
                         ShardRouterOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      ring_(endpoints_, options.vnodes) {
  shards_.reserve(endpoints_.size());
  for (std::size_t shard = 0; shard < endpoints_.size(); ++shard) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ShardRouter::DisconnectAll() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::unique_ptr<AigsClient>> drop;
    {
      const std::lock_guard<std::mutex> lock(shard->mu);
      drop.swap(shard->idle);
    }
    // Destroyed outside the lock: each dtor closes a socket.
  }
}

StatusOr<ShardRouter::Lease> ShardRouter::LeaseFor(std::size_t shard) {
  AIGS_DCHECK(shard < shards_.size());
  Shard& pool = *shards_[shard];
  {
    const std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.idle.empty()) {
      std::unique_ptr<AigsClient> client = std::move(pool.idle.back());
      pool.idle.pop_back();
      return Lease(pool, std::move(client));
    }
  }
  // Pool empty: dial a fresh connection, outside the lock, so a slow or
  // unreachable shard never stalls callers headed elsewhere.
  auto client = std::make_unique<AigsClient>();
  AIGS_RETURN_NOT_OK(client->Connect(endpoints_[shard], options_.client));
  return Lease(pool, std::move(client));
}

template <typename Place>
auto ShardRouter::PlaceWithFreshId(Place place)
    -> decltype(place(static_cast<AigsClient*>(nullptr), SessionId{0})) {
  Status last = Status::Internal("no placement attempt ran");
  for (std::size_t attempt = 0; attempt < options_.max_id_attempts;
       ++attempt) {
    SessionId id = Mix64(
        options_.salt ^
        (id_counter_.fetch_add(1, std::memory_order_relaxed) + 1));
    if (id == 0) {
      id = 1;  // 0 means "server assigns" on the wire
    }
    AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
    auto result = place(lease.operator->(), id);
    if (result.ok() ||
        result.status().code() != StatusCode::kFailedPrecondition) {
      return result;
    }
    last = result.status();  // id collision on that shard — redraw
  }
  return Status::FailedPrecondition(
      "could not place a fresh session id after " +
      std::to_string(options_.max_id_attempts) +
      " attempts (last: " + last.message() + ")");
}

StatusOr<SessionId> ShardRouter::Open(const std::string& policy_spec) {
  return PlaceWithFreshId(
      [&policy_spec](AigsClient* client, SessionId id) {
        return client->Open(policy_spec, id);
      });
}

StatusOr<Query> ShardRouter::Ask(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
  return lease->Ask(id);
}

Status ShardRouter::Answer(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
  return lease->Answer(id, answer);
}

StatusOr<std::string> ShardRouter::Save(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
  return lease->Save(id);
}

StatusOr<SessionId> ShardRouter::Resume(const std::string& blob) {
  return PlaceWithFreshId([&blob](AigsClient* client, SessionId id) {
    return client->Resume(blob, id);
  });
}

StatusOr<MigrateResult> ShardRouter::Migrate(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
  return lease->Migrate(id);
}

StatusOr<MigrateResult> ShardRouter::MigrateBlob(const std::string& blob) {
  return PlaceWithFreshId([&blob](AigsClient* client, SessionId id) {
    return client->MigrateBlob(blob, id);
  });
}

Status ShardRouter::Close(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(ring_.ShardFor(id)));
  return lease->Close(id);
}

StatusOr<WireStats> ShardRouter::Stats() {
  WireStats total;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    AIGS_ASSIGN_OR_RETURN(Lease lease, LeaseFor(shard));
    AIGS_ASSIGN_OR_RETURN(const WireStats stats, lease->Stats());
    total.epoch = std::max(total.epoch, stats.epoch);
    total.live_sessions += stats.live_sessions;
    total.ops.opens += stats.ops.opens;
    total.ops.asks += stats.ops.asks;
    total.ops.answers += stats.ops.answers;
    total.ops.saves += stats.ops.saves;
    total.ops.resumes += stats.ops.resumes;
    total.ops.migrates += stats.ops.migrates;
    total.ops.closes += stats.ops.closes;
    total.ops.rejected += stats.ops.rejected;
    for (std::size_t i = 0; i < total.ops.rejected_by_code.size(); ++i) {
      total.ops.rejected_by_code[i] += stats.ops.rejected_by_code[i];
    }
  }
  return total;
}

}  // namespace aigs::net

