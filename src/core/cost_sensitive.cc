#include "core/cost_sensitive.h"

#include "core/split_weight_index.h"

namespace aigs {
namespace {

class CostSensitiveSession final : public SearchSession {
 public:
  CostSensitiveSession(const SplitWeightBase& base, const CostModel& costs)
      : state_(base), costs_(&costs) {}

  Query PlanQuestion() const override {
    if (state_.AliveCount() == 1) {
      return Query::Done(state_.Target());
    }
    return Query::ReachQuery(SelectQueryNode());
  }

  void ApplyReach(NodeId q, bool yes) override {
    if (yes) {
      state_.ApplyYes(q);
    } else {
      state_.ApplyNo(q);
    }
  }

  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    return state_.TryApplyObservedReach(step.nodes[0], step.yes);
  }

 private:
  // argmax over alive v != root of p(G_v∩C)·p(C\G_v)/c(v), compared by exact
  // 128-bit cross multiplication: a/ca > b/cb  <=>  a·cb > b·ca. The inside
  // weight comes from the incremental index (O(log n) per candidate on
  // trees, O(n/64) on DAGs) instead of a session overlay. Enumeration order
  // is mode-dependent, so ties break explicitly toward the smaller node id —
  // the same winner the ascending-id scan picked.
  NodeId SelectQueryNode() const {
    const NodeId r = state_.root();
    const Weight total = state_.TotalAlive();
    NodeId best = kInvalidNode;
    U128 best_product = 0;        // p(G_v∩C)·p(C\G_v)
    std::uint32_t best_cost = 1;  // c(best)
    state_.ForEachAlive([&](NodeId v) {
      if (v == r) {
        return;
      }
      const Weight inside = state_.ReachWeight(v);
      const U128 product =
          static_cast<U128>(inside) * static_cast<U128>(total - inside);
      const std::uint32_t cost = costs_->CostOf(v);
      const U128 lhs = product * best_cost;
      const U128 rhs = best_product * cost;
      if (best == kInvalidNode || lhs > rhs || (lhs == rhs && v < best)) {
        best = v;
        best_product = product;
        best_cost = cost;
      }
    });
    AIGS_CHECK(best != kInvalidNode);
    return best;
  }

  SplitWeightIndex state_;
  const CostModel* costs_;
};

}  // namespace

CostSensitiveGreedyPolicy::CostSensitiveGreedyPolicy(
    const Hierarchy& hierarchy, const Distribution& dist,
    const CostModel& costs, CostSensitiveOptions options)
    : hierarchy_(&hierarchy),
      weights_(options.use_rounded_weights ? RoundWeights(dist, options.rounding)
                                           : dist.weights()),
      costs_(&costs) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  AIGS_CHECK(costs.size() == hierarchy.NumNodes());
  base_ = std::make_unique<SplitWeightBase>(hierarchy, weights_);
}

std::unique_ptr<SearchSession> CostSensitiveGreedyPolicy::NewSession() const {
  return std::make_unique<CostSensitiveSession>(*base_, *costs_);
}

}  // namespace aigs
