// PlanCache — the shared per-epoch question-plan trie behind Engine::Ask.
//
// Every registry policy is deterministic given (catalog snapshot, answer
// transcript): the question a session faces is a pure function of the
// transcript prefix it has accumulated (Definition 6; PR 3's replay-verified
// Resume pins this for every policy on trees and DAGs). A million sessions
// answering the same first three questions therefore need the planner run
// ONCE per distinct prefix — every other session can read the memoized
// question. That is what this cache does: it memoizes the pure planner
// (SearchSession::PlanQuestion) per (policy spec, transcript prefix) so the
// common-prefix hot path of Engine::Ask degenerates to a hash walk. (The
// win is for the expensive middle-point planners; the phase-automata
// baselines re-derive their cheap O(children) plan in the applier even on
// a hit.)
//
// Shape. The cache is a trie over answer transcripts: the root is the empty
// transcript, an edge is one answered question (encoded exactly as the
// SessionCodec transcript line — "reach 5 y", "batch 1+2 yn", ...), and
// each node memoizes the question the policy asks at that prefix. The trie
// is STORED FLAT: a node is one entry in a lock-striped hash map keyed by
// the policy-spec-prefixed concatenation of its edge lines (sessions build
// that key incrementally, one O(edge) append per answer). Flattening keeps
// the concurrency and eviction story trivial — entries are independent, so
// LRU eviction never has to maintain structural invariants, and a stripe
// lock covers exactly one hash bucket region. A missing interior node is
// just a miss: the planner fallback repopulates it.
//
// Lifecycle. An Engine creates one PlanCache per published CatalogSnapshot
// and hands each session the cache of the epoch it opened on. An epoch
// hot-swap simply stops handing out the old trie: it dies with its
// snapshot's refcount when the last session on that epoch closes, so
// online-learning publishes invalidate stale plans for free — there is no
// cross-epoch key, no flush, no version check on the hot path.
//
// Budgeting. Each stripe owns max_bytes/num_stripes of the (approximate)
// memory budget and evicts its least-recently-used entries when an insert
// pushes it over — per-stripe strict LRU, globally LRU-ish. A depth cap
// keeps long-tail transcripts (which nobody shares) from churning the
// budget: the engine skips the cache entirely past max_depth answers.
#ifndef AIGS_SERVICE_PLAN_CACHE_H_
#define AIGS_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/policy.h"

namespace aigs {

struct PlanCacheOptions {
  /// Master switch; a disabled engine never consults or populates a cache.
  bool enabled = true;
  /// Approximate memory budget over all stripes (keys + memoized queries).
  std::size_t max_bytes = 32u << 20;
  /// Transcript depth (answered questions) beyond which Ask bypasses the
  /// cache — deep prefixes are effectively unique per session, so caching
  /// them only churns the LRU.
  std::size_t max_depth = 16;
  /// Lock stripes. More stripes = less contention; the budget splits evenly
  /// across them.
  std::size_t num_stripes = 16;
};

/// Monotonic counters (hits/misses/evictions/inserts) plus a point-in-time
/// size reading, surfaced through Engine::Stats and the serve REPL.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Concurrent, lock-striped, budgeted memo of transcript-prefix → question.
/// All methods are thread-safe; Lookup/Insert lock exactly one stripe.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The memoized question at `key`, refreshing its LRU position. Counts a
  /// hit or a miss.
  std::optional<Query> Lookup(std::string_view key);

  /// Memoizes `query` at `key`, evicting LRU entries of the stripe while it
  /// is over its budget share. Re-inserting an existing key only refreshes
  /// it (determinism makes the value identical by construction).
  void Insert(std::string_view key, const Query& query);

  PlanCacheStats stats() const;
  const PlanCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    Query query;
    std::size_t bytes = 0;
    // LRU position; the list stores pointers to the map's stable keys.
    std::list<const std::string*>::iterator lru_it;
  };
  /// Transparent hashing so the hot-path Lookup never materializes a
  /// std::string from the caller's string_view key.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const {
      return std::hash<std::string_view>{}(key);
    }
  };
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry, KeyHash, std::equal_to<>> entries;
    std::list<const std::string*> lru;  // front = most recently used
    std::size_t bytes = 0;
  };

  Stripe& StripeFor(std::string_view key);

  PlanCacheOptions options_;
  std::size_t stripe_budget_ = 0;
  std::vector<Stripe> stripes_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

}  // namespace aigs

#endif  // AIGS_SERVICE_PLAN_CACHE_H_
