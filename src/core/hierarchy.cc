#include "core/hierarchy.h"

#include <utility>

namespace aigs {

StatusOr<Hierarchy> Hierarchy::Build(Digraph g,
                                     ReachabilityOptions reach_options) {
  if (!g.finalized()) {
    AIGS_RETURN_NOT_OK(g.Finalize());
  }
  Hierarchy h;
  h.graph_ = std::make_unique<Digraph>(std::move(g));
  if (h.graph_->IsTree()) {
    AIGS_ASSIGN_OR_RETURN(Tree t, Tree::Build(*h.graph_));
    h.tree_ = std::make_unique<Tree>(std::move(t));
  }
  h.reach_ = std::make_unique<ReachabilityIndex>(*h.graph_, reach_options);
  return h;
}

}  // namespace aigs
