// PlanCache (PR 4): the shared per-epoch question-plan trie behind
// Engine::Ask, and the pure-planner split it relies on.
//  (1) cached and uncached engines emit bit-identical question transcripts
//      for every registry policy on tree and DAG hierarchies (the hard
//      guarantee that makes the cache a pure throughput knob);
//  (2) hits actually happen: a second session at a shared prefix reads the
//      trie instead of running the planner;
//  (3) concurrent multi-session stress over one shared trie (run under
//      ASan/TSan in CI);
//  (4) eviction under a tiny memory budget keeps results exact and the
//      resident size bounded;
//  (5) an epoch hot-swap drops the old trie with its snapshot refcount —
//      live sessions keep their epoch's plans, new sessions start cold;
//  (6) the depth cap stops deep (unshared) prefixes from touching the trie;
//  (7) PlanCache unit behavior: LRU order, counters, stats.
#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/aigs.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "service/engine.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

using RecordedQuery = std::pair<Query::Kind, std::vector<NodeId>>;

std::vector<NodeId> QueryNodes(const Query& q) {
  return q.kind == Query::Kind::kReach ? std::vector<NodeId>{q.node}
                                       : q.choices;
}

/// Runs one search to completion, recording every asked question; returns
/// the identified target.
NodeId DriveToEnd(Engine& engine, SessionId id, Oracle& oracle,
                  std::vector<RecordedQuery>* recorded) {
  for (;;) {
    const auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return q->node;
    }
    if (recorded != nullptr) {
      recorded->emplace_back(q->kind, QueryNodes(*q));
    }
    const Status s = engine.Answer(id, AnswerFromOracle(*q, oracle));
    AIGS_CHECK(s.ok());
  }
}

struct CacheCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
};

std::vector<CacheCase> CacheCases() {
  std::vector<CacheCase> cases;
  Rng rng(4242);
  Hierarchy tree = MustBuild(RandomTree(48, rng));
  Distribution tree_dist = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
  cases.push_back({"tree", std::move(tree), std::move(tree_dist)});
  Hierarchy dag = MustBuild(RandomDag(48, rng, 0.4));
  Distribution dag_dist = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
  cases.push_back({"dag", std::move(dag), std::move(dag_dist)});
  return cases;
}

/// Every registry policy spec the hierarchy supports (mirrors
/// test_service.cc; the scripted policy gets a complete question order).
std::vector<std::string> SpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

std::shared_ptr<const CostModel> SomeCosts(std::size_t n) {
  Rng rng(7);
  return std::make_shared<const CostModel>(
      CostModel::UniformRandom(n, 1, 9, rng));
}

CatalogConfig ConfigFor(const CacheCase& c) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(c.hierarchy);
  config.distribution = c.distribution;
  config.cost_model = SomeCosts(c.hierarchy.NumNodes());
  config.policy_specs = SpecsFor(c.hierarchy);
  return config;
}

EngineOptions CachedOptions(PlanCacheOptions cache = {}) {
  EngineOptions options;
  options.plan_cache = cache;
  return options;
}

EngineOptions UncachedOptions() {
  EngineOptions options;
  options.plan_cache.enabled = false;
  return options;
}

// ---- (1) the hard guarantee: bit-identical transcripts ---------------------

TEST(PlanCacheEquivalence, EveryPolicyEveryTargetTreeAndDag) {
  for (const CacheCase& c : CacheCases()) {
    Engine cached(CachedOptions());
    Engine uncached(UncachedOptions());
    ASSERT_TRUE(cached.Publish(ConfigFor(c)).ok());
    ASSERT_TRUE(uncached.Publish(ConfigFor(c)).ok());
    ASSERT_NE(cached.plan_cache(), nullptr);
    ASSERT_EQ(uncached.plan_cache(), nullptr);
    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      SCOPED_TRACE(c.name + "/" + spec);
      for (NodeId target = 0; target < c.hierarchy.NumNodes(); ++target) {
        ExactOracle oracle_a(c.hierarchy.reach(), target);
        ExactOracle oracle_b(c.hierarchy.reach(), target);
        auto id_a = cached.Open(spec);
        auto id_b = uncached.Open(spec);
        ASSERT_TRUE(id_a.ok() && id_b.ok());
        std::vector<RecordedQuery> asked_cached, asked_uncached;
        const NodeId found_cached =
            DriveToEnd(cached, *id_a, oracle_a, &asked_cached);
        const NodeId found_uncached =
            DriveToEnd(uncached, *id_b, oracle_b, &asked_uncached);
        ASSERT_EQ(asked_cached, asked_uncached) << "target " << target;
        EXPECT_EQ(found_cached, target);
        EXPECT_EQ(found_uncached, target);
        EXPECT_TRUE(cached.Close(*id_a).ok());
        EXPECT_TRUE(uncached.Close(*id_b).ok());
      }
    }
    // Every target enumerated against every policy: the trie took real
    // traffic, and the shared prefixes produced real hits.
    const PlanCacheStats stats = cached.Stats().plan_cache;
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.inserts, 0u);
  }
}

// ---- (2) hits happen at shared prefixes ------------------------------------

TEST(PlanCache, SecondSessionAtSamePrefixHitsEveryStep) {
  const CacheCase c = std::move(CacheCases().front());
  Engine engine(CachedOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle oracle_a(c.hierarchy.reach(), target);
  auto first = engine.Open("greedy_naive");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(DriveToEnd(engine, *first, oracle_a, nullptr), target);

  const PlanCacheStats after_first = engine.plan_cache()->stats();
  // The first session misses at every depth (each Ask populates the trie).
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.inserts, 0u);

  // An identical second search walks the warm path end to end: same
  // transcript, zero additional misses.
  ExactOracle oracle_b(c.hierarchy.reach(), target);
  auto second = engine.Open("greedy_naive");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(DriveToEnd(engine, *second, oracle_b, nullptr), target);
  const PlanCacheStats after_second = engine.plan_cache()->stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, 0u);
}

// ---- (3) concurrent stress over one shared trie ----------------------------

TEST(PlanCache, ConcurrentSessionsShareOneTrie) {
  const CacheCase c = std::move(CacheCases().front());
  // A small budget keeps eviction in play while threads hammer the stripes.
  PlanCacheOptions cache;
  cache.max_bytes = 16u << 10;
  cache.num_stripes = 4;
  Engine engine(CachedOptions(cache));
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  constexpr int kThreads = 8;
  constexpr int kSearchesPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      const std::vector<std::string> specs = {"greedy", "greedy_naive",
                                              "batched:k=3", "wigs"};
      for (int i = 0; i < kSearchesPerThread; ++i) {
        const NodeId target =
            static_cast<NodeId>(rng.UniformInt(c.hierarchy.NumNodes()));
        ExactOracle oracle(c.hierarchy.reach(), target);
        const auto id = engine.Open(specs[i % specs.size()]);
        if (!id.ok()) {
          ++failures;
          return;
        }
        if (DriveToEnd(engine, *id, oracle, nullptr) != target) {
          ++failures;
        }
        (void)engine.Close(*id);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const PlanCacheStats stats = engine.Stats().plan_cache;
  EXPECT_GT(stats.hits, 0u);
}

// ---- (4) eviction under budget ---------------------------------------------

TEST(PlanCache, EvictionKeepsResultsExactAndBytesBounded) {
  const CacheCase c = std::move(CacheCases().front());
  PlanCacheOptions cache;
  cache.max_bytes = 4u << 10;  // a few dozen entries at most
  cache.num_stripes = 2;
  Engine engine(CachedOptions(cache));
  Engine reference(UncachedOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  ASSERT_TRUE(reference.Publish(ConfigFor(c)).ok());

  for (NodeId target = 0; target < c.hierarchy.NumNodes(); ++target) {
    ExactOracle oracle_a(c.hierarchy.reach(), target);
    ExactOracle oracle_b(c.hierarchy.reach(), target);
    const auto id_a = engine.Open("greedy_naive");
    const auto id_b = reference.Open("greedy_naive");
    ASSERT_TRUE(id_a.ok() && id_b.ok());
    std::vector<RecordedQuery> asked_evicting, asked_reference;
    EXPECT_EQ(DriveToEnd(engine, *id_a, oracle_a, &asked_evicting), target);
    EXPECT_EQ(DriveToEnd(reference, *id_b, oracle_b, &asked_reference),
              target);
    EXPECT_EQ(asked_evicting, asked_reference);
  }
  const PlanCacheStats stats = engine.Stats().plan_cache;
  EXPECT_GT(stats.evictions, 0u);
  // Per-stripe budgets are enforced up to one resident oversized entry.
  EXPECT_LE(stats.bytes, cache.max_bytes + 512);
}

// ---- (5) epoch hot-swap drops the old trie ---------------------------------

TEST(PlanCache, PublishStartsAFreshTrieAndOldSessionsKeepTheirs) {
  const CacheCase c = std::move(CacheCases().front());
  // This test pins the PR-4 epoch-pinning path: publish must NOT disturb
  // live sessions or seed the fresh trie. Warm seeding and the migration
  // sweep (on by default since PR 5) are therefore explicitly disabled;
  // tests/test_epoch_migration.cc covers them.
  EngineOptions pinned = CachedOptions();
  pinned.plan_cache.warm_publish = false;
  pinned.migration.sweep_on_publish = false;
  Engine engine(pinned);
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const std::shared_ptr<PlanCache> first_trie = engine.plan_cache();

  // Warm epoch 1 with one full search and keep a live session on it.
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle warm_oracle(c.hierarchy.reach(), target);
  auto warm = engine.Open("greedy_naive");
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(DriveToEnd(engine, *warm, warm_oracle, nullptr), target);
  auto live = engine.Open("greedy_naive");
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(engine.Ask(*live).ok());
  const PlanCacheStats first_stats = first_trie->stats();
  EXPECT_GT(first_stats.inserts, 0u);

  // Publish epoch 2: the engine swaps to an empty trie; the live session
  // still holds epoch 1's (refcounted alongside its snapshot).
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const std::shared_ptr<PlanCache> second_trie = engine.plan_cache();
  ASSERT_NE(second_trie, nullptr);
  EXPECT_NE(first_trie.get(), second_trie.get());
  EXPECT_EQ(second_trie->stats().entries, 0u);

  // Epoch bookkeeping: one session on epoch 1, new ones land on epoch 2.
  auto fresh = engine.Open("greedy_naive");
  ASSERT_TRUE(fresh.ok());
  const EngineStats engine_stats = engine.Stats();
  EXPECT_EQ(engine_stats.epoch, 2u);
  EXPECT_EQ(engine_stats.sessions_by_epoch.at(1), 2u);  // warm + live
  EXPECT_EQ(engine_stats.sessions_by_epoch.at(2), 1u);

  // The live epoch-1 session still completes exactly — and its Asks only
  // ever touch epoch 1's trie (epoch 2's counters stay untouched by it).
  ExactOracle live_oracle(c.hierarchy.reach(), target);
  const PlanCacheStats second_before = second_trie->stats();
  EXPECT_EQ(DriveToEnd(engine, *live, live_oracle, nullptr), target);
  EXPECT_EQ(second_trie->stats().hits + second_trie->stats().misses,
            second_before.hits + second_before.misses);
  EXPECT_GT(first_trie->stats().hits, first_stats.hits);
}

// ---- (6) depth cap ----------------------------------------------------------

TEST(PlanCache, DepthCapBypassesTheTrieOnDeepPrefixes) {
  const CacheCase c = std::move(CacheCases().front());
  PlanCacheOptions cache;
  cache.max_depth = 1;  // cache only the empty prefix and depth-1 prefixes
  Engine engine(CachedOptions(cache));
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  // top_down's transcript for a deep target is long; with the cap at 1,
  // only prefixes of length <= 1 may enter the trie.
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle oracle(c.hierarchy.reach(), target);
  auto id = engine.Open("top_down");
  ASSERT_TRUE(id.ok());
  std::vector<RecordedQuery> asked;
  ASSERT_EQ(DriveToEnd(engine, *id, oracle, &asked), target);
  ASSERT_GT(asked.size(), 2u) << "want a transcript deeper than the cap";
  const PlanCacheStats stats = engine.plan_cache()->stats();
  EXPECT_LE(stats.inserts, 2u);
  EXPECT_LE(stats.entries, 2u);
}

// ---- (7) PlanCache unit behavior (interned-trie API) -----------------------

TEST(PlanCacheUnit, InternedRollingKeyMissThenHit) {
  PlanCache cache(PlanCacheOptions{});
  const PlanPrefixId root = cache.RootFor("greedy");
  ASSERT_NE(root, kNoPlanPrefix);
  EXPECT_FALSE(cache.Lookup(root).has_value());
  cache.Insert(root, Query::ReachQuery(5));
  const auto hit = cache.Lookup(root);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, Query::Kind::kReach);
  EXPECT_EQ(hit->node, 5u);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(stats.seeded_inserts, 0u);
  EXPECT_EQ(stats.seeded_hits, 0u);
}

TEST(PlanCacheUnit, InterningIsStableAndPerSpec) {
  PlanCache cache(PlanCacheOptions{});
  const PlanPrefixId a = cache.RootFor("greedy");
  const PlanPrefixId b = cache.RootFor("wigs");
  EXPECT_NE(a, b);  // distinct specs never share a trie position
  EXPECT_EQ(cache.RootFor("greedy"), a);  // interning is idempotent
  const PlanPrefixId a1 = cache.Advance(a, "reach 3 y\n");
  EXPECT_EQ(cache.Advance(a, "reach 3 y\n"), a1);
  EXPECT_NE(cache.Advance(a, "reach 3 n\n"), a1);
  EXPECT_NE(cache.Advance(b, "reach 3 y\n"), a1);  // same edge, other root
  // Deeper sessions keep advancing in O(edge): each id depends only on
  // (parent id, edge), never on re-encoding the whole transcript.
  const PlanPrefixId a2 = cache.Advance(a1, "reach 7 n\n");
  EXPECT_EQ(cache.Advance(a1, "reach 7 n\n"), a2);
}

TEST(PlanCacheUnit, LookupOfUnknownOrUnplannedIdMisses) {
  PlanCache cache(PlanCacheOptions{});
  EXPECT_FALSE(cache.Lookup(kNoPlanPrefix).has_value());
  EXPECT_FALSE(cache.Lookup(987654321u).has_value());  // never interned
  const PlanPrefixId root = cache.RootFor("greedy");
  EXPECT_FALSE(cache.Lookup(root).has_value());  // interned, not planned
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCacheUnit, LruEvictsColdEntriesAndPathsReinternFresh) {
  PlanCacheOptions options;
  options.max_bytes = 900;  // room for only a few nodes in one stripe
  options.num_stripes = 1;
  PlanCache cache(options);
  const PlanPrefixId root = cache.RootFor("g");
  std::vector<PlanPrefixId> ids;
  for (int i = 0; i < 16; ++i) {
    const PlanPrefixId id =
        cache.Advance(root, "reach " + std::to_string(i) + " y\n");
    cache.Insert(id, Query::ReachQuery(static_cast<NodeId>(i)));
    ids.push_back(id);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().bytes, 900u + 512u);
  // The earliest ids were evicted: stale ids miss (correctness never
  // depended on residency), and re-advancing interns a FRESH id.
  EXPECT_FALSE(cache.Lookup(ids.front()).has_value());
  const PlanPrefixId fresh = cache.Advance(root, "reach 0 y\n");
  EXPECT_NE(fresh, ids.front());
  // ...which serves the path again after a re-insert.
  cache.Insert(fresh, Query::ReachQuery(0));
  EXPECT_TRUE(cache.Lookup(fresh).has_value());
}

TEST(PlanCacheUnit, ReinsertRefreshesWithoutDoubleCounting) {
  PlanCacheOptions options;
  options.num_stripes = 1;
  PlanCache cache(options);
  const PlanPrefixId id = cache.RootFor("k");
  cache.Insert(id, Query::ReachQuery(1));
  const std::size_t bytes = cache.stats().bytes;
  cache.Insert(id, Query::ReachQuery(1));
  EXPECT_EQ(cache.stats().bytes, bytes);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(PlanCacheUnit, BatchQueriesRoundTrip) {
  PlanCache cache(PlanCacheOptions{});
  const PlanPrefixId id =
      cache.Advance(cache.RootFor("batched"), "reach 3 y\n");
  cache.Insert(id, Query::ReachBatch({7, 9, 11}));
  const auto hit = cache.Lookup(id);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, Query::Kind::kReachBatch);
  EXPECT_EQ(hit->choices, (std::vector<NodeId>{7, 9, 11}));
}

TEST(PlanCacheUnit, SeededEntriesSplitTheStats) {
  PlanCache cache(PlanCacheOptions{});
  const PlanPrefixId seeded = cache.RootFor("greedy");
  const PlanPrefixId organic = cache.Advance(seeded, "reach 1 y\n");
  cache.Insert(seeded, Query::ReachQuery(1), /*seeded=*/true);
  cache.Insert(organic, Query::ReachQuery(2));
  ASSERT_TRUE(cache.Lookup(seeded).has_value());
  ASSERT_TRUE(cache.Lookup(seeded).has_value());
  ASSERT_TRUE(cache.Lookup(organic).has_value());
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.seeded_inserts, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.seeded_hits, 2u);
}

TEST(PlanCacheUnit, HottestPrefixesReconstructStepLines) {
  PlanCache cache(PlanCacheOptions{});
  const PlanPrefixId root = cache.RootFor("greedy");
  const PlanPrefixId hot = cache.Advance(root, "reach 3 y\n");
  const PlanPrefixId deep = cache.Advance(hot, "reach 5 n\n");
  cache.Insert(root, Query::ReachQuery(3));
  cache.Insert(hot, Query::ReachQuery(5));
  cache.Insert(deep, Query::ReachQuery(7));
  // Heat: root 3 hits, hot 2, deep 0 (never looked up).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.Lookup(root).has_value());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(cache.Lookup(hot).has_value());
  }
  const std::vector<HotPrefix> prefixes = cache.HottestPrefixes(10);
  ASSERT_EQ(prefixes.size(), 2u);  // zero-hit nodes are not exported
  EXPECT_EQ(prefixes[0].policy_spec, "greedy");
  EXPECT_TRUE(prefixes[0].step_lines.empty());
  EXPECT_EQ(prefixes[0].hits, 3u);
  EXPECT_EQ(prefixes[1].policy_spec, "greedy");
  ASSERT_EQ(prefixes[1].step_lines.size(), 1u);
  EXPECT_EQ(prefixes[1].step_lines[0], "reach 3 y\n");
  EXPECT_EQ(cache.HottestPrefixes(1).size(), 1u);
}

}  // namespace
}  // namespace aigs
