#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/evaluator.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

/// A context bound to the vehicle hierarchy (a tree, so every policy is
/// constructible) with a cost model supplied.
struct VehicleFixture {
  VehicleFixture()
      : hierarchy(MustBuild(BuildVehicleHierarchy(&nodes))),
        dist(VehicleDistribution()),
        costs(CostModel::Unit(hierarchy.NumNodes())) {
    context.hierarchy = &hierarchy;
    context.distribution = &dist;
    context.cost_model = &costs;
  }

  VehicleNodes nodes;
  Hierarchy hierarchy;
  Distribution dist;
  CostModel costs;
  PolicyContext context;
};

/// A spec that works for every registered name (scripted needs an order).
std::string WorkingSpec(const std::string& name, const VehicleNodes& nodes) {
  if (name != "scripted") {
    return name;
  }
  std::string order;
  for (const NodeId v : {nodes.nissan, nodes.maxima, nodes.sentra, nodes.car,
                         nodes.honda, nodes.mercedes}) {
    if (!order.empty()) {
      order += '+';
    }
    order += std::to_string(v);
  }
  return "scripted:order=" + order;
}

TEST(PolicyRegistry, EveryRegisteredPolicyIsConstructibleAndCorrect) {
  VehicleFixture f;
  const auto entries = PolicyRegistry::Global().List();
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    SCOPED_TRACE(entry.name);
    auto policy = PolicyRegistry::Global().Create(
        WorkingSpec(entry.name, f.nodes), f.context);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    // EvaluateExact fatally checks that every target is identified.
    const EvalStats stats = EvaluateExact(**policy, f.hierarchy, f.dist);
    EXPECT_EQ(stats.num_searches, f.hierarchy.NumNodes());
    EXPECT_GT(stats.expected_cost, 0);
  }
}

TEST(PolicyRegistry, CoversAllPaperPolicies) {
  const auto& registry = PolicyRegistry::Global();
  for (const char* name :
       {"greedy", "greedy_tree", "greedy_dag", "greedy_naive", "batched",
        "cost_sensitive", "migs", "wigs", "top_down", "scripted"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(PolicyRegistry, UnknownNameFails) {
  VehicleFixture f;
  const auto result = PolicyRegistry::Global().Create("nope", f.context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(PolicyRegistry, UnknownOptionKeyFails) {
  VehicleFixture f;
  const auto result =
      PolicyRegistry::Global().Create("greedy_tree:typo=1", f.context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyRegistry, MalformedOptionValueFails) {
  VehicleFixture f;
  EXPECT_FALSE(
      PolicyRegistry::Global().Create("batched:k=abc", f.context).ok());
  EXPECT_FALSE(
      PolicyRegistry::Global().Create("batched:k=0", f.context).ok());
  EXPECT_FALSE(PolicyRegistry::Global()
                   .Create("greedy_tree:rounded=maybe", f.context)
                   .ok());
  EXPECT_FALSE(
      PolicyRegistry::Global().Create("batched:k=4,k=8", f.context).ok());
}

TEST(PolicyRegistry, SelectionBackendOption) {
  VehicleFixture f;
  for (const char* spec :
       {"greedy_naive:backend=bfs", "greedy_naive:backend=index",
        "batched:backend=bfs,k=2", "batched:backend=index,k=2"}) {
    SCOPED_TRACE(spec);
    auto policy = PolicyRegistry::Global().Create(spec, f.context);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    const EvalStats stats = EvaluateExact(**policy, f.hierarchy, f.dist);
    EXPECT_EQ(stats.num_searches, f.hierarchy.NumNodes());
  }
  EXPECT_FALSE(PolicyRegistry::Global()
                   .Create("greedy_naive:backend=magic", f.context)
                   .ok());
}

TEST(PolicyRegistry, TreeOnlyPolicyRejectsDags) {
  Rng rng(11);
  const Hierarchy h = MustBuild(RandomDag(20, rng, 0.5));
  const Distribution dist = EqualDistribution(h.NumNodes());
  PolicyContext context;
  context.hierarchy = &h;
  context.distribution = &dist;
  const auto result = PolicyRegistry::Global().Create("greedy_tree", context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PolicyRegistry, CostSensitiveRequiresCostModel) {
  VehicleFixture f;
  f.context.cost_model = nullptr;
  const auto result =
      PolicyRegistry::Global().Create("cost_sensitive", f.context);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PolicyRegistry, MissingContextFails) {
  PolicyContext empty;
  EXPECT_FALSE(PolicyRegistry::Global().Create("greedy", empty).ok());
}

TEST(PolicyRegistry, OptionsChangeBehavior) {
  VehicleFixture f;
  auto k1 = PolicyRegistry::Global().Create("batched:k=1", f.context);
  auto k4 = PolicyRegistry::Global().Create("batched:k=4", f.context);
  ASSERT_TRUE(k1.ok() && k4.ok());
  const EvalStats s1 = EvaluateExact(**k1, f.hierarchy, f.dist);
  const EvalStats s4 = EvaluateExact(**k4, f.hierarchy, f.dist);
  // Bigger batches cut interaction rounds but cost extra questions.
  EXPECT_LT(s4.expected_rounds, s1.expected_rounds);
  EXPECT_GE(s4.expected_reach_queries, s1.expected_reach_queries);
}

TEST(PolicyRegistry, AliasesResolveToSamePolicy) {
  VehicleFixture f;
  auto canonical = PolicyRegistry::Global().Create("top_down", f.context);
  auto alias = PolicyRegistry::Global().Create("topdown", f.context);
  ASSERT_TRUE(canonical.ok() && alias.ok());
  EXPECT_EQ((*canonical)->name(), (*alias)->name());
}

TEST(PolicyRegistry, ScriptedReproducesExample2) {
  VehicleFixture f;
  auto policy = PolicyRegistry::Global().Create(
      WorkingSpec("scripted", f.nodes), f.context);
  ASSERT_TRUE(policy.ok());
  const EvalStats stats = EvaluateExact(**policy, f.hierarchy, f.dist);
  EXPECT_DOUBLE_EQ(stats.expected_cost, 2.60);  // WIGS-optimal order
  EXPECT_EQ(stats.max_cost, 4u);
}

TEST(PolicyRegistry, RegisterRejectsDuplicates) {
  PolicyRegistry registry;
  const auto factory = [](const PolicyContext&,
                          PolicyOptions&) -> StatusOr<std::unique_ptr<Policy>> {
    return Status::Internal("unused");
  };
  EXPECT_TRUE(registry.Register("x", "", factory).ok());
  EXPECT_FALSE(registry.Register("x", "", factory).ok());
  EXPECT_FALSE(registry.Register("", "", factory).ok());
}

TEST(PolicySpec, ParsesNamesAndOptions) {
  auto plain = PolicySpec::Parse("greedy");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->name, "greedy");

  auto with_options = PolicySpec::Parse(" batched : k=8 ");
  ASSERT_TRUE(with_options.ok());
  EXPECT_EQ(with_options->name, "batched");
  auto k = with_options->options.ConsumeInt("k", 0);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 8);

  EXPECT_FALSE(PolicySpec::Parse("").ok());
  EXPECT_FALSE(PolicySpec::Parse("migs:choices").ok());
}

}  // namespace
}  // namespace aigs
