// Reusable BFS scratch for forward/backward traversals restricted to an
// "alive" candidate mask. Policies run thousands of traversals per
// evaluation, so the scratch (queue + epoch marks) is allocated once per
// session and reused.
#ifndef AIGS_GRAPH_TRAVERSAL_H_
#define AIGS_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/digraph.h"
#include "util/epoch_marker.h"

namespace aigs {

/// BFS work area bound to a fixed node count.
class BfsScratch {
 public:
  explicit BfsScratch(std::size_t num_nodes) : visited_(num_nodes) {
    queue_.reserve(64);
  }

  /// Forward BFS from `start` over child edges, visiting only nodes for
  /// which `filter(node)` is true (start included; start must pass the
  /// filter). Calls `visit(node)` exactly once per reached node, including
  /// `start` itself.
  template <typename Filter, typename Visit>
  void ForwardBfs(const Digraph& g, NodeId start, Filter&& filter,
                  Visit&& visit) {
    Bfs</*kForward=*/true>(g, start, filter, visit);
  }

  /// Backward BFS from `start` over parent edges; same contract.
  template <typename Filter, typename Visit>
  void BackwardBfs(const Digraph& g, NodeId start, Filter&& filter,
                   Visit&& visit) {
    Bfs</*kForward=*/false>(g, start, filter, visit);
  }

 private:
  template <bool kForward, typename Filter, typename Visit>
  void Bfs(const Digraph& g, NodeId start, Filter& filter, Visit& visit) {
    AIGS_DCHECK(filter(start));
    visited_.NewEpoch();
    queue_.clear();
    queue_.push_back(start);
    visited_.Visit(start);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId u = queue_[head];
      visit(u);
      const auto next = kForward ? g.Children(u) : g.Parents(u);
      for (const NodeId v : next) {
        if (!visited_.IsVisited(v) && filter(v)) {
          visited_.Visit(v);
          queue_.push_back(v);
        }
      }
    }
  }

  EpochMarker visited_;
  std::vector<NodeId> queue_;
};

/// Collects all nodes reachable from `start` (inclusive) in a fresh vector.
/// Convenience for tests and one-off uses; hot paths use BfsScratch.
std::vector<NodeId> CollectReachable(const Digraph& g, NodeId start);

/// Collects all ancestors of `start` (inclusive).
std::vector<NodeId> CollectAncestors(const Digraph& g, NodeId start);

}  // namespace aigs

#endif  // AIGS_GRAPH_TRAVERSAL_H_
