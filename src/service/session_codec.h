// SessionCodec — serializable session state via the answer transcript.
//
// A policy is a deterministic decision tree (Definition 6): the same answer
// sequence always reproduces the same questions. A session's complete state
// is therefore its compact transcript — one line per answered question —
// plus the identity of the catalog it ran against. Restore replays the
// transcript into a fresh session and verifies, step by step, that the
// regenerated questions equal the recorded ones; any divergence (changed
// weights, changed hierarchy, changed policy code) is detected instead of
// silently producing a corrupted search.
//
// Wire format (line-oriented text, versioned):
//
//   aigs-session/1
//   fingerprint <hex catalog digest>
//   epoch <n>
//   policy <registry spec>
//   steps <k>
//   reach <node> <y|n>
//   batch <node+node+...> <answer pattern, e.g. ynny>
//   choice <node+node+...> <answer index, -1 = none>
//   end
#ifndef AIGS_SERVICE_SESSION_CODEC_H_
#define AIGS_SERVICE_SESSION_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "util/status.h"

namespace aigs {

/// One answered question: what was asked and what the oracle said.
struct TranscriptStep {
  Query::Kind kind = Query::Kind::kReach;
  /// Queried node(s): one entry for kReach, the batch/choice lists
  /// otherwise.
  std::vector<NodeId> nodes;
  bool yes = false;                 // kReach
  std::vector<bool> batch_answers;  // kReachBatch
  int choice = -1;                  // kChoice

  bool operator==(const TranscriptStep& other) const = default;
};

/// Decoded form of a saved session.
struct SerializedSession {
  std::uint64_t fingerprint = 0;
  std::uint64_t epoch = 0;
  std::string policy_spec;
  std::vector<TranscriptStep> steps;
};

/// Stateless encoder/decoder for the wire format above.
class SessionCodec {
 public:
  static std::string Encode(const SerializedSession& session);
  /// Rejects malformed input with InvalidArgument; never aborts.
  static StatusOr<SerializedSession> Decode(const std::string& text);

  /// Appends the compact one-line encoding of `step` (exactly the line
  /// Encode writes, newline-terminated) to `*out`. The service-layer
  /// PlanCache keys its per-epoch trie with these lines, so cache keys and
  /// saved transcripts share one encoding.
  static void AppendStepKey(const TranscriptStep& step, std::string* out);
};

}  // namespace aigs

#endif  // AIGS_SERVICE_SESSION_CODEC_H_
