// The paper's rounding technique (Eq. 1): w(u) = ⌈n²·p(u)/max_v p(v)⌉.
// Rounded weights bound the weight ratio by n², which is what turns the
// greedy policy into a 2(1+3 ln n)-approximation (Theorem 1) independent of
// how tiny the smallest probability is.
#ifndef AIGS_PROB_ROUNDING_H_
#define AIGS_PROB_ROUNDING_H_

#include <vector>

#include "prob/distribution.h"
#include "util/common.h"

namespace aigs {

/// Options for RoundWeights.
struct RoundingOptions {
  /// Clamp rounded weights to >= 1 so zero-probability nodes stay
  /// identifiable and the greedy descent always makes progress (DESIGN.md —
  /// Eq. 1 maps p = 0 to w = 0, which leaves middle points of zero-weight
  /// regions ill-defined). Clamping keeps all weights within the n² grid, so
  /// Theorem 1's analysis is unaffected.
  bool clamp_min_one = true;
};

/// Applies Eq. (1) in exact integer arithmetic:
///   w(u) = ⌈ n² · weight(u) / max_weight ⌉   (128-bit intermediate).
std::vector<Weight> RoundWeights(const Distribution& dist,
                                 const RoundingOptions& options = {});

}  // namespace aigs

#endif  // AIGS_PROB_ROUNDING_H_
