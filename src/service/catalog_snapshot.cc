#include "service/catalog_snapshot.h"

#include <algorithm>
#include <utility>

#include "core/policy_registry.h"
#include "util/thread_pool.h"

namespace aigs {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void FnvMix(std::uint64_t& h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t HierarchyFingerprint(const Hierarchy& hierarchy) {
  std::uint64_t h = kFnvOffset;
  FnvMix(h, hierarchy.NumNodes());
  FnvMix(h, hierarchy.NumEdges());
  FnvMix(h, hierarchy.root());
  for (NodeId u = 0; u < hierarchy.NumNodes(); ++u) {
    for (const NodeId v : hierarchy.graph().Children(u)) {
      FnvMix(h, (static_cast<std::uint64_t>(u) << 32) | v);
    }
  }
  return h;
}

/// Continues the hierarchy digest over the weights — the combined value is
/// byte-for-byte the pre-split fingerprint, so existing saved blobs keep
/// resuming.
std::uint64_t Fingerprint(std::uint64_t hierarchy_digest,
                          const Distribution& dist) {
  std::uint64_t h = hierarchy_digest;
  for (NodeId v = 0; v < dist.size(); ++v) {
    FnvMix(h, dist.WeightOf(v));
  }
  return h;
}

}  // namespace

std::shared_ptr<const Hierarchy> UnownedHierarchy(const Hierarchy& hierarchy) {
  return std::shared_ptr<const Hierarchy>(std::shared_ptr<const Hierarchy>(),
                                          &hierarchy);
}

StatusOr<std::shared_ptr<const CatalogSnapshot>> CatalogSnapshot::Build(
    CatalogConfig config, std::uint64_t epoch) {
  if (config.hierarchy == nullptr) {
    return Status::InvalidArgument("CatalogConfig needs a hierarchy");
  }
  if (config.distribution.size() != config.hierarchy->NumNodes()) {
    return Status::InvalidArgument(
        "distribution size does not match the hierarchy's node count");
  }
  if (config.policy_specs.empty()) {
    return Status::InvalidArgument(
        "CatalogConfig needs at least one policy spec to prebuild");
  }

  auto snapshot = std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot());
  snapshot->config_ = std::move(config);
  snapshot->epoch_ = epoch;
  snapshot->hierarchy_fingerprint_ =
      HierarchyFingerprint(*snapshot->config_.hierarchy);
  snapshot->fingerprint_ = Fingerprint(snapshot->hierarchy_fingerprint_,
                                       snapshot->config_.distribution);

  PolicyContext context;
  context.hierarchy = snapshot->config_.hierarchy.get();
  context.distribution = &snapshot->config_.distribution;
  context.cost_model = snapshot->config_.cost_model.get();

  // Dedup in config order; duplicate specs build once.
  std::vector<const std::string*> unique_specs;
  for (const std::string& spec : snapshot->config_.policy_specs) {
    const bool seen =
        std::any_of(unique_specs.begin(), unique_specs.end(),
                    [&spec](const std::string* s) { return *s == spec; });
    if (!seen) {
      unique_specs.push_back(&spec);
    }
  }

  ThreadPool* pool = snapshot->config_.build_pool;
  snapshot->config_.build_pool = nullptr;  // borrowed for Build() only
  std::vector<StatusOr<std::unique_ptr<Policy>>> built;
  built.reserve(unique_specs.size());
  for (std::size_t i = 0; i < unique_specs.size(); ++i) {
    built.emplace_back(Status::Internal("policy not built"));
  }
  if (pool != nullptr && unique_specs.size() > 1) {
    // Each policy's O(n) base precomputation is independent of the others;
    // one spec per shard. Registry Create is read-only on the registry and
    // on the shared context.
    pool->RunShards(unique_specs.size(), [&](std::size_t i) {
      built[i] = PolicyRegistry::Global().Create(*unique_specs[i], context);
    });
  } else {
    for (std::size_t i = 0; i < unique_specs.size(); ++i) {
      built[i] = PolicyRegistry::Global().Create(*unique_specs[i], context);
    }
  }
  // First failure in config order wins, matching the serial error surface.
  for (std::size_t i = 0; i < unique_specs.size(); ++i) {
    if (!built[i].ok()) {
      return Status(built[i].status().code(), "policy spec '" +
                                                  *unique_specs[i] + "': " +
                                                  built[i].status().message());
    }
  }
  for (std::size_t i = 0; i < unique_specs.size(); ++i) {
    snapshot->policies_.emplace(*unique_specs[i], *std::move(built[i]));
  }
  return std::shared_ptr<const CatalogSnapshot>(std::move(snapshot));
}

StatusOr<const Policy*> CatalogSnapshot::PolicyFor(
    const std::string& spec) const {
  const auto it = policies_.find(spec);
  if (it == policies_.end()) {
    std::string known;
    for (const auto& [name, policy] : policies_) {
      known += known.empty() ? name : ", " + name;
    }
    return Status::NotFound("policy spec '" + spec +
                            "' is not prebuilt in this snapshot (available: " +
                            known + ")");
  }
  return it->second.get();
}

std::vector<std::string> CatalogSnapshot::policy_specs() const {
  std::vector<std::string> specs;
  specs.reserve(policies_.size());
  for (const auto& [name, policy] : policies_) {
    specs.push_back(name);
  }
  return specs;
}

}  // namespace aigs
