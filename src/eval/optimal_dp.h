// Brute-force optimal policy cost for small instances, by dynamic
// programming over candidate subsets:
//
//   f(C) = 0                                      if |C| = 1
//   f(C) = min_{q ∈ C, C ⊄ R(q)} c(q)·W(C) + f(C ∩ R(q)) + f(C \ R(q))
//
// where W(C) is the total weight of C; the optimal expected cost is
// f(V)/W(V). Queries are restricted to current candidates, matching
// FrameworkIGS line 2 (and our policies), so measured approximation ratios
// are apples-to-apples. Exponential in n — used by tests and the
// approximation-ratio bench on instances with n ≤ ~20.
#ifndef AIGS_EVAL_OPTIMAL_DP_H_
#define AIGS_EVAL_OPTIMAL_DP_H_

#include "core/hierarchy.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Exact optimal expected (priced) cost. Fails for n > 24 (state space).
/// `costs == nullptr` means unit prices (plain AIGS; Definition 7).
StatusOr<double> OptimalExpectedCost(const Hierarchy& hierarchy,
                                     const Distribution& dist,
                                     const CostModel* costs = nullptr);

}  // namespace aigs

#endif  // AIGS_EVAL_OPTIMAL_DP_H_
