// End-to-end integration on medium synthetic datasets: every algorithm runs
// the full pipeline (generation → policy → oracle → evaluation) and the
// paper's qualitative orderings hold.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "data/datasets.h"
#include "eval/evaluator.h"
#include "oracle/noisy_oracle.h"
#include "prob/alias_table.h"
#include "eval/runner.h"
#include "tests/test_support.h"

namespace aigs {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    amazon_ = new Dataset(MakeAmazonDataset(0.06));
    imagenet_ = new Dataset(MakeImageNetDataset(0.06));
  }
  static void TearDownTestSuite() {
    delete amazon_;
    delete imagenet_;
    amazon_ = nullptr;
    imagenet_ = nullptr;
  }

  static Dataset* amazon_;
  static Dataset* imagenet_;
};

Dataset* IntegrationTest::amazon_ = nullptr;
Dataset* IntegrationTest::imagenet_ = nullptr;

TEST_F(IntegrationTest, AllPoliciesCorrectOnAmazonScaledDown) {
  const Hierarchy& h = amazon_->hierarchy;
  const Distribution& dist = amazon_->real_distribution;
  GreedyTreePolicy greedy(h, dist);
  TopDownPolicy top_down(h);
  MigsPolicy migs(h);
  WigsTreePolicy wigs(h);
  // EvaluateExact fatally verifies target identification for all targets.
  const double c_greedy = EvaluateExact(greedy, h, dist).expected_cost;
  const double c_topdown = EvaluateExact(top_down, h, dist).expected_cost;
  const double c_migs = EvaluateExact(migs, h, dist).expected_cost;
  const double c_wigs = EvaluateExact(wigs, h, dist).expected_cost;
  // Paper's Table III ordering: Greedy < WIGS < {TopDown, MIGS}.
  EXPECT_LT(c_greedy, c_wigs);
  EXPECT_LT(c_wigs, c_topdown);
  EXPECT_LT(c_wigs, c_migs);
}

TEST_F(IntegrationTest, AllPoliciesCorrectOnImageNetScaledDown) {
  const Hierarchy& h = imagenet_->hierarchy;
  const Distribution& dist = imagenet_->real_distribution;
  GreedyDagPolicy greedy(h, dist);
  TopDownPolicy top_down(h);
  MigsPolicy migs(h);
  WigsDagPolicy wigs(h);
  const double c_greedy = EvaluateExact(greedy, h, dist).expected_cost;
  const double c_topdown = EvaluateExact(top_down, h, dist).expected_cost;
  const double c_migs = EvaluateExact(migs, h, dist).expected_cost;
  const double c_wigs = EvaluateExact(wigs, h, dist).expected_cost;
  EXPECT_LT(c_greedy, c_wigs);
  EXPECT_LT(c_wigs, c_topdown);
  EXPECT_LT(c_wigs, c_migs);
}

TEST_F(IntegrationTest, SkewHelpsGreedyButNotBaselines) {
  // Tables IV/V: greedy improves under Zipf vs Equal; TopDown/WIGS barely
  // move because they ignore the distribution.
  const Hierarchy& h = amazon_->hierarchy;
  const std::size_t n = h.NumNodes();
  const Distribution equal = EqualDistribution(n);
  Rng rng(123);
  const Distribution zipf = ZipfRandomDistribution(n, 2.0, rng);
  Rng rng2(124);
  const Distribution uniform = UniformRandomDistribution(n, rng2);

  GreedyTreePolicy greedy_equal(h, equal);
  GreedyTreePolicy greedy_zipf(h, zipf);
  const double g_equal = EvaluateExact(greedy_equal, h, equal).expected_cost;
  const double g_zipf = EvaluateExact(greedy_zipf, h, zipf).expected_cost;
  EXPECT_LT(g_zipf, g_equal);

  WigsTreePolicy wigs(h);
  const double w_equal = EvaluateExact(wigs, h, equal).expected_cost;
  // WIGS ignores weights; under i.i.d. uniform reweighting its expected
  // cost stays put (law of large numbers over ~2k categories).
  const double w_uniform = EvaluateExact(wigs, h, uniform).expected_cost;
  EXPECT_NEAR(w_equal, w_uniform, 0.10 * w_equal);
}

TEST_F(IntegrationTest, GreedyTreeAndHeapVariantAgreeOnCost) {
  const Hierarchy& h = amazon_->hierarchy;
  const Distribution& dist = amazon_->real_distribution;
  GreedyTreePolicy linear(h, dist);
  GreedyTreeOptions heap_options;
  heap_options.child_scan = GreedyTreeOptions::ChildScan::kLazyHeap;
  GreedyTreePolicy heap(h, dist, heap_options);
  const double c_linear = EvaluateExact(linear, h, dist).expected_cost;
  const double c_heap = EvaluateExact(heap, h, dist).expected_cost;
  // Both realize the same greedy objective; ties may break differently, so
  // costs agree tightly but not necessarily exactly.
  EXPECT_NEAR(c_linear, c_heap, 0.05 * c_linear + 0.1);
}

TEST_F(IntegrationTest, GreedyDagMatchesGreedyTreeOnTrees) {
  // GreedyDAG run on a tree hierarchy realizes the same objective values as
  // GreedyTree (Theorem 5): expected costs agree up to tie-breaking.
  const Hierarchy& h = amazon_->hierarchy;
  const Distribution& dist = amazon_->real_distribution;
  GreedyTreeOptions tree_options;
  tree_options.use_rounded_weights = true;
  GreedyTreePolicy tree_policy(h, dist, tree_options);
  GreedyDagPolicy dag_policy(h, dist);  // rounded default
  const double c_tree = EvaluateExact(tree_policy, h, dist).expected_cost;
  const double c_dag = EvaluateExact(dag_policy, h, dist).expected_cost;
  EXPECT_NEAR(c_tree, c_dag, 0.05 * c_tree + 0.1);
}

TEST_F(IntegrationTest, NoisyOracleWithMajorityVotingStillAccurate) {
  const Hierarchy& h = amazon_->hierarchy;
  const Distribution& dist = amazon_->real_distribution;
  GreedyTreePolicy greedy(h, dist);
  Rng rng(9);
  int correct_noisy = 0;
  int correct_voted = 0;
  const int kTrials = 60;
  const AliasTable sampler(dist);
  Rng target_rng(10);
  for (int i = 0; i < kTrials; ++i) {
    const NodeId target = sampler.Sample(target_rng);
    ExactOracle exact(h.reach(), target);
    {
      NoisyOracle noisy(exact, 0.10, rng.Fork());
      auto session = greedy.NewSession();
      RunOptions options;
      options.max_questions = 100000;
      const SearchResult r = RunSearch(*session, noisy, options);
      correct_noisy += r.target == target ? 1 : 0;
    }
    {
      NoisyOracle noisy(exact, 0.10, rng.Fork());
      MajorityVoteOracle voted(noisy, 7);
      auto session = greedy.NewSession();
      RunOptions options;
      options.max_questions = 100000;
      const SearchResult r = RunSearch(*session, voted, options);
      correct_voted += r.target == target ? 1 : 0;
    }
  }
  // Majority voting must recover most of the accuracy the noise destroys.
  EXPECT_GT(correct_voted, correct_noisy);
  EXPECT_GE(correct_voted, kTrials * 3 / 4);
}

TEST_F(IntegrationTest, CostSensitiveGreedySavesUnderHeterogeneousPrices) {
  const Hierarchy& h = imagenet_->hierarchy;
  const Distribution& dist = imagenet_->real_distribution;
  Rng rng(11);
  const CostModel costs = CostModel::UniformRandom(h.NumNodes(), 1, 10, rng);
  CostSensitiveGreedyPolicy aware(h, dist, costs);
  GreedyDagPolicy blind(h, dist);
  EvalOptions options;
  options.cost_model = &costs;
  const double aware_cost =
      EvaluateExact(aware, h, dist, options).expected_priced_cost;
  const double blind_cost =
      EvaluateExact(blind, h, dist, options).expected_priced_cost;
  EXPECT_LT(aware_cost, blind_cost);
}

}  // namespace
}  // namespace aigs
