#include "eval/decision_tree.h"

#include <utility>

namespace aigs {
namespace {

/// Replays a fresh session through a fixed prefix of (query, answer) pairs
/// and returns the next query. Prefixes are only generated for answer
/// sequences consistent with at least one target, so the session must accept
/// them.
Query ReplayPrefix(const Policy& policy,
                   const std::vector<std::pair<NodeId, bool>>& prefix) {
  auto session = policy.NewSession();
  for (const auto& [node, yes] : prefix) {
    const Query q = session->Next();
    AIGS_CHECK(q.kind == Query::Kind::kReach);
    AIGS_CHECK(q.node == node &&
               "policy is not deterministic across sessions");
    session->OnReach(node, yes);
  }
  return session->Next();
}

}  // namespace

StatusOr<DecisionTree> DecisionTree::Build(const Policy& policy,
                                           const Hierarchy& hierarchy,
                                           std::size_t max_nodes) {
  DecisionTree tree;
  tree.leaf_of_target_.assign(hierarchy.NumNodes(), -1);

  // Iterative DFS over answer prefixes. Each frame tracks the set of targets
  // consistent with its prefix; branches with no consistent target are never
  // taken by a truthful oracle and are not expanded (policies that discard
  // information, like TopDown on DAGs, do have such branches).
  struct Frame {
    std::vector<std::pair<NodeId, bool>> prefix;
    std::vector<NodeId> consistent;
    int parent = -1;
    bool via_yes = false;
  };
  std::vector<Frame> stack;
  {
    Frame root;
    root.consistent.resize(hierarchy.NumNodes());
    for (NodeId v = 0; v < hierarchy.NumNodes(); ++v) {
      root.consistent[v] = v;
    }
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const Query q = ReplayPrefix(policy, frame.prefix);
    if (q.kind == Query::Kind::kChoice ||
        q.kind == Query::Kind::kReachBatch) {
      return Status::InvalidArgument(
          "decision trees cover sequential boolean-query policies only");
    }
    if (tree.nodes_.size() >= max_nodes) {
      return Status::OutOfRange("decision tree exceeds max_nodes");
    }
    Node node;
    node.depth = static_cast<std::uint32_t>(frame.prefix.size());
    const int index = static_cast<int>(tree.nodes_.size());
    if (frame.parent >= 0) {
      Node& parent = tree.nodes_[static_cast<std::size_t>(frame.parent)];
      (frame.via_yes ? parent.yes_child : parent.no_child) = index;
    }
    if (q.kind == Query::Kind::kDone) {
      node.is_leaf = true;
      node.hierarchy_node = q.node;
      if (frame.consistent.size() != 1 || frame.consistent[0] != q.node) {
        return Status::Internal(
            "policy declared a target inconsistent with the answers");
      }
      if (tree.leaf_of_target_[q.node] != -1) {
        return Status::Internal("two leaves identify the same target");
      }
      tree.leaf_of_target_[q.node] = index;
      ++tree.num_leaves_;
      tree.nodes_.push_back(node);
      continue;
    }
    node.is_leaf = false;
    node.hierarchy_node = q.node;
    tree.nodes_.push_back(node);

    Frame yes_frame;
    Frame no_frame;
    for (const NodeId t : frame.consistent) {
      (hierarchy.reach().Reaches(q.node, t) ? yes_frame : no_frame)
          .consistent.push_back(t);
    }
    if (!yes_frame.consistent.empty()) {
      yes_frame.prefix = frame.prefix;
      yes_frame.prefix.emplace_back(q.node, true);
      yes_frame.parent = index;
      yes_frame.via_yes = true;
      stack.push_back(std::move(yes_frame));
    }
    if (!no_frame.consistent.empty()) {
      no_frame.prefix = std::move(frame.prefix);
      no_frame.prefix.emplace_back(q.node, false);
      no_frame.parent = index;
      no_frame.via_yes = false;
      stack.push_back(std::move(no_frame));
    }
  }

  for (NodeId v = 0; v < hierarchy.NumNodes(); ++v) {
    if (tree.leaf_of_target_[v] < 0) {
      return Status::Internal("target " + std::to_string(v) +
                              " has no leaf in the decision tree");
    }
  }
  return tree;
}

double DecisionTree::ExpectedCost(const Distribution& dist) const {
  long double weighted = 0;
  for (NodeId target = 0; target < leaf_of_target_.size(); ++target) {
    const int leaf = leaf_of_target_[target];
    AIGS_CHECK(leaf >= 0);
    weighted += static_cast<long double>(dist.WeightOf(target)) *
                nodes_[static_cast<std::size_t>(leaf)].depth;
  }
  return static_cast<double>(weighted /
                             static_cast<long double>(dist.Total()));
}

double DecisionTree::ExpectedPricedCost(const Distribution& dist,
                                        const CostModel& costs) const {
  // ℓ̂(leaf) = sum of c(query) along the root path, accumulated by DFS.
  std::vector<long double> price_at(nodes_.size(), 0);
  std::vector<long double> acc(nodes_.size(), 0);
  std::vector<int> order;
  order.push_back(root_index());
  while (!order.empty()) {
    const int i = order.back();
    order.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    price_at[static_cast<std::size_t>(i)] = acc[static_cast<std::size_t>(i)];
    if (node.is_leaf) {
      continue;
    }
    const long double below =
        acc[static_cast<std::size_t>(i)] + costs.CostOf(node.hierarchy_node);
    for (const int child : {node.yes_child, node.no_child}) {
      if (child < 0) {
        continue;  // branch inconsistent with every target
      }
      acc[static_cast<std::size_t>(child)] = below;
      order.push_back(child);
    }
  }
  long double weighted = 0;
  for (NodeId target = 0; target < leaf_of_target_.size(); ++target) {
    const int leaf = leaf_of_target_[target];
    AIGS_CHECK(leaf >= 0);
    weighted += static_cast<long double>(dist.WeightOf(target)) *
                price_at[static_cast<std::size_t>(leaf)];
  }
  return static_cast<double>(weighted /
                             static_cast<long double>(dist.Total()));
}

std::uint32_t DecisionTree::LeafDepth(NodeId target) const {
  AIGS_CHECK(target < leaf_of_target_.size());
  const int leaf = leaf_of_target_[target];
  AIGS_CHECK(leaf >= 0);
  return nodes_[static_cast<std::size_t>(leaf)].depth;
}

std::string DecisionTree::ToDot(const Hierarchy& hierarchy) const {
  auto label_of = [&hierarchy](NodeId v) {
    return hierarchy.graph().Label(v).empty() ? std::to_string(v)
                                              : hierarchy.graph().Label(v);
  };
  std::string out = "digraph decision_tree {\n  node [shape=box];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    out += "  d" + std::to_string(i) + " [label=\"" +
           label_of(node.hierarchy_node) +
           (node.is_leaf ? "\", shape=ellipse];\n" : "?\"];\n");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.is_leaf) {
      continue;
    }
    for (const auto& [child, tag] :
         {std::pair<int, const char*>{node.yes_child, "Y"},
          std::pair<int, const char*>{node.no_child, "N"}}) {
      if (child >= 0) {
        out += "  d" + std::to_string(i) + " -> d" + std::to_string(child) +
               " [label=\"" + tag + "\"];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace aigs
