// Minimal CSV writer used by bench harnesses to dump figure series for
// external plotting, plus a reader for round-trip tests.
#ifndef AIGS_UTIL_CSV_H_
#define AIGS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace aigs {

/// Accumulates CSV rows and writes them to disk. Fields containing commas,
/// quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Starts a document with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Serializes the document.
  std::string ToString() const;

  /// Writes the document to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  std::size_t arity_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text into rows of fields (RFC 4180 quoting).
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

}  // namespace aigs

#endif  // AIGS_UTIL_CSV_H_
