#include "prob/empirical.h"

#include <cmath>

namespace aigs {

double TotalVariationDistance(const Distribution& a, const Distribution& b) {
  AIGS_CHECK(a.size() == b.size());
  double tv = 0;
  for (NodeId v = 0; v < a.size(); ++v) {
    tv += std::abs(a.Probability(v) - b.Probability(v));
  }
  return tv / 2;
}

}  // namespace aigs
