// Service layer: Engine/CatalogSnapshot/SessionManager/SessionCodec.
//  (1) save→restore round-trips produce bit-identical remaining question
//      transcripts for every registry policy on tree and DAG hierarchies;
//  (2) the SessionManager under concurrent traffic and TTL eviction;
//  (3) Status rejections (never aborts) for mismatched answer kinds;
//  (4) snapshot epochs: hot swap keeps live sessions on their epoch;
//  (5) the Evaluator's engine-driven path matches the in-process path.
#include "service/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/aigs.h"
#include "eval/evaluator.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "service/session_codec.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

// One recorded question: kind + the queried node(s).
using RecordedQuery = std::pair<Query::Kind, std::vector<NodeId>>;

std::vector<NodeId> QueryNodes(const Query& q) {
  return q.kind == Query::Kind::kReach ? std::vector<NodeId>{q.node}
                                       : q.choices;
}

/// Answers up to `max_steps` questions (all when max_steps is huge),
/// recording each query; returns the identified target when the session
/// finished, kInvalidNode otherwise.
NodeId Drive(Engine& engine, SessionId id, Oracle& oracle,
             std::size_t max_steps, std::vector<RecordedQuery>* recorded) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    const auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return q->node;
    }
    if (recorded != nullptr) {
      recorded->emplace_back(q->kind, QueryNodes(*q));
    }
    const Status s = engine.Answer(id, AnswerFromOracle(*q, oracle));
    AIGS_CHECK(s.ok());
  }
  return kInvalidNode;
}

struct ServiceCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
};

std::vector<ServiceCase> ServiceCases() {
  std::vector<ServiceCase> cases;
  Rng rng(99);
  Hierarchy tree = MustBuild(RandomTree(45, rng));
  Distribution tree_dist = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
  cases.push_back({"tree", std::move(tree), std::move(tree_dist)});
  Hierarchy dag = MustBuild(RandomDag(45, rng, 0.4));
  Distribution dag_dist = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
  cases.push_back({"dag", std::move(dag), std::move(dag_dist)});
  return cases;
}

/// Every registry policy name, with options where defaults need a nudge,
/// restricted to what the hierarchy supports. The scripted policy gets a
/// complete question order (every non-root node) so any target is
/// identifiable.
std::vector<std::string> SpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

CatalogConfig ConfigFor(const ServiceCase& c,
                        std::shared_ptr<const CostModel> costs) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(c.hierarchy);
  config.distribution = c.distribution;
  config.cost_model = std::move(costs);
  config.policy_specs = SpecsFor(c.hierarchy);
  return config;
}

std::shared_ptr<const CostModel> SomeCosts(std::size_t n) {
  Rng rng(7);
  return std::make_shared<const CostModel>(
      CostModel::UniformRandom(n, 1, 9, rng));
}

// ---- (1) save → restore transcript equality --------------------------------

TEST(SessionCodecRoundTrip, EveryPolicyOnTreeAndDag) {
  for (const ServiceCase& c : ServiceCases()) {
    Engine engine;
    ASSERT_TRUE(
        engine.Publish(ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()))).ok());
    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      SCOPED_TRACE(c.name + "/" + spec);
      for (const NodeId target :
           {NodeId{0}, static_cast<NodeId>(c.hierarchy.NumNodes() / 2),
            static_cast<NodeId>(c.hierarchy.NumNodes() - 1)}) {
        ExactOracle oracle(c.hierarchy.reach(), target);

        // Answer a prefix of the search, then suspend.
        auto opened = engine.Open(spec);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        const SessionId original = *opened;
        Drive(engine, original, oracle, 2, nullptr);

        auto blob = engine.Save(original);
        ASSERT_TRUE(blob.ok()) << blob.status().ToString();
        auto resumed = engine.Resume(*blob);
        ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

        // Both sessions must ask bit-identical remaining questions and
        // identify the same target.
        std::vector<RecordedQuery> rest_original, rest_resumed;
        const NodeId found_original =
            Drive(engine, original, oracle, 1u << 20, &rest_original);
        const NodeId found_resumed =
            Drive(engine, *resumed, oracle, 1u << 20, &rest_resumed);
        EXPECT_EQ(rest_original, rest_resumed);
        EXPECT_EQ(found_original, target);
        EXPECT_EQ(found_resumed, target);

        EXPECT_TRUE(engine.Close(original).ok());
        EXPECT_TRUE(engine.Close(*resumed).ok());
      }
    }
  }
}

TEST(SessionCodecRoundTrip, EncodeDecodeIsLossless) {
  SerializedSession session;
  session.fingerprint = 0xDEADBEEFCAFEF00DULL;
  session.epoch = 7;
  session.policy_spec = "batched:k=3";
  session.steps.push_back({Query::Kind::kReach, {17}, true, {}, -1});
  session.steps.push_back(
      {Query::Kind::kReachBatch, {4, 9, 12}, false, {true, false, true}, -1});
  session.steps.push_back({Query::Kind::kChoice, {3, 5, 8}, false, {}, 2});
  session.steps.push_back({Query::Kind::kChoice, {3, 5}, false, {}, -1});

  const std::string text = SessionCodec::Encode(session);
  auto decoded = SessionCodec::Decode(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->fingerprint, session.fingerprint);
  EXPECT_EQ(decoded->epoch, session.epoch);
  EXPECT_EQ(decoded->policy_spec, session.policy_spec);
  EXPECT_EQ(decoded->steps, session.steps);
}

TEST(SessionCodecRoundTrip, RejectsMalformedInput) {
  EXPECT_FALSE(SessionCodec::Decode("").ok());
  EXPECT_FALSE(SessionCodec::Decode("not a session").ok());
  EXPECT_FALSE(SessionCodec::Decode("aigs-session/1\n").ok());
  // Truncated: steps promised but missing.
  EXPECT_FALSE(SessionCodec::Decode("aigs-session/1\nfingerprint 0\n"
                                    "epoch 1\npolicy greedy\nsteps 2\n"
                                    "reach 3 y\nend\n")
                   .ok());
  // Batch pattern length mismatch.
  EXPECT_FALSE(SessionCodec::Decode("aigs-session/1\nfingerprint 0\n"
                                    "epoch 1\npolicy greedy\nsteps 1\n"
                                    "batch 1+2+3 yn\nend\n")
                   .ok());
}

// ---- (3) Status rejections instead of aborts -------------------------------

TEST(EngineAnswers, MismatchedAnswerKindIsRejectedNotFatal) {
  const ServiceCase c = std::move(ServiceCases()[0]);  // tree
  Engine engine;
  ASSERT_TRUE(
      engine.Publish(ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()))).ok());

  // greedy asks kReach; a choice/batch answer must bounce with a Status
  // (previously the SearchSession default paths were process-fatal).
  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.Answer(*id, SessionAnswer::Choice(0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Answer(*id, SessionAnswer::Batch({true})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.Answer(*id, SessionAnswer::Reach(false)).ok());

  // batched asks kReachBatch; shape and kind are both validated.
  auto batched = engine.Open("batched:k=3");
  ASSERT_TRUE(batched.ok());
  auto q = engine.Ask(*batched);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->kind, Query::Kind::kReachBatch);
  EXPECT_EQ(engine.Answer(*batched, SessionAnswer::Reach(true)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine
                .Answer(*batched, SessionAnswer::Batch(std::vector<bool>(
                                      q->choices.size() + 1, true)))
                .code(),
            StatusCode::kInvalidArgument);

  // migs asks kChoice; out-of-range indexes are rejected.
  auto migs = engine.Open("migs");
  ASSERT_TRUE(migs.ok());
  auto mq = engine.Ask(*migs);
  ASSERT_TRUE(mq.ok());
  ASSERT_EQ(mq->kind, Query::Kind::kChoice);
  EXPECT_EQ(engine
                .Answer(*migs, SessionAnswer::Choice(
                                   static_cast<int>(mq->choices.size())))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.Answer(*migs, SessionAnswer::Choice(-2)).code(),
            StatusCode::kOutOfRange);

  // Finished sessions reject further answers.
  ExactOracle oracle(c.hierarchy.reach(), 3);
  auto done = engine.Open("greedy");
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(Drive(engine, *done, oracle, 1u << 20, nullptr), 3u);
  EXPECT_EQ(engine.Answer(*done, SessionAnswer::Reach(true)).code(),
            StatusCode::kFailedPrecondition);

  // Unknown ids and unknown specs are typed errors too.
  EXPECT_EQ(engine.Ask(SessionId{999999}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Open("no_such_policy").status().code(),
            StatusCode::kNotFound);
}

// ---- (4) snapshot epochs ---------------------------------------------------

TEST(EngineEpochs, HotSwapKeepsLiveSessionsOnTheirEpoch) {
  const ServiceCase c = std::move(ServiceCases()[0]);  // tree
  const std::size_t n = c.hierarchy.NumNodes();
  Engine engine;
  ASSERT_TRUE(engine.Publish(ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()))).ok());
  EXPECT_EQ(engine.epoch(), 1u);

  const NodeId target = static_cast<NodeId>(n - 1);
  ExactOracle oracle(c.hierarchy.reach(), target);
  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  Drive(engine, *id, oracle, 1, nullptr);
  auto saved_on_epoch1 = engine.Save(*id);
  ASSERT_TRUE(saved_on_epoch1.ok());

  // Publish a new epoch with shifted weights (an online-learning update).
  CatalogConfig next = ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()));
  std::vector<Weight> shifted = c.distribution.weights();
  shifted[0] += 1000;
  next.distribution = testing::MustDist(std::move(shifted));
  ASSERT_TRUE(engine.Publish(std::move(next)).ok());
  EXPECT_EQ(engine.epoch(), 2u);

  // The live session still completes correctly on epoch 1's snapshot.
  EXPECT_EQ(Drive(engine, *id, oracle, 1u << 20, nullptr), target);

  // New sessions see epoch 2; the epoch-1 save no longer matches the
  // current catalog fingerprint, so Resume refuses an inexact replay.
  EXPECT_EQ(engine.Resume(*saved_on_epoch1).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- (2) SessionManager: TTL + concurrency ---------------------------------

TEST(SessionManagerTtl, ExpiresIdleSessionsOnInjectedClock) {
  std::uint64_t now = 1000;
  SessionManagerOptions options;
  options.num_shards = 4;
  options.ttl_millis = 50;
  options.clock_millis = [&now] { return now; };
  SessionManager manager(options);

  const SessionId a = manager.Insert(std::make_shared<ServiceSession>());
  const SessionId b = manager.Insert(std::make_shared<ServiceSession>());
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_NE(a, b);

  now += 40;  // a touch refreshes the TTL
  EXPECT_TRUE(manager.Find(a).ok());
  now += 40;  // b is now 80ms idle, a only 40ms
  EXPECT_TRUE(manager.Find(a).ok());
  EXPECT_EQ(manager.Find(b).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.size(), 1u);

  now += 100;
  EXPECT_EQ(manager.EvictExpired(), 1u);
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_EQ(manager.Erase(a).code(), StatusCode::kNotFound);
}

TEST(SessionManagerConcurrency, ParallelOpenDriveCloseOnOneEngine) {
  const ServiceCase c = std::move(ServiceCases()[0]);  // tree
  const std::size_t n = c.hierarchy.NumNodes();
  EngineOptions engine_options;
  engine_options.sessions.num_shards = 8;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.Publish(ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()))).ok());

  constexpr int kThreads = 8;
  constexpr int kSearchesPerThread = 40;
  std::atomic<int> correct{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kSearchesPerThread; ++i) {
        const NodeId target = static_cast<NodeId>(rng.UniformInt(n));
        ExactOracle oracle(c.hierarchy.reach(), target);
        auto id = engine.Open(t % 2 == 0 ? "greedy" : "batched:k=3");
        if (!id.ok()) {
          ++failures;
          continue;
        }
        const NodeId found = Drive(engine, *id, oracle, 1u << 20, nullptr);
        if (found == target) {
          ++correct;
        } else {
          ++failures;
        }
        if (!engine.Close(*id).ok()) {
          ++failures;
        }
      }
    });
  }
  // Concurrent epoch publishes must never disturb in-flight sessions.
  std::thread publisher([&] {
    for (int i = 0; i < 5; ++i) {
      CatalogConfig next = ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()));
      AIGS_CHECK(engine.Publish(std::move(next)).ok());
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  publisher.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(correct.load(), kThreads * kSearchesPerThread);
  EXPECT_EQ(engine.sessions().size(), 0u);
  EXPECT_EQ(engine.epoch(), 6u);
}

// ---- (5) evaluator service path --------------------------------------------

TEST(EvaluatorServicePath, EngineDrivenExactMatchesInProcess) {
  for (const ServiceCase& c : ServiceCases()) {
    SCOPED_TRACE(c.name);
    Engine engine;
    ASSERT_TRUE(engine.Publish(ConfigFor(c, SomeCosts(c.hierarchy.NumNodes()))).ok());

    PolicyContext context;
    context.hierarchy = &c.hierarchy;
    context.distribution = &c.distribution;
    auto policy = PolicyRegistry::Global().Create("batched:k=3", context);
    ASSERT_TRUE(policy.ok());

    const Evaluator evaluator;
    const EvalStats direct =
        evaluator.Exact(**policy, c.hierarchy, c.distribution);
    const auto service = evaluator.Exact(engine, "batched:k=3");
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ(service->expected_cost, direct.expected_cost);
    EXPECT_EQ(service->expected_rounds, direct.expected_rounds);
    EXPECT_EQ(service->max_cost, direct.max_cost);
    EXPECT_EQ(service->num_searches, direct.num_searches);
    EXPECT_EQ(service->per_target_cost, direct.per_target_cost);

    const EvalStats direct_sampled = evaluator.Sampled(
        **policy, c.hierarchy, c.distribution, 500, /*seed=*/5);
    const auto service_sampled =
        evaluator.Sampled(engine, "batched:k=3", 500, /*seed=*/5);
    ASSERT_TRUE(service_sampled.ok());
    EXPECT_EQ(service_sampled->expected_cost, direct_sampled.expected_cost);

    EXPECT_EQ(evaluator.Exact(engine, "nope").status().code(),
              StatusCode::kNotFound);
  }
  Engine empty;
  EXPECT_EQ(Evaluator().Exact(empty, "greedy").status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace aigs
