#include "core/greedy.h"

namespace aigs {

std::unique_ptr<Policy> MakeGreedyPolicy(const Hierarchy& hierarchy,
                                         const Distribution& dist) {
  if (hierarchy.is_tree()) {
    return std::make_unique<GreedyTreePolicy>(hierarchy, dist);
  }
  return std::make_unique<GreedyDagPolicy>(hierarchy, dist);
}

}  // namespace aigs
