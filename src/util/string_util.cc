#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace aigs {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

namespace {

template <typename T>
StatusOr<T> ParseNumber(std::string_view s) {
  s = Trim(s);
  T value{};
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || s.empty()) {
    return Status::InvalidArgument("cannot parse number from '" +
                                   std::string(s) + "'");
  }
  return value;
}

}  // namespace

StatusOr<std::int64_t> ParseInt64(std::string_view s) {
  return ParseNumber<std::int64_t>(s);
}

StatusOr<std::uint64_t> ParseUint64(std::string_view s) {
  return ParseNumber<std::uint64_t>(s);
}

StatusOr<double> ParseDouble(std::string_view s) {
  return ParseNumber<double>(s);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatWithCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace aigs
