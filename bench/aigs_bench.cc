// aigs_bench — the unified, config-driven bench harness. Replaces the
// former per-experiment bench_* binaries: every experiment is a named suite
// built from ScenarioSpec rows (dataset × distribution × policy × cost
// model × threads) and all scenario results can be exported as JSON lines
// or CSV with one schema.
//
//   aigs_bench --list                      # suites and registered policies
//   aigs_bench --suite table3,fig5        # run suites
//   aigs_bench --suite all --json out.jsonl --csv out.csv
//   aigs_bench --smoke                    # 1-rep run of every suite (CI)
//   aigs_bench --scenario "dataset=amazon;dist=zipf:2;policy=batched:k=8"
//
// Environment (same knobs as the former binaries): AIGS_FULL=1,
// AIGS_SCALE_PCT=n, AIGS_REPS=n, AIGS_THREADS=n, plus the suite-specific
// AIGS_OBJECTS / AIGS_TRACES / AIGS_FIG6_SAMPLES / AIGS_NOISE_TRIALS /
// AIGS_APPROX_ROUNDS.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/scenario.h"
#include "bench/suites.h"
#include "core/policy_registry.h"
#include "util/string_util.h"

namespace aigs::bench {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: aigs_bench [--list] [--suite NAME[,NAME...]|all] [--smoke]\n"
      "                  [--threads N] [--json FILE] [--csv FILE]\n"
      "                  [--baseline FILE] [--scenario \"key=val;key=val\"]\n"
      "--baseline compares the run's cost aggregates against a committed\n"
      "JSON-lines dump and fails on drift (CI regression guard).\n"
      "run 'aigs_bench --list' for suites, policies, and scenario fields.\n");
  return 2;
}

int List() {
  std::printf("suites:\n");
  for (const Suite& suite : AllSuites()) {
    std::printf("  %-14s %s\n", suite.name.c_str(), suite.help.c_str());
  }
  std::printf("\nregistered policies (PolicyRegistry):\n");
  for (const auto& entry : PolicyRegistry::Global().List()) {
    std::printf("  %-16s %s\n", entry.name.c_str(), entry.help.c_str());
  }
  std::printf(
      "\nscenario fields: dataset=amazon|imagenet|vehicle|fig2|fig3; "
      "scale=frac;\n  dist=real|equal|uniform|exponential|zipf[:a]; "
      "policy=<registry spec>;\n  cost=unit|uniform:lo:hi|depth:lo:hi|fig3; "
      "oracle=exact|noisy:p|persistent:p;\n  reps=n; "
      "samples=n (0=exact); threads=n; seed=n\n");
  return 0;
}

int CheckBaseline(const std::vector<ScenarioResult>& results,
                  const std::string& baseline_path, bool require_complete) {
  if (baseline_path.empty()) {
    return 0;
  }
  const Status status =
      CheckAgainstBaseline(results, baseline_path, require_complete);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("baseline: %s OK (%zu scenarios, cost aggregates match)\n",
              baseline_path.c_str(), results.size());
  return 0;
}

int EmitResults(const std::vector<ScenarioResult>& results,
                const std::string& json_path, const std::string& csv_path) {
  int code = 0;
  if (!json_path.empty()) {
    std::string doc;
    for (const ScenarioResult& r : results) {
      doc += ScenarioResultToJson(r) + "\n";
    }
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      code = 1;
    } else {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("json: %s (%zu scenarios)\n", json_path.c_str(),
                  results.size());
    }
  }
  if (!csv_path.empty()) {
    CsvWriter csv(ScenarioCsvHeader());
    for (const ScenarioResult& r : results) {
      csv.AddRow(ScenarioCsvRow(r));
    }
    const Status status = csv.WriteToFile(csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      code = 1;
    } else {
      std::printf("csv: %s (%zu scenarios)\n", csv_path.c_str(),
                  results.size());
    }
  }
  return code;
}

int Main(int argc, char** argv) {
  std::vector<std::string> suite_names;
  std::string scenario_text;
  std::string json_path;
  std::string csv_path;
  std::string baseline_path;
  bool smoke = false;
  int threads =
      static_cast<int>(std::max<std::int64_t>(0, EnvInt("AIGS_THREADS", 0)));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      return List();
    }
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--suite") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      for (const auto part : Split(value, ',')) {
        suite_names.emplace_back(Trim(part));
      }
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      threads = std::atoi(value);
      if (threads < 0) {
        return Usage();
      }
    } else if (arg == "--json") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      json_path = value;
    } else if (arg == "--csv") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      csv_path = value;
    } else if (arg == "--baseline") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      baseline_path = value;
    } else if (arg == "--scenario") {
      const char* value = next();
      if (value == nullptr) {
        return Usage();
      }
      scenario_text = value;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }

  DatasetCache cache;
  std::vector<ScenarioResult> results;

  if (!scenario_text.empty()) {
    auto spec = ParseScenarioSpec(scenario_text);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (spec->threads == 0) {
      spec->threads = threads;
    }
    auto result = RunScenario(*spec, cache);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", ScenarioResultToJson(*result).c_str());
    results.push_back(*result);
    const int emit_code = EmitResults(results, json_path, csv_path);
    // Ad-hoc cells spot-check only the labels they ran.
    const int baseline_code =
        CheckBaseline(results, baseline_path, /*require_complete=*/false);
    return emit_code != 0 ? emit_code : baseline_code;
  }

  if (suite_names.empty()) {
    if (!smoke) {
      return Usage();
    }
    suite_names = {"all"};
  }
  if (suite_names.size() == 1 && suite_names[0] == "all") {
    suite_names.clear();
    for (const Suite& suite : AllSuites()) {
      suite_names.push_back(suite.name);
    }
  }

  SuiteContext ctx;
  ctx.scale = smoke ? std::min(DatasetScale(), 0.02) : DatasetScale();
  ctx.reps = smoke ? 1 : Reps();
  ctx.threads = threads;
  ctx.smoke = smoke;
  ctx.cache = &cache;
  ctx.results = &results;

  int code = 0;
  for (const std::string& name : suite_names) {
    const Suite* suite = FindSuite(name);
    if (suite == nullptr) {
      std::fprintf(stderr, "unknown suite '%s'; try --list\n", name.c_str());
      return 2;
    }
    const int suite_code = suite->fn(ctx);
    code = code == 0 ? suite_code : code;
    std::printf("\n");
  }
  const int emit_code = EmitResults(results, json_path, csv_path);
  if (code != 0) {
    // A failed suite already produced a real error; a guard run over the
    // partial result set would only bury it in bogus "was not run" noise.
    return code;
  }
  const int baseline_code =
      CheckBaseline(results, baseline_path, /*require_complete=*/true);
  return emit_code != 0 ? emit_code : baseline_code;
}

}  // namespace
}  // namespace aigs::bench

int main(int argc, char** argv) { return aigs::bench::Main(argc, argv); }
