// Dynamic fixed-capacity bitset tuned for candidate-set and transitive-
// closure operations: word-parallel boolean algebra, popcounts, and set-bit
// iteration.
#ifndef AIGS_UTIL_BITSET_H_
#define AIGS_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace aigs {

/// Per-64-bit-block partial sums of a weight vector: BlockSum(w) =
/// Σ weights[64w, 64w+64). The blocked weighted-popcount kernels use it to
/// settle a fully-set word in one add and a majority-set word by gathering
/// the (cheaper) complement, so the per-bit gather cost of a masked weighted
/// sum drops from popcount(word) to min(popcount, 64 − popcount) ≤ 32 — and
/// to zero for the dense words that dominate early-search alive masks.
class BlockedWeights {
 public:
  BlockedWeights() = default;
  /// Borrows `weights` (one entry per bit); the vector must outlive the
  /// table and keep its address. Rebuild after bulk weight changes.
  explicit BlockedWeights(const std::vector<Weight>& weights);

  const std::vector<Weight>& weights() const { return *weights_; }
  Weight BlockSum(std::size_t word) const { return block_sums_[word]; }
  std::size_t num_blocks() const { return block_sums_.size(); }

  /// Contiguous block sums, one per word — the kernels layer consumes them
  /// directly (util/kernels.h).
  std::span<const Weight> block_sums() const { return block_sums_; }

 private:
  const std::vector<Weight>* weights_ = nullptr;
  std::vector<Weight> block_sums_;
};

/// A resizable bitset over indices [0, size). Unlike std::vector<bool> it
/// exposes the word representation, enabling O(n/64) set algebra which the
/// reachability index and the DAG policies rely on.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  /// Creates a bitset of `size` bits, all clear (or all set).
  explicit DynamicBitset(std::size_t size, bool value = false) {
    Resize(size, value);
  }

  /// Number of addressable bits.
  std::size_t size() const { return size_; }

  /// Resizes to `size` bits; new bits take `value`.
  void Resize(std::size_t size, bool value = false);

  /// Sets bit i.
  void Set(std::size_t i) {
    AIGS_DCHECK(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  /// Clears bit i.
  void Reset(std::size_t i) {
    AIGS_DCHECK(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Sets bit i to `value`.
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Returns bit i.
  bool Test(std::size_t i) const {
    AIGS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Clears all bits.
  void ClearAll();
  /// Sets all bits in [0, size).
  void SetAll();

  /// this &= other. Sizes must match.
  void AndWith(const DynamicBitset& other);
  /// this |= other. Sizes must match.
  void OrWith(const DynamicBitset& other);
  /// this &= ~other. Sizes must match.
  void AndNotWith(const DynamicBitset& other);

  /// Number of set bits.
  std::size_t Count() const;

  /// Number of set bits in (this & other). Sizes must match.
  std::size_t IntersectionCount(const DynamicBitset& other) const;

  /// Σ weights[i] over i ∈ (this & mask) — the masked weighted-popcount
  /// kernel behind DAG-closure split weights: w(R(v) ∩ C) is one call with
  /// `this` = alive bits and `mask` = closure[v]. O(n/64) word scans plus one
  /// gather per surviving bit; zero words are skipped entirely. Sizes must
  /// match and `weights` must have one entry per bit.
  Weight MaskedWeightedSum(const DynamicBitset& mask,
                           const std::vector<Weight>& weights) const;

  /// Σ weights[i] over all set bits (unmasked variant).
  Weight WeightedSum(const std::vector<Weight>& weights) const;

  /// Intersection count and masked weighted sum of (this & mask) in one
  /// word scan — the batched selection loop needs both per candidate, and
  /// fusing them halves the dominant O(n/64) cost.
  struct CountAndWeight {
    std::size_t count = 0;
    Weight weight = 0;
  };
  CountAndWeight MaskedCountAndWeightedSum(
      const DynamicBitset& mask, const std::vector<Weight>& weights) const;

  /// Blocked/word-parallel variants: same results as the vector overloads
  /// above, but dense words settle against the precomputed block sums
  /// instead of per-bit gathers (see BlockedWeights).
  Weight MaskedWeightedSum(const DynamicBitset& mask,
                           const BlockedWeights& weights) const;
  CountAndWeight MaskedCountAndWeightedSum(
      const DynamicBitset& mask, const BlockedWeights& weights) const;

  /// Sets every bit in [begin, end).
  void SetRange(std::size_t begin, std::size_t end);

  /// this.words[word_offset + i] &= mask[i] for each word of `mask`. The
  /// window must lie inside the bitset. Compressed-closure rows use the
  /// *WordsAt kernels to apply one decoded chunk without materializing a
  /// full-width mask bitset.
  void AndWordsAt(std::size_t word_offset, std::span<const std::uint64_t> mask);
  /// this.words[word_offset + i] &= ~mask[i].
  void AndNotWordsAt(std::size_t word_offset,
                     std::span<const std::uint64_t> mask);
  /// this.words[word_offset + i] |= mask[i]. Mask bits past size() must be 0.
  void OrWordsAt(std::size_t word_offset, std::span<const std::uint64_t> mask);

  /// Count and Σ weights[i] over set bits of `this` within [begin, end) in
  /// one scan — the interval/run fast path of compressed closure rows:
  /// |R(v) ∩ C| and w(R(v) ∩ C) when R(v) is a position range. Words fully
  /// inside the range settle against the block sums; the two boundary words
  /// gather per bit (their block sums cover bits outside the range).
  CountAndWeight RangeCountAndWeightedSum(std::size_t begin, std::size_t end,
                                          const BlockedWeights& weights) const;

  /// Count and Σ weights over set bits of (this & mask) where `mask` is a
  /// word window starting at `word_offset` — the dense-chunk kernel of
  /// compressed closure rows. Block sums settle dense intersection words
  /// exactly as in MaskedCountAndWeightedSum.
  CountAndWeight MaskedWordsCountAndWeightedSum(
      std::size_t word_offset, std::span<const std::uint64_t> mask,
      const BlockedWeights& weights) const;

  /// Clears every bit in [begin, end).
  void ClearRange(std::size_t begin, std::size_t end);

  /// Clears every bit outside [begin, end).
  void KeepOnlyRange(std::size_t begin, std::size_t end);

  /// Number of set bits in [begin, end).
  std::size_t CountInRange(std::size_t begin, std::size_t end) const;

  /// True iff (this & other) is non-empty. Sizes must match.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff no bit is set.
  bool None() const;
  /// True iff at least one bit is set.
  bool Any() const { return !None(); }

  /// Index of the lowest set bit, or `size()` if none.
  std::size_t FindFirst() const;

  /// Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::size_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// Invokes fn(index) for every set bit of (this & other).
  template <typename Fn>
  void ForEachSetBitIntersection(const DynamicBitset& other, Fn&& fn) const {
    AIGS_DCHECK(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w] & other.words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::size_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// Invokes fn(index) for every set bit in [begin, end), ascending.
  template <typename Fn>
  void ForEachSetBitInRange(std::size_t begin, std::size_t end,
                            Fn&& fn) const {
    AIGS_DCHECK(begin <= end && end <= size_);
    if (begin >= end) {
      return;
    }
    const std::size_t first_word = begin >> 6;
    const std::size_t last_word = (end - 1) >> 6;
    for (std::size_t w = first_word; w <= last_word; ++w) {
      std::uint64_t word = words_[w];
      if (w == first_word && (begin & 63) != 0) {
        word &= ~std::uint64_t{0} << (begin & 63);
      }
      if (w == last_word && (end & 63) != 0) {
        word &= (std::uint64_t{1} << (end & 63)) - 1;
      }
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::size_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// Raw word access (read-only) for advanced word-parallel algorithms.
  const std::vector<std::uint64_t>& words() const { return words_; }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  // Zeroes bits at positions >= size_ in the last word.
  void TrimTail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace aigs

#endif  // AIGS_UTIL_BITSET_H_
