#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "util/ascii_table.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/epoch_marker.h"
#include "util/node_map.h"
#include "util/percentile.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace aigs {
namespace {

// ---- EpochMarker -----------------------------------------------------------

TEST(EpochMarker, VisitAndReset) {
  EpochMarker m(10);
  EXPECT_FALSE(m.IsVisited(3));
  m.Visit(3);
  EXPECT_TRUE(m.IsVisited(3));
  m.NewEpoch();
  EXPECT_FALSE(m.IsVisited(3));
}

TEST(EpochMarker, VisitOnceReportsFirstVisit) {
  EpochMarker m(4);
  EXPECT_TRUE(m.VisitOnce(1));
  EXPECT_FALSE(m.VisitOnce(1));
  m.NewEpoch();
  EXPECT_TRUE(m.VisitOnce(1));
}

TEST(EpochMarker, ResizeKeepsSemantics) {
  EpochMarker m(2);
  m.Visit(1);
  m.Resize(5);
  EXPECT_TRUE(m.IsVisited(1));
  EXPECT_FALSE(m.IsVisited(4));
}

// ---- NodeMap ---------------------------------------------------------------

TEST(NodeMap, InsertAndLookup) {
  NodeMap<int> m;
  EXPECT_TRUE(m.empty());
  m[5] = 42;
  EXPECT_EQ(m.GetOr(5, 0), 42);
  EXPECT_EQ(m.GetOr(6, -1), -1);
  EXPECT_TRUE(m.Contains(5));
  EXPECT_FALSE(m.Contains(6));
  EXPECT_EQ(m.size(), 1u);
}

TEST(NodeMap, OperatorBracketDefaultConstructs) {
  NodeMap<int> m;
  EXPECT_EQ(m[9], 0);
  m[9] += 7;
  EXPECT_EQ(m.GetOr(9, 0), 7);
}

TEST(NodeMap, GrowsPastInitialCapacity) {
  NodeMap<std::uint64_t> m;
  for (NodeId k = 0; k < 1000; ++k) {
    m[k] = k * 3;
  }
  EXPECT_EQ(m.size(), 1000u);
  for (NodeId k = 0; k < 1000; ++k) {
    EXPECT_EQ(m.GetOr(k, 0), k * 3u);
  }
}

TEST(NodeMap, ForEachVisitsEveryEntry) {
  NodeMap<int> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;
  int sum = 0;
  m.ForEach([&sum](NodeId, int v) { sum += v; });
  EXPECT_EQ(sum, 60);
}

TEST(NodeMap, ClearKeepsUsable) {
  NodeMap<int> m;
  m[1] = 1;
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.Contains(1));
  m[2] = 2;
  EXPECT_EQ(m.GetOr(2, 0), 2);
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no_trim"), "no_trim");
}

TEST(StringUtil, ParseIntegers) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseUint64(" 17 "), 17u);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtil, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(13886889), "13,886,889");
}

// ---- AsciiTable ------------------------------------------------------------

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"Dataset", "Cost"});
  t.AddRow({"Amazon", "21.02"});
  t.AddRow({"ImageNet", "22.29"});
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("Dataset  | Cost"), std::string::npos);
  EXPECT_NE(rendered.find("Amazon   | 21.02"), std::string::npos);
  EXPECT_NE(rendered.find("---------+------"), std::string::npos);
}

// ---- CSV -------------------------------------------------------------------

TEST(Csv, RoundTripWithQuoting) {
  CsvWriter w({"name", "value"});
  w.AddRow({"plain", "1"});
  w.AddRow({"with,comma", "2"});
  w.AddRow({"with\"quote", "3"});
  w.AddRow({"with\nnewline", "4"});
  const auto parsed = ParseCsv(w.ToString());
  ASSERT_TRUE(parsed.ok());
  const auto& rows = *parsed;
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[2][0], "with,comma");
  EXPECT_EQ(rows[3][0], "with\"quote");
  EXPECT_EQ(rows[4][0], "with\nnewline");
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"oops").ok());
}

TEST(Csv, WriteToFileAndBack) {
  CsvWriter w({"a"});
  w.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/aigs_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream file(path);
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n1\n");
}

// ---- Env -------------------------------------------------------------------

TEST(Env, IntFallbackAndParse) {
  ::unsetenv("AIGS_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("AIGS_TEST_ENV_INT", 7), 7);
  ::setenv("AIGS_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(EnvInt("AIGS_TEST_ENV_INT", 7), 42);
  ::setenv("AIGS_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(EnvInt("AIGS_TEST_ENV_INT", 7), 7);
  ::unsetenv("AIGS_TEST_ENV_INT");
}

TEST(Env, BoolParsing) {
  ::setenv("AIGS_TEST_ENV_BOOL", "1", 1);
  EXPECT_TRUE(EnvBool("AIGS_TEST_ENV_BOOL", false));
  ::setenv("AIGS_TEST_ENV_BOOL", "off", 1);
  EXPECT_FALSE(EnvBool("AIGS_TEST_ENV_BOOL", true));
  ::setenv("AIGS_TEST_ENV_BOOL", "maybe", 1);
  EXPECT_TRUE(EnvBool("AIGS_TEST_ENV_BOOL", true));
  ::unsetenv("AIGS_TEST_ENV_BOOL");
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, RunShardsCoversEveryShardOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(17);
  pool.RunShards(hits.size(), [&hits](std::size_t s) {
    hits[s].fetch_add(1);
  });
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(ThreadPool, RunShardsConcurrentCallersDoNotEntangle) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::thread other([&pool, &total] {
    pool.RunShards(8, [&total](std::size_t) { total.fetch_add(1); });
  });
  pool.RunShards(8, [&total](std::size_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, RunShardsSingleShardRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.RunShards(1, [&seen](std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
  pool.RunShards(0, [](std::size_t) { FAIL() << "no shards to run"; });
}

// ---- NearestRank percentile ------------------------------------------------

TEST(Percentile, NearestRankMatchesDefinition) {
  const std::vector<std::uint64_t> sorted = {10, 20, 30, 40};
  const std::span<const std::uint64_t> s(sorted);
  // rank = clamp(ceil(q * 4), 1, 4), 1-indexed.
  EXPECT_EQ(NearestRankSorted(s, 0.25), 10u);
  EXPECT_EQ(NearestRankSorted(s, 0.50), 20u);
  EXPECT_EQ(NearestRankSorted(s, 0.51), 30u);
  EXPECT_EQ(NearestRankSorted(s, 0.75), 30u);
  EXPECT_EQ(NearestRankSorted(s, 0.99), 40u);
  EXPECT_EQ(NearestRankSorted(s, 1.0), 40u);
  // q so small the rank clamps up to 1.
  EXPECT_EQ(NearestRankSorted(s, 0.0), 10u);
}

TEST(Percentile, SingleSampleAndEmpty) {
  const std::vector<double> one = {3.5};
  EXPECT_EQ(NearestRankSorted(std::span<const double>(one), 0.5), 3.5);
  EXPECT_EQ(NearestRankSorted(std::span<const double>(one), 0.99), 3.5);
  const std::vector<double> none;
  EXPECT_EQ(NearestRankSorted(std::span<const double>(none), 0.5), 0.0);
}

TEST(Percentile, UnsortedOverloadSortsACopy) {
  std::vector<int> samples = {9, 1, 5, 7, 3};
  EXPECT_EQ(NearestRank(samples, 0.5), 5);
  EXPECT_EQ(NearestRank(samples, 1.0), 9);
  // The caller's vector is untouched (passed by value).
  EXPECT_EQ(samples[0], 9);
}

// ---- Timer -----------------------------------------------------------------

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  const std::int64_t first = t.ElapsedNanos();
  EXPECT_GE(first, 0);
  // Burn a little CPU; elapsed must be monotonic.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
  EXPECT_GE(t.ElapsedNanos(), first);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace aigs
