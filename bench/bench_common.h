// Shared plumbing for the table/figure reproduction binaries.
//
// Every binary defaults to a scaled-down configuration that finishes in
// seconds; environment variables unlock paper-scale runs:
//   AIGS_FULL=1        — full Table II scale (29,240 / 27,714 nodes)
//   AIGS_SCALE_PCT=n   — explicit dataset scale percentage (default 25)
//   AIGS_REPS=n        — repetitions for randomized distributions
//   AIGS_TRACES=n      — traces for the online-learning figure
#ifndef AIGS_BENCH_BENCH_COMMON_H_
#define AIGS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "data/datasets.h"
#include "eval/evaluator.h"
#include "util/env.h"
#include "util/string_util.h"

namespace aigs::bench {

/// Dataset scale selected by the environment.
inline double DatasetScale() {
  if (EnvBool("AIGS_FULL", false)) {
    return 1.0;
  }
  const std::int64_t pct = EnvInt("AIGS_SCALE_PCT", 25);
  return static_cast<double>(pct) / 100.0;
}

/// Repetitions for randomized distributions (paper: 20).
inline std::size_t Reps() {
  return static_cast<std::size_t>(
      EnvInt("AIGS_REPS", EnvBool("AIGS_FULL", false) ? 20 : 3));
}

/// Prints the run configuration banner.
inline void PrintBanner(const char* experiment) {
  std::printf("== %s ==\n", experiment);
  std::printf(
      "config: scale=%.0f%% (AIGS_FULL=1 or AIGS_SCALE_PCT=N to change)\n\n",
      DatasetScale() * 100.0);
}

/// Directory for optional CSV dumps of figure series (AIGS_CSV_DIR); empty
/// string disables export.
inline std::string CsvDir() {
  const char* dir = std::getenv("AIGS_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Expected cost of a policy on (hierarchy, dist), exact over all targets.
inline double Cost(const Policy& policy, const Hierarchy& h,
                   const Distribution& dist) {
  return EvaluateExact(policy, h, dist).expected_cost;
}

/// The paper's four competitors on a dataset, in Table III column order.
struct CompetitorCosts {
  double top_down = 0;
  double migs = 0;
  double wigs = 0;
  double greedy = 0;
};

inline CompetitorCosts EvaluateCompetitors(const Hierarchy& h,
                                           const Distribution& dist) {
  CompetitorCosts out;
  TopDownPolicy top_down(h);
  out.top_down = Cost(top_down, h, dist);
  // Insertion-order choices: the paper's MIGS numbers barely move across
  // probability settings, so the baseline reads choices in catalog order
  // (the likelihood-ordered variant is available as an extension).
  MigsPolicy migs(h);
  out.migs = Cost(migs, h, dist);
  const auto wigs = MakeWigsPolicy(h);
  out.wigs = Cost(*wigs, h, dist);
  const auto greedy = MakeGreedyPolicy(h, dist);
  out.greedy = Cost(*greedy, h, dist);
  return out;
}

}  // namespace aigs::bench

#endif  // AIGS_BENCH_BENCH_COMMON_H_
