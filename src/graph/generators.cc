#include "graph/generators.h"

#include <unordered_set>
#include <vector>

namespace aigs {
namespace {

std::uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Digraph RandomTree(std::size_t n, Rng& rng, std::size_t max_children) {
  AIGS_CHECK(n >= 1);
  Digraph g;
  g.AddNodes(n);
  std::vector<std::size_t> degree(n, 0);
  for (NodeId v = 1; v < n; ++v) {
    NodeId parent;
    do {
      parent = static_cast<NodeId>(rng.UniformInt(v));
    } while (max_children != 0 && degree[parent] >= max_children);
    g.AddEdge(parent, v);
    ++degree[parent];
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph RandomDag(std::size_t n, Rng& rng, double extra_edge_frac,
                  std::size_t max_children) {
  AIGS_CHECK(n >= 1);
  Digraph g;
  g.AddNodes(n);
  std::vector<std::size_t> degree(n, 0);
  std::unordered_set<std::uint64_t> edges;
  // Tree skeleton guarantees one root and connectivity.
  for (NodeId v = 1; v < n; ++v) {
    NodeId parent;
    do {
      parent = static_cast<NodeId>(rng.UniformInt(v));
    } while (max_children != 0 && degree[parent] >= max_children);
    g.AddEdge(parent, v);
    ++degree[parent];
    edges.insert(EdgeKey(parent, v));
  }
  // Extra edges u -> v with u < v keep the id order topological, so the
  // result is acyclic by construction.
  const auto extra =
      static_cast<std::size_t>(extra_edge_frac * static_cast<double>(n));
  for (std::size_t i = 0; i < extra && n >= 3; ++i) {
    const NodeId v = static_cast<NodeId>(2 + rng.UniformInt(n - 2));
    const NodeId u = static_cast<NodeId>(rng.UniformInt(v));
    if (max_children != 0 && degree[u] >= max_children) {
      continue;
    }
    if (!edges.insert(EdgeKey(u, v)).second) {
      continue;  // duplicate; skip rather than retry to bound work
    }
    g.AddEdge(u, v);
    ++degree[u];
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph PathGraph(std::size_t n) {
  AIGS_CHECK(n >= 1);
  Digraph g;
  g.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    g.AddEdge(v - 1, v);
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph StarGraph(std::size_t n) {
  AIGS_CHECK(n >= 1);
  Digraph g;
  g.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    g.AddEdge(0, v);
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph CompleteBinaryTree(std::size_t n) {
  AIGS_CHECK(n >= 1);
  Digraph g;
  g.AddNodes(n);
  for (NodeId v = 1; v < n; ++v) {
    g.AddEdge((v - 1) / 2, v);
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph DiamondChain(std::size_t k) {
  AIGS_CHECK(k >= 1);
  Digraph g;
  // Each diamond: top -> {left, right} -> bottom; bottoms chain to next top.
  const std::size_t n = 3 * k + 1;
  g.AddNodes(n);
  NodeId top = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId left = static_cast<NodeId>(3 * i + 1);
    const NodeId right = static_cast<NodeId>(3 * i + 2);
    const NodeId bottom = static_cast<NodeId>(3 * i + 3);
    g.AddEdge(top, left);
    g.AddEdge(top, right);
    g.AddEdge(left, bottom);
    g.AddEdge(right, bottom);
    top = bottom;
  }
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

}  // namespace aigs
