#include "util/thread_pool.h"

#include <algorithm>

#include "util/common.h"

namespace aigs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  AIGS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    AIGS_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t min_chunk) {
  if (n == 0) {
    return;
  }
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  // ~4 chunks per worker for load balancing, but never below min_chunk.
  const std::size_t target_chunks = num_threads() * 4;
  const std::size_t chunk =
      std::max(min_chunk, (n + target_chunks - 1) / target_chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::RunShards(std::size_t shards,
                           const std::function<void(std::size_t)>& fn) {
  if (shards == 0) {
    return;
  }
  if (shards == 1) {
    fn(0);
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = shards;
  for (std::size_t s = 0; s < shards; ++s) {
    Submit([&, s] {
      fn(s);
      // Notify under the lock: the waiter owns done_cv's storage and may
      // destroy it the moment remaining hits 0 and the lock is released.
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) {
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace aigs
