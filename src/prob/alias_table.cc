#include "prob/alias_table.h"

namespace aigs {

AliasTable::AliasTable(const Distribution& dist) {
  const std::size_t n = dist.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  const double total = static_cast<double>(dist.Total());

  // Scaled probabilities: mean 1 per bucket.
  std::vector<double> scaled(n);
  for (NodeId v = 0; v < n; ++v) {
    scaled[v] = static_cast<double>(dist.WeightOf(v)) / total *
                static_cast<double>(n);
  }
  std::vector<NodeId> small;
  std::vector<NodeId> large;
  for (NodeId v = 0; v < n; ++v) {
    (scaled[v] < 1.0 ? small : large).push_back(v);
  }
  while (!small.empty() && !large.empty()) {
    const NodeId s = small.back();
    small.pop_back();
    const NodeId l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const NodeId v : large) {
    prob_[v] = 1.0;
    alias_[v] = v;
  }
  for (const NodeId v : small) {
    prob_[v] = 1.0;  // numerical leftovers
    alias_[v] = v;
  }
}

NodeId AliasTable::Sample(Rng& rng) const {
  const std::size_t bucket =
      static_cast<std::size_t>(rng.UniformInt(prob_.size()));
  return rng.UniformReal() < prob_[bucket]
             ? static_cast<NodeId>(bucket)
             : alias_[bucket];
}

}  // namespace aigs
