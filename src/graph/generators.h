// Random and structured hierarchy generators used by tests, property sweeps
// and ablation benchmarks. Dataset-scale generators that mimic the paper's
// Amazon/ImageNet statistics live in data/synthetic_catalog.h.
#ifndef AIGS_GRAPH_GENERATORS_H_
#define AIGS_GRAPH_GENERATORS_H_

#include <cstddef>

#include "graph/digraph.h"
#include "util/rng.h"

namespace aigs {

/// Random rooted tree: node i > 0 attaches to a uniform parent among
/// {0, ..., i-1} whose out-degree is still below `max_children`
/// (0 = unlimited).
Digraph RandomTree(std::size_t n, Rng& rng, std::size_t max_children = 0);

/// Random DAG: starts from RandomTree(n) and adds approximately
/// `extra_edge_frac * n` extra edges from shallower to deeper nodes
/// (acyclicity preserved by construction).
Digraph RandomDag(std::size_t n, Rng& rng, double extra_edge_frac = 0.3,
                  std::size_t max_children = 0);

/// Root -> chain of n-1 nodes (a fully ordered set; binary search territory).
Digraph PathGraph(std::size_t n);

/// Root with n-1 leaf children (the greedy worst case for flat hierarchies).
Digraph StarGraph(std::size_t n);

/// Complete binary tree with n nodes (heap ordering of ids).
Digraph CompleteBinaryTree(std::size_t n);

/// Classic diamond DAG stack: k diamonds chained head-to-tail
/// (4k - (k-1) nodes); exercises multi-parent bookkeeping.
Digraph DiamondChain(std::size_t k);

}  // namespace aigs

#endif  // AIGS_GRAPH_GENERATORS_H_
