// CAIGS (§III-D) evaluation: Example 4's exact numbers, plus a dataset-scale
// comparison of the cost-sensitive greedy (Definition 9) against the
// cost-blind greedy under heterogeneous question prices. The paper proves
// Theorem 4 but reports no large-scale CAIGS experiment; this bench fills
// that gap as an extension.
#include <algorithm>

#include "bench/bench_common.h"
#include "data/builtin.h"
#include "eval/decision_tree.h"
#include "util/ascii_table.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

double PricedCost(const Policy& policy, const Hierarchy& h,
                  const Distribution& dist, const CostModel& costs) {
  EvalOptions options;
  options.cost_model = &costs;
  return EvaluateExact(policy, h, dist, options).expected_priced_cost;
}

void RunExample4() {
  auto h = Hierarchy::Build(BuildFig3Hierarchy());
  AIGS_CHECK(h.ok());
  const Distribution equal = EqualDistribution(4);
  const CostModel costs = Fig3CostModel();

  GreedyTreePolicy blind(*h, equal);
  CostSensitiveGreedyPolicy aware(*h, equal, costs);
  std::printf("Example 4 (Fig. 3, c(3)=5): cost-blind greedy %s vs "
              "cost-sensitive greedy %s  (paper: 6 vs 4.25)\n\n",
              FormatDouble(PricedCost(blind, *h, equal, costs)).c_str(),
              FormatDouble(PricedCost(aware, *h, equal, costs)).c_str());
}

void RunDataset(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;
  AsciiTable table({"Price range", "Cost-blind greedy",
                    "Cost-sensitive greedy", "Savings"});
  for (const std::uint32_t hi : {2u, 5u, 10u, 20u}) {
    Rng rng(500 + hi);
    const CostModel costs =
        CostModel::UniformRandom(h.NumNodes(), 1, hi, rng);
    const auto blind = MakeGreedyPolicy(h, dist);
    CostSensitiveGreedyPolicy aware(h, dist, costs);
    const double blind_cost = PricedCost(*blind, h, dist, costs);
    const double aware_cost = PricedCost(aware, h, dist, costs);
    table.AddRow({"$1-$" + std::to_string(hi), FormatDouble(blind_cost),
                  FormatDouble(aware_cost),
                  FormatDouble((1 - aware_cost / blind_cost) * 100, 1) +
                      "%"});
  }
  std::printf("%s (real distribution, random prices)\n%s\n",
              dataset.name.c_str(), table.ToString().c_str());
}

int Main() {
  PrintBanner("CAIGS: cost-sensitive greedy (Definition 9 / Theorem 4)");
  RunExample4();
  // Selection scans all alive candidates per query (no heavy-path shortcut
  // under heterogeneous prices), so cap the default scale.
  const double scale = std::min(DatasetScale(), 0.12);
  RunDataset(MakeAmazonDataset(scale));
  RunDataset(MakeImageNetDataset(scale));
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
