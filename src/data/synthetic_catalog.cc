#include "data/synthetic_catalog.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace aigs {
namespace {

/// Shared skeleton: builds the tree edge list (parent per node) with exact
/// height and exact max out-degree, returning per-node tree depths.
struct TreeSkeleton {
  std::vector<NodeId> parent;  // parent[0] unused (root)
  std::vector<int> depth;
  NodeId hub = kInvalidNode;
};

TreeSkeleton BuildSkeleton(const CatalogParams& params, Rng& rng) {
  const std::size_t n = params.num_nodes;
  const auto height = static_cast<std::size_t>(params.height);
  const std::size_t max_deg = params.max_out_degree;
  AIGS_CHECK(n >= height + max_deg + 2);
  AIGS_CHECK(params.height >= 2);
  AIGS_CHECK(max_deg >= 3);

  TreeSkeleton s;
  s.parent.assign(n, kInvalidNode);
  s.depth.assign(n, 0);
  std::vector<std::size_t> out_degree(n, 0);
  // Preferential-attachment slot list: a node appears once when created and
  // once more per child it has, so P(parent = u) ∝ 1 + children(u).
  std::vector<NodeId> slots;
  slots.reserve(2 * n);

  NodeId next = 0;
  auto add_node = [&](NodeId parent_id) {
    const NodeId v = next++;
    AIGS_CHECK(v < n);
    if (v != 0) {
      s.parent[v] = parent_id;
      s.depth[v] = s.depth[parent_id] + 1;
      ++out_degree[parent_id];
      slots.push_back(parent_id);
    }
    slots.push_back(v);
    return v;
  };

  const NodeId root = add_node(kInvalidNode);
  // Spine pins the height: a chain root -> ... of `height` edges.
  NodeId spine_tail = root;
  for (std::size_t i = 0; i < height; ++i) {
    spine_tail = add_node(spine_tail);
  }
  // Hub pins the maximum out-degree: a depth-1 node with exactly max_deg
  // children (everyone else is capped one below).
  s.hub = add_node(root);
  for (std::size_t i = 0; i < max_deg; ++i) {
    add_node(s.hub);
  }

  // Preferential attachment for the remainder, capped in depth and degree.
  while (next < n) {
    const NodeId parent_id =
        slots[static_cast<std::size_t>(rng.UniformInt(slots.size()))];
    if (s.depth[parent_id] >= params.height) {
      continue;  // would exceed the target height
    }
    const std::size_t cap = parent_id == s.hub ? max_deg : max_deg - 1;
    if (out_degree[parent_id] >= cap) {
      continue;
    }
    add_node(parent_id);
  }
  return s;
}

Digraph SkeletonToGraph(const TreeSkeleton& s) {
  Digraph g;
  g.AddNodes(s.parent.size());
  for (NodeId v = 1; v < s.parent.size(); ++v) {
    g.AddEdge(s.parent[v], v);
  }
  return g;
}

}  // namespace

CatalogParams AmazonParams() {
  CatalogParams p;
  p.num_nodes = 29'240;
  p.height = 10;
  p.max_out_degree = 225;
  p.extra_parent_frac = 0;
  p.seed = 2022;
  return p;
}

CatalogParams ImageNetParams() {
  CatalogParams p;
  p.num_nodes = 27'714;
  p.height = 13;
  p.max_out_degree = 402;
  p.extra_parent_frac = 0.05;
  p.seed = 2023;
  return p;
}

CatalogParams BigCatalogParams(std::size_t num_nodes) {
  CatalogParams p;
  p.num_nodes = num_nodes;
  p.height = 20;
  p.max_out_degree = 256;
  // Each extra parent makes every ancestor of its endpoint closure-impure
  // (a chunked row instead of a 12-byte interval), so the fraction is kept
  // an order of magnitude below ImageNet's to pin closure density at
  // million-node scale.
  p.extra_parent_frac = 0.005;
  p.seed = 2024;
  return p;
}

Digraph GenerateCatalogTree(const CatalogParams& params) {
  Rng rng(params.seed);
  const TreeSkeleton s = BuildSkeleton(params, rng);
  Digraph g = SkeletonToGraph(s);
  AIGS_CHECK(g.Finalize().ok());
  AIGS_CHECK(g.IsTree());
  AIGS_CHECK(g.NumNodes() == params.num_nodes);
  AIGS_CHECK(g.Height() == params.height);
  AIGS_CHECK(g.MaxOutDegree() == params.max_out_degree);
  return g;
}

Digraph GenerateCatalogDag(const CatalogParams& params) {
  Rng rng(params.seed);
  const TreeSkeleton s = BuildSkeleton(params, rng);
  Digraph g = SkeletonToGraph(s);

  // Extra parents: edges always point from a strictly shallower tree depth
  // to a deeper one, so every path's tree depth strictly increases — the
  // result is acyclic and the longest path still equals the tree height.
  const std::size_t n = params.num_nodes;
  std::vector<std::size_t> out_degree(n, 0);
  for (NodeId v = 1; v < n; ++v) {
    ++out_degree[s.parent[v]];
  }
  std::unordered_set<std::uint64_t> edges;
  for (NodeId v = 1; v < n; ++v) {
    edges.insert((static_cast<std::uint64_t>(s.parent[v]) << 32) | v);
  }
  const auto extra = static_cast<std::size_t>(
      params.extra_parent_frac * static_cast<double>(n));
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra && attempts < 50 * extra + 100) {
    ++attempts;
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (s.depth[v] < 2) {
      continue;  // keep the root's degree stable
    }
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    if (s.depth[u] >= s.depth[v] || u == s.parent[v]) {
      continue;
    }
    const std::size_t cap =
        u == s.hub ? params.max_out_degree : params.max_out_degree - 1;
    if (out_degree[u] >= cap) {
      continue;
    }
    if (!edges.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
      continue;
    }
    g.AddEdge(u, v);
    ++out_degree[u];
    ++added;
  }
  AIGS_CHECK(added == extra);

  AIGS_CHECK(g.Finalize().ok());
  AIGS_CHECK(!g.IsTree() || extra == 0);
  AIGS_CHECK(g.NumNodes() == params.num_nodes);
  AIGS_CHECK(g.Height() == params.height);
  AIGS_CHECK(g.MaxOutDegree() == params.max_out_degree);
  return g;
}

Distribution AssignZipfObjectCounts(std::size_t num_nodes,
                                    std::uint64_t total_objects,
                                    double s, std::uint64_t seed) {
  AIGS_CHECK(num_nodes >= 1 && total_objects >= num_nodes);
  Rng rng(seed);
  // Random rank permutation: rank r gets mass r^-s.
  std::vector<NodeId> order(num_nodes);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<double> mass(num_nodes);
  double mass_total = 0;
  for (std::size_t r = 0; r < num_nodes; ++r) {
    mass[order[r]] = std::pow(static_cast<double>(r + 1), -s);
    mass_total += mass[order[r]];
  }

  // Largest-remainder scaling to hit total_objects exactly.
  std::vector<Weight> counts(num_nodes);
  std::vector<std::pair<double, NodeId>> remainders(num_nodes);
  std::uint64_t assigned = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const double exact =
        mass[v] / mass_total * static_cast<double>(total_objects);
    counts[v] = static_cast<Weight>(exact);
    assigned += counts[v];
    remainders[v] = {exact - static_cast<double>(counts[v]), v};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  AIGS_CHECK(assigned <= total_objects);
  std::uint64_t leftover = total_objects - assigned;
  for (std::size_t i = 0; i < remainders.size() && leftover > 0;
       ++i, --leftover) {
    ++counts[remainders[i].second];
  }
  AIGS_CHECK(leftover == 0);

  auto d = Distribution::FromWeights(std::move(counts));
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

}  // namespace aigs
