#include "bench/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <utility>

#include "core/policy_registry.h"
#include "data/builtin.h"
#include "eval/cost_profile.h"
#include "oracle/noisy_oracle.h"
#include "service/catalog_snapshot.h"
#include "service/engine.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace aigs::bench {
namespace {

/// Quantized scale so the cache key is hashable without float-equality
/// surprises (0.01% resolution is far below dataset-generation granularity).
int QuantizeScale(double scale) {
  return static_cast<int>(std::lround(scale * 10000.0));
}

StatusOr<Dataset> BuildBuiltinDataset(const std::string& name,
                                      const ReachabilityOptions& reach) {
  if (name == "vehicle") {
    auto h = Hierarchy::Build(BuildVehicleHierarchy(), reach);
    AIGS_RETURN_NOT_OK(h.status());
    return Dataset{"vehicle", *std::move(h), VehicleDistribution(), 100};
  }
  if (name == "fig2") {
    auto h = Hierarchy::Build(BuildFig2Hierarchy(), reach);
    AIGS_RETURN_NOT_OK(h.status());
    const std::size_t n = h->NumNodes();
    return Dataset{"fig2", *std::move(h), EqualDistribution(n), n};
  }
  if (name == "fig3") {
    auto h = Hierarchy::Build(BuildFig3Hierarchy(), reach);
    AIGS_RETURN_NOT_OK(h.status());
    const std::size_t n = h->NumNodes();
    return Dataset{"fig3", *std::move(h), EqualDistribution(n), n};
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (amazon, imagenet, vehicle, fig2, fig3)");
}

/// Maps a ScenarioSpec::reach value onto ReachabilityOptions. dense and
/// compressed force closure storage on trees too — otherwise tree datasets
/// would silently fall back to Euler mode and the scenario would not
/// exercise the storage it names.
StatusOr<ReachabilityOptions> ParseReachMode(const std::string& reach) {
  ReachabilityOptions options;
  if (reach.empty() || reach == "auto") {
    return options;
  }
  options.force_closure_on_trees = true;
  if (reach == "dense") {
    options.closure = ReachabilityOptions::Closure::kDense;
    return options;
  }
  if (reach == "compressed") {
    options.closure = ReachabilityOptions::Closure::kCompressed;
    return options;
  }
  return Status::NotFound("unknown reach mode '" + reach +
                          "' (auto, dense, compressed)");
}

/// Self-contained noisy oracle for one search: owns the truthful inner
/// oracle and the chosen noise wrapper (NoisyOracle/PersistentNoisyOracle
/// only borrow their inner oracle).
class ScenarioNoisyOracle final : public Oracle {
 public:
  ScenarioNoisyOracle(const ReachabilityIndex& reach, NodeId target,
                      double flip_prob, bool persistent, std::uint64_t seed)
      : exact_(reach, target),
        transient_(exact_, flip_prob, Rng(seed)),
        persistent_(exact_, flip_prob, Rng(seed)),
        use_persistent_(persistent) {}

  bool Reach(NodeId q) override {
    return use_persistent_ ? persistent_.Reach(q) : transient_.Reach(q);
  }
  int Choice(std::span<const NodeId> choices) override {
    return use_persistent_ ? persistent_.Choice(choices)
                           : transient_.Choice(choices);
  }

 private:
  ExactOracle exact_;
  NoisyOracle transient_;
  PersistentNoisyOracle persistent_;
  bool use_persistent_;
};

struct OracleSpec {
  bool exact = true;
  bool persistent = false;
  double flip_prob = 0;
};

StatusOr<OracleSpec> ParseOracleSpec(const std::string& spec) {
  const std::vector<std::string_view> parts = Split(spec, ':');
  const std::string kind(Trim(parts[0]));
  OracleSpec parsed;
  if (kind == "exact") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("oracle 'exact' takes no parameter");
    }
    return parsed;
  }
  if (kind != "noisy" && kind != "persistent") {
    return Status::NotFound("unknown oracle '" + spec +
                            "' (exact, noisy:p, persistent:p)");
  }
  if (parts.size() != 2) {
    return Status::InvalidArgument("oracle '" + kind + "' needs " + kind +
                                   ":p (flip probability)");
  }
  parsed.exact = false;
  parsed.persistent = kind == "persistent";
  AIGS_ASSIGN_OR_RETURN(parsed.flip_prob, ParseDouble(parts[1]));
  if (parsed.flip_prob < 0 || parsed.flip_prob >= 0.5) {
    return Status::InvalidArgument("flip probability must be in [0, 0.5)");
  }
  return parsed;
}

}  // namespace

StatusOr<const Dataset*> DatasetCache::Get(const std::string& name,
                                           double scale,
                                           const std::string& reach,
                                           int build_threads) {
  AIGS_ASSIGN_OR_RETURN(ReachabilityOptions reach_options,
                        ParseReachMode(reach));
  reach_options.build_threads = build_threads;
  const bool scaled = name == "amazon" || name == "imagenet";
  const auto key =
      std::make_tuple(name, scaled ? QuantizeScale(scale) : 0, reach);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    return const_cast<const Dataset*>(it->second.get());
  }
  StatusOr<Dataset> built = [&]() -> StatusOr<Dataset> {
    if (name == "amazon") {
      return MakeAmazonDataset(scale, reach_options);
    }
    if (name == "imagenet") {
      return MakeImageNetDataset(scale, reach_options);
    }
    return BuildBuiltinDataset(name, reach_options);
  }();
  AIGS_RETURN_NOT_OK(built.status());
  auto owned = std::make_unique<Dataset>(*std::move(built));
  const Dataset* raw = owned.get();
  cache_.emplace(key, std::move(owned));
  return raw;
}

StatusOr<Distribution> MakeScenarioDistribution(const std::string& spec,
                                                const Dataset& dataset,
                                                Rng& rng) {
  const std::vector<std::string_view> parts = Split(spec, ':');
  const std::string kind(Trim(parts[0]));
  const std::size_t n = dataset.hierarchy.NumNodes();
  if (kind == "real") {
    return dataset.real_distribution;
  }
  if (kind == "equal") {
    return EqualDistribution(n);
  }
  if (kind == "uniform") {
    return UniformRandomDistribution(n, rng);
  }
  if (kind == "exponential") {
    return ExponentialRandomDistribution(n, rng);
  }
  if (kind == "zipf") {
    double a = 2.0;
    if (parts.size() > 1) {
      AIGS_ASSIGN_OR_RETURN(a, ParseDouble(parts[1]));
    }
    if (a <= 1.0) {
      return Status::InvalidArgument("zipf parameter must be > 1");
    }
    return ZipfRandomDistribution(n, a, rng);
  }
  return Status::NotFound("unknown distribution '" + spec +
                          "' (real, equal, uniform, exponential, zipf[:a])");
}

StatusOr<std::unique_ptr<CostModel>> MakeScenarioCostModel(
    const std::string& spec, const Hierarchy& hierarchy, Rng& rng) {
  const std::size_t n = hierarchy.NumNodes();
  const std::vector<std::string_view> parts = Split(spec, ':');
  const std::string kind(Trim(parts[0]));
  if (kind == "unit") {
    return std::unique_ptr<CostModel>();  // null = unit prices
  }
  if (kind == "depth") {
    // Non-uniform per-node prices tied to the hierarchy's shape (Szyfelbein,
    // arXiv:2603.17916): deeper questions are more specific and cost more,
    // clamped to [lo, hi]. Deterministic, so the baseline guard can pin the
    // resulting priced-cost aggregates.
    if (parts.size() != 3) {
      return Status::InvalidArgument("cost model 'depth' needs depth:lo:hi");
    }
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t lo, ParseUint64(parts[1]));
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t hi, ParseUint64(parts[2]));
    if (lo < 1 || hi < lo) {
      return Status::InvalidArgument("cost range must satisfy 1 <= lo <= hi");
    }
    std::vector<std::uint32_t> costs(n);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t depth =
          static_cast<std::uint64_t>(hierarchy.graph().Depth(v));
      costs[v] = static_cast<std::uint32_t>(lo + std::min(depth, hi - lo));
    }
    return std::make_unique<CostModel>(std::move(costs));
  }
  if (kind == "fig3") {
    if (n != 4) {
      return Status::InvalidArgument(
          "cost model 'fig3' only fits the 4-node fig3 dataset");
    }
    return std::make_unique<CostModel>(Fig3CostModel());
  }
  if (kind == "uniform") {
    if (parts.size() != 3) {
      return Status::InvalidArgument(
          "cost model 'uniform' needs uniform:lo:hi");
    }
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t lo, ParseUint64(parts[1]));
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t hi, ParseUint64(parts[2]));
    if (lo < 1 || hi < lo) {
      return Status::InvalidArgument("cost range must satisfy 1 <= lo <= hi");
    }
    return std::make_unique<CostModel>(
        CostModel::UniformRandom(n, static_cast<std::uint32_t>(lo),
                                 static_cast<std::uint32_t>(hi), rng));
  }
  if (kind == "prices") {
    // Arbitrary per-node prices (cost-sensitive AIGS with no structural
    // assumption on the price vector; cf. arXiv:2511.06564). Two shapes:
    //   prices:p0+p1+...        explicit vector, one entry per node
    //   prices:hash:lo:hi[:seed] deterministic pseudo-random in [lo, hi]
    // Both are rep-independent (no rng draw), so priced-cost aggregates are
    // guardable in the baseline.
    if (parts.size() >= 2 && Trim(parts[1]) == "hash") {
      if (parts.size() != 4 && parts.size() != 5) {
        return Status::InvalidArgument(
            "cost model 'prices:hash' needs prices:hash:lo:hi[:seed]");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t lo, ParseUint64(parts[2]));
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t hi, ParseUint64(parts[3]));
      if (lo < 1 || hi < lo) {
        return Status::InvalidArgument(
            "cost range must satisfy 1 <= lo <= hi");
      }
      std::uint64_t seed = 2022;
      if (parts.size() == 5) {
        AIGS_ASSIGN_OR_RETURN(seed, ParseUint64(parts[4]));
      }
      const std::uint64_t span = hi - lo + 1;
      std::vector<std::uint32_t> costs(n);
      for (NodeId v = 0; v < n; ++v) {
        // splitmix64 finalizer: independent of Rng so the vector never
        // shifts under unrelated generator changes.
        std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (v + 1);
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
        x ^= x >> 31;
        costs[v] = static_cast<std::uint32_t>(lo + x % span);
      }
      return std::make_unique<CostModel>(std::move(costs));
    }
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          "cost model 'prices' needs prices:p0+p1+... or "
          "prices:hash:lo:hi[:seed]");
    }
    const std::vector<std::string_view> entries = Split(parts[1], '+');
    if (entries.size() != n) {
      return Status::InvalidArgument(
          "cost model 'prices' got " + std::to_string(entries.size()) +
          " entries for " + std::to_string(n) + " nodes");
    }
    std::vector<std::uint32_t> costs(n);
    for (NodeId v = 0; v < n; ++v) {
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t p, ParseUint64(entries[v]));
      if (p < 1 || p > std::numeric_limits<std::uint32_t>::max()) {
        return Status::InvalidArgument("prices must be >= 1 (and fit u32)");
      }
      costs[v] = static_cast<std::uint32_t>(p);
    }
    return std::make_unique<CostModel>(std::move(costs));
  }
  return Status::NotFound(
      "unknown cost model '" + spec +
      "' (unit, uniform:lo:hi, depth:lo:hi, prices:p0+p1+..., "
      "prices:hash:lo:hi[:seed], fig3)");
}

StatusOr<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                     DatasetCache& cache) {
  if (spec.reps == 0) {
    return Status::InvalidArgument("scenario reps must be >= 1");
  }
  AIGS_ASSIGN_OR_RETURN(const OracleSpec oracle_spec,
                        ParseOracleSpec(spec.oracle));
  AIGS_ASSIGN_OR_RETURN(
      const Dataset* dataset,
      cache.Get(spec.dataset, spec.scale, spec.reach, spec.build_threads));
  const Hierarchy& h = dataset->hierarchy;

  ScenarioResult result;
  result.spec = spec;
  if (result.spec.label.empty()) {
    result.spec.label = spec.policy;
  }
  result.nodes = h.NumNodes();

  // One pool for every rep: the cost model changes per rep (so EvalOptions
  // must be rebuilt), but thread spawn/join should not be paid per rep.
  std::unique_ptr<ThreadPool> pool;
  if (spec.threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(spec.threads));
  }

  WallTimer timer;
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    // One deterministic stream per rep: the distribution draw and the cost
    // draw consume from the same rep RNG, in that order.
    Rng rng(spec.seed + 31 * rep);
    AIGS_ASSIGN_OR_RETURN(
        const Distribution dist,
        MakeScenarioDistribution(spec.distribution, *dataset, rng));
    AIGS_ASSIGN_OR_RETURN(
        std::unique_ptr<CostModel> owned_costs,
        MakeScenarioCostModel(spec.cost_model, h, rng));
    // Shared so the service path can pin the cost model in its snapshot.
    const std::shared_ptr<const CostModel> costs = std::move(owned_costs);

    // The service branch lets Engine::Publish build the policy (with its
    // full shared-base precompute) exactly once; only the in-process branch
    // needs a locally owned instance.
    std::unique_ptr<Policy> policy;
    if (!spec.service) {
      PolicyContext context;
      context.hierarchy = &h;
      context.distribution = &dist;
      context.cost_model = costs.get();
      AIGS_ASSIGN_OR_RETURN(
          policy, PolicyRegistry::Global().Create(spec.policy, context));
      result.policy_name = policy->name();
    }

    EvalOptions eval_options;
    eval_options.cost_model = costs.get();
    if (pool != nullptr) {
      eval_options.pool = pool.get();
    } else {
      eval_options.threads = spec.threads;
    }
    if (!oracle_spec.exact) {
      eval_options.require_correct = false;
      eval_options.oracle_seed = spec.seed + 131 * rep;
      eval_options.oracle_factory =
          [&oracle_spec](const Hierarchy& hierarchy, NodeId target,
                         std::uint64_t seed) -> std::unique_ptr<Oracle> {
        return std::make_unique<ScenarioNoisyOracle>(
            hierarchy.reach(), target, oracle_spec.flip_prob,
            oracle_spec.persistent, seed);
      };
    }
    const Evaluator evaluator(eval_options);
    EvalStats stats;
    if (spec.service) {
      // Service path: every sharded search runs through Engine sessions on
      // a freshly published snapshot — Ask goes through the plan cache when
      // enabled. Bit-identical cost aggregates to the in-process branch.
      EngineOptions engine_options;
      engine_options.plan_cache.enabled = spec.plan_cache;
      // Inline drains: scenario timing must not race a background worker.
      engine_options.drain.background = false;
      Engine engine(engine_options);
      CatalogConfig config;
      config.hierarchy = UnownedHierarchy(h);
      config.distribution = dist;
      config.cost_model = costs;
      config.policy_specs = {spec.policy};
      // Snapshot policy builds shard on the scenario's own pool (when it
      // has one) instead of Publish's default.
      config.build_pool = pool.get();
      AIGS_RETURN_NOT_OK(engine.Publish(std::move(config)).status());
      AIGS_ASSIGN_OR_RETURN(const Policy* published,
                            engine.snapshot()->PolicyFor(spec.policy));
      result.policy_name = published->name();
      if (spec.samples == 0) {
        AIGS_ASSIGN_OR_RETURN(stats, evaluator.Exact(engine, spec.policy));
      } else {
        AIGS_ASSIGN_OR_RETURN(
            stats, evaluator.Sampled(engine, spec.policy, spec.samples,
                                     spec.seed + 97 * rep));
      }
      if (spec.plan_cache) {
        result.cache_hit_rate += engine.Stats().plan_cache.hit_rate();
      }
    } else {
      stats = spec.samples == 0
                  ? evaluator.Exact(*policy, h, dist)
                  : evaluator.Sampled(*policy, h, dist, spec.samples,
                                      spec.seed + 97 * rep);
    }

    result.expected_cost += stats.expected_cost;
    result.expected_priced_cost += stats.expected_priced_cost;
    result.expected_reach_queries += stats.expected_reach_queries;
    result.expected_rounds += stats.expected_rounds;
    result.max_cost = std::max(result.max_cost, stats.max_cost);
    if (rep == 0) {
      result.accuracy = 0;
    }
    result.accuracy += stats.accuracy;
    if (spec.samples == 0) {
      const CostProfile profile(stats.per_target_cost, dist);
      result.median = profile.Median();
      result.p90 = profile.P90();
      result.p99 = profile.P99();
    }
  }
  result.wall_ms = timer.ElapsedMillis();

  const auto denom = static_cast<double>(spec.reps);
  result.expected_cost /= denom;
  result.expected_priced_cost /= denom;
  result.expected_reach_queries /= denom;
  result.expected_rounds /= denom;
  result.accuracy /= denom;
  result.cache_hit_rate /= denom;
  return result;
}

StatusOr<ScenarioSpec> ParseScenarioSpec(const std::string& text) {
  ScenarioSpec spec;
  for (const std::string_view item : Split(text, ';')) {
    if (Trim(item).empty()) {
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("scenario field '" + std::string(item) +
                                     "' is not key=value");
    }
    const std::string key(Trim(item.substr(0, eq)));
    const std::string value(Trim(item.substr(eq + 1)));
    if (key == "label") {
      spec.label = value;
    } else if (key == "dataset") {
      spec.dataset = value;
    } else if (key == "scale") {
      AIGS_ASSIGN_OR_RETURN(spec.scale, ParseDouble(value));
    } else if (key == "dist" || key == "distribution") {
      spec.distribution = value;
    } else if (key == "policy") {
      spec.policy = value;
    } else if (key == "cost" || key == "cost_model") {
      spec.cost_model = value;
    } else if (key == "reach") {
      spec.reach = value;
    } else if (key == "oracle") {
      spec.oracle = value;
    } else if (key == "reps") {
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t reps, ParseUint64(value));
      spec.reps = static_cast<std::size_t>(reps);
    } else if (key == "seed") {
      AIGS_ASSIGN_OR_RETURN(spec.seed, ParseUint64(value));
    } else if (key == "samples") {
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t samples, ParseUint64(value));
      spec.samples = static_cast<std::size_t>(samples);
    } else if (key == "threads") {
      AIGS_ASSIGN_OR_RETURN(const std::int64_t threads, ParseInt64(value));
      if (threads < 0) {
        return Status::InvalidArgument("threads must be >= 0");
      }
      spec.threads = static_cast<int>(threads);
    } else if (key == "build_threads") {
      AIGS_ASSIGN_OR_RETURN(const std::int64_t threads, ParseInt64(value));
      if (threads < 0) {
        return Status::InvalidArgument("build_threads must be >= 0");
      }
      spec.build_threads = static_cast<int>(threads);
    } else if (key == "service") {
      if (value == "engine") {
        spec.service = true;
      } else if (value == "inprocess") {
        spec.service = false;
      } else {
        return Status::InvalidArgument(
            "service must be engine|inprocess, got '" + value + "'");
      }
    } else if (key == "cache") {
      if (value == "on") {
        spec.plan_cache = true;
      } else if (value == "off") {
        spec.plan_cache = false;
      } else {
        return Status::InvalidArgument("cache must be on|off, got '" +
                                       value + "'");
      }
    } else {
      return Status::InvalidArgument("unknown scenario field '" + key + "'");
    }
  }
  return spec;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // RFC 8259: all control characters must be escaped.
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ScenarioResultToJson(const ScenarioResult& r) {
  std::string json = "{";
  const auto str = [&](const char* key, const std::string& value) {
    json += std::string("\"") + key + "\":\"" + JsonEscape(value) + "\",";
  };
  const auto num = [&](const char* key, const std::string& value) {
    json += std::string("\"") + key + "\":" + value + ",";
  };
  str("label", r.spec.label);
  str("dataset", r.spec.dataset);
  num("nodes", std::to_string(r.nodes));
  num("scale", FormatDouble(r.spec.scale, 4));
  str("distribution", r.spec.distribution);
  str("policy", r.spec.policy);
  str("policy_name", r.policy_name);
  str("cost_model", r.spec.cost_model);
  str("reach", r.spec.reach);
  str("oracle", r.spec.oracle);
  num("reps", std::to_string(r.spec.reps));
  num("samples", std::to_string(r.spec.samples));
  num("threads", std::to_string(r.spec.threads));
  num("seed", std::to_string(r.spec.seed));
  str("service", r.spec.service ? "engine" : "inprocess");
  str("cache", r.spec.service && r.spec.plan_cache ? "on" : "off");
  num("cache_hit_rate", FormatDouble(r.cache_hit_rate, 6));
  num("expected_cost", FormatDouble(r.expected_cost, 6));
  num("expected_priced_cost", FormatDouble(r.expected_priced_cost, 6));
  num("expected_reach_queries", FormatDouble(r.expected_reach_queries, 6));
  num("expected_rounds", FormatDouble(r.expected_rounds, 6));
  num("accuracy", FormatDouble(r.accuracy, 6));
  num("max_cost", std::to_string(r.max_cost));
  num("median", std::to_string(r.median));
  num("p90", std::to_string(r.p90));
  num("p99", std::to_string(r.p99));
  json += "\"wall_ms\":" + FormatDouble(r.wall_ms, 3) + "}";
  return json;
}

std::vector<std::string> ScenarioCsvHeader() {
  return {"label",         "dataset",       "nodes",
          "scale",         "distribution",  "policy",
          "policy_name",   "cost_model",    "reach",
          "oracle",
          "reps",          "samples",       "threads",
          "seed",          "service",       "cache",
          "cache_hit_rate",
          "expected_cost", "expected_priced_cost",
          "expected_reach_queries",         "expected_rounds",
          "accuracy",      "max_cost",      "median",
          "p90",           "p99",           "wall_ms"};
}

std::vector<std::string> ScenarioCsvRow(const ScenarioResult& r) {
  return {r.spec.label,
          r.spec.dataset,
          std::to_string(r.nodes),
          FormatDouble(r.spec.scale, 4),
          r.spec.distribution,
          r.spec.policy,
          r.policy_name,
          r.spec.cost_model,
          r.spec.reach,
          r.spec.oracle,
          std::to_string(r.spec.reps),
          std::to_string(r.spec.samples),
          std::to_string(r.spec.threads),
          std::to_string(r.spec.seed),
          r.spec.service ? "engine" : "inprocess",
          r.spec.service && r.spec.plan_cache ? "on" : "off",
          FormatDouble(r.cache_hit_rate, 6),
          FormatDouble(r.expected_cost, 6),
          FormatDouble(r.expected_priced_cost, 6),
          FormatDouble(r.expected_reach_queries, 6),
          FormatDouble(r.expected_rounds, 6),
          FormatDouble(r.accuracy, 6),
          std::to_string(r.max_cost),
          std::to_string(r.median),
          std::to_string(r.p90),
          std::to_string(r.p99),
          FormatDouble(r.wall_ms, 3)};
}

namespace {

/// Extracts the string value of `key` from one emitted JSON line. The lines
/// come from ScenarioResultToJson, so a flat scan for the quoted key is
/// enough (labels never contain escaped quotes).
StatusOr<std::string> JsonField(const std::string& line,
                                const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    return Status::InvalidArgument("baseline line lacks key '" + key + "'");
  }
  std::size_t begin = at + needle.size();
  std::size_t end;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  if (end == std::string::npos) {
    return Status::InvalidArgument("malformed baseline line: " + line);
  }
  return line.substr(begin, end - begin);
}

StatusOr<double> JsonNumber(const std::string& line, const std::string& key) {
  AIGS_ASSIGN_OR_RETURN(const std::string text, JsonField(line, key));
  return ParseDouble(text);
}

/// The deterministic cost aggregates the guard compares (wall time and
/// quantile fields are excluded on purpose).
constexpr const char* kGuardedMetrics[] = {
    "expected_cost", "expected_priced_cost", "expected_reach_queries",
    "expected_rounds", "accuracy", "max_cost"};

double MetricOf(const ScenarioResult& r, const std::string& metric) {
  if (metric == "expected_cost") return r.expected_cost;
  if (metric == "expected_priced_cost") return r.expected_priced_cost;
  if (metric == "expected_reach_queries") return r.expected_reach_queries;
  if (metric == "expected_rounds") return r.expected_rounds;
  if (metric == "accuracy") return r.accuracy;
  return static_cast<double>(r.max_cost);
}

bool MetricsClose(double fresh, double baseline) {
  // Policy arithmetic is exact-integer, but synthetic weight generation
  // goes through libm (pow/exp), which may differ in the last ulp across
  // hosts. 0.01% relative slack absorbs that; a changed question sequence
  // moves expected cost by ≥ ~0.1% at smoke scale, so real drift still
  // trips the guard.
  const double tolerance = 1e-4 * std::max({1.0, std::fabs(fresh),
                                            std::fabs(baseline)});
  return std::fabs(fresh - baseline) <= tolerance;
}

}  // namespace

Status CheckAgainstBaseline(const std::vector<ScenarioResult>& results,
                            const std::string& baseline_path,
                            bool require_complete) {
  std::ifstream in(baseline_path);
  if (!in) {
    return Status::NotFound("cannot read baseline file " + baseline_path);
  }
  std::map<std::string, std::string> baseline_lines;  // label -> JSON line
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    AIGS_ASSIGN_OR_RETURN(const std::string label, JsonField(line, "label"));
    baseline_lines[label] = line;
  }

  std::string failures;
  const auto add_failure = [&failures](const std::string& what) {
    failures += (failures.empty() ? "" : "\n  ") + what;
  };
  std::set<std::string> seen;
  std::size_t compared = 0;
  for (const ScenarioResult& r : results) {
    const std::string& label = r.spec.label;
    seen.insert(label);
    const auto it = baseline_lines.find(label);
    if (it == baseline_lines.end()) {
      // A label the baseline has never seen: in a complete run that means
      // the baseline needs regenerating; a spot check just skips it.
      if (require_complete) {
        add_failure("'" + label + "' missing from baseline (new scenario?)");
      }
      continue;
    }
    ++compared;
    for (const char* metric : kGuardedMetrics) {
      AIGS_ASSIGN_OR_RETURN(const double expected,
                            JsonNumber(it->second, metric));
      const double fresh = MetricOf(r, metric);
      if (!MetricsClose(fresh, expected)) {
        add_failure("'" + label + "' " + metric + ": got " +
                    FormatDouble(fresh, 6) + ", baseline " +
                    FormatDouble(expected, 6));
      }
    }
  }
  if (require_complete) {
    for (const auto& [label, unused] : baseline_lines) {
      if (seen.find(label) == seen.end()) {
        add_failure("baseline scenario '" + label + "' was not run");
      }
    }
  }
  if (!failures.empty()) {
    return Status::Internal("baseline drift vs " + baseline_path + ":\n  " +
                            failures);
  }
  if (compared == 0) {
    return Status::InvalidArgument(
        "no run label appears in baseline " + baseline_path +
        " — nothing was compared");
  }
  return Status::OK();
}

}  // namespace aigs::bench
