// Batched greedy search (§III-E extension): ask k reachability questions per
// interaction round to cut crowd latency. Question selection iterates the
// middle-point rule: the i-th question of a round is the middle point of the
// candidate region left after assuming "no" to the round's earlier picks —
// a greedy flavor of the k-partition scheme [Kundu–Misra] the paper points
// at for trees. All k answers arrive together and are intersected into the
// candidate set.
//
// The paper sketches provable guarantees for trees only (general DAGs are
// left open); this implementation runs on any hierarchy and always includes
// the true middle point as the round's first question, so every round makes
// strict progress.
//
// Selection backends (both ask identical question batches):
//  * kSplitIndex (default): the round simulation runs on a SplitWeightIndex
//    scratch — O(alive · log n) per pick on trees, O(alive · n/64) on DAGs —
//    and each arriving answer is folded in as one bitset intersection /
//    Euler-range operation instead of a per-candidate reachability loop.
//  * kBfsRescan: the original per-pick BFS scan over a copied candidate set
//    (O(k·n·m) per round), kept as the equivalence reference.
#ifndef AIGS_CORE_BATCHED_GREEDY_H_
#define AIGS_CORE_BATCHED_GREEDY_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/selection_backend.h"
#include "core/split_weight_index.h"
#include "prob/distribution.h"

namespace aigs {

/// Tuning knobs for the batched greedy policy.
struct BatchedGreedyOptions {
  /// Questions per interaction round (k = 1 degenerates to the sequential
  /// greedy policy).
  std::size_t questions_per_round = 4;
  /// Selection backend; kBfsRescan reproduces the seed's runtime behavior.
  SelectionBackend backend = SelectionBackend::kSplitIndex;
};

/// Greedy policy asking k questions per round.
class BatchedGreedyPolicy : public Policy {
 public:
  BatchedGreedyPolicy(const Hierarchy& hierarchy, const Distribution& dist,
                      BatchedGreedyOptions options = {});

  std::string name() const override { return "BatchedGreedy"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  std::vector<Weight> weights_;
  BatchedGreedyOptions options_;
  // Shared immutable selection base; sessions are O(1) overlays over it
  // (null for the BFS reference backend).
  std::unique_ptr<SplitWeightBase> base_;
};

}  // namespace aigs

#endif  // AIGS_CORE_BATCHED_GREEDY_H_
