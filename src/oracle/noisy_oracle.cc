#include "oracle/noisy_oracle.h"

namespace aigs {

bool PersistentNoisyOracle::Reach(NodeId q) {
  std::uint8_t& decision = decisions_[q];
  if (decision == 0) {
    decision = rng_.Bernoulli(flip_prob_) ? 1 : 2;
  }
  const bool truth = inner_->Reach(q);
  return decision == 1 ? !truth : truth;
}

int NoisyOracle::Choice(std::span<const NodeId> choices) {
  const int truth = inner_->Choice(choices);
  if (!rng_.Bernoulli(flip_prob_)) {
    return truth;
  }
  // Answer space: one index per choice plus "none" (-1); pick a wrong one
  // uniformly.
  const auto options = static_cast<std::uint64_t>(choices.size());  // != truth
  std::uint64_t pick = rng_.UniformInt(options);
  // Map [0, options) onto the answer space with `truth` removed.
  const auto truth_slot =
      truth < 0 ? options : static_cast<std::uint64_t>(truth);
  if (pick >= truth_slot) {
    ++pick;
  }
  return pick == options ? -1 : static_cast<int>(pick);
}

}  // namespace aigs
