#include "service/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/crc32.h"
#include "util/string_util.h"

namespace aigs {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

void PutU32(std::uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// write(2) until the whole buffer lands (short writes and EINTR retried).
Status WriteFully(int fd, std::string_view data, const std::string& path) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("wal write to", path);
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::OK();
}

}  // namespace

StatusOr<WalSyncOptions> ParseFsyncPolicy(std::string_view text) {
  const std::string_view spec = Trim(text);
  WalSyncOptions sync;
  if (spec == "always") {
    sync.policy = FsyncPolicy::kAlways;
    return sync;
  }
  if (spec == "none") {
    sync.policy = FsyncPolicy::kNone;
    return sync;
  }
  if (spec.starts_with("interval:")) {
    sync.policy = FsyncPolicy::kInterval;
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t n,
                          ParseUint64(spec.substr(9)));
    if (n == 0) {
      return Status::InvalidArgument("fsync interval must be >= 1");
    }
    sync.interval = static_cast<std::size_t>(n);
    return sync;
  }
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(spec) +
                                 "' (always, interval:N, none)");
}

std::string FormatFsyncPolicy(const WalSyncOptions& sync) {
  switch (sync.policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval:" + std::to_string(sync.interval);
    case FsyncPolicy::kNone:
      return "none";
  }
  return "?";
}

WalWriter::WalWriter(std::string path, int fd, std::uint64_t bytes,
                     WalSyncOptions sync)
    : path_(std::move(path)), sync_(sync), fd_(fd), bytes_(bytes) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Best-effort flush so a graceful destruction loses nothing even under
    // kInterval/kNone; a crash is the WAL's job, not the destructor's.
    ::fsync(fd_);
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(std::string path,
                                                     WalSyncOptions sync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Errno("cannot open wal", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("cannot stat wal", path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(path), fd, static_cast<std::uint64_t>(st.st_size), sync));
}

Status WalWriter::Append(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32(static_cast<std::uint32_t>(payload.size()), &frame);
  PutU32(Crc32(payload), &frame);
  frame += payload;

  std::unique_lock<std::mutex> lock(mu_);
  AIGS_RETURN_NOT_OK(WriteFully(fd_, frame, path_));
  bytes_ += frame.size();
  const std::uint64_t my_seq = ++appended_records_;
  switch (sync_.policy) {
    case FsyncPolicy::kNone:
      return Status::OK();
    case FsyncPolicy::kInterval:
      if (appended_records_ - synced_records_ < sync_.interval) {
        return Status::OK();
      }
      break;
    case FsyncPolicy::kAlways:
      break;
  }
  return SyncLocked(lock, my_seq);
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  return SyncLocked(lock, appended_records_);
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>& lock,
                             std::uint64_t target) {
  for (;;) {
    if (synced_records_ >= target) {
      return Status::OK();  // another appender's fsync covered our record
    }
    if (!sync_in_flight_) {
      break;
    }
    sync_cv_.wait(lock);
  }
  sync_in_flight_ = true;
  // The fsync covers every record already written; note the watermark
  // before dropping the mutex (appends during the fsync are NOT covered).
  const std::uint64_t covered = appended_records_;
  lock.unlock();
  const int rc = ::fsync(fd_);
  lock.lock();
  sync_in_flight_ = false;
  if (rc == 0 && synced_records_ < covered) {
    synced_records_ = covered;
    ++syncs_;
  }
  sync_cv_.notify_all();
  if (rc != 0) {
    return Errno("wal fsync of", path_);
  }
  return synced_records_ >= target
             ? Status::OK()
             : SyncLocked(lock, target);  // raced an append mid-fsync
}

std::uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t WalWriter::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_records_;
}

std::uint64_t WalWriter::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

StatusOr<WalScan> ReadWal(const std::string& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (::access(path.c_str(), F_OK) != 0) {
      return scan;  // no file, empty log
    }
    return Status::IOError("cannot read wal '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("cannot read wal '" + path + "'");
  }
  const std::string data = std::move(buffer).str();

  std::size_t pos = 0;
  while (data.size() - pos >= kFrameHeader) {
    const std::size_t length = GetU32(data.data() + pos);
    const std::uint32_t crc = GetU32(data.data() + pos + 4);
    if (length > data.size() - pos - kFrameHeader) {
      break;  // frame runs past EOF: torn final write
    }
    const std::string_view payload(data.data() + pos + kFrameHeader, length);
    if (Crc32(payload) != crc) {
      break;  // bit rot or a torn rewrite; nothing behind it is framed
    }
    scan.records.emplace_back(payload);
    pos += kFrameHeader + length;
  }
  scan.valid_bytes = pos;
  scan.torn_bytes = data.size() - pos;
  return scan;
}

}  // namespace aigs
