// Shared backend selector for the middle-point policies (GreedyNaive,
// BatchedGreedy): either the incremental SplitWeightIndex selection layer
// or the original per-candidate BFS rescans kept as a reference oracle.
#ifndef AIGS_CORE_SELECTION_BACKEND_H_
#define AIGS_CORE_SELECTION_BACKEND_H_

namespace aigs {

/// How a middle-point policy evaluates w(R(v) ∩ C) during selection.
enum class SelectionBackend {
  /// Incremental SplitWeightIndex (Fenwick / closure-popcount).
  kSplitIndex,
  /// Per-candidate BFS rescans (the paper's naive baseline).
  kBfsRescan,
};

}  // namespace aigs

#endif  // AIGS_CORE_SELECTION_BACKEND_H_
