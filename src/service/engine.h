// Engine — the single public entry point to the interactive-graph-search
// system (the service form of FrameworkIGS, Algorithm 1).
//
// An Engine owns the current CatalogSnapshot (hot-swappable via Publish —
// each publish bumps the epoch) and a SessionManager of ID-addressed
// concurrent sessions. The request loop a front end drives is:
//
//     id     = engine.Open("greedy")          // O(1) on the prebuilt snapshot
//     query  = engine.Ask(id)                 // the pending question
//     status = engine.Answer(id, SessionAnswer::Reach(true))
//     ...repeat until Ask returns kDone...
//     blob   = engine.Save(id)                // suspend across restarts
//     id2    = engine.Resume(blob)            // exact replay-based restore
//
// Epoch lifecycle (PR 5, backgrounded in PR 6). A publish no longer
// strands the old epoch:
//
//  * WARM SEED — before the fresh plan trie serves cold, the hottest
//    prefixes of the outgoing trie are harvested and replayed against the
//    new snapshot's planners, pre-seeding the new trie so the
//    common-prefix Ask path stays a cache hit across the swap.
//  * MIGRATE SWEEP — idle sessions still bound to older epochs are
//    migrated onto the new snapshot by divergence-tolerant transcript
//    replay: steps the new planner reproduces replay exactly; steps it
//    would not have asked are folded in through the policies' observed-
//    step appliers (SearchSession::TryApplyObserved) and flagged, bounded
//    by a configurable divergence budget. Sessions that cannot migrate
//    (budget exceeded, client mid-question) stay safely on their old
//    epoch.
//
// By default BOTH run on a background EpochDrainWorker: Publish itself is
// a constant-time pointer swap (O(1) in the session count — the SLO the
// epoch_lifecycle bench guards) and the drain proceeds in bounded batches
// concurrent with live traffic. Sessions touched by a live request are
// skipped and retried next tick; a second Publish mid-drain rolls the
// drain forward to the newest epoch. DrainOptions{background=false}
// restores the PR-5 inline behavior (deterministic single-threaded
// drains for evaluators and tests).
//
// Every operation is thread-safe and returns Status instead of aborting: a
// client that answers the wrong kind of question, an unknown ID, or a
// stale/crafted saved blob gets a typed error, never a process death.
#ifndef AIGS_SERVICE_ENGINE_H_
#define AIGS_SERVICE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy.h"
#include "service/catalog_snapshot.h"
#include "service/durable_store.h"
#include "service/plan_cache.h"
#include "service/session_codec.h"
#include "service/session_manager.h"
#include "util/status.h"

namespace aigs {

/// Client answer to a pending Query — the write half of the Ask/Answer
/// protocol. The kind must match the pending question's kind.
struct SessionAnswer {
  Query::Kind kind = Query::Kind::kReach;
  bool yes = false;                 // kReach
  std::vector<bool> batch;          // kReachBatch, aligned with the batch
  int choice = -1;                  // kChoice index, -1 = "none of these"

  static SessionAnswer Reach(bool yes) {
    SessionAnswer a;
    a.kind = Query::Kind::kReach;
    a.yes = yes;
    return a;
  }
  static SessionAnswer Batch(std::vector<bool> answers) {
    SessionAnswer a;
    a.kind = Query::Kind::kReachBatch;
    a.batch = std::move(answers);
    return a;
  }
  static SessionAnswer Choice(int index) {
    SessionAnswer a;
    a.kind = Query::Kind::kChoice;
    a.choice = index;
    return a;
  }
};

/// Cross-epoch migration knobs.
struct MigrationOptions {
  /// Maximum divergent steps tolerated per migrated transcript — recorded
  /// questions the target epoch's planner would not have asked, folded in
  /// via TryApplyObserved. 0 = exact replays only.
  std::size_t max_divergence = 64;
  /// Run the idle-session migration sweep automatically after every
  /// Publish, so old snapshots drain instead of being pinned forever by
  /// long-lived sessions.
  bool sweep_on_publish = true;
};

/// Background drain pipeline knobs (the publish→warm→sweep pipeline).
struct DrainOptions {
  /// Run the warm seed and the migration sweep on a background worker so
  /// Publish returns after the O(1) snapshot swap. When false both run
  /// inline on the publishing thread (the PR-5 behavior) — deterministic,
  /// single-threaded, and linear in the session count.
  bool background = true;
  /// Sessions migrated (or hot prefixes replayed) per batch; between
  /// batches the worker checks for shutdown and newer publishes.
  std::size_t batch_size = 256;
  /// Soft cap on continuous batch time per tick; when it elapses the
  /// worker yields before the next batch so a drain never monopolizes its
  /// pool between cancellation points.
  std::uint32_t tick_budget_ms = 5;
  /// Worker threads migrating sessions within one sweep batch.
  std::size_t max_concurrency = 2;
};

/// Where the background drain pipeline currently is.
enum class DrainPhase : std::uint8_t {
  kIdle = 0,      ///< no drain in flight
  kWarming = 1,   ///< replaying hot prefixes into the fresh plan trie
  kSweeping = 2,  ///< migrating idle old-epoch sessions in batches
};

/// Lowercase phase name for logs and the serve REPL.
const char* DrainPhaseName(DrainPhase phase);

/// Point-in-time progress of the background drain pipeline.
struct DrainStats {
  /// True when the engine runs a background drain worker at all.
  bool background = false;
  DrainPhase phase = DrainPhase::kIdle;
  /// Epoch the in-flight (or last) drain targets; 0 before any drain.
  std::uint64_t target_epoch = 0;
  /// Old-epoch sessions the in-flight sweep still has to visit.
  std::size_t sessions_remaining = 0;
  /// Warm-seed progress of the in-flight (or last) drain: prefixes
  /// harvested and prefixes fully replayed so far.
  std::size_t warm_total = 0;
  std::size_t warm_seeded = 0;
  /// Cumulative counters across all drains.
  std::uint64_t batches = 0;       ///< sweep batches run
  std::size_t last_batch = 0;      ///< sessions visited by the last batch
  std::uint64_t migrated = 0;      ///< sessions migrated by sweeps
  std::uint64_t failed = 0;        ///< sessions whose replay failed
  std::uint64_t skipped_pinned = 0;  ///< mid-question; left on old epoch
  std::uint64_t retried_busy = 0;  ///< lock-busy; retried a later tick
  std::uint64_t expired = 0;       ///< TTL-evicted between capture and visit
  std::uint64_t drains = 0;        ///< drain jobs enqueued
  std::uint64_t completed = 0;     ///< drain jobs fully finished
  std::uint64_t rolled_forward = 0;  ///< jobs superseded by a newer publish
};

struct EngineOptions {
  SessionManagerOptions sessions;
  /// The per-epoch question-plan trie behind Ask (including the
  /// warm-publish seeding knobs). Enabled by default: with every policy a
  /// pure planner, cached and uncached engines emit bit-identical
  /// transcripts, so the cache is purely a throughput knob.
  PlanCacheOptions plan_cache;
  MigrationOptions migration;
  DrainOptions drain;
};

/// Outcome of one cross-epoch migration (Engine::Migrate).
struct MigrateResult {
  SessionId id = 0;
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;
  std::size_t steps = 0;
  /// Recorded questions the new epoch's planner would not have asked,
  /// folded in via the observed-step appliers (exact count; the same steps
  /// carry the `d` flag in a subsequent Save).
  std::size_t divergent_steps = 0;
};

/// Outcome of one idle-session migration sweep.
struct MigrateSweepStats {
  std::size_t scanned = 0;
  std::size_t migrated = 0;
  std::size_t already_current = 0;
  /// Sessions skipped because another operation held them or a client owes
  /// an answer to an already-shown question (migrating would change the
  /// question under the client).
  std::size_t skipped_busy = 0;
  std::size_t failed = 0;
  /// Sessions that expired (TTL) between the sweep's capture and its visit
  /// — neither migrated nor failed, just gone (never resurrected).
  std::size_t expired = 0;
  /// Total divergent steps across the migrated sessions' transcripts.
  std::size_t divergent_steps = 0;
};

/// Outcome of one Engine::Recover (also kept in EngineStats as the last
/// recovery summary the serve REPL prints).
struct RecoveryStats {
  /// Sessions the loaded checkpoint held before the WAL tail was applied.
  std::size_t checkpoint_sessions = 0;
  /// Valid WAL tail records applied on top of the checkpoint.
  std::uint64_t wal_records = 0;
  /// Sessions serving again, with their original ids and transcripts.
  std::size_t recovered = 0;
  /// Sessions found durable but idle past the TTL — counted and dropped,
  /// never resurrected (SessionManager::Peek semantics).
  std::size_t expired_dropped = 0;
  /// Sessions whose transcript no longer replays (catalog changed beyond
  /// the migration contract, or a corrupt blob) — dropped, never fatal.
  std::size_t replay_failures = 0;
  /// Recovered sessions that needed divergence-tolerant replay (their
  /// catalog fingerprint no longer matches the current epoch).
  std::size_t divergent_sessions = 0;
  /// WAL segments whose tail was torn by the crash (CRC-discarded).
  std::uint64_t torn_tails = 0;
  std::uint64_t torn_bytes = 0;
  /// CRC-valid records the scan could not use (decode failures, orphaned
  /// steps, index gaps) — dropped individually, never fatal.
  std::uint64_t malformed_records = 0;
  std::uint64_t invalid_checkpoints = 0;
};

/// Per-operation request counters: how much traffic the engine has served,
/// not just how many sessions are live. Every public session operation
/// counts itself exactly once; a non-OK return additionally lands in the
/// rejected-by-status breakdown. The network front end's Stats op and the
/// serve REPL's `stats` command both report these.
struct OpStats {
  std::uint64_t opens = 0;
  std::uint64_t asks = 0;
  std::uint64_t answers = 0;
  std::uint64_t saves = 0;
  std::uint64_t resumes = 0;
  std::uint64_t migrates = 0;
  std::uint64_t closes = 0;
  /// Requests that returned a non-OK Status, total and keyed by StatusCode
  /// (index = static_cast<int>(code); kOk stays zero).
  std::uint64_t rejected = 0;
  std::array<std::uint64_t, 8> rejected_by_code{};

  std::uint64_t total() const {
    return opens + asks + answers + saves + resumes + migrates + closes;
  }
};

/// Point-in-time operational counters (the serve REPL's `stats` command).
struct EngineStats {
  std::uint64_t epoch = 0;
  std::size_t live_sessions = 0;
  /// Live sessions keyed by their current epoch (old epochs drain as their
  /// sessions finish or migrate after a hot swap).
  std::map<std::uint64_t, std::size_t> sessions_by_epoch;
  /// Plan-trie counters per retained epoch: the current epoch's trie and —
  /// while any warm-seed source is still held — the previous epoch's.
  /// Each carries the seeded/organic hit split.
  bool plan_cache_enabled = false;
  PlanCacheStats plan_cache;  // current epoch (zeros before first Publish)
  std::map<std::uint64_t, PlanCacheStats> plan_cache_by_epoch;
  /// Per-op request traffic (opens/asks/answers/... + rejected-by-status).
  OpStats ops;
  /// Cumulative migration counters (explicit Migrate + publish sweeps).
  std::uint64_t sessions_migrated = 0;
  std::uint64_t migration_failures = 0;
  /// Background drain pipeline progress (zeros when background is off).
  DrainStats drain;
  /// Durable session store state (durable=false ⇒ the rest is zeros).
  bool durable = false;
  DurableStoreStats durability;
  /// Cumulative recovery counters plus the last Recover's full summary.
  std::uint64_t recovered = 0;
  std::uint64_t expired_dropped = 0;
  bool has_recovery = false;
  RecoveryStats last_recovery;
};

class EpochDrainWorker;

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Stops the background drain worker (abandoning any in-flight drain —
  /// undrained sessions are simply still on their old epoch) before the
  /// session store and snapshots go away.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- snapshot lifecycle ---------------------------------------------------

  /// Builds a snapshot from `config` at the next epoch and makes it
  /// current. The follow-up work — warm-seeding the new plan trie from the
  /// old epoch's hottest prefixes and migrating idle sessions over — runs
  /// on the background drain worker (or inline, per DrainOptions), so the
  /// call itself is O(1) in the session count past the snapshot build.
  /// Existing busy sessions keep the snapshot they are on; traffic never
  /// pauses.
  StatusOr<std::shared_ptr<const CatalogSnapshot>> Publish(
      CatalogConfig config);

  /// Blocks until no drain job is pending or running (immediately when
  /// background draining is off). Tests and benchmarks use this to make
  /// the asynchronous pipeline deterministic; a server never needs it.
  void WaitForDrain();

  /// Progress of the background drain pipeline (all zeros with `background`
  /// false when draining runs inline).
  DrainStats DrainProgress() const;

  /// The current snapshot (null before the first Publish).
  std::shared_ptr<const CatalogSnapshot> snapshot() const;

  /// The current epoch (0 before the first Publish).
  std::uint64_t epoch() const;

  // ---- session operations ---------------------------------------------------

  /// Opens a session for one of the snapshot's prebuilt policy specs.
  /// O(1): the heavy state lives in the snapshot. `proposed_id` = 0 lets
  /// the engine assign the next id; a nonzero value requests that exact id
  /// (FailedPrecondition when already live) — the seam the consistent-hash
  /// ShardRouter uses so a session's id alone determines which backend
  /// owns it.
  StatusOr<SessionId> Open(const std::string& policy_spec,
                           SessionId proposed_id = 0);

  /// The pending question (or kDone carrying the identified target).
  /// Idempotent; refreshes the session's TTL. Consults the session
  /// epoch's plan trie first — a warm common-prefix Ask is one id probe,
  /// never a planner run — and falls back to the session's pure planner on
  /// a miss (populating the trie for every later session at the same
  /// prefix).
  StatusOr<Query> Ask(SessionId id);

  /// Applies an answer to the pending question. InvalidArgument when the
  /// answer kind (or shape) does not match the pending query,
  /// FailedPrecondition when the search already finished or a migration
  /// invalidated the shown question (re-Ask first).
  Status Answer(SessionId id, const SessionAnswer& answer);

  /// Serializes the session as its answer transcript (SessionCodec v2:
  /// catalog + hierarchy fingerprints, per-step divergence flags).
  StatusOr<std::string> Save(SessionId id);

  /// Restores a saved session by exact replay against the *current*
  /// snapshot: requires a matching catalog fingerprint and verifies each
  /// regenerated question equals the recorded one (transcript equality —
  /// guaranteed by policy determinism, Definition 6). Returns the new ID.
  /// For a blob recorded on an older epoch, use Migrate. `proposed_id`
  /// behaves as in Open.
  StatusOr<SessionId> Resume(const std::string& serialized,
                             SessionId proposed_id = 0);

  // ---- cross-epoch migration ------------------------------------------------

  /// Migrates a LIVE session onto the current snapshot in place (same ID):
  /// divergence-tolerant replay of its transcript, bounded by the engine's
  /// divergence budget. Requires the blob's hierarchy to match (weights may
  /// differ — that is the point). On failure the session is untouched on
  /// its old epoch. A client that had been shown a question must re-Ask
  /// (the next Answer without one is rejected).
  StatusOr<MigrateResult> Migrate(SessionId id);

  /// Migrates a SAVED session onto the current snapshot, tolerating a
  /// changed distribution (unlike Resume's exact-fingerprint contract).
  /// The blob must carry the hierarchy fingerprint (SessionCodec v2) and
  /// match the current hierarchy. Returns the new ID plus divergence
  /// counts. `proposed_id` behaves as in Open.
  StatusOr<MigrateResult> Migrate(const std::string& serialized,
                                  SessionId proposed_id = 0);

  /// Migrates every idle old-epoch session onto the current snapshot (the
  /// sweep Publish runs automatically when sweep_on_publish is set).
  /// Sessions that are busy, mid-question, or fail to replay stay on their
  /// old epoch.
  MigrateSweepStats MigrateIdleSessions();

  /// Re-seeds the CURRENT epoch's trie from the previous epoch's hottest
  /// prefixes (the publish-time warm path, callable on demand — the serve
  /// REPL's `warm` command). Returns the number of prefixes replayed.
  StatusOr<std::size_t> Warm();

  /// Closes and discards a session.
  Status Close(SessionId id);

  // ---- durability ------------------------------------------------------------

  /// Attaches a durable session store to a FRESH directory and writes an
  /// initial checkpoint of whatever is live. From here every acked
  /// Open/Answer/Close appends a WAL record before it returns (per the
  /// fsync policy's durability promise), and crossing
  /// DurabilityOptions::checkpoint_every triggers a checkpoint off the hot
  /// path. FailedPrecondition when the directory already holds durable
  /// state — that state must be Recover()ed (or deleted), never silently
  /// shadowed. Configure durability before serving traffic; the append
  /// hooks read the store pointer without the snapshot mutex.
  Status EnableDurability(DurabilityOptions options);

  /// Rebuilds sessions from `options.dir` — newest valid checkpoint plus
  /// the WAL tail (torn trailing records are CRC-discarded, never fatal) —
  /// then attaches the store and resumes logging. Every acked session
  /// comes back under its ORIGINAL id with a bit-identical transcript
  /// (exact replay when its catalog fingerprint matches the current
  /// snapshot, divergence-tolerant replay within the migration budget when
  /// only the weights changed). Sessions idle past the session TTL are
  /// counted and dropped. Requires a published snapshot to replay against.
  StatusOr<RecoveryStats> Recover(DurabilityOptions options);

  /// Writes a checkpoint now: rotates the WAL, snapshots every live
  /// session via its Save blob, commits atomically, and truncates the old
  /// log. Safe under concurrent traffic (records landing in the new
  /// segment replay idempotently by step index).
  Status Checkpoint();

  /// Fsyncs the WAL regardless of policy — the graceful-shutdown flush
  /// (serve runs it on SIGTERM). No-op when durability is off.
  Status FlushDurable();

  bool durable() const {
    return durable_.load(std::memory_order_acquire) != nullptr;
  }

  SessionManager& sessions() { return sessions_; }

  /// The current epoch's plan cache (null when disabled or before the first
  /// Publish). Old epochs' caches live on in their sessions until those
  /// drain or migrate.
  std::shared_ptr<PlanCache> plan_cache() const;

  /// Operational counters: epoch, session counts (total and per epoch),
  /// per-epoch plan-trie hit/miss/seeded numbers, migration totals.
  EngineStats Stats() const;

 private:
  /// How ReplayTranscript treats a step the planner does not reproduce.
  enum class ReplayMode {
    kExact,     // any divergence is an error (Resume's contract)
    kTolerant,  // fold divergent steps via TryApplyObserved, up to budget
  };

  /// Index into op_counts_ — one slot per public session operation.
  enum OpKind {
    kOpOpen = 0,
    kOpAsk,
    kOpAnswer,
    kOpSave,
    kOpResume,
    kOpMigrate,
    kOpClose,
    kNumOps,
  };

  /// Counts one request against `op`, plus the rejection breakdown when
  /// `status` is non-OK.
  void CountOp(OpKind op, const Status& status);

  /// Counted-wrapper plumbing: the public methods above tally OpStats and
  /// delegate to these bodies.
  StatusOr<SessionId> OpenImpl(const std::string& policy_spec,
                               SessionId proposed_id);
  StatusOr<Query> AskImpl(SessionId id);
  Status AnswerImpl(SessionId id, const SessionAnswer& answer);
  StatusOr<std::string> SaveImpl(SessionId id);
  StatusOr<SessionId> ResumeImpl(const std::string& serialized,
                                 SessionId proposed_id);
  StatusOr<MigrateResult> MigrateImpl(SessionId id);
  StatusOr<MigrateResult> MigrateBlobImpl(const std::string& serialized,
                                          SessionId proposed_id);
  Status CloseImpl(SessionId id);

  /// Inserts a freshly built session under `proposed_id` (or the next
  /// engine-assigned id when 0). On failure the session is not stored.
  StatusOr<SessionId> InsertSession(std::shared_ptr<ServiceSession> session,
                                    SessionId proposed_id);

  StatusOr<std::shared_ptr<ServiceSession>> FindSession(SessionId id);

  /// Answer's body; the caller holds `session.mutex`. On success the step
  /// is applied, logged (when durable), and acked by the OK return.
  Status AnswerLocked(SessionId id, ServiceSession& session,
                      const SessionAnswer& answer);

  /// Rebuilds one recovered session against the current snapshot: exact
  /// replay on a fingerprint match, divergence-tolerant (Migrate-style)
  /// otherwise.
  StatusOr<std::shared_ptr<ServiceSession>> RecoverSession(
      const SerializedSession& saved, std::size_t* divergent_steps);

  /// Checkpoint body; the caller holds `checkpoint_mutex_`.
  Status CheckpointLocked(DurableStore& store);

  /// Runs a checkpoint when the auto threshold is crossed and no other
  /// checkpoint is in flight. Called off the hot path (no locks held).
  void MaybeAutoCheckpoint();

  /// Atomically reads the current (snapshot, plan cache) pair.
  void CurrentEpochState(std::shared_ptr<const CatalogSnapshot>* snap,
                         std::shared_ptr<PlanCache>* cache) const;

  /// Builds a fresh ServiceSession on `snap` for `policy_spec` — the one
  /// place the snapshot/cache pairing and the plan-key seeding convention
  /// live (Open, Resume, and Migrate all construct through here).
  StatusOr<std::shared_ptr<ServiceSession>> BuildSession(
      std::shared_ptr<const CatalogSnapshot> snap,
      std::shared_ptr<PlanCache> cache, const std::string& policy_spec);

  /// The session's pending question: the memoized one if Ask already
  /// resolved it, else a trie hit, else the pure planner (whose answer is
  /// then inserted for every later session at the same prefix). Caller
  /// holds the session mutex.
  Query ResolvePending(ServiceSession& session);

  /// Replays `steps` into the freshly built `session` (search state,
  /// transcript, rolling plan key, trie population). In kTolerant mode
  /// divergent steps are folded via TryApplyObserved and flagged; more
  /// than `max_divergence` of them fails the replay. `session` must be
  /// private to the caller (no lock taken).
  Status ReplayTranscript(ServiceSession& session,
                          std::vector<TranscriptStep> steps, ReplayMode mode,
                          std::size_t max_divergence,
                          std::size_t* divergent_steps);

  /// Decodes, validates, and replays a saved blob for Migrate(serialized).
  StatusOr<std::shared_ptr<ServiceSession>> MigrateDecoded(
      const SerializedSession& saved, std::size_t* divergent_steps);

  /// In-place migration body; the caller holds `session.mutex`.
  StatusOr<MigrateResult> MigrateLocked(SessionId id,
                                        ServiceSession& session);

  /// Replays up to `budget` hot prefixes of `source` against `snap`'s
  /// planners, inserting the plans into `target` as seeded entries.
  /// Returns the number of prefixes replayed (skipping unreplayable ones).
  std::size_t WarmSeed(const CatalogSnapshot& snap, PlanCache& target,
                       const PlanCache& source, std::size_t budget);

  /// Replays ONE hot prefix (the batch unit of the background warm phase).
  /// True when the full prefix replayed onto `snap`'s planners.
  bool WarmSeedPrefix(const CatalogSnapshot& snap, PlanCache& target,
                      const HotPrefix& prefix);

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const CatalogSnapshot> snapshot_;
  std::shared_ptr<PlanCache> plan_cache_;
  /// The previous epoch's (snapshot, trie) pair, retained as the warm-seed
  /// source until the next publish replaces it.
  std::shared_ptr<const CatalogSnapshot> previous_snapshot_;
  std::shared_ptr<PlanCache> previous_plan_cache_;
  std::uint64_t next_epoch_ = 1;
  EngineOptions options_;
  SessionManager sessions_;

  std::atomic<std::uint64_t> sessions_migrated_{0};
  std::atomic<std::uint64_t> migration_failures_{0};

  /// Per-op traffic counters (OpStats), indexed by OpKind, plus the
  /// rejected-by-StatusCode breakdown.
  std::array<std::atomic<std::uint64_t>, kNumOps> op_counts_{};
  std::array<std::atomic<std::uint64_t>, 8> rejected_by_code_{};

  /// Durable store lifecycle: `durable_owner_` (guarded by
  /// `durable_mutex_`, set once by EnableDurability/Recover) owns the
  /// store; `durable_` mirrors the raw pointer for lock-free reads on the
  /// Answer hot path. `checkpoint_mutex_` serializes checkpoints.
  mutable std::mutex durable_mutex_;
  std::unique_ptr<DurableStore> durable_owner_;
  std::atomic<DurableStore*> durable_{nullptr};
  std::mutex checkpoint_mutex_;
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> expired_dropped_{0};
  bool has_recovery_ = false;          // guarded by durable_mutex_
  RecoveryStats last_recovery_;        // guarded by durable_mutex_

  friend class EpochDrainWorker;
  /// Declared LAST: destroyed first, so the worker's threads stop before
  /// the session store and snapshot state they reference go away. Null
  /// when DrainOptions::background is false.
  std::unique_ptr<EpochDrainWorker> drain_;
};

}  // namespace aigs

#endif  // AIGS_SERVICE_ENGINE_H_
