#include "core/policy_registry.h"

#include <utility>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/batched_greedy.h"
#include "core/cost_sensitive.h"
#include "core/greedy.h"
#include "core/greedy_dag.h"
#include "core/greedy_naive.h"
#include "core/greedy_tree.h"
#include "eval/scripted_policy.h"
#include "util/string_util.h"

namespace aigs {

// ---- PolicyOptions ---------------------------------------------------------

StatusOr<PolicyOptions> PolicyOptions::Parse(std::string_view text) {
  PolicyOptions options;
  if (Trim(text).empty()) {
    return options;
  }
  for (const std::string_view item : Split(text, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("policy option '" + std::string(item) +
                                     "' is not key=value");
    }
    const std::string key(Trim(item.substr(0, eq)));
    const std::string value(Trim(item.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument("empty policy option key in '" +
                                     std::string(text) + "'");
    }
    if (!options.values_.emplace(key, value).second) {
      return Status::InvalidArgument("duplicate policy option '" + key + "'");
    }
  }
  return options;
}

StatusOr<std::int64_t> PolicyOptions::ConsumeInt(const std::string& key,
                                                 std::int64_t fallback) {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  AIGS_ASSIGN_OR_RETURN(const std::int64_t value, ParseInt64(it->second));
  return value;
}

StatusOr<double> PolicyOptions::ConsumeDouble(const std::string& key,
                                              double fallback) {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  AIGS_ASSIGN_OR_RETURN(const double value, ParseDouble(it->second));
  return value;
}

StatusOr<bool> PolicyOptions::ConsumeBool(const std::string& key,
                                          bool fallback) {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  return Status::InvalidArgument("option '" + key +
                                 "' expects a boolean, got '" + v + "'");
}

StatusOr<std::vector<NodeId>> PolicyOptions::ConsumeNodeList(
    const std::string& key) {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("required option '" + key + "' is missing");
  }
  std::vector<NodeId> nodes;
  for (const std::string_view part : Split(it->second, '+')) {
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t id, ParseUint64(part));
    if (id >= kInvalidNode) {
      return Status::OutOfRange("node id " + std::string(part) +
                                " out of range in option '" + key + "'");
    }
    nodes.push_back(static_cast<NodeId>(id));
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("option '" + key + "' lists no nodes");
  }
  return nodes;
}

StatusOr<std::string> PolicyOptions::ConsumeString(const std::string& key,
                                                   std::string fallback) {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

Status PolicyOptions::VerifyAllConsumed() const {
  for (const auto& [key, value] : values_) {
    if (consumed_.find(key) == consumed_.end()) {
      return Status::InvalidArgument("unknown policy option '" + key + "'");
    }
  }
  return Status::OK();
}

// ---- PolicySpec ------------------------------------------------------------

StatusOr<PolicySpec> PolicySpec::Parse(std::string_view spec) {
  PolicySpec parsed;
  const std::string_view trimmed = Trim(spec);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty policy spec");
  }
  const std::size_t colon = trimmed.find(':');
  parsed.name = std::string(Trim(trimmed.substr(0, colon)));
  if (colon != std::string_view::npos) {
    AIGS_ASSIGN_OR_RETURN(parsed.options,
                          PolicyOptions::Parse(trimmed.substr(colon + 1)));
  }
  return parsed;
}

// ---- Factories for the built-in policies -----------------------------------

namespace {

using FactoryResult = StatusOr<std::unique_ptr<Policy>>;

Status RequireTree(const PolicyContext& context, const char* name) {
  if (!context.hierarchy->is_tree()) {
    return Status::FailedPrecondition(std::string(name) +
                                      " requires a tree hierarchy");
  }
  return Status::OK();
}

FactoryResult MakeGreedyAuto(const PolicyContext& context, PolicyOptions&) {
  return MakeGreedyPolicy(*context.hierarchy, *context.distribution);
}

FactoryResult MakeGreedyTree(const PolicyContext& context,
                             PolicyOptions& options) {
  AIGS_RETURN_NOT_OK(RequireTree(context, "greedy_tree"));
  GreedyTreeOptions tree_options;
  AIGS_ASSIGN_OR_RETURN(tree_options.use_rounded_weights,
                        options.ConsumeBool("rounded", false));
  AIGS_ASSIGN_OR_RETURN(const std::string scan,
                        options.ConsumeString("scan", "linear"));
  if (scan == "heap") {
    tree_options.child_scan = GreedyTreeOptions::ChildScan::kLazyHeap;
  } else if (scan != "linear") {
    return Status::InvalidArgument(
        "greedy_tree scan must be linear|heap, got '" + scan + "'");
  }
  return std::unique_ptr<Policy>(new GreedyTreePolicy(
      *context.hierarchy, *context.distribution, tree_options));
}

FactoryResult MakeGreedyDag(const PolicyContext& context,
                            PolicyOptions& options) {
  GreedyDagOptions dag_options;
  AIGS_ASSIGN_OR_RETURN(dag_options.use_rounded_weights,
                        options.ConsumeBool("rounded", true));
  AIGS_ASSIGN_OR_RETURN(const bool prune, options.ConsumeBool("prune", true));
  dag_options.disable_dominance_pruning = !prune;
  return std::unique_ptr<Policy>(new GreedyDagPolicy(
      *context.hierarchy, *context.distribution, dag_options));
}

StatusOr<SelectionBackend> ConsumeBackend(const PolicyContext& context,
                                          PolicyOptions& options) {
  AIGS_ASSIGN_OR_RETURN(const std::string backend,
                        options.ConsumeString("backend", "index"));
  if (backend == "index") {
    return SelectionBackend::kSplitIndex;
  }
  if (backend == "bfs") {
    return SelectionBackend::kBfsRescan;
  }
  // closure/compressed both run the split-weight index; they additionally
  // pin WHICH closure storage the hierarchy must carry, so a scenario that
  // claims to measure compressed rows fails loudly when the hierarchy was
  // built dense (and vice versa).
  const ReachabilityIndex::Storage storage = context.hierarchy->reach().storage();
  if (backend == "closure") {
    if (storage != ReachabilityIndex::Storage::kDenseClosure) {
      return Status::InvalidArgument(
          "backend=closure requires dense closure rows, but this hierarchy "
          "uses " +
          std::string(storage == ReachabilityIndex::Storage::kEuler
                          ? "Euler intervals (tree)"
                          : "compressed closure rows"));
    }
    return SelectionBackend::kSplitIndex;
  }
  if (backend == "compressed") {
    if (storage != ReachabilityIndex::Storage::kCompressedClosure) {
      return Status::InvalidArgument(
          "backend=compressed requires compressed closure rows "
          "(ReachabilityOptions::Closure::kCompressed), but this hierarchy "
          "uses " +
          std::string(storage == ReachabilityIndex::Storage::kEuler
                          ? "Euler intervals (tree)"
                          : "dense closure rows"));
    }
    return SelectionBackend::kSplitIndex;
  }
  return Status::InvalidArgument(
      "backend must be index|bfs|closure|compressed, got '" + backend + "'");
}

FactoryResult MakeGreedyNaive(const PolicyContext& context,
                              PolicyOptions& options) {
  GreedyNaiveOptions naive_options;
  AIGS_ASSIGN_OR_RETURN(naive_options.use_rounded_weights,
                        options.ConsumeBool("rounded", false));
  AIGS_ASSIGN_OR_RETURN(naive_options.backend,
                        ConsumeBackend(context, options));
  return std::unique_ptr<Policy>(new GreedyNaivePolicy(
      *context.hierarchy, *context.distribution, naive_options));
}

FactoryResult MakeBatched(const PolicyContext& context,
                          PolicyOptions& options) {
  AIGS_ASSIGN_OR_RETURN(const std::int64_t k, options.ConsumeInt("k", 4));
  if (k < 1) {
    return Status::InvalidArgument("batched k must be >= 1");
  }
  BatchedGreedyOptions batched_options;
  batched_options.questions_per_round = static_cast<std::size_t>(k);
  AIGS_ASSIGN_OR_RETURN(batched_options.backend,
                        ConsumeBackend(context, options));
  return std::unique_ptr<Policy>(new BatchedGreedyPolicy(
      *context.hierarchy, *context.distribution, batched_options));
}

FactoryResult MakeCostSensitive(const PolicyContext& context,
                                PolicyOptions& options) {
  if (context.cost_model == nullptr) {
    return Status::FailedPrecondition(
        "cost_sensitive requires a cost model in the PolicyContext");
  }
  CostSensitiveOptions cs_options;
  AIGS_ASSIGN_OR_RETURN(cs_options.use_rounded_weights,
                        options.ConsumeBool("rounded", true));
  return std::unique_ptr<Policy>(
      new CostSensitiveGreedyPolicy(*context.hierarchy, *context.distribution,
                                    *context.cost_model, cs_options));
}

FactoryResult MakeMigs(const PolicyContext& context, PolicyOptions& options) {
  MigsOptions migs_options;
  AIGS_ASSIGN_OR_RETURN(const std::int64_t choices,
                        options.ConsumeInt("choices", 4));
  if (choices < 0) {
    return Status::InvalidArgument("migs choices must be >= 0");
  }
  migs_options.max_choices_per_question = static_cast<std::size_t>(choices);
  AIGS_ASSIGN_OR_RETURN(const bool ordered,
                        options.ConsumeBool("ordered", false));
  if (ordered) {
    return std::unique_ptr<Policy>(new MigsPolicy(
        *context.hierarchy, *context.distribution, migs_options));
  }
  return std::unique_ptr<Policy>(
      new MigsPolicy(*context.hierarchy, migs_options));
}

FactoryResult MakeWigs(const PolicyContext& context, PolicyOptions&) {
  return MakeWigsPolicy(*context.hierarchy);
}

FactoryResult MakeTopDown(const PolicyContext& context, PolicyOptions&) {
  return std::unique_ptr<Policy>(new TopDownPolicy(*context.hierarchy));
}

FactoryResult MakeScripted(const PolicyContext& context,
                           PolicyOptions& options) {
  AIGS_ASSIGN_OR_RETURN(std::vector<NodeId> order,
                        options.ConsumeNodeList("order"));
  AIGS_ASSIGN_OR_RETURN(const std::string label,
                        options.ConsumeString("label", "Scripted"));
  for (const NodeId v : order) {
    if (v >= context.hierarchy->NumNodes()) {
      return Status::OutOfRange("scripted order references node " +
                                std::to_string(v) + " outside the hierarchy");
    }
  }
  return std::unique_ptr<Policy>(
      new ScriptedPolicy(*context.hierarchy, std::move(order), label));
}

void RegisterBuiltins(PolicyRegistry& registry) {
  const auto must = [](Status s) { AIGS_CHECK(s.ok()); };
  must(registry.Register("greedy",
                         "GreedyTree on trees, GreedyDAG otherwise "
                         "(paper defaults)",
                         MakeGreedyAuto));
  must(registry.Register("greedy_tree",
                         "Algorithm 4 on trees; options: rounded=bool, "
                         "scan=linear|heap",
                         MakeGreedyTree));
  must(registry.Register("greedy_dag",
                         "Algorithm 6 on DAGs/trees; options: rounded=bool, "
                         "prune=bool",
                         MakeGreedyDag));
  must(registry.Register("greedy_naive",
                         "Algorithm 2 greedy; options: rounded=bool, "
                         "backend=index|bfs|closure|compressed (bfs = "
                         "O(n·m)/question rescans; closure/compressed pin "
                         "the hierarchy's closure storage)",
                         MakeGreedyNaive));
  must(registry.Register("naive", "alias of greedy_naive", MakeGreedyNaive));
  must(registry.Register("batched",
                         "batched greedy (§III-E); options: k=int questions "
                         "per round, backend=index|bfs|closure|compressed",
                         MakeBatched));
  must(registry.Register("cost_sensitive",
                         "CAIGS greedy (Definition 9); needs a cost model; "
                         "options: rounded=bool",
                         MakeCostSensitive));
  must(registry.Register("migs",
                         "multiple-choice baseline; options: choices=int "
                         "(0=all), ordered=bool",
                         MakeMigs));
  must(registry.Register("wigs", "worst-case baseline (Tao et al.)",
                         MakeWigs));
  must(registry.Register("top_down", "naive root-to-leaf baseline",
                         MakeTopDown));
  must(registry.Register("topdown", "alias of top_down", MakeTopDown));
  must(registry.Register("scripted",
                         "fixed question order; options: order=id+id+..., "
                         "label=string",
                         MakeScripted));
}

}  // namespace

// ---- PolicyRegistry --------------------------------------------------------

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status PolicyRegistry::Register(std::string name, std::string help,
                                Factory factory) {
  AIGS_CHECK(factory != nullptr);
  if (name.empty()) {
    return Status::InvalidArgument("policy name must not be empty");
  }
  const auto [it, inserted] = factories_.emplace(
      std::move(name), std::make_pair(std::move(help), std::move(factory)));
  if (!inserted) {
    return Status::InvalidArgument("policy '" + it->first +
                                   "' is already registered");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Policy>> PolicyRegistry::Create(
    std::string_view spec, const PolicyContext& context) const {
  if (context.hierarchy == nullptr || context.distribution == nullptr) {
    return Status::FailedPrecondition(
        "PolicyContext needs a hierarchy and a distribution");
  }
  if (context.distribution->size() != context.hierarchy->NumNodes()) {
    return Status::InvalidArgument(
        "distribution size does not match the hierarchy's node count");
  }
  AIGS_ASSIGN_OR_RETURN(PolicySpec parsed, PolicySpec::Parse(spec));
  const auto it = factories_.find(parsed.name);
  if (it == factories_.end()) {
    std::string known;
    for (const Entry& entry : List()) {
      known += known.empty() ? entry.name : ", " + entry.name;
    }
    return Status::NotFound("unknown policy '" + parsed.name +
                            "' (registered: " + known + ")");
  }
  AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                        it->second.second(context, parsed.options));
  AIGS_RETURN_NOT_OK(parsed.options.VerifyAllConsumed());
  return policy;
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<PolicyRegistry::Entry> PolicyRegistry::List() const {
  std::vector<Entry> entries;
  entries.reserve(factories_.size());
  for (const auto& [name, value] : factories_) {
    entries.push_back(Entry{name, value.first});
  }
  return entries;
}

}  // namespace aigs
