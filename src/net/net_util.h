// Thin POSIX socket helpers shared by the server, the blocking client, and
// the load generator: endpoint parsing, EINTR-safe I/O, and fd options.
// Everything returns Status — a refused connection or a dropped peer is a
// typed error, never an abort (and never a SIGPIPE: all sends pass
// MSG_NOSIGNAL, and the entry points also call IgnoreSigpipe()).
#ifndef AIGS_NET_NET_UTIL_H_
#define AIGS_NET_NET_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace aigs::net {

/// A "host:port" pair. Only IPv4 dotted quads and "localhost" are resolved
/// — the loopback bench and shard configs never need DNS.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port" ("8400" alone means 127.0.0.1:8400).
StatusOr<Endpoint> ParseEndpoint(std::string_view text);

/// Opens a listening TCP socket on `endpoint` (SO_REUSEADDR; port 0 binds
/// an ephemeral port). Returns the fd; `*bound_port` (optional) receives
/// the actual port.
StatusOr<int> ListenTcp(const Endpoint& endpoint, int backlog,
                        std::uint16_t* bound_port);

/// Blocking connect with a timeout (nonblocking connect + poll, then the
/// fd is switched back to blocking). TCP_NODELAY is set — every frame is
/// one request/response and must not sit in Nagle's buffer.
StatusOr<int> DialTcp(const Endpoint& endpoint, int timeout_ms);

/// Writes all of `data`, retrying EINTR and briefly polling out EAGAIN.
/// A dropped peer surfaces as IOError (EPIPE/ECONNRESET), never a signal.
Status SendAll(int fd, std::string_view data);

/// Reads up to `capacity` bytes, retrying EINTR. Returns 0 on orderly EOF.
StatusOr<std::size_t> RecvSome(int fd, char* buffer, std::size_t capacity);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

/// close(2) that retries EINTR and ignores errors (shutdown paths).
void CloseFd(int fd);

}  // namespace aigs::net

#endif  // AIGS_NET_NET_UTIL_H_
