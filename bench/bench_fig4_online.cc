// Fig. 4 reproduction: average cost vs number of categorized objects when
// the distribution is learned on the fly, against two flat baselines —
// the greedy policy given the real distribution, and WIGS.
//
// Paper shape: the online curve starts near the equal-probability cost and
// converges to within ~3% of the offline greedy after ~50k objects; WIGS
// stays flat and well above both.
#include "bench/bench_common.h"
#include "eval/online.h"
#include "util/csv.h"

namespace aigs::bench {
namespace {

void RunDataset(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& real = dataset.real_distribution;

  OnlineOptions options;
  options.num_objects = static_cast<std::size_t>(
      EnvInt("AIGS_OBJECTS", EnvBool("AIGS_FULL", false) ? 100'000 : 50'000));
  options.block_size = options.num_objects / 10;
  options.num_traces = static_cast<std::size_t>(
      EnvInt("AIGS_TRACES", EnvBool("AIGS_FULL", false) ? 20 : 3));
  options.seed = 42;

  auto series = RunOnlineLearning(h, real, options);
  AIGS_CHECK(series.ok());

  const auto offline = MakeGreedyPolicy(h, real);
  const double offline_cost = Cost(*offline, h, real);
  const auto wigs = MakeWigsPolicy(h);
  const double wigs_cost = Cost(*wigs, h, real);

  std::printf("%s (%zu objects per trace, %zu traces; block = %zu)\n",
              dataset.name.c_str(), options.num_objects, options.num_traces,
              options.block_size);
  std::printf("  %-14s %-18s %-18s %s\n", "#objects", "GreedyOnline",
              "GivenRealDist", "WIGS");
  CsvWriter csv({"objects", "greedy_online", "given_real_dist", "wigs"});
  for (std::size_t b = 0; b < series->avg_cost_per_block.size(); ++b) {
    std::printf("  %-14zu %-18s %-18s %s\n", (b + 1) * options.block_size,
                FormatDouble(series->avg_cost_per_block[b]).c_str(),
                FormatDouble(offline_cost).c_str(),
                FormatDouble(wigs_cost).c_str());
    csv.AddRow({std::to_string((b + 1) * options.block_size),
                FormatDouble(series->avg_cost_per_block[b], 4),
                FormatDouble(offline_cost, 4), FormatDouble(wigs_cost, 4)});
  }
  if (const std::string dir = CsvDir(); !dir.empty()) {
    const std::string path = dir + "/fig4_" + dataset.name + ".csv";
    const Status status = csv.WriteToFile(path);
    std::printf("  csv: %s\n",
                status.ok() ? path.c_str() : status.ToString().c_str());
  }
  const double last = series->avg_cost_per_block.back();
  std::printf("  final gap to offline greedy: %s%%\n\n",
              FormatDouble((last / offline_cost - 1) * 100, 1).c_str());
}

int Main() {
  PrintBanner("Fig. 4: average cost vs. number of categorized objects");
  const double scale = DatasetScale();
  RunDataset(MakeAmazonDataset(scale));
  RunDataset(MakeImageNetDataset(scale));
  std::printf("paper shape: online curve decreasing, converging to the "
              "offline greedy line;\nWIGS flat above both.\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
