// ShardRouter — consistent-hash placement of sessions across N backend
// aigs servers, with no cross-shard chatter: a session's id alone
// determines which shard owns it.
//
// The trick that makes this work with server-side session storage is that
// the ROUTER proposes the session id. Open/Resume/Migrate-blob generate a
// fresh 64-bit id, look it up on the hash ring, and send it to the owning
// shard via the wire protocol's proposed-id field (Engine::Open's
// InsertWithId seam). From then on every id-addressed op — Ask, Answer,
// Save, Close, live Migrate — routes by hashing the id; no lookup table,
// no broadcast, and any router replica configured with the same endpoint
// list computes the identical placement.
//
// The ring hashes each endpoint onto `vnodes` points (HashBytes64 of the
// endpoint string mixed with the virtual-node index), so load spreads
// evenly and removing one endpoint only reassigns that endpoint's
// arc — the classic consistent-hashing stability property, asserted by
// tests/test_net.cc.
//
// Thread-safe: concurrent callers share one router. Each shard keeps a
// mutex-guarded pool of connected clients; an op leases one (dialing a new
// connection when the pool is empty), runs its blocking request/response
// exchange OUTSIDE any lock, and returns the client to the pool — so the
// number of live connections per shard equals the peak concurrency that
// shard has seen, and no caller ever blocks on another caller's I/O. A
// client whose transport failed mid-op (AigsClient disconnects itself on
// any framing or socket error) is dropped instead of pooled; the next
// lease redials.
#ifndef AIGS_NET_SHARD_ROUTER_H_
#define AIGS_NET_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "util/status.h"

namespace aigs::net {

/// The pure placement function: endpoints → hash ring → shard index.
/// Deterministic across processes; shared by the router and the load
/// generator (which needs to pre-compute which shard an id lands on).
class ShardRing {
 public:
  /// `vnodes` points per endpoint (>= 1).
  ShardRing(const std::vector<Endpoint>& endpoints, std::size_t vnodes = 64);

  std::size_t num_shards() const { return num_shards_; }

  /// The shard owning `id`: first ring point clockwise of Mix64(id).
  std::size_t ShardFor(std::uint64_t id) const;

 private:
  std::size_t num_shards_;
  /// (ring position, shard index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

struct ShardRouterOptions {
  std::size_t vnodes = 64;
  /// Seed for the router's id generator — distinct routers proposing into
  /// the same fleet should use distinct salts so their id streams never
  /// collide by construction (collisions are still handled: the shard
  /// answers FailedPrecondition and the router redraws).
  std::uint64_t salt = 0;
  /// Redraw attempts when a proposed id is already live on its shard.
  std::size_t max_id_attempts = 8;
  ClientOptions client;
};

class ShardRouter {
 public:
  ShardRouter(std::vector<Endpoint> endpoints, ShardRouterOptions options = {});

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  const ShardRing& ring() const { return ring_; }

  /// Drops every idle pooled connection; the next op per shard redials.
  /// Clients currently leased by in-flight ops are untouched (they rejoin
  /// their pool, still connected, when those ops finish).
  void DisconnectAll();

  // ---- the Engine session API, routed ---------------------------------------

  StatusOr<SessionId> Open(const std::string& policy_spec);
  StatusOr<Query> Ask(SessionId id);
  Status Answer(SessionId id, const SessionAnswer& answer);
  StatusOr<std::string> Save(SessionId id);
  StatusOr<SessionId> Resume(const std::string& blob);
  StatusOr<MigrateResult> Migrate(SessionId id);
  StatusOr<MigrateResult> MigrateBlob(const std::string& blob);
  Status Close(SessionId id);
  /// Aggregated stats across all shards (epoch = max over shards).
  StatusOr<WireStats> Stats();

 private:
  /// One shard's connection pool. The mutex only guards the `idle` vector —
  /// never a socket operation.
  struct Shard {
    std::mutex mu;
    std::vector<std::unique_ptr<AigsClient>> idle;
  };

  /// RAII client lease: holds a connected client exclusively for one op and
  /// returns it to its shard's pool on destruction — unless the transport
  /// died mid-op (the client disconnects itself on socket/framing errors),
  /// in which case the client is simply dropped.
  class Lease {
   public:
    Lease(Shard& shard, std::unique_ptr<AigsClient> client)
        : shard_(&shard), client_(std::move(client)) {}
    Lease(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (client_ != nullptr && client_->connected()) {
        const std::lock_guard<std::mutex> lock(shard_->mu);
        shard_->idle.push_back(std::move(client_));
      }
    }
    AigsClient* operator->() const { return client_.get(); }

   private:
    Shard* shard_;
    std::unique_ptr<AigsClient> client_;
  };

  /// Leases a connected client for `shard`: pops the pool, or dials a new
  /// connection (outside the pool lock) when it is empty.
  StatusOr<Lease> LeaseFor(std::size_t shard);

  /// Draws a fresh nonzero id and runs `place(client, id)` on its owning
  /// shard, redrawing on FailedPrecondition (id collision) up to the
  /// attempt budget.
  template <typename Place>
  auto PlaceWithFreshId(Place place) -> decltype(place(
      static_cast<AigsClient*>(nullptr), SessionId{0}));

  std::vector<Endpoint> endpoints_;
  ShardRouterOptions options_;
  ShardRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;  // one pool per shard
  std::atomic<std::uint64_t> id_counter_{0};
};

}  // namespace aigs::net

#endif  // AIGS_NET_SHARD_ROUTER_H_
