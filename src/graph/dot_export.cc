#include "graph/dot_export.h"

namespace aigs {
namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ToDot(const Digraph& g, const DotOptions& options) {
  AIGS_CHECK(g.finalized());
  std::string out = "digraph " + options.name + " {\n";
  out += "  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::string label =
        g.Label(v).empty() ? std::to_string(v) : EscapeDot(g.Label(v));
    if (options.annotate) {
      label += "\\n" + EscapeDot(options.annotate(v));
    }
    out += "  n" + std::to_string(v) + " [label=\"" + label + "\"];\n";
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId c : g.Children(u)) {
      out += "  n" + std::to_string(u) + " -> n" + std::to_string(c) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace aigs
