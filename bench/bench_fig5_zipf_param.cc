// Fig. 5 reproduction: greedy cost vs the Zipf distribution parameter a,
// with the equal-probability cost as the reference line.
//
// Paper shape: cost increases with a (less skew → less to exploit) and
// approaches the equal-probability cost for large a.
#include "bench/bench_common.h"
#include "util/ascii_table.h"
#include "util/csv.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

void RunDataset(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const std::size_t reps = Reps();

  const auto equal_policy = MakeGreedyPolicy(h, EqualDistribution(h.NumNodes()));
  const Distribution equal = EqualDistribution(h.NumNodes());
  const double equal_cost = Cost(*equal_policy, h, equal);

  AsciiTable table({"Zipf a", h.is_tree() ? "GreedyTree" : "GreedyDAG",
                    "Equal Pr. (ref)"});
  CsvWriter csv({"zipf_a", "greedy_cost", "equal_pr_cost"});
  for (const double a : {1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    double sum = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      Rng rng(3000 + 41 * r + static_cast<std::uint64_t>(a * 10));
      const Distribution dist =
          ZipfRandomDistribution(h.NumNodes(), a, rng);
      const auto greedy = MakeGreedyPolicy(h, dist);
      sum += Cost(*greedy, h, dist);
    }
    const double avg = sum / static_cast<double>(reps);
    table.AddRow({FormatDouble(a, 1), FormatDouble(avg),
                  FormatDouble(equal_cost)});
    csv.AddRow({FormatDouble(a, 1), FormatDouble(avg, 4),
                FormatDouble(equal_cost, 4)});
  }
  std::printf("%s\n%s\n", dataset.name.c_str(), table.ToString().c_str());
  if (const std::string dir = CsvDir(); !dir.empty()) {
    const std::string path = dir + "/fig5_" + dataset.name + ".csv";
    const Status status = csv.WriteToFile(path);
    std::printf("csv: %s\n\n",
                status.ok() ? path.c_str() : status.ToString().c_str());
  }
}

int Main() {
  PrintBanner("Fig. 5: cost vs. parameter of Zipf distribution");
  const double scale = DatasetScale();
  RunDataset(MakeAmazonDataset(scale));
  RunDataset(MakeImageNetDataset(scale));
  std::printf("paper shape: greedy cost grows with a and approaches the "
              "equal-probability line.\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
