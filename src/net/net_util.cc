#include "net/net_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aigs::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> ToSockaddr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host =
      endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "' (only dotted quads and 'localhost' "
                                   "are supported)");
  }
  return addr;
}

}  // namespace

StatusOr<Endpoint> ParseEndpoint(std::string_view text) {
  Endpoint endpoint;
  const std::size_t colon = text.rfind(':');
  std::string_view port_text = text;
  if (colon != std::string_view::npos) {
    endpoint.host = std::string(text.substr(0, colon));
    port_text = text.substr(colon + 1);
  }
  if (endpoint.host.empty() || port_text.empty()) {
    return Status::InvalidArgument("endpoint '" + std::string(text) +
                                   "' is not host:port");
  }
  std::uint32_t port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + std::string(text) +
                                     "' has a non-numeric port");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint '" + std::string(text) +
                                     "' port is out of range");
    }
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

StatusOr<int> ListenTcp(const Endpoint& endpoint, int backlog,
                        std::uint16_t* bound_port) {
  AIGS_ASSIGN_OR_RETURN(sockaddr_in addr, ToSockaddr(endpoint));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind " + endpoint.ToString());
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = Errno("listen");
    CloseFd(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      const Status status = Errno("getsockname");
      CloseFd(fd);
      return status;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

StatusOr<int> DialTcp(const Endpoint& endpoint, int timeout_ms) {
  AIGS_ASSIGN_OR_RETURN(sockaddr_in addr, ToSockaddr(endpoint));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  AIGS_RETURN_NOT_OK(SetNonBlocking(fd));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status status = Errno("connect " + endpoint.ToString());
    CloseFd(fd);
    return status;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      CloseFd(fd);
      return Status::IOError("connect " + endpoint.ToString() +
                             " timed out after " +
                             std::to_string(timeout_ms) + " ms");
    }
    if (rc < 0) {
      const Status status = Errno("poll");
      CloseFd(fd);
      return status;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      CloseFd(fd);
      return Status::IOError("connect " + endpoint.ToString() + ": " +
                             std::strerror(error != 0 ? error : errno));
    }
  }
  // Back to blocking for the simple call/response client.
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    const Status status = Errno("fcntl");
    CloseFd(fd);
    return status;
  }
  AIGS_RETURN_NOT_OK(SetNoDelay(fd));
  return fd;
}

Status SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        int rc;
        do {
          rc = ::poll(&pfd, 1, 1000);
        } while (rc < 0 && errno == EINTR);
        if (rc <= 0) {
          return Status::IOError("send stalled: peer not draining");
        }
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::size_t> RecvSome(int fd, char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n >= 0) {
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    return Errno("recv");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt TCP_NODELAY");
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) {
    return;
  }
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace aigs::net
