#include "util/env.h"

#include <cstdlib>

#include "util/string_util.h"

namespace aigs {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  auto parsed = ParseInt64(value);
  return parsed.ok() ? *parsed : fallback;
}

bool EnvBool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  const std::string v(Trim(value));
  if (v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  return fallback;
}

}  // namespace aigs
