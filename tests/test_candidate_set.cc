#include "graph/candidate_set.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(CandidateSet, StartsFullyAlive) {
  Rng rng(1);
  const Digraph g = RandomTree(10, rng);
  CandidateSet c(g);
  EXPECT_EQ(c.alive_count(), 10u);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_TRUE(c.IsAlive(v));
  }
}

TEST(CandidateSet, RestrictToReachable) {
  // 0 -> {1, 2}; 1 -> 3.
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  ASSERT_TRUE(g.Finalize().ok());
  CandidateSet c(g);
  std::vector<NodeId> removed;
  c.RestrictToReachable(1, &removed);
  EXPECT_EQ(c.alive_count(), 2u);
  EXPECT_TRUE(c.IsAlive(1));
  EXPECT_TRUE(c.IsAlive(3));
  EXPECT_FALSE(c.IsAlive(0));
  EXPECT_FALSE(c.IsAlive(2));
  EXPECT_EQ(std::set<NodeId>(removed.begin(), removed.end()),
            (std::set<NodeId>{0, 2}));
}

TEST(CandidateSet, RemoveReachable) {
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  ASSERT_TRUE(g.Finalize().ok());
  CandidateSet c(g);
  std::vector<NodeId> removed;
  c.RemoveReachable(1, &removed);
  EXPECT_EQ(c.alive_count(), 2u);
  EXPECT_TRUE(c.IsAlive(0));
  EXPECT_TRUE(c.IsAlive(2));
  EXPECT_EQ(std::set<NodeId>(removed.begin(), removed.end()),
            (std::set<NodeId>{1, 3}));
}

TEST(CandidateSet, SoleCandidateAfterNarrowing) {
  Digraph g;
  g.AddNodes(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  ASSERT_TRUE(g.Finalize().ok());
  CandidateSet c(g);
  c.RemoveReachable(1);
  c.RemoveReachable(2);
  EXPECT_EQ(c.alive_count(), 1u);
  EXPECT_EQ(c.SoleCandidate(), 0u);
}

TEST(CandidateSet, MatchesReferenceUnderRandomOperations) {
  Rng rng(42);
  for (int iteration = 0; iteration < 30; ++iteration) {
    const Digraph g = RandomDag(25, rng, 0.5);
    const ReachabilityIndex reach(g);
    CandidateSet c(g);
    // Reference: explicit set of alive nodes.
    std::set<NodeId> reference;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      reference.insert(v);
    }
    for (int step = 0; step < 12 && reference.size() > 1; ++step) {
      // Pick a random alive node (not guaranteed != root; that's fine for
      // CandidateSet itself).
      std::vector<NodeId> alive(reference.begin(), reference.end());
      const NodeId q =
          alive[static_cast<std::size_t>(rng.UniformInt(alive.size()))];
      std::set<NodeId> inside;
      for (const NodeId t : reference) {
        if (reach.Reaches(q, t)) {
          inside.insert(t);
        }
      }
      if (rng.Bernoulli(0.5) || inside.size() == reference.size()) {
        if (inside.size() == reference.size()) {
          // Restriction is a no-op; use removal only if it makes progress.
          if (inside.empty()) {
            continue;
          }
        }
        c.RestrictToReachable(q);
        reference = inside;
      } else {
        c.RemoveReachable(q);
        for (const NodeId t : inside) {
          reference.erase(t);
        }
      }
      ASSERT_EQ(c.alive_count(), reference.size());
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_EQ(c.IsAlive(v), reference.count(v) > 0);
      }
    }
  }
}

}  // namespace
}  // namespace aigs
