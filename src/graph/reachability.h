// Transitive-closure reachability index. Answers reach(u, v) in O(1) and
// computes reachable-set weights for every node — the initialization step of
// GreedyDAG (w̃(v) = w(G_v)) and the ground truth behind the simulated
// oracle.
//
// For tree hierarchies the index uses Euler-tour intervals (O(n) memory);
// for general DAGs it builds bitset closures in reverse topological order
// (O(n·m/64) time, O(n²/8) memory — ~96 MB for the paper's 28k-node
// ImageNet hierarchy).
#ifndef AIGS_GRAPH_REACHABILITY_H_
#define AIGS_GRAPH_REACHABILITY_H_

#include <vector>

#include "graph/digraph.h"
#include "util/bitset.h"
#include "util/common.h"

namespace aigs {

/// O(1) reachability oracle over a finalized Digraph.
class ReachabilityIndex {
 public:
  /// Builds the index. Uses Euler intervals when `g.IsTree()`, bitset
  /// closures otherwise. The graph must outlive the index.
  explicit ReachabilityIndex(const Digraph& g);

  /// True iff v is reachable from u (u reaches u).
  bool Reaches(NodeId u, NodeId v) const {
    if (euler_mode_) {
      return tin_[v] >= tin_[u] && tin_[v] < tout_[u];
    }
    return closure_[u].Test(v);
  }

  /// |R(u)|: number of nodes reachable from u, u included.
  std::size_t ReachableCount(NodeId u) const {
    return reach_count_[u];
  }

  /// Σ_{x ∈ R(u)} weights[x]. `weights` must have one entry per node.
  /// Exact uint64 arithmetic; callers guarantee no overflow (weights are
  /// bounded by the distribution scale).
  Weight WeightOfReachableSet(NodeId u,
                              const std::vector<Weight>& weights) const;

  /// Computes WeightOfReachableSet for every node in one pass. For trees
  /// this is a subtree-sum DP; for DAGs one closure scan.
  std::vector<Weight> AllReachableSetWeights(
      const std::vector<Weight>& weights) const;

  /// Invokes fn(x) for every x ∈ R(u) (order unspecified).
  template <typename Fn>
  void ForEachReachable(NodeId u, Fn&& fn) const {
    if (euler_mode_) {
      for (std::uint32_t t = tin_[u]; t < tout_[u]; ++t) {
        fn(euler_to_node_[t]);
      }
    } else {
      closure_[u].ForEachSetBit([&fn](std::size_t v) {
        fn(static_cast<NodeId>(v));
      });
    }
  }

  /// True when the index is in Euler (tree) mode.
  bool euler_mode() const { return euler_mode_; }

  /// Euler-tour interval of u: R(u) = nodes at Euler positions
  /// [EulerBegin(u), EulerEnd(u)). Euler mode only.
  std::uint32_t EulerBegin(NodeId u) const {
    AIGS_DCHECK(euler_mode_);
    return tin_[u];
  }
  std::uint32_t EulerEnd(NodeId u) const {
    AIGS_DCHECK(euler_mode_);
    return tout_[u];
  }

  /// Node occupying Euler position t. Euler mode only.
  NodeId NodeAtEuler(std::uint32_t t) const {
    AIGS_DCHECK(euler_mode_);
    return euler_to_node_[t];
  }

  /// Closure row of u: bit v set iff u reaches v. Closure (DAG) mode only —
  /// the word-parallel form of R(u) the selection layer intersects with the
  /// alive mask.
  const DynamicBitset& ClosureRow(NodeId u) const {
    AIGS_DCHECK(!euler_mode_);
    return closure_[u];
  }

  const Digraph& graph() const { return *graph_; }

 private:
  void BuildEuler();
  void BuildClosure();

  const Digraph* graph_;
  bool euler_mode_;

  // Euler mode: tin/tout intervals and the Euler order.
  std::vector<std::uint32_t> tin_;
  std::vector<std::uint32_t> tout_;
  std::vector<NodeId> euler_to_node_;

  // Closure mode: one bitset row per node.
  std::vector<DynamicBitset> closure_;

  std::vector<std::size_t> reach_count_;
};

}  // namespace aigs

#endif  // AIGS_GRAPH_REACHABILITY_H_
