#include "baselines/wigs.h"

#include <algorithm>
#include <vector>

namespace aigs {
namespace {

// ---- Tree variant ----------------------------------------------------------

class WigsTreeSession final : public SearchSession {
 public:
  WigsTreeSession(const Tree& tree, const HeavyPathDecomposition& hpd,
                  const std::vector<std::vector<NodeId>>& ordered_children)
      : tree_(&tree), hpd_(&hpd), ordered_children_(&ordered_children),
        root_(tree.root()) {}

  Query PlanQuestion() const override {
    for (;;) {
      switch (phase_) {
        case Phase::kStartPath: {
          if (tree_->Children(root_).empty()) {
            return Query::Done(root_);
          }
          path_ = hpd_->PathFrom(root_);
          lo_ = 0;
          hi_ = path_.size() - 1;
          phase_ = Phase::kBinarySearch;
          break;
        }
        case Phase::kBinarySearch: {
          if (lo_ < hi_) {
            const std::size_t mid = (lo_ + hi_ + 1) / 2;
            return Query::ReachQuery(path_[mid]);
          }
          // Deepest yes node found; scan its light children.
          anchor_ = path_[lo_];
          heavy_child_ =
              lo_ + 1 < path_.size() ? path_[lo_ + 1] : kInvalidNode;
          scan_idx_ = 0;
          phase_ = Phase::kLightScan;
          break;
        }
        case Phase::kLightScan: {
          const auto& children = (*ordered_children_)[anchor_];
          while (scan_idx_ < children.size() &&
                 children[scan_idx_] == heavy_child_) {
            ++scan_idx_;  // the heavy child already answered no
          }
          if (scan_idx_ >= children.size()) {
            return Query::Done(anchor_);
          }
          return Query::ReachQuery(children[scan_idx_]);
        }
      }
    }
  }

  void ApplyReach(NodeId q, bool yes) override {
    // Settle the automaton first: a cache-supplied answer may arrive
    // without this session ever having planned, and the answer routing
    // below depends on the settled phase.
    if (!plan_settled()) {
      (void)PlanQuestion();
    }
    if (phase_ == Phase::kBinarySearch) {
      const std::size_t mid = (lo_ + hi_ + 1) / 2;
      AIGS_DCHECK(path_[mid] == q);
      if (yes) {
        lo_ = mid;
      } else {
        hi_ = mid - 1;
      }
      return;
    }
    AIGS_CHECK(phase_ == Phase::kLightScan);
    if (yes) {
      root_ = q;
      phase_ = Phase::kStartPath;
    } else {
      ++scan_idx_;
    }
  }

  // Observed fold (cross-epoch migration): a question recorded under
  // another epoch's heavy paths need not match this automaton's pending
  // probe (ApplyReach routes strictly by phase). Rewrite the fact against
  // the deepest known yes-node instead: a deeper yes restarts the search
  // at that node (forgetting nested no-knowledge is safe — those probes
  // may be re-asked; identification stays exact), a no matching a pending
  // probe narrows natively, and anything else is implied or forgotten.
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const NodeId q = step.nodes[0];
    if (q >= tree_->NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    // Settle so the phase fields below describe the current state.
    if (!plan_settled()) {
      (void)PlanQuestion();
    }
    const NodeId deepest = phase_ == Phase::kBinarySearch ? path_[lo_]
                           : phase_ == Phase::kLightScan  ? anchor_
                                                          : root_;
    const auto eliminated = [&](NodeId v) {
      switch (phase_) {
        case Phase::kStartPath:
          return false;
        case Phase::kBinarySearch:
          // The shallowest no on the heavy path, if any, cuts its subtree.
          return hi_ + 1 < path_.size() && tree_->InSubtree(path_[hi_ + 1], v);
        case Phase::kLightScan: {
          if (heavy_child_ != kInvalidNode &&
              tree_->InSubtree(heavy_child_, v)) {
            return true;
          }
          const auto& children = (*ordered_children_)[anchor_];
          for (std::size_t i = 0; i < scan_idx_ && i < children.size(); ++i) {
            if (tree_->InSubtree(children[i], v)) {
              return true;
            }
          }
          return false;
        }
      }
      return false;
    };
    if (step.yes) {
      if (q == deepest || tree_->InSubtree(q, deepest)) {
        return Status::OK();  // ancestor-or-self: already known
      }
      if (!tree_->InSubtree(deepest, q)) {
        return Status::InvalidArgument(
            "observed yes for node " + std::to_string(q) +
            " disjoint from the deepest known yes-node");
      }
      if (eliminated(q)) {
        return Status::InvalidArgument(
            "observed yes for node " + std::to_string(q) +
            " inside an already-eliminated subtree");
      }
      root_ = q;  // restart below the new deepest yes
      phase_ = Phase::kStartPath;
      return Status::OK();
    }
    if (q == deepest || tree_->InSubtree(q, deepest)) {
      return Status::InvalidArgument(
          "observed no for node " + std::to_string(q) +
          " contradicts the deepest known yes-node");
    }
    if (eliminated(q) || !tree_->InSubtree(deepest, q)) {
      return Status::OK();  // already implied
    }
    if (phase_ == Phase::kBinarySearch) {
      for (std::size_t k = lo_ + 1; k <= hi_; ++k) {
        if (path_[k] == q) {
          hi_ = k - 1;  // narrows the binary search natively
          return Status::OK();
        }
      }
    } else if (phase_ == Phase::kLightScan) {
      const auto& children = (*ordered_children_)[anchor_];
      if (scan_idx_ < children.size() && children[scan_idx_] == q) {
        ++scan_idx_;  // exactly the pending scan probe
        return Status::OK();
      }
    }
    // A no the automaton cannot encode as a search position; forget it.
    return Status::OK();
  }

 private:
  enum class Phase { kStartPath, kBinarySearch, kLightScan };

  const Tree* tree_;
  const HeavyPathDecomposition* hpd_;
  const std::vector<std::vector<NodeId>>* ordered_children_;

  NodeId root_;
  // Phase automaton. Mutable: planning advances the answer-free phase
  // transitions (start-path materialization, binary-search → light-scan) —
  // all deterministic functions of the answers applied so far.
  mutable Phase phase_ = Phase::kStartPath;
  mutable std::vector<NodeId> path_;
  mutable std::size_t lo_ = 0;
  mutable std::size_t hi_ = 0;
  mutable NodeId anchor_ = kInvalidNode;
  mutable NodeId heavy_child_ = kInvalidNode;
  mutable std::size_t scan_idx_ = 0;
};

// ---- DAG variant -----------------------------------------------------------

// Generalizes the tree strategy to DAGs with the candidate counts maintained
// by DagSearchState (unit weights):
//  * kChildScan — probe the current anchor's children in decreasing
//    alive-count order, one question each (the light-children scan);
//  * kBinarySearch — once a child answers yes, build the count-heaviest
//    chain below it and binary-search for the deepest yes. Chains are
//    directed paths, so reach() answers along them are prefix-monotone.
// Answers update the candidate sub-DAG eagerly in both phases.
class WigsDagSession final : public SearchSession {
 public:
  explicit WigsDagSession(const ReachWeightBase& unit_base)
      : state_(unit_base), anchor_(state_.root()) {}

  Query PlanQuestion() const override {
    if (state_.AliveCount() == 1) {
      return Query::Done(state_.Target());
    }
    if (phase_ == Phase::kBinarySearch && lo_ < hi_) {
      return Query::ReachQuery(chain_[Mid()]);
    }
    phase_ = Phase::kChildScan;
    const NodeId probe = MaxCountAliveChild(anchor_);
    // AliveCount() > 1 plus the downward-closure invariant guarantee the
    // anchor still has an alive child.
    AIGS_CHECK(probe != kInvalidNode);
    return Query::ReachQuery(probe);
  }

  void ApplyReach(NodeId q, bool yes) override {
    // Settle the automaton (an exhausted binary search falls back to the
    // child scan) before routing the answer on the phase.
    if (!plan_settled()) {
      (void)PlanQuestion();
    }
    if (phase_ == Phase::kChildScan) {
      if (yes) {
        state_.ApplyYes(q);
        anchor_ = q;
        StartBinarySearch();
      } else {
        state_.ApplyNo(q);  // next Next() probes the next-best child
      }
      return;
    }
    AIGS_CHECK(phase_ == Phase::kBinarySearch);
    const std::ptrdiff_t mid = static_cast<std::ptrdiff_t>(Mid());
    AIGS_DCHECK(chain_[static_cast<std::size_t>(mid)] == q);
    if (yes) {
      state_.ApplyYes(q);
      anchor_ = q;
      lo_ = mid;
    } else {
      state_.ApplyNo(q);
      hi_ = mid - 1;
    }
    if (lo_ >= hi_) {
      phase_ = Phase::kChildScan;  // anchor found; scan its children
    }
  }

  // Observed fold (cross-epoch migration): classify R(q) ∩ C through the
  // reachability index (like the greedy DAG policy — the appliers require
  // an alive q) and fold informative answers into the candidate state,
  // then drop back to the child scan: any in-flight chain was built for
  // the pre-fold candidate set and is rebuilt from the next plan.
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const Hierarchy& h = state_.base().hierarchy();
    const NodeId q = step.nodes[0];
    if (q >= h.NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    const ReachabilityIndex& reach = h.reach();
    std::size_t inside = 0;
    state_.candidates().bits().ForEachSetBit([&](std::size_t raw) {
      inside += reach.Reaches(q, static_cast<NodeId>(raw)) ? 1 : 0;
    });
    const std::size_t alive = state_.AliveCount();
    if (step.yes) {
      if (inside == 0) {
        return Status::InvalidArgument(
            "observed yes for node " + std::to_string(q) +
            " would eliminate every candidate (inconsistent transcript)");
      }
      if (!state_.IsAlive(q)) {
        if (inside == alive) {
          return Status::OK();  // no information; keep the alive root
        }
        return Status::Unimplemented(
            "observed yes for eliminated node " + std::to_string(q) +
            " still splits the candidates");
      }
      if (q != state_.root()) {
        state_.ApplyYes(q);
        anchor_ = q;
      }
      phase_ = Phase::kChildScan;
      return Status::OK();
    }
    if (inside == 0) {
      return Status::OK();  // already known
    }
    if (inside == alive) {
      return Status::InvalidArgument(
          "observed no for node " + std::to_string(q) +
          " would eliminate every candidate (inconsistent transcript)");
    }
    if (!state_.IsAlive(q)) {
      return Status::Unimplemented(
          "observed no for eliminated node " + std::to_string(q) +
          " still splits the candidates");
    }
    state_.ApplyNo(q);
    phase_ = Phase::kChildScan;
    return Status::OK();
  }

 private:
  enum class Phase { kChildScan, kBinarySearch };

  std::size_t Mid() const {
    return static_cast<std::size_t>((lo_ + hi_ + 1) / 2);
  }

  NodeId MaxCountAliveChild(NodeId v) const {
    NodeId best = kInvalidNode;
    Weight best_count = 0;
    for (const NodeId c : state_.graph().Children(v)) {
      if (!state_.IsAlive(c)) {
        continue;
      }
      const Weight count = state_.ReachWeight(c);
      if (best == kInvalidNode || count > best_count) {
        best = c;
        best_count = count;
      }
    }
    return best;
  }

  // The anchor just answered yes: binary-search the count-heaviest chain
  // below it (anchor excluded; chain[0] is its heaviest alive child).
  void StartBinarySearch() {
    chain_.clear();
    for (NodeId v = MaxCountAliveChild(anchor_); v != kInvalidNode;
         v = MaxCountAliveChild(v)) {
      chain_.push_back(v);
    }
    if (chain_.empty()) {
      phase_ = Phase::kChildScan;
      return;
    }
    lo_ = -1;  // -1 encodes "even chain[0] may be a no"
    hi_ = static_cast<std::ptrdiff_t>(chain_.size()) - 1;
    phase_ = Phase::kBinarySearch;
  }

  DagSearchState state_;
  NodeId anchor_ = kInvalidNode;
  // Mutable: planning demotes an exhausted binary search to the child scan
  // — a deterministic function of the answers applied so far.
  mutable Phase phase_ = Phase::kChildScan;
  std::vector<NodeId> chain_;
  std::ptrdiff_t lo_ = 0;
  std::ptrdiff_t hi_ = 0;
};

}  // namespace

WigsTreePolicy::WigsTreePolicy(const Hierarchy& hierarchy)
    : hierarchy_(&hierarchy),
      hpd_(HeavyPathDecomposition::BySize(hierarchy.tree())) {
  AIGS_CHECK(hierarchy.is_tree());
  const Tree& tree = hierarchy.tree();
  std::vector<std::uint32_t> sizes(tree.NumNodes());
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    sizes[v] = static_cast<std::uint32_t>(tree.SubtreeSize(v));
  }
  subtree_size_ = std::move(sizes);
  ordered_children_.resize(tree.NumNodes());
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    const auto children = tree.Children(v);
    ordered_children_[v].assign(children.begin(), children.end());
    std::stable_sort(ordered_children_[v].begin(), ordered_children_[v].end(),
                     [this](NodeId a, NodeId b) {
                       return subtree_size_[a] > subtree_size_[b];
                     });
  }
}

std::unique_ptr<SearchSession> WigsTreePolicy::NewSession() const {
  return std::make_unique<WigsTreeSession>(hierarchy_->tree(), hpd_,
                                           ordered_children_);
}

WigsDagPolicy::WigsDagPolicy(const Hierarchy& hierarchy)
    : unit_base_(hierarchy,
                 std::vector<Weight>(hierarchy.NumNodes(), Weight{1})) {}

std::unique_ptr<SearchSession> WigsDagPolicy::NewSession() const {
  return std::make_unique<WigsDagSession>(unit_base_);
}

std::unique_ptr<Policy> MakeWigsPolicy(const Hierarchy& hierarchy) {
  if (hierarchy.is_tree()) {
    return std::make_unique<WigsTreePolicy>(hierarchy);
  }
  return std::make_unique<WigsDagPolicy>(hierarchy);
}

}  // namespace aigs
