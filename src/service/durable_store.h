// DurableStore — the on-disk half of the durable session store.
//
// The aigs-session/2 transcript codec already serializes a session's
// complete state, and transcript replay already restores it (policy
// determinism, Definition 6). What a crash-safe service additionally needs
// is (a) an ordered log of the acked mutations since the last snapshot and
// (b) an atomic snapshot cadence that keeps that log short. This class
// owns both, as one directory:
//
//   wal-<seq>.log          append-only record log (see wal.h framing)
//   checkpoint-<seq>.ckpt  atomic snapshot: state when segment <seq> opened
//
// WAL record payloads (text; the blob/step lines ARE the session codec):
//
//   open <id> <wall_ms>\n<aigs-session/2 blob>     session created/replaced
//   step <id> <wall_ms> <fingerprint> <index> <step line>   one acked Answer
//   close <id> <wall_ms>                           session closed
//
// An `open` record carries the full (usually empty) transcript so Resume,
// Migrate, and in-place migration all log through the same record — a
// later `open` for a live id replaces its state. A `step` record carries
// the transcript index, which makes replay idempotent: a checkpoint races
// live traffic by design (segment rotation first, per-session snapshots
// second), so the same step may appear in both the checkpoint blob and the
// new segment; the index dedups it.
//
// Checkpoint protocol: rotate to segment seq+1 (new appends go there) →
// snapshot every live session → write checkpoint-<seq+1>.tmp → fsync →
// rename into place → fsync the directory → delete files of seq < seq+1.
// A crash anywhere leaves a recoverable prefix: recovery loads the newest
// fully-CRC-valid checkpoint and applies the valid prefix of every
// surviving segment at or after it, in order. Torn tails are counted and
// discarded, never errors; that is the normal post-crash state.
//
// TTL across restarts: a monotonic clock does not survive the process, so
// every record carries wall-clock milliseconds (injectable for tests) and
// recovery drops sessions whose last activity is older than the TTL
// instead of resurrecting them.
#ifndef AIGS_SERVICE_DURABLE_STORE_H_
#define AIGS_SERVICE_DURABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "service/session_codec.h"
#include "service/wal.h"
#include "util/status.h"

namespace aigs {

using SessionId = std::uint64_t;  // mirrors session_manager.h

struct DurabilityOptions {
  /// Directory holding the WAL segments and checkpoints (created if
  /// absent; parents too).
  std::string dir;
  WalSyncOptions sync;
  /// WAL records between automatic checkpoints (Engine triggers one off
  /// the hot path when the threshold is crossed); 0 = manual only.
  std::size_t checkpoint_every = 8192;
  /// Wall-clock milliseconds (Unix epoch); null = std::chrono::system_clock.
  /// Injectable so recovery-TTL tests need no real idle time.
  std::function<std::uint64_t()> wall_clock_millis;
  /// TEST ONLY (crash injection): runs after every successful WAL append,
  /// BEFORE the engine acks the operation to its caller.
  std::function<void()> after_append_hook;
};

/// One session as the recovery scan reconstructed it.
struct RecoveredSessionRecord {
  SessionId id = 0;
  /// Wall-clock time of the session's last logged activity.
  std::uint64_t last_active_wall_ms = 0;
  SerializedSession saved;
};

/// Everything a recovery scan learned from the directory.
struct DurableScan {
  std::vector<RecoveredSessionRecord> sessions;  // sorted by id
  /// Lower bound for the id counter so recovered ids are never reissued.
  SessionId next_session_id = 1;
  std::size_t checkpoint_sessions = 0;  ///< sessions in the loaded checkpoint
  std::uint64_t wal_records = 0;        ///< valid WAL records applied
  std::uint64_t torn_tails = 0;         ///< segments with a damaged tail
  std::uint64_t torn_bytes = 0;         ///< bytes those tails discarded
  std::uint64_t malformed_records = 0;  ///< CRC-valid but unusable records
  std::uint64_t invalid_checkpoints = 0;  ///< checkpoint files skipped
};

/// Point-in-time counters for Engine::Stats / the serve REPL.
struct DurableStoreStats {
  std::string dir;
  std::string fsync_policy;
  std::uint64_t segment_seq = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_records = 0;  ///< records in the current segment
  std::uint64_t wal_syncs = 0;    ///< fsyncs of the current segment
  std::uint64_t appends = 0;      ///< acked appends over the store's life
  std::uint64_t append_failures = 0;
  std::uint64_t records_since_checkpoint = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t last_checkpoint_wall_ms = 0;
  std::uint64_t last_sync_wall_ms = 0;
};

class DurableStore {
 public:
  /// True when `dir` already holds WAL segments or checkpoints — the guard
  /// Engine::EnableDurability uses to refuse silently shadowing state that
  /// should be Recover()ed instead.
  static bool HasState(const std::string& dir);

  /// Opens (creating if needed) the directory, scans existing state into
  /// `*scan`, and starts a fresh WAL segment after whatever is there (old
  /// segments are only deleted by the next checkpoint). The store never
  /// appends into a pre-existing segment, so a torn tail stays frozen on
  /// disk exactly as the scan interpreted it.
  static StatusOr<std::unique_ptr<DurableStore>> Open(
      DurabilityOptions options, DurableScan* scan);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // ---- logging (thread-safe; callers order per-session records via the
  // ---- session mutex) -------------------------------------------------------

  /// Logs session creation or wholesale replacement (Open/Resume/Migrate).
  Status AppendOpen(SessionId id, const SerializedSession& state);

  /// Logs one acked Answer. `index` is the step's transcript position;
  /// `fingerprint` the session's catalog fingerprint.
  Status AppendStep(SessionId id, std::uint64_t fingerprint,
                    std::size_t index, const TranscriptStep& step);

  /// Logs session close.
  Status AppendClose(SessionId id);

  /// Fsyncs the current segment regardless of policy (graceful shutdown).
  Status Sync();

  /// True when the auto-checkpoint threshold has been crossed.
  bool ShouldCheckpoint() const;

  // ---- checkpointing ---------------------------------------------------------

  struct CheckpointSession {
    SessionId id = 0;
    std::uint64_t last_active_wall_ms = 0;
    std::string blob;  ///< aigs-session/2 encoding
  };

  /// Rotates the WAL to a fresh segment and returns its sequence number.
  /// The caller then snapshots live sessions (concurrent appends land in
  /// the new segment and are deduped at replay by step index) and calls
  /// CommitCheckpoint.
  StatusOr<std::uint64_t> BeginCheckpoint();

  /// Writes checkpoint `seq` atomically (tmp → fsync → rename → dir
  /// fsync), then deletes segments and checkpoints older than `seq`. On
  /// failure the old state remains authoritative — recovery composes the
  /// previous checkpoint with every surviving segment.
  Status CommitCheckpoint(std::uint64_t seq,
                          const std::vector<CheckpointSession>& sessions,
                          SessionId next_id);

  std::uint64_t NowWallMillis() const;
  const DurabilityOptions& options() const { return options_; }
  DurableStoreStats Stats() const;

 private:
  explicit DurableStore(DurabilityOptions options);

  Status AppendRecord(const std::string& payload);

  DurabilityOptions options_;

  /// Guards the (seq, writer) pair across segment rotation; appends take
  /// it shared (the writer serializes internally), rotation exclusive.
  mutable std::shared_mutex rotate_mu_;
  std::uint64_t seq_ = 0;
  std::unique_ptr<WalWriter> wal_;

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> append_failures_{0};
  std::atomic<std::uint64_t> records_since_checkpoint_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> last_checkpoint_wall_ms_{0};
  std::atomic<std::uint64_t> last_sync_wall_ms_{0};
  std::atomic<std::uint64_t> seen_syncs_{0};
};

}  // namespace aigs

#endif  // AIGS_SERVICE_DURABLE_STORE_H_
