// Average-vs-worst-case tension at dataset scale — Example 2's point writ
// large: WIGS optimizes the maximum number of questions any single object
// can need, the greedy policy the expected number; each wins its own
// objective.
#include <vector>

#include "bench/bench_common.h"
#include "eval/cost_profile.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

void RunDataset(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;

  AsciiTable table({"Algorithm", "E[questions]", "median", "p90", "p99",
                    "max (WIGS objective)"});
  TopDownPolicy top_down(h);
  const auto wigs = MakeWigsPolicy(h);
  const auto greedy = MakeGreedyPolicy(h, dist);
  const std::vector<const Policy*> policies{&top_down, wigs.get(),
                                            greedy.get()};
  for (const Policy* policy : policies) {
    const EvalStats stats = EvaluateExact(*policy, h, dist);
    const CostProfile profile(stats.per_target_cost, dist);
    table.AddRow({policy->name(), FormatDouble(profile.Mean()),
                  std::to_string(profile.Median()),
                  std::to_string(profile.P90()),
                  std::to_string(profile.P99()),
                  std::to_string(stats.max_cost)});
  }
  std::printf("%s\n%s\n", dataset.name.c_str(), table.ToString().c_str());
}

int Main() {
  PrintBanner("Average-case vs worst-case objectives (Example 2 at scale)");
  const double scale = DatasetScale();
  RunDataset(MakeAmazonDataset(scale));
  RunDataset(MakeImageNetDataset(scale));
  std::printf("shape: greedy wins the expectation by a wide margin while "
              "WIGS stays competitive on\nthe worst case — the trade-off "
              "that motivates AIGS (§I, Example 2).\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
