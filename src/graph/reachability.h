// Transitive-closure reachability index. Answers reach(u, v) in O(1) and
// computes reachable-set weights for every node — the initialization step of
// GreedyDAG (w̃(v) = w(G_v)) and the ground truth behind the simulated
// oracle.
//
// Three storage modes:
//   - Euler intervals for tree hierarchies — O(n) memory.
//   - Dense bitset closure rows for DAGs — O(n²/8) memory (~96 MB for the
//     paper's 28k-node ImageNet hierarchy), built in reverse topological
//     order.
//   - Compressed closure rows (graph/compressed_closure.h) — interval /
//     chunked hybrid rows over a DFS-preorder permutation, built streaming
//     with one dense scratch row. kAuto switches to this when dense rows
//     would blow the configured byte threshold, which is what makes
//     million-node catalogs buildable at all: the dense estimate at 1M
//     nodes is ~125 GB.
#ifndef AIGS_GRAPH_REACHABILITY_H_
#define AIGS_GRAPH_REACHABILITY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/compressed_closure.h"
#include "graph/digraph.h"
#include "util/bitset.h"
#include "util/common.h"

namespace aigs {

class ThreadPool;

/// Storage selection for ReachabilityIndex.
struct ReachabilityOptions {
  enum class Closure {
    kAuto,        // dense unless the estimate exceeds the threshold
    kDense,       // force dense bitset rows
    kCompressed,  // force compressed rows
  };
  Closure closure = Closure::kAuto;

  /// Trees normally use Euler intervals regardless of `closure`; setting
  /// this forces the closure machinery on trees too, so closure-path code
  /// can be exercised (and benched) on every hierarchy shape.
  bool force_closure_on_trees = false;

  /// kAuto picks compressed storage when the dense closure estimate
  /// n·⌈n/64⌉·8 bytes exceeds this (default 256 MB — every paper-scale
  /// dataset stays dense, million-node catalogs go compressed).
  std::size_t compress_threshold_bytes = std::size_t{256} << 20;

  /// Closure build concurrency: 0 = hardware concurrency, 1 = serial.
  /// Parallel builds levelize rows by dependency depth and shard each
  /// level; the resulting index is bit-identical to a serial build (and,
  /// for compressed storage, byte-identical in its encoded pools). Euler
  /// (tree) builds are always serial — they are O(n) already.
  int build_threads = 0;

  /// Caller-owned pool to shard the closure build on (overrides
  /// `build_threads`). Must not be one of the pool's own workers calling
  /// in.
  ThreadPool* build_pool = nullptr;
};

/// O(1) reachability oracle over a finalized Digraph.
class ReachabilityIndex {
 public:
  enum class Storage { kEuler, kDenseClosure, kCompressedClosure };

  /// Builds the index. Uses Euler intervals when `g.IsTree()` (unless
  /// forced off), otherwise dense or compressed closure rows per
  /// `options`. The graph must outlive the index.
  explicit ReachabilityIndex(const Digraph& g, ReachabilityOptions options = {});

  /// True iff v is reachable from u (u reaches u).
  bool Reaches(NodeId u, NodeId v) const {
    switch (storage_) {
      case Storage::kEuler:
        return tin_[v] >= tin_[u] && tin_[v] < tout_[u];
      case Storage::kDenseClosure:
        return closure_[u].Test(v);
      case Storage::kCompressedClosure:
        return compressed_->Reaches(u, v);
    }
    return false;
  }

  /// |R(u)|: number of nodes reachable from u, u included.
  std::size_t ReachableCount(NodeId u) const {
    return reach_count_[u];
  }

  /// Σ_{x ∈ R(u)} weights[x]. `weights` must have one entry per node.
  /// Exact uint64 arithmetic; callers guarantee no overflow (weights are
  /// bounded by the distribution scale).
  Weight WeightOfReachableSet(NodeId u,
                              const std::vector<Weight>& weights) const;

  /// Computes WeightOfReachableSet for every node in one pass. For trees
  /// this is a subtree-sum DP; for dense DAGs one closure scan; compressed
  /// rows settle against position-space prefix sums (O(1) per interval row
  /// and per run).
  std::vector<Weight> AllReachableSetWeights(
      const std::vector<Weight>& weights) const;

  /// Invokes fn(x) for every x ∈ R(u) (order unspecified).
  template <typename Fn>
  void ForEachReachable(NodeId u, Fn&& fn) const {
    switch (storage_) {
      case Storage::kEuler:
        for (std::uint32_t t = tin_[u]; t < tout_[u]; ++t) {
          fn(euler_to_node_[t]);
        }
        break;
      case Storage::kDenseClosure:
        closure_[u].ForEachSetBit([&fn](std::size_t v) {
          fn(static_cast<NodeId>(v));
        });
        break;
      case Storage::kCompressedClosure:
        compressed_->ForEachPosInRow(u, [this, &fn](std::size_t p) {
          fn(compressed_->node_at_pos(p));
        });
        break;
    }
  }

  /// Which representation the index chose.
  Storage storage() const { return storage_; }

  /// True when the index is in Euler (tree) mode.
  bool euler_mode() const { return storage_ == Storage::kEuler; }

  /// Euler-tour interval of u: R(u) = nodes at Euler positions
  /// [EulerBegin(u), EulerEnd(u)). Euler mode only.
  std::uint32_t EulerBegin(NodeId u) const {
    AIGS_DCHECK(euler_mode());
    return tin_[u];
  }
  std::uint32_t EulerEnd(NodeId u) const {
    AIGS_DCHECK(euler_mode());
    return tout_[u];
  }

  /// Node occupying Euler position t. Euler mode only.
  NodeId NodeAtEuler(std::uint32_t t) const {
    AIGS_DCHECK(euler_mode());
    return euler_to_node_[t];
  }

  /// Closure row of u: bit v set iff u reaches v. Dense closure mode only —
  /// the word-parallel form of R(u) the selection layer intersects with the
  /// alive mask.
  const DynamicBitset& ClosureRow(NodeId u) const {
    AIGS_DCHECK(storage_ == Storage::kDenseClosure);
    return closure_[u];
  }

  /// Compressed rows. Compressed closure mode only.
  const CompressedClosure& compressed() const {
    AIGS_DCHECK(storage_ == Storage::kCompressedClosure);
    return *compressed_;
  }

  /// Bytes held by the reachability structures themselves (excluding the
  /// graph).
  std::size_t MemoryBytes() const;

  /// Dense closure estimate n·⌈n/64⌉·8 for an n-node graph, computed in
  /// 128-bit so million-node inputs cannot overflow the size math.
  static U128 DenseClosureBytes(std::size_t n) {
    return static_cast<U128>(n) * ((n + 63) / 64) * 8;
  }

  const Digraph& graph() const { return *graph_; }

 private:
  void BuildEuler();
  void BuildClosure(const ReachabilityOptions& options);

  const Digraph* graph_;
  Storage storage_;

  // Euler mode: tin/tout intervals and the Euler order.
  std::vector<std::uint32_t> tin_;
  std::vector<std::uint32_t> tout_;
  std::vector<NodeId> euler_to_node_;

  // Dense closure mode: one bitset row per node.
  std::vector<DynamicBitset> closure_;

  // Compressed closure mode.
  std::unique_ptr<CompressedClosure> compressed_;

  std::vector<std::size_t> reach_count_;
};

}  // namespace aigs

#endif  // AIGS_GRAPH_REACHABILITY_H_
