// Table III reproduction: expected cost under the "real" data distribution
// (our Zipf object-count stand-in; DESIGN.md "Substitutions").
//
// Paper values (full scale):
//   Amazon   | TopDown 92.23  | MIGS 89.19 | WIGS 37.35 | GreedyTree 21.02
//   ImageNet | TopDown 101.18 | MIGS 96.28 | WIGS 30.18 | GreedyDAG  22.29
// The absolute numbers depend on the real hierarchies; the orderings and
// improvement factors are the reproduction target.
#include "bench/bench_common.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

int Main() {
  PrintBanner("Table III: cost under real data distribution");
  const double scale = DatasetScale();
  AsciiTable table({"Dataset", "TopDown", "MIGS", "WIGS",
                    "GreedyTree/GreedyDAG"});
  for (const Dataset& d :
       {MakeAmazonDataset(scale), MakeImageNetDataset(scale)}) {
    const CompetitorCosts c =
        EvaluateCompetitors(d.hierarchy, d.real_distribution);
    table.AddRow({d.name, FormatDouble(c.top_down), FormatDouble(c.migs),
                  FormatDouble(c.wigs), FormatDouble(c.greedy)});
    std::printf("%s: greedy saves %s%% vs TopDown, %s%% vs MIGS, %s%% vs "
                "WIGS\n",
                d.name.c_str(),
                FormatDouble((1 - c.greedy / c.top_down) * 100, 1).c_str(),
                FormatDouble((1 - c.greedy / c.migs) * 100, 1).c_str(),
                FormatDouble((1 - c.greedy / c.wigs) * 100, 1).c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("paper: Amazon 92.23/89.19/37.35/21.02 ; "
              "ImageNet 101.18/96.28/30.18/22.29\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
