// Scaling study (beyond the paper's fixed-size tables): how the expected
// cost of each algorithm grows with hierarchy size. Greedy and WIGS grow
// logarithmically-ish (they halve candidate mass per question); TopDown and
// MIGS grow with depth × fan-out — the gap widens with scale, which is why
// the full-size Table III shows larger savings than scaled-down runs.
#include "bench/bench_common.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

void RunFamily(const char* name, Dataset (*make)(double)) {
  AsciiTable table({"#nodes", "TopDown", "MIGS", "WIGS", "Greedy",
                    "Greedy/TopDown"});
  for (const double scale : {0.05, 0.10, 0.20, 0.40}) {
    const Dataset dataset = make(scale);
    const CompetitorCosts c =
        EvaluateCompetitors(dataset.hierarchy, dataset.real_distribution);
    table.AddRow({FormatWithCommas(dataset.hierarchy.NumNodes()),
                  FormatDouble(c.top_down), FormatDouble(c.migs),
                  FormatDouble(c.wigs), FormatDouble(c.greedy),
                  FormatDouble(c.greedy / c.top_down * 100, 1) + "%"});
  }
  std::printf("%s\n%s\n", name, table.ToString().c_str());
}

int Main() {
  std::printf("== Scaling study: expected cost vs hierarchy size ==\n\n");
  RunFamily("Amazon-like tree (real distribution)", &MakeAmazonDataset);
  RunFamily("ImageNet-like DAG (real distribution)", &MakeImageNetDataset);
  std::printf("shape: greedy's share of the TopDown cost shrinks as the "
              "hierarchy grows.\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
