#include "core/greedy_dag.h"

#include <vector>

#include "util/epoch_marker.h"

namespace aigs {
namespace {

class GreedyDagSession final : public SearchSession {
 public:
  GreedyDagSession(const ReachWeightBase& base, bool disable_pruning)
      : state_(base),
        disable_pruning_(disable_pruning),
        visited_(base.hierarchy().NumNodes()) {}

  Query PlanQuestion() const override {
    if (state_.AliveCount() == 1) {
      return Query::Done(state_.Target());
    }
    return Query::ReachQuery(SelectQueryNode());
  }

  void ApplyReach(NodeId q, bool yes) override {
    if (yes) {
      state_.ApplyYes(q);
    } else {
      state_.ApplyNo(q);
    }
  }

  // Observed fold (cross-epoch migration): classify R(q) ∩ C through the
  // reachability index first — DagSearchState's appliers require an alive
  // q, which an observed question need not be.
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const Hierarchy& h = state_.base().hierarchy();
    const NodeId q = step.nodes[0];
    if (q >= h.NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    const ReachabilityIndex& reach = h.reach();
    std::size_t inside = 0;
    state_.candidates().bits().ForEachSetBit([&](std::size_t raw) {
      inside += reach.Reaches(q, static_cast<NodeId>(raw)) ? 1 : 0;
    });
    const std::size_t alive = state_.AliveCount();
    if (step.yes) {
      if (inside == 0) {
        return Status::InvalidArgument(
            "observed yes for node " + std::to_string(q) +
            " would eliminate every candidate (inconsistent transcript)");
      }
      if (!state_.IsAlive(q)) {
        if (inside == alive) {
          return Status::OK();  // no information; keep the alive root
        }
        return Status::Unimplemented(
            "observed yes for eliminated node " + std::to_string(q) +
            " still splits the candidates");
      }
      if (q != state_.root()) {
        state_.ApplyYes(q);
      }
      return Status::OK();
    }
    if (inside == 0) {
      return Status::OK();  // already known
    }
    if (inside == alive) {
      return Status::InvalidArgument(
          "observed no for node " + std::to_string(q) +
          " would eliminate every candidate (inconsistent transcript)");
    }
    if (!state_.IsAlive(q)) {
      return Status::Unimplemented(
          "observed no for eliminated node " + std::to_string(q) +
          " still splits the candidates");
    }
    state_.ApplyNo(q);
    return Status::OK();
  }

 private:
  // Algorithm 6 lines 4–11: BFS from the root over alive nodes; consider
  // every discovered child as a middle-point candidate, but only descend
  // below children that still dominate half the remaining weight.
  NodeId SelectQueryNode() const {
    const Digraph& g = state_.graph();
    const NodeId r = state_.root();
    const Weight total = state_.TotalAlive();
    NodeId best = kInvalidNode;
    Weight best_diff = 0;

    visited_.NewEpoch();
    queue_.clear();
    queue_.push_back(r);
    visited_.Visit(r);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId u = queue_[head];
      for (const NodeId v : g.Children(u)) {
        if (visited_.IsVisited(v) || !state_.IsAlive(v)) {
          continue;
        }
        visited_.Visit(v);
        // Compare w against total - w instead of forming 2*w, which can
        // overflow Weight for totals above 2^63 (kRealScale-scaled
        // distributions on large catalogs get close).
        const Weight w = state_.ReachWeight(v);
        const Weight rest = total - w;  // w <= total: reach of alive subset
        const Weight diff = w > rest ? w - rest : rest - w;
        if (best == kInvalidNode || diff < best_diff) {
          best = v;
          best_diff = diff;
        }
        if (disable_pruning_ || w > rest) {
          queue_.push_back(v);
        }
      }
    }
    // AliveCount() > 1 plus the downward-closure invariant guarantee the
    // root has at least one alive child.
    AIGS_CHECK(best != kInvalidNode);
    return best;
  }

  DagSearchState state_;
  bool disable_pruning_;
  // BFS scratch for the planner — memoized, reset per plan.
  mutable EpochMarker visited_;
  mutable std::vector<NodeId> queue_;
};

}  // namespace

GreedyDagPolicy::GreedyDagPolicy(const Hierarchy& hierarchy,
                                 const Distribution& dist,
                                 GreedyDagOptions options)
    : options_(options),
      base_(hierarchy, options.use_rounded_weights
                           ? RoundWeights(dist, options.rounding)
                           : dist.weights()) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
}

std::unique_ptr<SearchSession> GreedyDagPolicy::NewSession() const {
  return std::make_unique<GreedyDagSession>(
      base_, options_.disable_dominance_pruning);
}

}  // namespace aigs
