// TopDown: the naive strategy from the paper's introduction — starting at
// the root, query each child in order until one answers yes, descend, and
// repeat; when every child answers no, the current node is the target.
// Distribution-oblivious, hence its flat cost across probability settings
// (Tables IV/V).
#ifndef AIGS_BASELINES_TOP_DOWN_H_
#define AIGS_BASELINES_TOP_DOWN_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"

namespace aigs {

/// Naive top-down baseline (works on trees and DAGs).
class TopDownPolicy : public Policy {
 public:
  explicit TopDownPolicy(const Hierarchy& hierarchy)
      : hierarchy_(&hierarchy) {}

  std::string name() const override { return "TopDown"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
};

}  // namespace aigs

#endif  // AIGS_BASELINES_TOP_DOWN_H_
