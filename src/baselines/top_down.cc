#include "baselines/top_down.h"

namespace aigs {
namespace {

class TopDownSession final : public SearchSession {
 public:
  explicit TopDownSession(const Hierarchy& hierarchy)
      : hierarchy_(&hierarchy),
        graph_(&hierarchy.graph()),
        node_(hierarchy.graph().root()) {}

  Query PlanQuestion() const override {
    const auto children = graph_->Children(node_);
    if (child_idx_ >= children.size()) {
      return Query::Done(node_);
    }
    return Query::ReachQuery(children[child_idx_]);
  }

  void ApplyReach(NodeId q, bool yes) override {
    AIGS_CHECK(child_idx_ < graph_->Children(node_).size());
    AIGS_CHECK(q == graph_->Children(node_)[child_idx_]);
    if (yes) {
      node_ = q;
      child_idx_ = 0;
    } else {
      ++child_idx_;
    }
  }

  // Observed fold (cross-epoch migration): a question recorded under
  // another epoch need not be the current scan probe (ApplyReach is fatal
  // on that). Rewrite the fact against (node_, child_idx_): a yes below
  // the current node descends, a no matching the scan head advances, and
  // facts the automaton cannot encode are forgotten (it re-asks them).
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const NodeId q = step.nodes[0];
    if (q >= hierarchy_->NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    const ReachabilityIndex& reach = hierarchy_->reach();
    const auto children = graph_->Children(node_);
    if (step.yes) {
      if (q == node_ || reach.Reaches(q, node_)) {
        return Status::OK();  // ancestor-or-self: already known
      }
      if (!reach.Reaches(node_, q)) {
        // Outside the current subtree: a contradiction on a tree, a
        // consistent-but-unrepresentable fact on a DAG (drop it).
        return hierarchy_->is_tree()
                   ? Status::InvalidArgument(
                         "observed yes for node " + std::to_string(q) +
                         " outside the current descent subtree")
                   : Status::OK();
      }
      for (std::size_t i = 0; i < child_idx_ && i < children.size(); ++i) {
        if (children[i] == q || reach.Reaches(children[i], q)) {
          return Status::InvalidArgument(
              "observed yes for node " + std::to_string(q) +
              " inside an already-eliminated child subtree");
        }
      }
      node_ = q;
      child_idx_ = 0;
      return Status::OK();
    }
    if (q == node_ || reach.Reaches(q, node_)) {
      return Status::InvalidArgument(
          "observed no for node " + std::to_string(q) +
          " contradicts the descent that reached the current node");
    }
    if (child_idx_ < children.size() && children[child_idx_] == q) {
      ++child_idx_;  // exactly the pending scan probe: native advance
    }
    // Any other no is either already implied (eliminated or disjoint
    // region) or not representable as a scan position; both are safe to
    // forget.
    return Status::OK();
  }

 private:
  const Hierarchy* hierarchy_;
  const Digraph* graph_;
  NodeId node_;
  std::size_t child_idx_ = 0;
};

}  // namespace

std::unique_ptr<SearchSession> TopDownPolicy::NewSession() const {
  return std::make_unique<TopDownSession>(*hierarchy_);
}

}  // namespace aigs
