// Synthetic stand-ins for the paper's evaluation datasets (Table II). The
// real Amazon product hierarchy and the ImageNet/WordNet category DAG are
// not redistributable; these generators reproduce the statistics the paper
// reports — node count, height, maximum out-degree, tree/DAG type — with a
// preferential-attachment shape (heavy-tailed fan-out, shallow depth) that
// mirrors real catalog hierarchies. See DESIGN.md "Substitutions".
#ifndef AIGS_DATA_SYNTHETIC_CATALOG_H_
#define AIGS_DATA_SYNTHETIC_CATALOG_H_

#include <cstdint>

#include "graph/digraph.h"
#include "prob/distribution.h"
#include "util/rng.h"

namespace aigs {

/// Generation parameters; defaults reproduce Table II.
struct CatalogParams {
  std::size_t num_nodes = 0;
  int height = 0;
  std::size_t max_out_degree = 0;
  /// Fraction of nodes receiving one extra parent (DAG generator only).
  double extra_parent_frac = 0.05;
  std::uint64_t seed = 2022;
};

/// Table II row "Amazon": tree, 29,240 nodes, height 10, max degree 225.
CatalogParams AmazonParams();

/// Table II row "ImageNet": DAG, 27,714 nodes, height 13, max degree 402.
CatalogParams ImageNetParams();

/// Million-node bench catalog: the same preferential-attachment shape at
/// `num_nodes` nodes, with the extra-parent fraction bounded low enough that
/// the transitive closure stays compressible (mostly tree-pure rows — the
/// bigcatalog suite's memory gate depends on it). Requires num_nodes large
/// enough for the height/degree pins (≥ ~300).
CatalogParams BigCatalogParams(std::size_t num_nodes);

/// Number of labeled objects in the paper's datasets.
inline constexpr std::uint64_t kAmazonNumObjects = 13'886'889;
inline constexpr std::uint64_t kImageNetNumObjects = 12'656'970;

/// Generates a tree with exactly the requested node count, height, and
/// maximum out-degree (preferential attachment with a depth cap, a spine
/// pinning the height and one hub pinning the maximum degree).
Digraph GenerateCatalogTree(const CatalogParams& params);

/// Generates a DAG: a catalog tree plus `extra_parent_frac·n` extra parent
/// edges that always point from a shallower to a deeper node, preserving the
/// exact height.
Digraph GenerateCatalogDag(const CatalogParams& params);

/// The paper's "real data distribution" stand-in: Zipf(s) object counts over
/// a random permutation of categories, scaled to exactly `total_objects`
/// (largest-remainder rounding; tail categories may hold zero objects).
Distribution AssignZipfObjectCounts(std::size_t num_nodes,
                                    std::uint64_t total_objects,
                                    double s = 1.0,
                                    std::uint64_t seed = 2022);

}  // namespace aigs

#endif  // AIGS_DATA_SYNTHETIC_CATALOG_H_
