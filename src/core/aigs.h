// Umbrella header: the public API of the aigs library.
//
// Quickstart:
//   #include "core/aigs.h"
//   Hierarchy h = *Hierarchy::Build(std::move(my_digraph));
//   Distribution dist = *Distribution::FromWeights(object_counts);
//   auto policy = MakeGreedyPolicy(h, dist);
//   ExactOracle oracle(h.reach(), hidden_target);
//   SearchResult r = RunSearch(*policy->NewSession(), oracle);
#ifndef AIGS_CORE_AIGS_H_
#define AIGS_CORE_AIGS_H_

#include "core/batched_greedy.h"   // IWYU pragma: export
#include "core/cost_sensitive.h"   // IWYU pragma: export
#include "core/greedy.h"           // IWYU pragma: export
#include "core/greedy_dag.h"       // IWYU pragma: export
#include "core/greedy_naive.h"     // IWYU pragma: export
#include "core/greedy_tree.h"      // IWYU pragma: export
#include "core/hierarchy.h"        // IWYU pragma: export
#include "core/policy.h"           // IWYU pragma: export
#include "core/policy_registry.h"  // IWYU pragma: export
#include "core/split_weight_index.h"  // IWYU pragma: export
#include "oracle/noisy_oracle.h"   // IWYU pragma: export
#include "oracle/oracle.h"         // IWYU pragma: export
#include "prob/distribution.h"     // IWYU pragma: export
#include "prob/rounding.h"         // IWYU pragma: export

#endif  // AIGS_CORE_AIGS_H_
