// Engine — the single public entry point to the interactive-graph-search
// system (the service form of FrameworkIGS, Algorithm 1).
//
// An Engine owns the current CatalogSnapshot (hot-swappable via Publish —
// each publish bumps the epoch; live sessions keep the snapshot they opened
// on) and a SessionManager of ID-addressed concurrent sessions. The request
// loop a front end drives is:
//
//     id     = engine.Open("greedy")          // O(1) on the prebuilt snapshot
//     query  = engine.Ask(id)                 // the pending question
//     status = engine.Answer(id, SessionAnswer::Reach(true))
//     ...repeat until Ask returns kDone...
//     blob   = engine.Save(id)                // suspend across restarts
//     id2    = engine.Resume(blob)            // exact replay-based restore
//
// Every operation is thread-safe and returns Status instead of aborting: a
// client that answers the wrong kind of question, an unknown ID, or a
// stale saved blob gets a typed error, never a process death (the
// SearchSession default-fatal OnChoice/OnReachBatch paths are guarded here,
// at the service boundary).
#ifndef AIGS_SERVICE_ENGINE_H_
#define AIGS_SERVICE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy.h"
#include "service/catalog_snapshot.h"
#include "service/plan_cache.h"
#include "service/session_codec.h"
#include "service/session_manager.h"
#include "util/status.h"

namespace aigs {

/// Client answer to a pending Query — the write half of the Ask/Answer
/// protocol. The kind must match the pending question's kind.
struct SessionAnswer {
  Query::Kind kind = Query::Kind::kReach;
  bool yes = false;                 // kReach
  std::vector<bool> batch;          // kReachBatch, aligned with the batch
  int choice = -1;                  // kChoice index, -1 = "none of these"

  static SessionAnswer Reach(bool yes) {
    SessionAnswer a;
    a.kind = Query::Kind::kReach;
    a.yes = yes;
    return a;
  }
  static SessionAnswer Batch(std::vector<bool> answers) {
    SessionAnswer a;
    a.kind = Query::Kind::kReachBatch;
    a.batch = std::move(answers);
    return a;
  }
  static SessionAnswer Choice(int index) {
    SessionAnswer a;
    a.kind = Query::Kind::kChoice;
    a.choice = index;
    return a;
  }
};

struct EngineOptions {
  SessionManagerOptions sessions;
  /// The per-epoch question-plan trie behind Ask. Enabled by default: with
  /// every policy a pure planner, cached and uncached engines emit
  /// bit-identical transcripts, so the cache is purely a throughput knob.
  PlanCacheOptions plan_cache;
};

/// Point-in-time operational counters (the serve REPL's `stats` command).
struct EngineStats {
  std::uint64_t epoch = 0;
  std::size_t live_sessions = 0;
  /// Live sessions keyed by the epoch they opened on (old epochs drain as
  /// their sessions finish after a hot swap).
  std::map<std::uint64_t, std::size_t> sessions_by_epoch;
  /// Current epoch's plan-cache counters (zeros when disabled or before the
  /// first Publish).
  bool plan_cache_enabled = false;
  PlanCacheStats plan_cache;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- snapshot lifecycle ---------------------------------------------------

  /// Builds a snapshot from `config` at the next epoch and makes it
  /// current. Existing sessions keep the snapshot they opened on; new
  /// sessions see the new one. Never pauses traffic.
  StatusOr<std::shared_ptr<const CatalogSnapshot>> Publish(
      CatalogConfig config);

  /// The current snapshot (null before the first Publish).
  std::shared_ptr<const CatalogSnapshot> snapshot() const;

  /// The current epoch (0 before the first Publish).
  std::uint64_t epoch() const;

  // ---- session operations ---------------------------------------------------

  /// Opens a session for one of the snapshot's prebuilt policy specs.
  /// O(1): the heavy state lives in the snapshot.
  StatusOr<SessionId> Open(const std::string& policy_spec);

  /// The pending question (or kDone carrying the identified target).
  /// Idempotent; refreshes the session's TTL. Consults the epoch's plan
  /// cache first — a warm common-prefix Ask is a hash walk, never a planner
  /// run — and falls back to the session's pure planner on a miss
  /// (populating the cache for every later session at the same prefix).
  StatusOr<Query> Ask(SessionId id);

  /// Applies an answer to the pending question. InvalidArgument when the
  /// answer kind (or shape) does not match the pending query,
  /// FailedPrecondition when the search already finished.
  Status Answer(SessionId id, const SessionAnswer& answer);

  /// Serializes the session as its answer transcript (SessionCodec format).
  StatusOr<std::string> Save(SessionId id);

  /// Restores a saved session by exact replay against the *current*
  /// snapshot: requires a matching catalog fingerprint and verifies each
  /// regenerated question equals the recorded one (transcript equality —
  /// guaranteed by policy determinism, Definition 6). Returns the new ID.
  StatusOr<SessionId> Resume(const std::string& serialized);

  /// Closes and discards a session.
  Status Close(SessionId id);

  SessionManager& sessions() { return sessions_; }

  /// The current epoch's plan cache (null when disabled or before the first
  /// Publish). Old epochs' caches live on in their sessions until those
  /// drain.
  std::shared_ptr<PlanCache> plan_cache() const;

  /// Operational counters: epoch, session counts (total and per epoch), and
  /// the current epoch's plan-cache hit/miss/evict numbers.
  EngineStats Stats() const;

 private:
  StatusOr<std::shared_ptr<ServiceSession>> FindSession(SessionId id);

  /// Atomically reads the current (snapshot, plan cache) pair.
  void CurrentEpochState(std::shared_ptr<const CatalogSnapshot>* snap,
                         std::shared_ptr<PlanCache>* cache) const;

  /// Builds a fresh ServiceSession on `snap` for `policy_spec` — the one
  /// place the snapshot/cache pairing and the plan-key seeding convention
  /// live (Open and Resume both construct through here).
  StatusOr<std::shared_ptr<ServiceSession>> BuildSession(
      std::shared_ptr<const CatalogSnapshot> snap,
      std::shared_ptr<PlanCache> cache, const std::string& policy_spec);

  /// The session's pending question: the memoized one if Ask already
  /// resolved it, else a cache hit, else the pure planner (whose answer is
  /// then inserted for every later session at the same prefix). Caller
  /// holds the session mutex.
  Query ResolvePending(ServiceSession& session);

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const CatalogSnapshot> snapshot_;
  std::shared_ptr<PlanCache> plan_cache_;
  std::uint64_t next_epoch_ = 1;
  PlanCacheOptions plan_cache_options_;
  SessionManager sessions_;
};

}  // namespace aigs

#endif  // AIGS_SERVICE_ENGINE_H_
