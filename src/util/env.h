// Environment-variable helpers that let benchmark binaries scale between a
// fast default configuration and the paper-scale configuration.
#ifndef AIGS_UTIL_ENV_H_
#define AIGS_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace aigs {

/// Reads an integer environment variable, falling back to `fallback` when
/// unset or unparsable.
std::int64_t EnvInt(const char* name, std::int64_t fallback);

/// Reads a boolean environment variable ("1"/"true"/"yes" → true).
bool EnvBool(const char* name, bool fallback);

}  // namespace aigs

#endif  // AIGS_UTIL_ENV_H_
