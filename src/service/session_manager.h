// SessionManager — ID-addressed, concurrent, TTL-evicting session store.
//
// The paper's interactive loop asks a human one question at a time; between
// a question and its answer the session must be suspendable and addressable
// by ID. The manager keeps sessions in a lock-sharded hash map: an ID is
// assigned from an atomic counter, its shard is a pure function of the ID,
// and every operation locks exactly one shard mutex — concurrent traffic
// for different sessions contends only 1/num_shards of the time.
//
// Expiry is TTL-based: every successful Find refreshes the session's
// last-touch time; a lookup past the TTL behaves as NotFound (and reaps the
// entry), and EvictExpired() sweeps all shards for bulk cleanup. The clock
// is injectable so eviction is unit-testable without sleeping.
#ifndef AIGS_SERVICE_SESSION_MANAGER_H_
#define AIGS_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "service/catalog_snapshot.h"
#include "service/plan_cache.h"
#include "service/session_codec.h"
#include "util/status.h"

namespace aigs {

/// Opaque session handle. Never reused within one manager's lifetime.
using SessionId = std::uint64_t;

/// One live interactive search: the snapshot it is bound to (keeping that
/// epoch's policies alive across hot swaps — until Engine::Migrate rebinds
/// it to a newer one), the policy session, and the answer transcript that
/// makes it serializable. `mutex` serializes the engine's per-session
/// operations, including the field swap a migration performs; the manager
/// itself only guards the map.
struct ServiceSession {
  std::shared_ptr<const CatalogSnapshot> snapshot;
  std::string policy_spec;
  const Policy* policy = nullptr;
  /// The plan trie of the session's current epoch (null when caching is
  /// disabled). Held per session so an epoch hot-swap retires the old trie
  /// together with its snapshot refcount as sessions drain or migrate off.
  std::shared_ptr<PlanCache> plan_cache;

  /// The bound snapshot's epoch, mirrored atomically so SessionsByEpoch can
  /// aggregate without taking every session mutex while migrations rebind
  /// `snapshot` concurrently.
  std::atomic<std::uint64_t> epoch{0};

  std::mutex mutex;
  std::unique_ptr<SearchSession> search;
  std::vector<TranscriptStep> transcript;
  /// Interned trie position for the transcript so far — the O(1) rolling
  /// plan key (kNoPlanPrefix when caching is off or past the depth cap).
  PlanPrefixId plan_prefix = kNoPlanPrefix;
  /// The question Ask last resolved (from the cache or the planner), so the
  /// matching Answer validates and applies without a second resolution.
  Query pending;
  bool has_pending = false;
  /// Set when a migration invalidated a question the client had already
  /// been shown: the next Answer is rejected until the client re-Asks (the
  /// new epoch's planner may pose a different question).
  bool reask_after_migration = false;
};

struct SessionManagerOptions {
  /// Lock shards. More shards = less contention, more memory.
  std::size_t num_shards = 16;
  /// Idle time before a session expires; 0 = never.
  std::uint64_t ttl_millis = 30 * 60 * 1000;
  /// Monotonic clock in milliseconds; null = std::chrono::steady_clock.
  /// Inject a fake in tests to exercise eviction deterministically.
  std::function<std::uint64_t()> clock_millis;
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Stores a session and returns its new ID.
  SessionId Insert(std::shared_ptr<ServiceSession> session);

  /// Stores a session under a SPECIFIC id — crash recovery restores every
  /// acked session with its original id. FailedPrecondition when the id is
  /// 0 or already live. The id counter is raised past `id`, so recovered
  /// ids are never reissued to new sessions.
  Status InsertWithId(SessionId id, std::shared_ptr<ServiceSession> session);

  /// Raises the next-id counter to at least `next_id` (recovery applies
  /// the persisted watermark even when every recovered session expired).
  void ReserveIds(SessionId next_id);

  /// The id the next Insert would assign (persisted by checkpoints).
  SessionId next_id() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Looks a session up and refreshes its TTL. NotFound for unknown or
  /// expired IDs (expired entries are reaped on the spot).
  StatusOr<std::shared_ptr<ServiceSession>> Find(SessionId id);

  /// Looks a session up WITHOUT refreshing its TTL or reaping it — null for
  /// unknown or expired IDs. The background drain sweep re-checks liveness
  /// through this before migrating a session it captured earlier: a drain
  /// must neither resurrect a TTL-evicted session (a Find would refresh the
  /// touch time) nor count one as migrated.
  std::shared_ptr<ServiceSession> Peek(SessionId id) const;

  /// Removes a session; NotFound if absent.
  Status Erase(SessionId id);

  /// Sweeps every shard, dropping sessions idle past the TTL. Returns the
  /// number evicted.
  std::size_t EvictExpired();

  /// Live session count (racy under concurrent mutation, exact when quiet).
  std::size_t size() const;

  /// Live session counts keyed by each session's current snapshot epoch
  /// (racy under concurrent mutation, exact when quiet). Surfaced through
  /// Engine::Stats and the serve REPL's `stats` command.
  std::map<std::uint64_t, std::size_t> SessionsByEpoch() const;

  /// A point-in-time copy of every live (id, session) pair, without
  /// touching TTLs — the iteration base for Engine's post-publish
  /// migration sweep (which then try-locks each session individually).
  std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>>
  SnapshotSessions() const;

  /// SnapshotSessions plus each session's idle time (now - last touch) at
  /// capture. Checkpoints persist idleness this way: the monotonic session
  /// clock does not survive a restart, so the durable store converts idle
  /// time to a wall-clock last-active stamp for the recovery TTL check.
  struct IdleEntry {
    SessionId id = 0;
    std::shared_ptr<ServiceSession> session;
    std::uint64_t idle_millis = 0;
  };
  std::vector<IdleEntry> SnapshotWithIdle() const;

 private:
  struct Entry {
    std::shared_ptr<ServiceSession> session;
    std::uint64_t last_touch_millis = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SessionId, Entry> sessions;
  };

  std::uint64_t NowMillis() const;
  Shard& ShardFor(SessionId id) {
    return shards_[static_cast<std::size_t>(id) % shards_.size()];
  }
  const Shard& ShardFor(SessionId id) const {
    return shards_[static_cast<std::size_t>(id) % shards_.size()];
  }

  SessionManagerOptions options_;
  std::atomic<SessionId> next_id_{1};
  std::vector<Shard> shards_;
};

}  // namespace aigs

#endif  // AIGS_SERVICE_SESSION_MANAGER_H_
