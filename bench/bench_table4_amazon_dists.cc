// Table IV reproduction: cost under synthetic probability settings on the
// Amazon-like tree. Randomized settings average over AIGS_REPS repetitions
// (paper: 20).
//
// Paper values (full scale):
//   Equal       | 81.17 | 80.81 | 27.42 | 25.35
//   Uniform     | 81.28 | 81.19 | 27.47 | 23.68
//   Exponential | 82.42 | 81.65 | 27.37 | 22.70
//   Zipf        | 82.09 | 81.94 | 27.55 | 14.03
#include "bench/bench_common.h"
#include "util/ascii_table.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

enum class Setting { kEqual, kUniform, kExponential, kZipf };

Distribution MakeSetting(Setting s, std::size_t n, Rng& rng) {
  switch (s) {
    case Setting::kEqual:
      return EqualDistribution(n);
    case Setting::kUniform:
      return UniformRandomDistribution(n, rng);
    case Setting::kExponential:
      return ExponentialRandomDistribution(n, rng);
    case Setting::kZipf:
      return ZipfRandomDistribution(n, 2.0, rng);
  }
  AIGS_CHECK(false);
  return EqualDistribution(1);
}

int RunTable(const Dataset& dataset, const char* paper_reference) {
  const Hierarchy& h = dataset.hierarchy;
  AsciiTable table({"Distribution", "TopDown", "MIGS", "WIGS",
                    h.is_tree() ? "GreedyTree" : "GreedyDAG"});
  const std::size_t reps = Reps();
  const struct {
    Setting setting;
    const char* name;
  } kSettings[] = {{Setting::kEqual, "Equal"},
                   {Setting::kUniform, "Uniform"},
                   {Setting::kExponential, "Exponential"},
                   {Setting::kZipf, "Zipf"}};
  for (const auto& [setting, name] : kSettings) {
    const std::size_t runs = setting == Setting::kEqual ? 1 : reps;
    CompetitorCosts sum;
    for (std::size_t r = 0; r < runs; ++r) {
      Rng rng(1000 + 31 * r);
      const Distribution dist = MakeSetting(setting, h.NumNodes(), rng);
      const CompetitorCosts c = EvaluateCompetitors(h, dist);
      sum.top_down += c.top_down;
      sum.migs += c.migs;
      sum.wigs += c.wigs;
      sum.greedy += c.greedy;
    }
    const auto denom = static_cast<double>(runs);
    table.AddRow({name, FormatDouble(sum.top_down / denom),
                  FormatDouble(sum.migs / denom),
                  FormatDouble(sum.wigs / denom),
                  FormatDouble(sum.greedy / denom)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%s\n", paper_reference);
  return 0;
}

int Main() {
  PrintBanner("Table IV: cost under probability settings (Amazon)");
  return RunTable(MakeAmazonDataset(DatasetScale()),
                  "paper: Equal 81.17/80.81/27.42/25.35 ; Uniform "
                  "81.28/81.19/27.47/23.68 ;\n       Exponential "
                  "82.42/81.65/27.37/22.70 ; Zipf 82.09/81.94/27.55/14.03");
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
