// Heavy-path decomposition (Sleator–Tarjan), parameterized by an arbitrary
// non-negative node weight (Definition 10 of the paper: the *weighted* heavy
// path picks the child with the largest subtree weight; the classic
// decomposition is the unit-weight special case). The WIGS baseline binary-
// searches along these paths; tests validate Theorem 5 against it.
#ifndef AIGS_TREE_HEAVY_PATH_H_
#define AIGS_TREE_HEAVY_PATH_H_

#include <vector>

#include "tree/tree.h"
#include "util/common.h"

namespace aigs {

/// Static heavy-path decomposition of a tree.
class HeavyPathDecomposition {
 public:
  /// Decomposes by subtree node counts (classic heavy paths).
  static HeavyPathDecomposition BySize(const Tree& tree);

  /// Decomposes by subtree weights Σ weights over each subtree
  /// (the paper's weighted heavy path). Ties broken toward the
  /// first child in insertion order.
  static HeavyPathDecomposition ByWeight(const Tree& tree,
                                         const std::vector<Weight>& weights);

  /// Heavy child of v, or kInvalidNode for leaves.
  NodeId HeavyChild(NodeId v) const { return heavy_child_[v]; }

  /// Topmost node of the heavy path containing v.
  NodeId Head(NodeId v) const { return head_[v]; }

  /// The maximal heavy path starting at `from` and repeatedly following
  /// heavy children; includes `from` itself.
  std::vector<NodeId> PathFrom(NodeId from) const;

  /// Number of distinct heavy paths (each node lies on exactly one).
  std::size_t NumPaths() const { return num_paths_; }

 private:
  static HeavyPathDecomposition Build(const Tree& tree,
                                      const std::vector<Weight>& subtree);

  std::vector<NodeId> heavy_child_;
  std::vector<NodeId> head_;
  std::size_t num_paths_ = 0;
};

}  // namespace aigs

#endif  // AIGS_TREE_HEAVY_PATH_H_
