// aigs_loadgen — closed-loop load generator for the aigs-wire/1 front end.
//
//   aigs_loadgen --target host:port [--target host:port ...]
//                --hierarchy <spec> [--policy greedy] [--connections 64]
//                [--max-requests N] [--duration-ms N] [--seed N] [--json]
//
// Drives real search sessions (open → ask/answer to completion → close)
// against one server, or several: with multiple --target flags every
// session id is placed ShardRing-consistently on its connection's shard,
// reproducing a ShardRouter fleet's traffic with zero cross-shard chatter.
// The hierarchy spec must match what the servers were started with — the
// generator answers each question from its own copy (see 'aigs serve').
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "data/dataset_io.h"
#include "net/loadgen.h"
#include "util/string_util.h"

namespace aigs::cli {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: aigs_loadgen --target host:port [--target ...] "
      "--hierarchy <spec>\n"
      "                    [--policy <spec>] [--connections N]\n"
      "                    [--max-requests N] [--duration-ms N] [--seed N]\n"
      "                    [--vnodes N] [--json]\n"
      "hierarchy-spec: a file path, builtin:{vehicle|fig2|fig3}, or\n"
      "synthetic:{tree|dag}:N[:seed] — must match the server's.\n");
  return 2;
}

int Main(int argc, char** argv) {
  net::LoadgenOptions options;
  std::string hierarchy_spec;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
      return Usage();
    }
    const std::string value = argv[++i];
    if (arg == "--target") {
      auto endpoint = net::ParseEndpoint(value);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     endpoint.status().ToString().c_str());
        return 2;
      }
      options.targets.push_back(*endpoint);
    } else if (arg == "--hierarchy") {
      hierarchy_spec = value;
    } else if (arg == "--policy") {
      options.policy_spec = value;
    } else {
      auto parsed = ParseUint64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        return 2;
      }
      if (arg == "--connections") {
        options.connections = static_cast<std::size_t>(*parsed);
      } else if (arg == "--max-requests") {
        options.max_requests = *parsed;
      } else if (arg == "--duration-ms") {
        options.duration_ms = static_cast<std::uint32_t>(*parsed);
      } else if (arg == "--seed") {
        options.seed = *parsed;
      } else if (arg == "--vnodes") {
        options.vnodes = static_cast<std::size_t>(*parsed);
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
        return Usage();
      }
    }
  }
  if (options.targets.empty() || hierarchy_spec.empty()) {
    return Usage();
  }

  auto graph = LoadHierarchySpec(hierarchy_spec);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 hierarchy.status().ToString().c_str());
    return 1;
  }
  options.hierarchy = &*hierarchy;

  auto result = net::RunLoadgen(options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const net::LoadgenResult& r = *result;
  if (json) {
    std::printf(
        "{\"targets\": %zu, \"connections\": %zu, \"requests\": %llu, "
        "\"errors\": %llu, \"sessions\": %llu, \"wrong_targets\": %llu, "
        "\"wall_ms\": %.3f, \"throughput_rps\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"mean_us\": %.1f}\n",
        options.targets.size(), options.connections,
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.sessions_completed),
        static_cast<unsigned long long>(r.wrong_targets), r.wall_ms,
        r.throughput_rps, r.p50_us, r.p99_us, r.mean_us);
  } else {
    std::printf("%llu request(s) in %.1f ms over %zu connection(s) to %zu "
                "target(s)\n",
                static_cast<unsigned long long>(r.requests), r.wall_ms,
                options.connections, options.targets.size());
    std::printf("throughput: %.0f req/s\n", r.throughput_rps);
    std::printf("latency: p50 %.1f us, p99 %.1f us, mean %.1f us\n",
                r.p50_us, r.p99_us, r.mean_us);
    std::printf("sessions: %llu completed, %llu error(s), %llu wrong "
                "target(s)\n",
                static_cast<unsigned long long>(r.sessions_completed),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.wrong_targets));
  }
  // Wrong targets mean the server answered questions against a different
  // catalog than ours — a config error worth a hard failure in CI.
  return r.wrong_targets == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aigs::cli

int main(int argc, char** argv) { return aigs::cli::Main(argc, argv); }
