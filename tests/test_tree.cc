#include "tree/tree.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tree/subtree_weights.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(Tree, RejectsNonTree) {
  Digraph g;
  g.AddNodes(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_FALSE(Tree::Build(g).ok());
}

TEST(Tree, ParentPointers) {
  Rng rng(1);
  const Digraph g = RandomTree(50, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Parent(tree->root()), kInvalidNode);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId c : g.Children(u)) {
      EXPECT_EQ(tree->Parent(c), u);
    }
  }
}

TEST(Tree, SubtreeMembershipMatchesParentChains) {
  Rng rng(2);
  const Digraph g = RandomTree(60, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  for (NodeId anc = 0; anc < g.NumNodes(); ++anc) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool expected = false;
      for (NodeId x = v; x != kInvalidNode; x = tree->Parent(x)) {
        if (x == anc) {
          expected = true;
          break;
        }
      }
      EXPECT_EQ(tree->InSubtree(anc, v), expected) << anc << " " << v;
    }
  }
}

TEST(Tree, SubtreeSizesSumCorrectly) {
  Rng rng(3);
  const Digraph g = RandomTree(80, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->SubtreeSize(tree->root()), 80u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::size_t expected = 1;
    for (const NodeId c : tree->Children(v)) {
      expected += tree->SubtreeSize(c);
    }
    EXPECT_EQ(tree->SubtreeSize(v), expected);
  }
}

TEST(Tree, PreorderIsSubtreeContiguous) {
  Rng rng(4);
  const Digraph g = RandomTree(40, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(tree->NodeAtPreorder(tree->PreorderIndex(v)), v);
  }
}

TEST(Tree, LcaBasics) {
  // Hand-built:      0
  //                 / \.
  //                1   2
  //               / \   \.
  //              3   4   5
  Digraph g;
  g.AddNodes(6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(1, 4);
  g.AddEdge(2, 5);
  ASSERT_TRUE(g.Finalize().ok());
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Lca(3, 4), 1u);
  EXPECT_EQ(tree->Lca(3, 5), 0u);
  EXPECT_EQ(tree->Lca(1, 3), 1u);
  EXPECT_EQ(tree->Lca(2, 2), 2u);
  EXPECT_EQ(tree->Lca(4, 2), 0u);
}

TEST(Tree, LcaMatchesBruteForceOnRandomTrees) {
  Rng rng(5);
  const Digraph g = RandomTree(70, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  auto brute_lca = [&](NodeId u, NodeId v) {
    // Walk u's ancestor chain into a set, then walk v upward.
    std::vector<bool> is_ancestor(g.NumNodes(), false);
    for (NodeId x = u; x != kInvalidNode; x = tree->Parent(x)) {
      is_ancestor[x] = true;
    }
    for (NodeId x = v; x != kInvalidNode; x = tree->Parent(x)) {
      if (is_ancestor[x]) {
        return x;
      }
    }
    return kInvalidNode;
  };
  Rng pick(6);
  for (int i = 0; i < 500; ++i) {
    const NodeId u = static_cast<NodeId>(pick.UniformInt(g.NumNodes()));
    const NodeId v = static_cast<NodeId>(pick.UniformInt(g.NumNodes()));
    EXPECT_EQ(tree->Lca(u, v), brute_lca(u, v)) << u << " " << v;
  }
}

TEST(Tree, DeepChainNoStackOverflow) {
  const Digraph g = PathGraph(100000);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->SubtreeSize(0), 100000u);
  EXPECT_EQ(tree->Depth(99999), 99999);
}

TEST(SubtreeWeights, MatchesBruteForce) {
  Rng rng(7);
  const Digraph g = RandomTree(60, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  std::vector<Weight> weights(g.NumNodes());
  for (auto& w : weights) {
    w = rng.UniformInt(50);
  }
  const auto subtree = ComputeSubtreeWeights(*tree, weights);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    Weight expected = 0;
    for (NodeId x = 0; x < g.NumNodes(); ++x) {
      if (tree->InSubtree(v, x)) {
        expected += weights[x];
      }
    }
    EXPECT_EQ(subtree[v], expected);
  }
}

TEST(SubtreeWeights, SizesMatchTreeIndex) {
  Rng rng(8);
  const Digraph g = RandomTree(45, rng);
  auto tree = Tree::Build(g);
  ASSERT_TRUE(tree.ok());
  const auto sizes = ComputeSubtreeSizes(*tree);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(sizes[v], tree->SubtreeSize(v));
  }
}

}  // namespace
}  // namespace aigs
