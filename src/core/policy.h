// Policy / SearchSession interfaces — the contract between question-asking
// strategies (the paper's "policies") and the harness that relays answers
// from an oracle (FrameworkIGS, Algorithm 1).
//
// A Policy is an immutable strategy bound to a (hierarchy, distribution)
// pair; NewSession() starts one search for one hidden target. Sessions are
// cheap (small overlays over shared base state) so evaluating the expected
// cost over all n possible targets stays fast.
#ifndef AIGS_CORE_POLICY_H_
#define AIGS_CORE_POLICY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace aigs {

/// What a session wants next.
struct Query {
  enum class Kind {
    kReach,       ///< boolean reachability question on `node`
    kReachBatch,  ///< several reachability questions asked in one round
                  ///< (§III-E batched extension); nodes in `choices`
    kChoice,      ///< multiple-choice question over `choices` (MIGS)
    kDone,        ///< search finished; `node` holds the identified target
  };

  static Query ReachQuery(NodeId node) {
    return Query{Kind::kReach, node, {}};
  }
  static Query ReachBatch(std::vector<NodeId> nodes) {
    return Query{Kind::kReachBatch, kInvalidNode, std::move(nodes)};
  }
  static Query ChoiceQuery(std::vector<NodeId> choices) {
    return Query{Kind::kChoice, kInvalidNode, std::move(choices)};
  }
  static Query Done(NodeId target) {
    return Query{Kind::kDone, target, {}};
  }

  Kind kind = Kind::kDone;
  /// Query node (kReach) or identified target (kDone).
  NodeId node = kInvalidNode;
  /// Presented categories (kChoice) or batched query nodes (kReachBatch).
  std::vector<NodeId> choices;
};

/// One answered question: what was asked and what the oracle said. The unit
/// of session transcripts (SessionCodec), plan-cache trie edges, and
/// divergence-tolerant replay (TryApplyObserved / Engine::Migrate).
struct TranscriptStep {
  Query::Kind kind = Query::Kind::kReach;
  /// Queried node(s): one entry for kReach, the batch/choice lists
  /// otherwise.
  std::vector<NodeId> nodes;
  bool yes = false;                 // kReach
  std::vector<bool> batch_answers;  // kReachBatch
  int choice = -1;                  // kChoice
  /// Replay bookkeeping, not transcript content: true when this step's
  /// question is NOT what the session's own planner would have asked at
  /// that point (it was recorded on another catalog epoch and folded in by
  /// TryApplyObserved). Excluded from plan-cache keys; preserved by
  /// SessionCodec so migrated sessions keep their divergence history.
  bool diverged = false;

  bool operator==(const TranscriptStep& other) const = default;
};

/// One interactive search for one hidden target. Implementations must be
/// deterministic: the same answer sequence always produces the same queries
/// (this is what makes a policy a decision tree, Definition 6).
///
/// The interface is split into a PLANNER and an APPLIER:
///
///  * PlanQuestion() is the pure planner — a const computation of the next
///    question from the candidate state the applied answers left behind.
///    "Pure" is enforced by const: a planner has no hidden mutable inputs.
///    The `mutable` members some planners touch are memoization of state
///    derived purely from the applied answers (BFS scratch, lazy heaps, the
///    phase automata of the baselines) — recomputable at will, never a
///    source of nondeterminism.
///  * ApplyReach / ApplyChoice / ApplyReachBatch fold an answer for a given
///    question into the candidate state. The question need NOT have been
///    planned by this session: a service-layer plan cache can hand the
///    engine a question another session's planner computed at the same
///    transcript, and the applier folds its answer in without ever running
///    the (possibly expensive) planner locally. Determinism guarantees the
///    supplied question equals what PlanQuestion() would have returned.
///
/// Next()/OnReach/OnChoice/OnReachBatch are the memoizing convenience
/// wrappers the in-process harness drives: Next() plans once and returns
/// the same Query until an answer invalidates it.
class SearchSession {
 public:
  virtual ~SearchSession() = default;

  /// Pure planner: the pending question, or Done. Deterministic and
  /// side-effect free (modulo memoized derived state; see above).
  virtual Query PlanQuestion() const = 0;

  /// The pending question, or Done. Plans at most once per answered step.
  Query Next() {
    if (!plan_valid_) {
      planned_ = PlanQuestion();
      plan_valid_ = true;
    }
    return planned_;
  }

  /// Delivers the answer to the kReach question on `q` (the planned
  /// question, whether planned locally or supplied by a plan cache).
  void OnReach(NodeId q, bool yes) {
    ApplyReach(q, yes);
    plan_valid_ = false;
  }

  /// Delivers the answer to the kChoice question: `answer` is an index
  /// into `choices`, or -1 for "none of these".
  void OnChoice(std::span<const NodeId> choices, int answer) {
    ApplyChoice(choices, answer);
    plan_valid_ = false;
  }

  /// Delivers the answers to the kReachBatch question; answers[i]
  /// corresponds to nodes[i].
  void OnReachBatch(std::span<const NodeId> nodes,
                    const std::vector<bool>& answers) {
    ApplyReachBatch(nodes, answers);
    plan_valid_ = false;
  }

  /// Validating variant for untrusted callers (the service boundary): a
  /// batch whose answers are mutually inconsistent (no candidate survives
  /// all of them — possible from a buggy client or a noisy oracle) is
  /// rejected with InvalidArgument and the session state stays untouched,
  /// instead of tripping the fatal consistency checks.
  Status TryOnReachBatch(std::span<const NodeId> nodes,
                         const std::vector<bool>& answers) {
    const Status status = TryApplyReachBatch(nodes, answers);
    if (status.ok()) {
      plan_valid_ = false;
    }
    return status;
  }

  /// Divergence-tolerant applier for cross-epoch migration: folds the
  /// answer of an OBSERVED step — a question recorded under another
  /// epoch's weights that this session's planner would not necessarily ask
  /// at its current state — into the candidate state. Unlike the Apply*
  /// appliers (which rely on determinism to equal the local plan), the
  /// step here may genuinely differ from PlanQuestion().
  ///
  /// The candidate-state policies (the greedy family, batched,
  /// cost-sensitive) fold a divergent answer straight into the candidate
  /// set: a reachability answer is a fact about the hidden target, valid
  /// under any distribution, regardless of which planner asked it. The
  /// phase-automata baselines (top-down, WIGS, MIGS) rewrite the fact into
  /// their automaton state instead — descend/narrow/restart when the
  /// observed answer is representable, silently forget facts that are
  /// consistent but outside what the automaton encodes (the planner may
  /// re-ask them; identification stays exact). Only the scripted test
  /// policy keeps the conservative default: Unimplemented, so migration of
  /// its sessions succeeds solely on the zero-divergence path.
  ///
  /// Returns InvalidArgument when the step is malformed (shape-validated
  /// here, so overrides may assume a well-formed step) or the observed
  /// answer is inconsistent with the candidate state (it would eliminate
  /// every candidate — impossible for a genuine transcript on the same
  /// hierarchy, so this flags a corrupted or cross-hierarchy blob), and
  /// Unimplemented when this policy cannot absorb the step. The state is
  /// untouched on failure.
  Status TryApplyObserved(const TranscriptStep& step);

 protected:
  /// Appliers. Defaults are fatal (policies that never ask that question
  /// kind); TryApplyReachBatch's default forwards to ApplyReachBatch
  /// (policies without content constraints).
  virtual void ApplyReach(NodeId q, bool yes);
  virtual void ApplyChoice(std::span<const NodeId> choices, int answer);
  virtual void ApplyReachBatch(std::span<const NodeId> nodes,
                               const std::vector<bool>& answers);
  virtual Status TryApplyReachBatch(std::span<const NodeId> nodes,
                                    const std::vector<bool>& answers);
  /// Observed-step applier behind TryApplyObserved. Default: Unimplemented
  /// (divergent steps unsupported). Overrides must validate before
  /// mutating — a failed fold leaves the state untouched.
  virtual Status ApplyObservedStep(const TranscriptStep& step);

  /// True when Next() already planned for the current state. Appliers whose
  /// state transition depends on planner-derived structure (the phase
  /// automata) use this to re-derive it only when the question arrived from
  /// a plan cache without a local plan — the common in-process path settles
  /// once, in Next().
  bool plan_settled() const { return plan_valid_; }

 private:
  // The memoized plan. Mutated only by the public wrappers; appliers that
  // need planner-derived state call PlanQuestion() themselves.
  bool plan_valid_ = false;
  Query planned_;
};

/// A search strategy factory. Thread-safe for concurrent NewSession() calls
/// as long as the policy's shared base state is not mutated concurrently.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Human-readable name ("GreedyTree", "TopDown", ...).
  virtual std::string name() const = 0;

  /// Starts a fresh search.
  virtual std::unique_ptr<SearchSession> NewSession() const = 0;
};

}  // namespace aigs

#endif  // AIGS_CORE_POLICY_H_
