// Online-learning harness (§V-B, Fig. 4): label a stream of objects while
// learning the target distribution on the fly. Before any object is labeled
// every category is assumed equally likely (uniform prior); after each
// labeled object the empirical count of its category is incremented and the
// greedy policy's weight index is updated in place (O(depth) per object).
#ifndef AIGS_EVAL_ONLINE_H_
#define AIGS_EVAL_ONLINE_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Parameters of the online experiment.
struct OnlineOptions {
  /// Objects labeled per trace (the paper runs 100k).
  std::size_t num_objects = 100'000;
  /// Reporting granularity (the paper averages per 10k objects).
  std::size_t block_size = 10'000;
  /// Independent shuffled traces averaged together (the paper uses 20).
  std::size_t num_traces = 5;
  /// Uniform pseudo-count prior per category.
  Weight prior = 1;
  /// Base seed; trace t uses seed + t.
  std::uint64_t seed = 1;
};

/// Result series: one entry per block.
struct OnlineSeries {
  /// Mean (over traces) of the average search cost within each block.
  std::vector<double> avg_cost_per_block;
  /// Grand mean over all objects and traces.
  double overall_avg_cost = 0;
};

/// Runs the experiment with the efficient greedy policy for the hierarchy
/// type (GreedyTree on trees, GreedyDAG with raw counts on DAGs). Objects
/// are drawn i.i.d. from `real_dist`; the policy only ever sees the learned
/// empirical counts.
StatusOr<OnlineSeries> RunOnlineLearning(const Hierarchy& hierarchy,
                                         const Distribution& real_dist,
                                         const OnlineOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_ONLINE_H_
