// GreedyDAG (Algorithm 6): the efficient instantiation of the rounded greedy
// policy on general DAG hierarchies, 2(1+3 ln n)-approximate (Theorem 1).
//
// Query selection walks the candidate DAG from the root by BFS, expanding
// only nodes v with 2·w̃(v) > w̃(r): any v with 2·w̃(v) ≤ w̃(r) dominates all
// of its descendants (its split difference is no worse), so the search
// prunes below it while still considering v itself — exactly the paper's
// lines 4–11. Candidate updates use DagSearchState (corrected Algorithm 7).
#ifndef AIGS_CORE_GREEDY_DAG_H_
#define AIGS_CORE_GREEDY_DAG_H_

#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/reach_weight_index.h"
#include "prob/distribution.h"
#include "prob/rounding.h"

namespace aigs {

/// Tuning knobs for GreedyDAG.
struct GreedyDagOptions {
  /// Apply Eq. (1) rounding (the paper's default for DAGs — Theorem 1).
  /// Disable for online learning, where raw empirical counts are already
  /// integers >= 1.
  bool use_rounded_weights = true;
  RoundingOptions rounding;

  /// Expand the selection BFS below dominated nodes anyway (ablation knob:
  /// turns selection into an exhaustive scan of the alive sub-DAG; the
  /// chosen node is identical, selection just costs more).
  bool disable_dominance_pruning = false;
};

/// Greedy policy on DAGs (works on trees too; GreedyTree is the faster
/// specialization there).
class GreedyDagPolicy : public Policy {
 public:
  GreedyDagPolicy(const Hierarchy& hierarchy, const Distribution& dist,
                  GreedyDagOptions options = {});

  std::string name() const override { return "GreedyDAG"; }
  std::unique_ptr<SearchSession> NewSession() const override;

  /// Live weight access for the online-learning harness (raw-weight mode
  /// only; do not mutate while sessions are in flight).
  ReachWeightBase* mutable_base() { return &base_; }
  const ReachWeightBase& base() const { return base_; }

 private:
  GreedyDagOptions options_;
  ReachWeightBase base_;
};

}  // namespace aigs

#endif  // AIGS_CORE_GREEDY_DAG_H_
