#include "eval/online.h"

#include <memory>

#include "core/greedy_dag.h"
#include "core/greedy_tree.h"
#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"
#include "prob/empirical.h"
#include "util/rng.h"

namespace aigs {
namespace {

/// Uniform adapter over the two greedy policies' live weight bases.
class OnlineGreedy {
 public:
  OnlineGreedy(const Hierarchy& h, const Distribution& initial) {
    if (h.is_tree()) {
      GreedyTreeOptions options;
      options.use_rounded_weights = false;  // live counts, already integers
      tree_ = std::make_unique<GreedyTreePolicy>(h, initial, options);
    } else {
      GreedyDagOptions options;
      options.use_rounded_weights = false;
      dag_ = std::make_unique<GreedyDagPolicy>(h, initial, options);
    }
  }

  Policy& policy() { return tree_ ? static_cast<Policy&>(*tree_)
                                  : static_cast<Policy&>(*dag_); }

  void Observe(NodeId category) {
    if (tree_) {
      tree_->mutable_base()->AddWeight(category, 1);
    } else {
      dag_->mutable_base()->AddWeight(category, 1);
    }
  }

 private:
  std::unique_ptr<GreedyTreePolicy> tree_;
  std::unique_ptr<GreedyDagPolicy> dag_;
};

}  // namespace

StatusOr<OnlineSeries> RunOnlineLearning(const Hierarchy& hierarchy,
                                         const Distribution& real_dist,
                                         const OnlineOptions& options) {
  if (real_dist.size() != hierarchy.NumNodes()) {
    return Status::InvalidArgument("distribution size mismatch");
  }
  if (options.num_objects == 0 || options.block_size == 0 ||
      options.num_traces == 0 ||
      options.num_objects % options.block_size != 0) {
    return Status::InvalidArgument(
        "num_objects must be a positive multiple of block_size");
  }
  const std::size_t num_blocks = options.num_objects / options.block_size;
  const AliasTable sampler(real_dist);

  std::vector<long double> block_cost_sum(num_blocks, 0);
  long double grand_sum = 0;

  for (std::size_t trace = 0; trace < options.num_traces; ++trace) {
    Rng rng(options.seed + trace);
    EmpiricalCounts counts(hierarchy.NumNodes(), options.prior);
    OnlineGreedy greedy(hierarchy, counts.ToDistribution());

    for (std::size_t block = 0; block < num_blocks; ++block) {
      std::uint64_t block_queries = 0;
      for (std::size_t i = 0; i < options.block_size; ++i) {
        const NodeId target = sampler.Sample(rng);
        ExactOracle oracle(hierarchy.reach(), target);
        auto session = greedy.policy().NewSession();
        const SearchResult r = RunSearch(*session, oracle);
        AIGS_CHECK(r.target == target);
        block_queries += r.UnitCost();
        counts.Observe(target);
        greedy.Observe(target);
      }
      block_cost_sum[block] += static_cast<long double>(block_queries) /
                               static_cast<long double>(options.block_size);
      grand_sum += static_cast<long double>(block_queries);
    }
  }

  OnlineSeries series;
  series.avg_cost_per_block.resize(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    series.avg_cost_per_block[b] = static_cast<double>(
        block_cost_sum[b] / static_cast<long double>(options.num_traces));
  }
  series.overall_avg_cost = static_cast<double>(
      grand_sum / static_cast<long double>(options.num_traces *
                                           options.num_objects));
  return series;
}

}  // namespace aigs
