#include "eval/runner.h"

namespace aigs {

SessionAnswer AnswerFromOracle(const Query& query, Oracle& oracle) {
  switch (query.kind) {
    case Query::Kind::kReach:
      return SessionAnswer::Reach(oracle.Reach(query.node));
    case Query::Kind::kReachBatch: {
      std::vector<bool> answers(query.choices.size());
      for (std::size_t i = 0; i < query.choices.size(); ++i) {
        answers[i] = oracle.Reach(query.choices[i]);
      }
      return SessionAnswer::Batch(std::move(answers));
    }
    case Query::Kind::kChoice:
      return SessionAnswer::Choice(oracle.Choice(query.choices));
    case Query::Kind::kDone:
      break;
  }
  AIGS_CHECK(false && "no pending question to answer");
  return SessionAnswer{};
}

SearchResult RunSearch(SearchSession& session, Oracle& oracle,
                       const RunOptions& options) {
  SearchResult result;
  for (;;) {
    Query query = session.Next();
    if (query.kind != Query::Kind::kDone) {
      ++result.interaction_rounds;
    }
    switch (query.kind) {
      case Query::Kind::kDone:
        result.target = query.node;
        return result;
      case Query::Kind::kReach: {
        const bool yes = oracle.Reach(query.node);
        ++result.reach_queries;
        result.priced_cost += options.cost_model != nullptr
                                  ? options.cost_model->CostOf(query.node)
                                  : 1;
        session.OnReach(query.node, yes);
        break;
      }
      case Query::Kind::kReachBatch: {
        AIGS_CHECK(!query.choices.empty());
        std::vector<bool> answers(query.choices.size());
        for (std::size_t i = 0; i < query.choices.size(); ++i) {
          answers[i] = oracle.Reach(query.choices[i]);
          ++result.reach_queries;
          result.priced_cost +=
              options.cost_model != nullptr
                  ? options.cost_model->CostOf(query.choices[i])
                  : 1;
        }
        const Status applied = session.TryOnReachBatch(query.choices, answers);
        if (!applied.ok()) {
          // A truthful oracle never produces an inconsistent round; without
          // the noisy-mode flag this stays a fatal programmer error.
          AIGS_CHECK(options.tolerate_inconsistent_answers &&
                     "batch answers eliminated every candidate");
          result.target = kInvalidNode;  // search dead-ended under noise
          return result;
        }
        break;
      }
      case Query::Kind::kChoice: {
        const int answer = oracle.Choice(query.choices);
        ++result.choice_queries;
        // §V-A cost metric: a k-choice query decomposes into k binary
        // queries — the crowd reads every presented choice.
        result.choices_read += query.choices.size();
        session.OnChoice(query.choices, answer);
        break;
      }
    }
    AIGS_CHECK(result.reach_queries + result.choice_queries <=
               options.max_questions);
  }
}

StatusOr<SearchResult> RunSearch(Engine& engine, SessionId id, Oracle& oracle,
                                 const RunOptions& options) {
  SearchResult result;
  for (;;) {
    AIGS_ASSIGN_OR_RETURN(const Query query, engine.Ask(id));
    if (query.kind != Query::Kind::kDone) {
      ++result.interaction_rounds;
    }
    switch (query.kind) {
      case Query::Kind::kDone:
        result.target = query.node;
        return result;
      case Query::Kind::kReach: {
        ++result.reach_queries;
        result.priced_cost += options.cost_model != nullptr
                                  ? options.cost_model->CostOf(query.node)
                                  : 1;
        AIGS_RETURN_NOT_OK(engine.Answer(id, AnswerFromOracle(query, oracle)));
        break;
      }
      case Query::Kind::kReachBatch: {
        for (const NodeId q : query.choices) {
          ++result.reach_queries;
          result.priced_cost += options.cost_model != nullptr
                                    ? options.cost_model->CostOf(q)
                                    : 1;
        }
        const Status applied =
            engine.Answer(id, AnswerFromOracle(query, oracle));
        if (!applied.ok()) {
          if (options.tolerate_inconsistent_answers &&
              applied.code() == StatusCode::kInvalidArgument) {
            result.target = kInvalidNode;  // search dead-ended under noise
            return result;
          }
          return applied;
        }
        break;
      }
      case Query::Kind::kChoice: {
        ++result.choice_queries;
        result.choices_read += query.choices.size();
        AIGS_RETURN_NOT_OK(engine.Answer(id, AnswerFromOracle(query, oracle)));
        break;
      }
    }
    if (result.reach_queries + result.choice_queries > options.max_questions) {
      return Status::Internal("session exceeded max_questions without "
                              "terminating");
    }
  }
}

}  // namespace aigs
