// Target-node probability distributions. All distributions are stored as
// exact integer weights (probability = weight / total), which keeps greedy
// comparisons and incremental updates free of floating-point drift and makes
// the "real data distribution" (object counts per category) the native
// representation.
#ifndef AIGS_PROB_DISTRIBUTION_H_
#define AIGS_PROB_DISTRIBUTION_H_

#include <vector>

#include "util/common.h"
#include "util/rng.h"
#include "util/status.h"

namespace aigs {

/// An integer-weight distribution over nodes [0, n).
class Distribution {
 public:
  /// Scale used when converting real-valued densities to integer weights.
  /// Large enough that relative quantization error is ≤ 1e-9.
  static constexpr Weight kRealScale = 1'000'000'000;

  Distribution() = default;

  /// Takes ownership of per-node weights; total must be positive.
  static StatusOr<Distribution> FromWeights(std::vector<Weight> weights);

  /// Converts non-negative real masses to integer weights (scaled so the
  /// maximum mass maps to kRealScale). Masses need not be normalized.
  static StatusOr<Distribution> FromReals(const std::vector<double>& masses);

  std::size_t size() const { return weights_.size(); }

  /// Integer weight of node v.
  Weight WeightOf(NodeId v) const {
    AIGS_DCHECK(v < weights_.size());
    return weights_[v];
  }

  /// Σ weights; always > 0 for a valid distribution.
  Weight Total() const { return total_; }

  /// Largest single-node weight.
  Weight MaxWeight() const { return max_weight_; }

  /// p(v) as a double (for reporting only; algorithms use weights).
  double Probability(NodeId v) const {
    return static_cast<double>(WeightOf(v)) / static_cast<double>(total_);
  }

  /// Raw weight vector.
  const std::vector<Weight>& weights() const { return weights_; }

  /// Shannon entropy in bits — the information-theoretic lower bound on the
  /// expected number of boolean queries of any policy.
  double EntropyBits() const;

 private:
  std::vector<Weight> weights_;
  Weight total_ = 0;
  Weight max_weight_ = 0;
};

// ---- Factories matching §V-A of the paper ---------------------------------

/// "Equal": p(v) = 1/n.
Distribution EqualDistribution(std::size_t n);

/// "Uniform": x_v ~ U(0,1) i.i.d., then normalized.
Distribution UniformRandomDistribution(std::size_t n, Rng& rng);

/// "Exponential": x_v ~ Exp(1) i.i.d., then normalized.
Distribution ExponentialRandomDistribution(std::size_t n, Rng& rng);

/// "Zipf": x_v ~ Zipf(a) i.i.d. (pmf x^-a / ζ(a), x ∈ {1, 2, ...}), then
/// normalized. a > 1.
Distribution ZipfRandomDistribution(std::size_t n, double a, Rng& rng);

/// A point mass on `target` (useful in tests).
Distribution PointMassDistribution(std::size_t n, NodeId target);

}  // namespace aigs

#endif  // AIGS_PROB_DISTRIBUTION_H_
