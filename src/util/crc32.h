// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320) — the frame
// checksum of the durable session store's write-ahead log. Torn or
// bit-rotted trailing records are *expected* input on the recovery path
// (a crash can stop a write mid-frame), so the WAL reader needs a cheap,
// dependency-free integrity check rather than trusting record lengths.
#ifndef AIGS_UTIL_CRC32_H_
#define AIGS_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace aigs {

/// CRC-32 of `data`. `seed` chains calls: Crc32(ab) == Crc32(b, Crc32(a)).
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace aigs

#endif  // AIGS_UTIL_CRC32_H_
