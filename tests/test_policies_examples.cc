// Reproduces the paper's worked examples exactly:
//  * Example 1 — TopDown narration on the vehicle hierarchy;
//  * Example 2 — worst-case-optimal policy total 260 vs average-aware 204;
//  * Example 3 — greedy expected cost 3 on Fig. 2 under equal weights;
//  * Example 4 — cost-sensitive greedy 4.25 vs cost-blind 6 on Fig. 3.
#include <gtest/gtest.h>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/decision_tree.h"
#include "eval/runner.h"
#include "eval/scripted_policy.h"
#include "tests/test_support.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::RunAllTargets;
using testing::WeightedAverage;

class VehicleTest : public ::testing::Test {
 protected:
  VehicleTest()
      : hierarchy_(MustBuild(BuildVehicleHierarchy(&nodes_))),
        dist_(VehicleDistribution()) {}

  VehicleNodes nodes_;
  Hierarchy hierarchy_;
  Distribution dist_;
};

TEST_F(VehicleTest, Example1TopDownNarration) {
  // "TopDown asks car? yes, Nissan? yes, Maxima? no, Sentra? yes" — 4
  // queries to label a Sentra.
  TopDownPolicy policy(hierarchy_);
  ExactOracle oracle(hierarchy_.reach(), nodes_.sentra);
  auto session = policy.NewSession();

  std::vector<NodeId> asked;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      EXPECT_EQ(q.node, nodes_.sentra);
      break;
    }
    ASSERT_EQ(q.kind, Query::Kind::kReach);
    asked.push_back(q.node);
    session->OnReach(q.node, oracle.Reach(q.node));
  }
  EXPECT_EQ(asked, (std::vector<NodeId>{nodes_.car, nodes_.nissan,
                                        nodes_.maxima, nodes_.sentra}));
}

TEST_F(VehicleTest, Example2WorstCaseOptimalPolicyCosts260) {
  // Queries Nissan; on yes Maxima/Sentra; on no Car, Honda, Mercedes.
  const ScriptedPolicy policy(
      hierarchy_,
      {nodes_.nissan, nodes_.maxima, nodes_.sentra, nodes_.car, nodes_.honda,
       nodes_.mercedes},
      "WIGS-optimal");
  const auto costs = RunAllTargets(policy, hierarchy_);
  // Per-target query counts from the paper: Vehicle 2, Car 4, Honda 3,
  // Nissan 3, Mercedes 4, Maxima 2, Sentra 3.
  EXPECT_EQ(costs[nodes_.vehicle], 2u);
  EXPECT_EQ(costs[nodes_.car], 4u);
  EXPECT_EQ(costs[nodes_.honda], 3u);
  EXPECT_EQ(costs[nodes_.nissan], 3u);
  EXPECT_EQ(costs[nodes_.mercedes], 4u);
  EXPECT_EQ(costs[nodes_.maxima], 2u);
  EXPECT_EQ(costs[nodes_.sentra], 3u);
  // Total over 100 objects distributed per Fig. 1 = 260.
  double total = 0;
  for (NodeId v = 0; v < hierarchy_.NumNodes(); ++v) {
    total += static_cast<double>(dist_.WeightOf(v) * costs[v]);
  }
  EXPECT_DOUBLE_EQ(total, 260.0);
  // Worst case is 4 — the WIGS optimum for this hierarchy.
  EXPECT_EQ(*std::max_element(costs.begin(), costs.end()), 4u);
}

TEST_F(VehicleTest, Example2AverageAwarePolicyCosts204) {
  const ScriptedPolicy policy(
      hierarchy_,
      {nodes_.maxima, nodes_.sentra, nodes_.nissan, nodes_.car, nodes_.honda,
       nodes_.mercedes},
      "average-aware");
  const auto costs = RunAllTargets(policy, hierarchy_);
  EXPECT_EQ(costs[nodes_.vehicle], 4u);
  EXPECT_EQ(costs[nodes_.car], 6u);
  EXPECT_EQ(costs[nodes_.honda], 5u);
  EXPECT_EQ(costs[nodes_.nissan], 3u);
  EXPECT_EQ(costs[nodes_.mercedes], 6u);
  EXPECT_EQ(costs[nodes_.maxima], 1u);
  EXPECT_EQ(costs[nodes_.sentra], 2u);
  double total = 0;
  for (NodeId v = 0; v < hierarchy_.NumNodes(); ++v) {
    total += static_cast<double>(dist_.WeightOf(v) * costs[v]);
  }
  EXPECT_DOUBLE_EQ(total, 204.0);
  // Average 2.04 beats the worst-case-optimal policy's 2.60 (Example 2's
  // point: worst-case 6 > 4, average 2.04 < 2.60).
  EXPECT_DOUBLE_EQ(WeightedAverage(costs, dist_), 2.04);
  EXPECT_EQ(*std::max_element(costs.begin(), costs.end()), 6u);
}

TEST_F(VehicleTest, GreedyBeatsTopDownOnSkewedVehicles) {
  GreedyTreePolicy greedy(hierarchy_, dist_);
  TopDownPolicy top_down(hierarchy_);
  const double greedy_cost =
      WeightedAverage(RunAllTargets(greedy, hierarchy_), dist_);
  const double top_down_cost =
      WeightedAverage(RunAllTargets(top_down, hierarchy_), dist_);
  EXPECT_LT(greedy_cost, top_down_cost);
  // Greedy queries Maxima or Sentra first (40% each), so 80% of objects
  // resolve within two questions; expected cost must be close to 2.
  EXPECT_LE(greedy_cost, 2.3);
}

TEST(Example3, GreedyCostIsThreeOnFig2EqualWeights) {
  const Hierarchy h = MustBuild(BuildFig2Hierarchy());
  const Distribution equal = EqualDistribution(h.NumNodes());

  GreedyTreePolicy greedy_tree(h, equal);
  EXPECT_DOUBLE_EQ(
      WeightedAverage(RunAllTargets(greedy_tree, h), equal), 3.0);

  GreedyNaivePolicy greedy_naive(h, equal);
  EXPECT_DOUBLE_EQ(
      WeightedAverage(RunAllTargets(greedy_naive, h), equal), 3.0);

  GreedyDagPolicy greedy_dag(h, equal);
  EXPECT_DOUBLE_EQ(
      WeightedAverage(RunAllTargets(greedy_dag, h), equal), 3.0);
}

TEST(Example3, DecisionTreeMatchesDefinition7) {
  const Hierarchy h = MustBuild(BuildFig2Hierarchy());
  const Distribution equal = EqualDistribution(h.NumNodes());
  GreedyTreePolicy greedy(h, equal);
  auto tree = DecisionTree::Build(greedy, h);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->NumLeaves(), 7u);
  EXPECT_DOUBLE_EQ(tree->ExpectedCost(equal), 3.0);
  // First query of the greedy policy on Fig. 2 is node "3" (id 2).
  EXPECT_EQ(tree->nodes()[0].hierarchy_node, 2u);
}

class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test()
      : hierarchy_(MustBuild(BuildFig3Hierarchy())),
        equal_(EqualDistribution(4)),
        costs_(Fig3CostModel()) {}

  Hierarchy hierarchy_;
  Distribution equal_;
  CostModel costs_;
};

TEST_F(Fig3Test, CostBlindGreedyPays6) {
  // Fig. 3(b): plain greedy asks node 3 (price 5) first; expected priced
  // cost = 5 + 1·0.5 + 1·0.5 = 6.
  GreedyTreePolicy greedy(hierarchy_, equal_);
  auto tree = DecisionTree::Build(greedy, hierarchy_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->nodes()[0].hierarchy_node, 2u);  // node "3"
  EXPECT_DOUBLE_EQ(tree->ExpectedPricedCost(equal_, costs_), 6.0);
  EXPECT_DOUBLE_EQ(tree->ExpectedCost(equal_), 2.0);
}

TEST_F(Fig3Test, CostSensitiveGreedyPays425) {
  // Fig. 3(c): cost-sensitive greedy avoids the expensive node 3
  // (0.25·0.75/1 = 0.1875 for nodes 2 and 4 beats 0.5·0.5/5 = 0.05);
  // expected priced cost = 1 + 1·0.75 + 5·0.5 = 4.25. The paper's figure
  // opens with node 4; node 2 ties at the same score and yields the same
  // expected cost, so any tie-break except node 3 is valid.
  CostSensitiveGreedyPolicy policy(hierarchy_, equal_, costs_);
  auto tree = DecisionTree::Build(policy, hierarchy_);
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree->nodes()[0].hierarchy_node, 2u);  // never the $5 node "3"
  EXPECT_DOUBLE_EQ(tree->ExpectedPricedCost(equal_, costs_), 4.25);
}

TEST_F(Fig3Test, RunnerPricedCostMatchesDecisionTree) {
  CostSensitiveGreedyPolicy policy(hierarchy_, equal_, costs_);
  RunOptions options;
  options.cost_model = &costs_;
  long double total = 0;
  for (NodeId target = 0; target < 4; ++target) {
    ExactOracle oracle(hierarchy_.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle, options);
    EXPECT_EQ(r.target, target);
    total += static_cast<long double>(r.priced_cost) * 0.25L;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(total), 4.25);
}

TEST_F(Fig3Test, UnitPricesDegradeToPlainGreedy) {
  // With unit prices the cost-sensitive middle point coincides with the
  // plain middle point (Definition 9 generalizes Definition 4).
  const CostModel unit = CostModel::Unit(4);
  CostSensitiveGreedyPolicy cost_sensitive(hierarchy_, equal_, unit);
  GreedyNaiveOptions rounded_options;
  rounded_options.use_rounded_weights = true;
  GreedyNaivePolicy plain(hierarchy_, equal_, rounded_options);
  const auto a = RunAllTargets(cost_sensitive, hierarchy_);
  const auto b = RunAllTargets(plain, hierarchy_);
  EXPECT_DOUBLE_EQ(WeightedAverage(a, equal_), WeightedAverage(b, equal_));
}

TEST(MigsExample, ChoiceCostsCountChoicesRead) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  MigsPolicy migs(h);
  ExactOracle oracle(h.reach(), nodes.sentra);
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.sentra);
  // Every presented choice is read (§V-A): {Car} = 1, then
  // {Nissan, Honda, Mercedes} = 3, then {Maxima, Sentra} = 2.
  EXPECT_EQ(r.choices_read, 1u + 3u + 2u);
  EXPECT_EQ(r.choice_queries, 3u);
  EXPECT_EQ(r.reach_queries, 0u);
}

TEST(MigsExample, NoneOfTheseFallsBackToCurrentNode) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  MigsPolicy migs(h);
  ExactOracle oracle(h.reach(), nodes.car);  // internal target
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.car);
  // {Car} read (1), then all of {Nissan, Honda, Mercedes} answered "none
  // of these" (3).
  EXPECT_EQ(r.choices_read, 1u + 3u);
}

TEST(MigsExample, BatchingBoundsQuestionLength) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  MigsPolicy migs(h, MigsOptions{.max_choices_per_question = 2});
  ExactOracle oracle(h.reach(), nodes.mercedes);
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.mercedes);
  // {Car} = 1; {Nissan, Honda} none-of-these = 2; {Mercedes} = 1.
  EXPECT_EQ(r.choices_read, 1u + 2u + 1u);
  EXPECT_EQ(r.choice_queries, 3u);
}

TEST(MigsExample, LikelihoodOrderingPutsPopularChoicesFirst) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  const Distribution dist = VehicleDistribution();
  MigsPolicy migs(h, dist, MigsOptions{.max_choices_per_question = 1});
  // Nissan's subtree carries 88% of the mass, so it is presented before
  // Honda and Mercedes: a Maxima object reads Car, Nissan, Maxima = 3.
  ExactOracle oracle(h.reach(), nodes.maxima);
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.maxima);
  EXPECT_EQ(r.choices_read, 3u);
}

TEST(MigsExample, BatchedChoicesSplitQuestions) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  MigsPolicy migs(h, MigsOptions{.max_choices_per_question = 1});
  ExactOracle oracle(h.reach(), nodes.mercedes);
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, nodes.mercedes);
  // Singleton batches degrade MIGS to TopDown: Car, Nissan, Honda, Mercedes.
  EXPECT_EQ(r.choices_read, 4u);
}

}  // namespace
}  // namespace aigs
