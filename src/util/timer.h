// Wall-clock timing helpers for the runtime experiments (Fig. 6) and the
// benchmark harnesses.
#ifndef AIGS_UTIL_TIMER_H_
#define AIGS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace aigs {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in nanoseconds.
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aigs

#endif  // AIGS_UTIL_TIMER_H_
