#include "graph/generators.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aigs {
namespace {

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  for (const std::size_t n : {1u, 2u, 5u, 50u, 500u}) {
    Rng local = rng.Fork();
    const Digraph g = RandomTree(n, local);
    EXPECT_EQ(g.NumNodes(), n);
    EXPECT_EQ(g.NumEdges(), n - 1);
    EXPECT_TRUE(g.IsTree());
  }
}

TEST(Generators, RandomTreeRespectsMaxChildren) {
  Rng rng(2);
  const Digraph g = RandomTree(300, rng, /*max_children=*/3);
  EXPECT_LE(g.MaxOutDegree(), 3u);
}

TEST(Generators, RandomTreeDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  const Digraph ga = RandomTree(100, a);
  const Digraph gb = RandomTree(100, b);
  for (NodeId v = 0; v < 100; ++v) {
    const auto ca = ga.Children(v);
    const auto cb = gb.Children(v);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i], cb[i]);
    }
  }
}

TEST(Generators, RandomDagHasExtraEdgesAndSingleRoot) {
  Rng rng(3);
  const Digraph g = RandomDag(200, rng, 0.5);
  EXPECT_EQ(g.NumNodes(), 200u);
  EXPECT_GT(g.NumEdges(), 199u);   // tree edges + extras
  EXPECT_FALSE(g.IsTree());
  EXPECT_EQ(g.InDegree(g.root()), 0u);
}

TEST(Generators, PathGraphShape) {
  const Digraph g = PathGraph(6);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.Height(), 5);
  EXPECT_EQ(g.MaxOutDegree(), 1u);
}

TEST(Generators, StarGraphShape) {
  const Digraph g = StarGraph(8);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.Height(), 1);
  EXPECT_EQ(g.MaxOutDegree(), 7u);
}

TEST(Generators, CompleteBinaryTreeShape) {
  const Digraph g = CompleteBinaryTree(15);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.Height(), 3);
  EXPECT_EQ(g.MaxOutDegree(), 2u);
}

TEST(Generators, DiamondChainIsMultiParentDag) {
  const Digraph g = DiamondChain(3);
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_FALSE(g.IsTree());
  EXPECT_EQ(g.Height(), 6);
  // Every diamond bottom has two parents.
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.InDegree(6), 2u);
  EXPECT_EQ(g.InDegree(9), 2u);
}

TEST(Generators, SingleNodeEdgeCases) {
  EXPECT_EQ(PathGraph(1).NumNodes(), 1u);
  EXPECT_EQ(StarGraph(1).NumNodes(), 1u);
  EXPECT_EQ(CompleteBinaryTree(1).NumNodes(), 1u);
}

}  // namespace
}  // namespace aigs
