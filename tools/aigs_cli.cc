// aigs — command-line front end for the library.
//
//   aigs stats    <hierarchy.txt>
//       Print node/edge counts, height, max degree, type; warn about
//       redundant (transitively implied) edges.
//   aigs reduce   <in.txt> <out.txt>
//       Write the transitive reduction of a hierarchy.
//   aigs evaluate <hierarchy.txt> <counts.txt> [policy-spec]
//       Expected/median/p99/max question counts for one policy. The policy
//       is any PolicyRegistry spec, e.g. greedy, wigs, batched:k=8,
//       migs:choices=0 (default greedy); see 'aigs policies'.
//   aigs policies
//       List the registered policy names and their options.
//   aigs search   <hierarchy.txt> [counts.txt]
//       Interactive search: answer the policy's questions with y/n.
//   aigs demo
//       Interactive search on the built-in vehicle hierarchy.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/cost_profile.h"
#include "eval/evaluator.h"
#include "eval/runner.h"
#include "graph/graph_io.h"
#include "graph/transitive_reduction.h"
#include "prob/weight_io.h"
#include "util/env.h"

namespace aigs::cli {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: aigs <command> [args]\n"
               "  stats    <hierarchy.txt>\n"
               "  reduce   <in.txt> <out.txt>\n"
               "  evaluate <hierarchy.txt> <counts.txt> [policy-spec]\n"
               "  policies\n"
               "  search   <hierarchy.txt> [counts.txt]\n"
               "  demo\n"
               "policy-spec is a PolicyRegistry name plus options, e.g. "
               "greedy, wigs,\nbatched:k=8, migs:choices=0 — run 'aigs "
               "policies' for the full list.\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdPolicies() {
  for (const auto& entry : PolicyRegistry::Global().List()) {
    std::printf("%-16s %s\n", entry.name.c_str(), entry.help.c_str());
  }
  return 0;
}

int CmdStats(const std::string& path) {
  auto graph = LoadHierarchy(path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  const Digraph& g = *graph;
  std::printf("nodes:       %zu\n", g.NumNodes());
  std::printf("edges:       %zu\n", g.NumEdges());
  std::printf("height:      %d\n", g.Height());
  std::printf("max degree:  %zu\n", g.MaxOutDegree());
  std::printf("type:        %s\n", g.IsTree() ? "tree" : "DAG");
  std::printf("root:        %u%s\n", g.root(),
              g.Label(g.root()).empty()
                  ? ""
                  : (" (" + g.Label(g.root()) + ")").c_str());
  auto reduced = TransitiveReduction(g);
  if (reduced.ok() && reduced->removed_edges > 0) {
    std::printf("note:        %zu redundant edge(s); run 'aigs reduce'\n",
                reduced->removed_edges);
  }
  return 0;
}

int CmdReduce(const std::string& in, const std::string& out) {
  auto graph = LoadHierarchy(in);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto reduced = TransitiveReduction(*graph);
  if (!reduced.ok()) {
    return Fail(reduced.status());
  }
  if (const Status s = SaveHierarchy(reduced->graph, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("removed %zu redundant edge(s); wrote %s\n",
              reduced->removed_edges, out.c_str());
  return 0;
}

int CmdEvaluate(const std::string& hierarchy_path,
                const std::string& counts_path, const std::string& policy) {
  auto graph = LoadHierarchy(hierarchy_path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  auto counts = LoadDistribution(counts_path);
  if (!counts.ok()) {
    return Fail(counts.status());
  }
  if (counts->size() != hierarchy->NumNodes()) {
    return Fail(Status::InvalidArgument(
        "count file does not match the hierarchy's node count"));
  }
  PolicyContext context;
  context.hierarchy = &*hierarchy;
  context.distribution = &*counts;
  auto made = PolicyRegistry::Global().Create(policy, context);
  if (!made.ok()) {
    return Fail(made.status());
  }
  EvalOptions options;
  options.threads =
      static_cast<int>(std::max<std::int64_t>(0, EnvInt("AIGS_THREADS", 0)));
  const EvalStats stats = EvaluateExact(**made, *hierarchy, *counts, options);
  const CostProfile profile(stats.per_target_cost, *counts);
  std::printf("policy:       %s\n", (*made)->name().c_str());
  std::printf("E[questions]: %.4f\n", stats.expected_cost);
  std::printf("median:       %u\n", profile.Median());
  std::printf("p90:          %u\n", profile.P90());
  std::printf("p99:          %u\n", profile.P99());
  std::printf("max:          %llu\n",
              static_cast<unsigned long long>(stats.max_cost));
  std::printf("entropy (lower bound): %.4f bits\n", counts->EntropyBits());
  return 0;
}

int RunInteractive(const Hierarchy& h, const Distribution& dist) {
  const auto policy = MakeGreedyPolicy(h, dist);
  auto session = policy->NewSession();
  std::printf("think of one of the %zu categories; answer y/n.\n",
              h.NumNodes());
  int questions = 0;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      const std::string& label = h.graph().Label(q.node);
      std::printf("=> %s (%d questions)\n",
                  label.empty() ? std::to_string(q.node).c_str()
                                : label.c_str(),
                  questions);
      return 0;
    }
    const std::string& label = h.graph().Label(q.node);
    std::printf("Q%d: under '%s'? [y/n] ", ++questions,
                label.empty() ? std::to_string(q.node).c_str()
                              : label.c_str());
    std::fflush(stdout);
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr ||
        (buffer[0] != 'y' && buffer[0] != 'n')) {
      std::printf("\n(bye)\n");
      return 0;
    }
    session->OnReach(q.node, buffer[0] == 'y');
  }
}

int CmdSearch(const std::string& hierarchy_path,
              const std::string& counts_path) {
  auto graph = LoadHierarchy(hierarchy_path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  Distribution dist = EqualDistribution(hierarchy->NumNodes());
  if (!counts_path.empty()) {
    auto counts = LoadDistribution(counts_path);
    if (!counts.ok()) {
      return Fail(counts.status());
    }
    if (counts->size() != hierarchy->NumNodes()) {
      return Fail(Status::InvalidArgument(
          "count file does not match the hierarchy's node count"));
    }
    dist = *std::move(counts);
  }
  return RunInteractive(*hierarchy, dist);
}

int CmdDemo() {
  auto hierarchy = Hierarchy::Build(BuildVehicleHierarchy());
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  return RunInteractive(*hierarchy, VehicleDistribution());
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "stats" && argc == 3) {
    return CmdStats(argv[2]);
  }
  if (command == "reduce" && argc == 4) {
    return CmdReduce(argv[2], argv[3]);
  }
  if (command == "evaluate" && (argc == 4 || argc == 5)) {
    return CmdEvaluate(argv[2], argv[3], argc == 5 ? argv[4] : "greedy");
  }
  if (command == "policies" && argc == 2) {
    return CmdPolicies();
  }
  if (command == "search" && (argc == 3 || argc == 4)) {
    return CmdSearch(argv[2], argc == 4 ? argv[3] : "");
  }
  if (command == "demo" && argc == 2) {
    return CmdDemo();
  }
  return Usage();
}

}  // namespace
}  // namespace aigs::cli

int main(int argc, char** argv) { return aigs::cli::Main(argc, argv); }
