// Rooted-tree view over a Digraph whose IsTree() holds. Adds parent
// pointers, preorder (Euler) intervals for O(1) subtree membership, and
// depth-indexed access — the structural substrate of GreedyTree and the
// WIGS tree baseline.
#ifndef AIGS_TREE_TREE_H_
#define AIGS_TREE_TREE_H_

#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace aigs {

/// Immutable rooted-tree index. The underlying graph must outlive the Tree.
class Tree {
 public:
  /// Builds the index; fails if `g` is not a rooted tree.
  static StatusOr<Tree> Build(const Digraph& g);

  const Digraph& graph() const { return *graph_; }
  std::size_t NumNodes() const { return graph_->NumNodes(); }
  NodeId root() const { return graph_->root(); }

  /// Parent of v; kInvalidNode for the root.
  NodeId Parent(NodeId v) const { return parent_[v]; }

  /// Children of v in insertion order.
  std::span<const NodeId> Children(NodeId v) const {
    return graph_->Children(v);
  }

  /// Edge distance from the root.
  int Depth(NodeId v) const { return graph_->Depth(v); }

  /// Number of nodes in the subtree rooted at v (v included).
  std::size_t SubtreeSize(NodeId v) const {
    return tout_[v] - tin_[v];
  }

  /// True iff `descendant` lies in the subtree rooted at `ancestor`
  /// (a node is in its own subtree).
  bool InSubtree(NodeId ancestor, NodeId descendant) const {
    return tin_[descendant] >= tin_[ancestor] &&
           tin_[descendant] < tout_[ancestor];
  }

  /// Preorder position of v.
  std::uint32_t PreorderIndex(NodeId v) const { return tin_[v]; }

  /// Node at preorder position t.
  NodeId NodeAtPreorder(std::uint32_t t) const { return order_[t]; }

  /// Nodes in preorder (root first); every subtree is a contiguous range.
  const std::vector<NodeId>& Preorder() const { return order_; }

  /// Lowest common ancestor of u and v (binary lifting, O(log n)).
  NodeId Lca(NodeId u, NodeId v) const;

 private:
  Tree() = default;

  const Digraph* graph_ = nullptr;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> tin_;
  std::vector<std::uint32_t> tout_;
  std::vector<NodeId> order_;
  // up_[k][v] = 2^k-th ancestor of v (root maps to itself).
  std::vector<std::vector<NodeId>> up_;
};

}  // namespace aigs

#endif  // AIGS_TREE_TREE_H_
