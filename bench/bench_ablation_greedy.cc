// Ablations over the design choices behind the efficient greedy
// instantiations (§IV):
//  * rounding (Eq. 1) on/off — cost impact of the Theorem 1 configuration;
//  * linear child scan vs lazy-heap child scan in GreedyTree — selection
//    time (the footnote's O(nhd) vs O(nh log d));
//  * dominance pruning on/off in GreedyDAG — selection time at equal cost;
//  * session overlays vs naive recomputation — GreedyTree/DAG vs
//    GreedyNaive per-search time.
#include <algorithm>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"
#include "util/ascii_table.h"
#include "util/rng.h"
#include "util/timer.h"

namespace aigs::bench {
namespace {

/// Average per-search wall time over targets sampled from the distribution.
double AvgSearchMillis(const Policy& policy, const Hierarchy& h,
                       const Distribution& dist, std::size_t samples) {
  const AliasTable sampler(dist);
  Rng rng(17);
  WallTimer timer;
  for (std::size_t i = 0; i < samples; ++i) {
    const NodeId target = sampler.Sample(rng);
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle);
    AIGS_CHECK(r.target == target);
  }
  return timer.ElapsedMillis() / static_cast<double>(samples);
}

void RoundingAblation(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;
  AsciiTable table({"Policy", "Raw weights", "Rounded weights (Eq. 1)"});
  if (h.is_tree()) {
    GreedyTreePolicy raw(h, dist);
    GreedyTreeOptions rounded_options;
    rounded_options.use_rounded_weights = true;
    GreedyTreePolicy rounded(h, dist, rounded_options);
    table.AddRow({"GreedyTree", FormatDouble(Cost(raw, h, dist)),
                  FormatDouble(Cost(rounded, h, dist))});
  } else {
    GreedyDagOptions raw_options;
    raw_options.use_rounded_weights = false;
    GreedyDagPolicy raw(h, dist, raw_options);
    GreedyDagPolicy rounded(h, dist);
    table.AddRow({"GreedyDAG", FormatDouble(Cost(raw, h, dist)),
                  FormatDouble(Cost(rounded, h, dist))});
  }
  std::printf("[rounding, %s]\n%s\n", dataset.name.c_str(),
              table.ToString().c_str());
}

void ChildScanAblation(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  if (!h.is_tree()) {
    return;
  }
  const Distribution& dist = dataset.real_distribution;
  GreedyTreePolicy linear(h, dist);
  GreedyTreeOptions heap_options;
  heap_options.child_scan = GreedyTreeOptions::ChildScan::kLazyHeap;
  GreedyTreePolicy heap(h, dist, heap_options);
  const std::size_t samples = 2000;
  AsciiTable table({"Child scan", "Avg search (ms)", "Expected cost"});
  table.AddRow({"linear  O(nhd)",
                FormatDouble(AvgSearchMillis(linear, h, dist, samples), 4),
                FormatDouble(Cost(linear, h, dist))});
  table.AddRow({"lazy heap O(nh log d)",
                FormatDouble(AvgSearchMillis(heap, h, dist, samples), 4),
                FormatDouble(Cost(heap, h, dist))});
  std::printf("[child scan, %s]\n%s\n", dataset.name.c_str(),
              table.ToString().c_str());
}

void PruningAblation(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  if (h.is_tree()) {
    return;
  }
  const Distribution& dist = dataset.real_distribution;
  GreedyDagPolicy pruned(h, dist);
  GreedyDagOptions exhaustive_options;
  exhaustive_options.disable_dominance_pruning = true;
  GreedyDagPolicy exhaustive(h, dist, exhaustive_options);
  const std::size_t samples = 500;
  AsciiTable table({"Selection BFS", "Avg search (ms)", "Expected cost"});
  table.AddRow({"dominance-pruned (Alg. 6)",
                FormatDouble(AvgSearchMillis(pruned, h, dist, samples), 4),
                FormatDouble(Cost(pruned, h, dist))});
  table.AddRow(
      {"exhaustive",
       FormatDouble(AvgSearchMillis(exhaustive, h, dist, samples), 4),
       FormatDouble(Cost(exhaustive, h, dist))});
  std::printf("[dominance pruning, %s]\n%s\n", dataset.name.c_str(),
              table.ToString().c_str());
}

void OverlayAblation(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;
  const auto fast = MakeGreedyPolicy(h, dist);
  GreedyNaivePolicy naive(h, dist);
  const std::size_t fast_samples = 1000;
  const std::size_t naive_samples = 10;
  AsciiTable table({"Implementation", "Avg search (ms)"});
  table.AddRow({fast->name() + " (incremental index + session overlay)",
                FormatDouble(AvgSearchMillis(*fast, h, dist, fast_samples),
                             4)});
  table.AddRow({"GreedyNaive (Algorithm 2, full rescans)",
                FormatDouble(
                    AvgSearchMillis(naive, h, dist, naive_samples), 3)});
  std::printf("[overlay vs naive, %s]\n%s\n", dataset.name.c_str(),
              table.ToString().c_str());
}

int Main() {
  PrintBanner("Ablations: greedy design choices (§IV)");
  // Keep the naive comparisons tractable.
  const double scale = std::min(DatasetScale(), 0.1);
  const Dataset amazon = MakeAmazonDataset(scale);
  const Dataset imagenet = MakeImageNetDataset(scale);
  RoundingAblation(amazon);
  RoundingAblation(imagenet);
  ChildScanAblation(amazon);
  PruningAblation(imagenet);
  OverlayAblation(amazon);
  OverlayAblation(imagenet);
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
