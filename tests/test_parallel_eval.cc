// Determinism contract of the target-sharded parallel evaluator: for a
// fixed seed and shard size, every aggregate is bit-identical across
// threads ∈ {1, 2, 8}, with threads=1 running the pool-free serial
// reference path.
#include <gtest/gtest.h>

#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/evaluator.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

EvalStats ExactWithThreads(const Policy& policy, const Hierarchy& h,
                           const Distribution& dist, int threads,
                           std::size_t shard_size = 0) {
  EvalOptions options;
  options.threads = threads;
  if (shard_size != 0) {
    options.shard_size = shard_size;
  }
  return Evaluator(options).Exact(policy, h, dist);
}

void ExpectBitIdentical(const EvalStats& a, const EvalStats& b) {
  // EXPECT_EQ on doubles checks exact equality — the contract is
  // bit-identical, not approximately equal.
  EXPECT_EQ(a.expected_cost, b.expected_cost);
  EXPECT_EQ(a.expected_priced_cost, b.expected_priced_cost);
  EXPECT_EQ(a.expected_reach_queries, b.expected_reach_queries);
  EXPECT_EQ(a.expected_rounds, b.expected_rounds);
  EXPECT_EQ(a.max_cost, b.max_cost);
  EXPECT_EQ(a.num_searches, b.num_searches);
  EXPECT_EQ(a.per_target_cost, b.per_target_cost);
}

TEST(ParallelEval, ExactBitIdenticalAcrossThreadsOnTree) {
  Rng rng(101);
  const Hierarchy h = MustBuild(RandomTree(300, rng));
  const Distribution dist = ZipfRandomDistribution(300, 2.0, rng);
  GreedyTreePolicy policy(h, dist);
  const EvalStats serial = ExactWithThreads(policy, h, dist, 1);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExpectBitIdentical(serial, ExactWithThreads(policy, h, dist, threads));
  }
}

TEST(ParallelEval, ExactBitIdenticalAcrossThreadsOnDag) {
  Rng rng(102);
  const Hierarchy h = MustBuild(RandomDag(180, rng, 0.4));
  const Distribution dist =
      ExponentialRandomDistribution(h.NumNodes(), rng);
  GreedyDagPolicy policy(h, dist);
  const EvalStats serial = ExactWithThreads(policy, h, dist, 1);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExpectBitIdentical(serial, ExactWithThreads(policy, h, dist, threads));
  }
}

TEST(ParallelEval, ExactBitIdenticalWithPricedCosts) {
  Rng rng(103);
  const Hierarchy h = MustBuild(RandomTree(120, rng));
  const Distribution dist = UniformRandomDistribution(120, rng);
  const CostModel costs = CostModel::UniformRandom(120, 1, 9, rng);
  CostSensitiveGreedyPolicy policy(h, dist, costs);
  EvalOptions serial_options;
  serial_options.threads = 1;
  serial_options.cost_model = &costs;
  EvalOptions parallel_options = serial_options;
  parallel_options.threads = 8;
  const EvalStats serial =
      Evaluator(serial_options).Exact(policy, h, dist);
  const EvalStats parallel =
      Evaluator(parallel_options).Exact(policy, h, dist);
  ExpectBitIdentical(serial, parallel);
  EXPECT_GT(serial.expected_priced_cost, serial.expected_cost * 0.99);
}

TEST(ParallelEval, SampledBitIdenticalAcrossThreads) {
  Rng rng(104);
  const Hierarchy h = MustBuild(RandomTree(150, rng));
  const Distribution dist = ZipfRandomDistribution(150, 1.8, rng);
  GreedyTreePolicy policy(h, dist);

  const auto sampled = [&](int threads) {
    EvalOptions options;
    options.threads = threads;
    return Evaluator(options).Sampled(policy, h, dist, 10'000, /*seed=*/42);
  };
  const EvalStats serial = sampled(1);
  EXPECT_EQ(serial.num_searches, 10'000u);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    const EvalStats parallel = sampled(threads);
    EXPECT_EQ(serial.expected_cost, parallel.expected_cost);
    EXPECT_EQ(serial.max_cost, parallel.max_cost);
    EXPECT_EQ(serial.num_searches, parallel.num_searches);
  }
}

TEST(ParallelEval, SampledSeedSelectsTheStream) {
  Rng rng(105);
  const Hierarchy h = MustBuild(RandomTree(150, rng));
  const Distribution dist = ExponentialRandomDistribution(150, rng);
  GreedyTreePolicy policy(h, dist);
  EvalOptions options;
  options.threads = 2;
  const Evaluator evaluator(options);
  const EvalStats a = evaluator.Sampled(policy, h, dist, 2'000, 1);
  const EvalStats b = evaluator.Sampled(policy, h, dist, 2'000, 1);
  const EvalStats c = evaluator.Sampled(policy, h, dist, 2'000, 2);
  EXPECT_EQ(a.expected_cost, b.expected_cost);  // same seed, same estimate
  EXPECT_NE(a.expected_cost, c.expected_cost);  // different stream
}

TEST(ParallelEval, ShardSizeKeepsPerTargetResults) {
  Rng rng(106);
  const Hierarchy h = MustBuild(RandomTree(90, rng));
  const Distribution dist = UniformRandomDistribution(90, rng);
  GreedyTreePolicy policy(h, dist);
  const EvalStats a = ExactWithThreads(policy, h, dist, 2, /*shard_size=*/1);
  const EvalStats b =
      ExactWithThreads(policy, h, dist, 2, /*shard_size=*/4096);
  // Per-target numbers never depend on sharding; the merged expectation may
  // differ only by long-double association order.
  EXPECT_EQ(a.per_target_cost, b.per_target_cost);
  EXPECT_EQ(a.max_cost, b.max_cost);
  EXPECT_NEAR(a.expected_cost, b.expected_cost, 1e-9);
}

TEST(ParallelEval, RoundsAndReachAggregates) {
  Rng rng(107);
  const Hierarchy h = MustBuild(RandomTree(60, rng));
  const Distribution dist = EqualDistribution(60);
  // One question per round: rounds == reach queries == unit cost.
  GreedyTreePolicy sequential(h, dist);
  const EvalStats seq = ExactWithThreads(sequential, h, dist, 1);
  EXPECT_DOUBLE_EQ(seq.expected_rounds, seq.expected_reach_queries);
  EXPECT_DOUBLE_EQ(seq.expected_cost, seq.expected_reach_queries);
  // Batched: strictly fewer rounds than questions.
  BatchedGreedyPolicy batched(h, dist,
                              BatchedGreedyOptions{.questions_per_round = 4});
  const EvalStats bat = ExactWithThreads(batched, h, dist, 1);
  EXPECT_LT(bat.expected_rounds, bat.expected_reach_queries);
}

TEST(ParallelEval, ZeroWeightTargetsCanBeSkipped) {
  const Hierarchy h = MustBuild(BuildVehicleHierarchy());
  const Distribution dist = PointMassDistribution(h.NumNodes(), 5);
  GreedyTreePolicy policy(h, dist);
  EvalOptions options;
  options.threads = 1;
  options.include_zero_weight_targets = false;
  const EvalStats stats = Evaluator(options).Exact(policy, h, dist);
  EXPECT_EQ(stats.num_searches, 1u);
  EXPECT_EQ(stats.per_target_cost.size(), h.NumNodes());
}

TEST(ParallelEval, EvaluatorReportsWorkerCount) {
  EvalOptions serial;
  serial.threads = 1;
  EXPECT_EQ(Evaluator(serial).num_workers(), 1u);
  EvalOptions four;
  four.threads = 4;
  EXPECT_EQ(Evaluator(four).num_workers(), 4u);
  ThreadPool pool(3);
  EvalOptions external;
  external.pool = &pool;
  EXPECT_EQ(Evaluator(external).num_workers(), 3u);
}

}  // namespace
}  // namespace aigs
