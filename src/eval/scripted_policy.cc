#include "eval/scripted_policy.h"

#include "graph/candidate_set.h"

namespace aigs {
namespace {

class ScriptedSession final : public SearchSession {
 public:
  ScriptedSession(const Hierarchy& h, const std::vector<NodeId>& script)
      : hierarchy_(&h), script_(&script), candidates_(h.graph()) {}

  Query PlanQuestion() const override {
    if (candidates_.alive_count() == 1) {
      return Query::Done(candidates_.SoleCandidate());
    }
    while (index_ < script_->size()) {
      const NodeId q = (*script_)[index_];
      if (IsInformative(q)) {
        return Query::ReachQuery(q);
      }
      ++index_;  // answer already determined; asking would be wasted
    }
    AIGS_CHECK(false && "script exhausted before identifying the target");
    return Query::Done(kInvalidNode);
  }

  void ApplyReach(NodeId q, bool yes) override {
    // Settle the script cursor past uninformative questions first: an
    // answer may arrive without this session ever having planned (the
    // question came from a shared plan cache).
    if (!plan_settled()) {
      (void)PlanQuestion();
    }
    AIGS_CHECK(index_ < script_->size() && (*script_)[index_] == q);
    ++index_;
    // Intersect through the reachability index rather than a BFS from q:
    // a scripted question node may itself be eliminated already (q dead,
    // yet R(q) still splits the candidates), where the candidate-set BFS
    // cannot start.
    const ReachabilityIndex& reach = hierarchy_->reach();
    std::vector<NodeId> to_kill;
    candidates_.bits().ForEachSetBit([&](std::size_t raw) {
      const NodeId t = static_cast<NodeId>(raw);
      if (reach.Reaches(q, t) != yes) {
        to_kill.push_back(t);
      }
    });
    for (const NodeId t : to_kill) {
      candidates_.KillOne(t);
    }
  }

 private:
  // A question is informative iff both answers are still possible, i.e.
  // candidates exist both inside and outside R(q).
  bool IsInformative(NodeId q) const {
    const ReachabilityIndex& reach = hierarchy_->reach();
    bool inside = false;
    bool outside = false;
    candidates_.bits().ForEachSetBit([&](std::size_t raw) {
      const NodeId t = static_cast<NodeId>(raw);
      (reach.Reaches(q, t) ? inside : outside) = true;
    });
    return inside && outside;
  }

  const Hierarchy* hierarchy_;
  const std::vector<NodeId>* script_;
  CandidateSet candidates_;
  // Script cursor. Mutable because planning advances it past questions
  // whose answers are already determined — a pure function of the applied
  // answers (the skipped prefix is the same no matter when it is skipped).
  mutable std::size_t index_ = 0;
};

}  // namespace

ScriptedPolicy::ScriptedPolicy(const Hierarchy& hierarchy,
                               std::vector<NodeId> script, std::string name)
    : hierarchy_(&hierarchy),
      script_(std::move(script)),
      name_(std::move(name)) {
  for (const NodeId q : script_) {
    AIGS_CHECK(q < hierarchy.NumNodes());
  }
}

std::unique_ptr<SearchSession> ScriptedPolicy::NewSession() const {
  return std::make_unique<ScriptedSession>(*hierarchy_, script_);
}

}  // namespace aigs
