// Subtree-weight bookkeeping for GreedyTree (Algorithm 4/5).
//
// TreeWeightBase holds, for a (tree, node-weight) pair, the subtree weights
// p̃(v) = p(T_v) and subtree sizes |T_v| that Algorithm 5 (SetWeightDFS)
// computes. It is shared by all search sessions and can be updated
// incrementally when the distribution changes one node at a time (online
// learning — O(depth) per labeled object).
//
// TreeSearchState is one session's view: current root plus a small delta
// overlay recording the subtrees removed by no-answers (Algorithm 4 lines
// 11–14 subtract p̃(q)/size(q) along the root→q path — at most h entries per
// query). A fresh session costs O(1), not O(n).
#ifndef AIGS_CORE_TREE_WEIGHT_INDEX_H_
#define AIGS_CORE_TREE_WEIGHT_INDEX_H_

#include <vector>

#include "tree/tree.h"
#include "util/common.h"
#include "util/node_map.h"

namespace aigs {

/// Shared, optionally-mutable base weights for a tree hierarchy.
class TreeWeightBase {
 public:
  /// `node_weights` must have one entry per node. The tree must outlive the
  /// base.
  TreeWeightBase(const Tree& tree, std::vector<Weight> node_weights);

  const Tree& tree() const { return *tree_; }

  /// w(v): the node's own weight.
  Weight NodeWeight(NodeId v) const { return node_weight_[v]; }

  /// p̃(v) = Σ_{x ∈ T_v} w(x).
  Weight SubtreeWeight(NodeId v) const { return subtree_weight_[v]; }

  /// |T_v| (structure-only; never changes).
  std::uint32_t SubtreeSize(NodeId v) const { return subtree_size_[v]; }

  /// Σ w over the whole tree.
  Weight Total() const { return subtree_weight_[tree_->root()]; }

  /// Adds `delta` to w(v), updating p̃ along the root→v path (O(depth)).
  /// Not thread-safe with concurrent sessions; the online-learning harness
  /// serializes searches with updates.
  void AddWeight(NodeId v, Weight delta);

  /// Replaces all node weights (O(n)).
  void SetWeights(std::vector<Weight> node_weights);

 private:
  const Tree* tree_;
  std::vector<Weight> node_weight_;
  std::vector<Weight> subtree_weight_;
  std::vector<std::uint32_t> subtree_size_;
};

/// Per-search overlay implementing the candidate tree of Algorithm 4.
class TreeSearchState {
 public:
  /// Starts with the whole tree alive and the root as search root.
  explicit TreeSearchState(const TreeWeightBase& base)
      : base_(&base), root_(base.tree().root()) {}

  const TreeWeightBase& base() const { return *base_; }

  /// Current search root r (every candidate lies in T_r minus removals).
  NodeId root() const { return root_; }

  /// Session subtree weight: base p̃(v) minus weight removed under v.
  Weight SubtreeWeight(NodeId v) const {
    return base_->SubtreeWeight(v) - removed_weight_.GetOr(v, 0);
  }

  /// Session subtree size.
  std::uint32_t SubtreeSize(NodeId v) const {
    return base_->SubtreeSize(v) - removed_size_.GetOr(v, 0);
  }

  /// True iff v was eliminated by a no-answer (v is the top of a removed
  /// subtree). Nodes strictly inside removed subtrees are never probed by
  /// the descent, so a top-only flag suffices.
  bool IsRemovedTop(NodeId v) const { return removed_top_.GetOr(v, 0) != 0; }

  /// Number of candidates remaining.
  std::uint32_t CandidateCount() const { return SubtreeSize(root_); }

  /// Applies reach(q) = yes: the search root moves to q.
  void ApplyYes(NodeId q) {
    AIGS_DCHECK(base_->tree().InSubtree(root_, q));
    root_ = q;
  }

  /// Applies reach(q) = no: removes T_q, subtracting its session weight and
  /// size from every node on the root→q path (Algorithm 4 lines 11–14).
  void ApplyNo(NodeId q);

  /// The identified target; requires CandidateCount() == 1.
  NodeId Target() const {
    AIGS_CHECK(CandidateCount() == 1);
    return root_;
  }

 private:
  const TreeWeightBase* base_;
  NodeId root_;
  NodeMap<Weight> removed_weight_;
  NodeMap<std::uint32_t> removed_size_;
  NodeMap<std::uint8_t> removed_top_;
};

}  // namespace aigs

#endif  // AIGS_CORE_TREE_WEIGHT_INDEX_H_
