// Combined dataset persistence: a hierarchy file plus an object-count file.
// LoadDatasetFiles is the hook for plugging the real Amazon/ImageNet data
// into every bench and example in place of the synthetic stand-ins
// (DESIGN.md "Substitutions").
#ifndef AIGS_DATA_DATASET_IO_H_
#define AIGS_DATA_DATASET_IO_H_

#include <string>

#include "data/datasets.h"
#include "util/status.h"

namespace aigs {

/// Writes `<prefix>.hierarchy.txt` and `<prefix>.counts.txt`.
Status SaveDatasetFiles(const Dataset& dataset, const std::string& prefix);

/// Loads a dataset saved by SaveDatasetFiles (or hand-converted real data).
/// `name` is carried into reports. Validates that the count file matches
/// the hierarchy's node count.
StatusOr<Dataset> LoadDatasetFiles(const std::string& name,
                                   const std::string& prefix);

/// Resolves a hierarchy SPEC — the shared argument syntax of `aigs serve`
/// and `aigs_loadgen`, which must agree on the graph down to the node ids
/// (the loadgen answers the server's questions from its own copy):
///   builtin:vehicle | builtin:fig2 | builtin:fig3   paper hierarchies
///   synthetic:tree:N[:seed]                          RandomTree(N)
///   synthetic:dag:N[:seed]                           RandomDag(N)
///   anything else                                    a hierarchy file path
StatusOr<Digraph> LoadHierarchySpec(const std::string& spec);

}  // namespace aigs

#endif  // AIGS_DATA_DATASET_IO_H_
