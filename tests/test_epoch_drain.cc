// The background drain worker (PR 6): Publish is an O(1) epoch swap and the
// warm-seed + idle-session sweep run on a concurrent-safe worker.
//  (1) equivalence, the hard guarantee: for every registry policy on trees
//      and DAGs, a session drained in the background produces a transcript
//      bit-identical to the same session drained by the PR-5 inline sweep;
//  (2) TTL interplay: a session the manager expired mid-drain is neither
//      resurrected (no TTL refresh) nor counted as migrated — on the
//      background path and the inline path, on an injectable clock;
//  (3) roll-forward: a second Publish mid-drain supersedes the running job
//      and the pipeline converges on the newest epoch, never a stale one;
//  (4) a multithreaded stress run racing Open/Ask/Answer/Close and repeated
//      publishes against the live drain — no lost or duplicated sessions,
//      every transcript still bit-identical to the quiescent reference.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/aigs.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "service/engine.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

using RecordedQuery = std::pair<Query::Kind, std::vector<NodeId>>;

std::vector<NodeId> QueryNodes(const Query& q) {
  return q.kind == Query::Kind::kReach ? std::vector<NodeId>{q.node}
                                       : q.choices;
}

/// Drives `id` for up to `max_steps` answered questions (SIZE_MAX = to the
/// end), recording the questions; returns the target when done was reached,
/// kInvalidNode otherwise.
NodeId Drive(Engine& engine, SessionId id, Oracle& oracle,
             std::size_t max_steps,
             std::vector<RecordedQuery>* recorded = nullptr) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    const auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return q->node;
    }
    if (recorded != nullptr) {
      recorded->emplace_back(q->kind, QueryNodes(*q));
    }
    AIGS_CHECK(engine.Answer(id, AnswerFromOracle(*q, oracle)).ok());
  }
  const auto q = engine.Ask(id);
  AIGS_CHECK(q.ok());
  return q->kind == Query::Kind::kDone ? q->node : kInvalidNode;
}

/// Answers `steps` questions and stops — no trailing Ask, so the session is
/// left IDLE (between an answer and its next question), which is what the
/// drain sweep considers migratable. Drive's final done-probe would pin it.
void DriveIdle(Engine& engine, SessionId id, Oracle& oracle,
               std::size_t steps,
               std::vector<RecordedQuery>* recorded = nullptr) {
  for (std::size_t step = 0; step < steps; ++step) {
    const auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return;
    }
    if (recorded != nullptr) {
      recorded->emplace_back(q->kind, QueryNodes(*q));
    }
    AIGS_CHECK(engine.Answer(id, AnswerFromOracle(*q, oracle)).ok());
  }
}

struct DrainCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
};

std::vector<DrainCase> Cases() {
  std::vector<DrainCase> cases;
  Rng rng(626262);
  {
    Hierarchy tree = MustBuild(RandomTree(48, rng));
    Distribution d = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
    cases.push_back({"tree", std::move(tree), std::move(d)});
  }
  {
    Hierarchy dag = MustBuild(RandomDag(48, rng, 0.4));
    Distribution d = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
    cases.push_back({"dag", std::move(dag), std::move(d)});
  }
  return cases;
}

/// Every registry policy spec the hierarchy supports (mirrors
/// test_epoch_migration.cc; the scripted policy gets a complete order).
std::vector<std::string> SpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

std::shared_ptr<const CostModel> SomeCosts(std::size_t n) {
  Rng rng(7);
  return std::make_shared<const CostModel>(
      CostModel::UniformRandom(n, 1, 9, rng));
}

CatalogConfig ConfigFor(const DrainCase& c) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(c.hierarchy);
  config.distribution = c.distribution;
  config.cost_model = SomeCosts(c.hierarchy.NumNodes());
  config.policy_specs = SpecsFor(c.hierarchy);
  return config;
}

// ---- (1) background/inline equivalence --------------------------------------

TEST(EpochDrain, BackgroundDrainMatchesInlineSweepEveryPolicy) {
  for (const DrainCase& c : Cases()) {
    EngineOptions inline_options;
    inline_options.drain.background = false;
    Engine inline_engine(inline_options);

    EngineOptions bg_options;  // background defaults on; shrink the batches
    bg_options.drain.batch_size = 2;
    bg_options.drain.tick_budget_ms = 1;
    Engine bg_engine(bg_options);

    ASSERT_TRUE(inline_engine.Publish(ConfigFor(c)).ok());
    ASSERT_TRUE(bg_engine.Publish(ConfigFor(c)).ok());
    bg_engine.WaitForDrain();

    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      SCOPED_TRACE(c.name + "/" + spec);
      const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);

      // One half-driven idle session per engine...
      ExactOracle o1(c.hierarchy.reach(), target);
      ExactOracle o2(c.hierarchy.reach(), target);
      auto inline_id = inline_engine.Open(spec);
      auto bg_id = bg_engine.Open(spec);
      ASSERT_TRUE(inline_id.ok());
      ASSERT_TRUE(bg_id.ok());
      std::vector<RecordedQuery> inline_qs, bg_qs;
      DriveIdle(inline_engine, *inline_id, o1, 2, &inline_qs);
      DriveIdle(bg_engine, *bg_id, o2, 2, &bg_qs);

      // ...republish identical weights on both. The inline engine sweeps
      // on the publishing thread; the background engine hands the sweep to
      // the worker and returns immediately.
      ASSERT_TRUE(inline_engine.Publish(ConfigFor(c)).ok());
      ASSERT_TRUE(bg_engine.Publish(ConfigFor(c)).ok());
      bg_engine.WaitForDrain();

      // Both sessions must now sit on the new epoch (the sweep migrated
      // them — neither was mid-question) with bit-identical remainders.
      ExactOracle r1(c.hierarchy.reach(), target);
      ExactOracle r2(c.hierarchy.reach(), target);
      EXPECT_EQ(Drive(inline_engine, *inline_id, r1, SIZE_MAX, &inline_qs),
                target);
      EXPECT_EQ(Drive(bg_engine, *bg_id, r2, SIZE_MAX, &bg_qs), target);
      EXPECT_EQ(inline_qs, bg_qs);
      EXPECT_TRUE(inline_engine.Close(*inline_id).ok());
      EXPECT_TRUE(bg_engine.Close(*bg_id).ok());
    }

    // The worker actually did the migrating (one session per spec per
    // republish), and the pipeline settled idle on the newest epoch.
    const DrainStats d = bg_engine.DrainProgress();
    EXPECT_TRUE(d.background);
    EXPECT_EQ(d.phase, DrainPhase::kIdle);
    EXPECT_GT(d.migrated, 0u);
    EXPECT_EQ(d.failed, 0u);
    EXPECT_EQ(d.target_epoch, bg_engine.epoch());
    EXPECT_GT(d.batches, 0u);
  }
}

// ---- (2) TTL eviction vs the sweep ------------------------------------------

TEST(EpochDrain, InlineSweepNeitherResurrectsNorCountsExpiredSessions) {
  const DrainCase c = std::move(Cases().front());
  auto now = std::make_shared<std::atomic<std::uint64_t>>(1'000);
  EngineOptions options;
  options.drain.background = false;
  options.migration.sweep_on_publish = false;  // sweep explicitly below
  options.sessions.ttl_millis = 500;
  options.sessions.clock_millis = [now] { return now->load(); };
  Engine engine(options);
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle o1(c.hierarchy.reach(), target);
  ExactOracle o2(c.hierarchy.reach(), target);
  auto stale = engine.Open("greedy");
  ASSERT_TRUE(stale.ok());
  DriveIdle(engine, *stale, o1, 1);

  // Age the first session past its TTL, keep the second fresh.
  now->fetch_add(400);
  auto fresh = engine.Open("greedy");
  ASSERT_TRUE(fresh.ok());
  DriveIdle(engine, *fresh, o2, 1);
  now->fetch_add(200);  // stale idle 600ms > 500; fresh idle 200ms

  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const MigrateSweepStats sweep = engine.MigrateIdleSessions();
  EXPECT_EQ(sweep.scanned, 2u);
  EXPECT_EQ(sweep.expired, 1u);
  EXPECT_EQ(sweep.migrated, 1u);
  EXPECT_EQ(sweep.failed, 0u);

  // The expired session must stay dead — the sweep's liveness probe must
  // not have refreshed its TTL.
  EXPECT_EQ(engine.Ask(*stale).status().code(), StatusCode::kNotFound);
  ExactOracle rest(c.hierarchy.reach(), target);
  EXPECT_EQ(Drive(engine, *fresh, rest, SIZE_MAX), target);
  EXPECT_TRUE(engine.Close(*fresh).ok());

  // Nothing left: a second sweep finds no old-epoch work and, above all,
  // never double-counts the evicted session as migrated.
  const MigrateSweepStats again = engine.MigrateIdleSessions();
  EXPECT_EQ(again.migrated, 0u);
}

TEST(EpochDrain, BackgroundSweepDropsExpiredSessionsOnInjectedClock) {
  const DrainCase c = std::move(Cases().front());
  auto now = std::make_shared<std::atomic<std::uint64_t>>(1'000);
  EngineOptions options;  // background drain on
  options.sessions.ttl_millis = 500;
  options.sessions.clock_millis = [now] { return now->load(); };
  Engine engine(options);
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();

  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  std::vector<SessionId> ids;
  for (int i = 0; i < 3; ++i) {
    ExactOracle oracle(c.hierarchy.reach(), target);
    auto id = engine.Open("greedy");
    ASSERT_TRUE(id.ok());
    DriveIdle(engine, *id, oracle, 1);
    ids.push_back(*id);
  }
  now->fetch_add(1'000);  // all three expire before the drain can run

  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();
  const DrainStats d = engine.DrainProgress();
  EXPECT_EQ(d.expired, 3u);
  EXPECT_EQ(d.migrated, 0u);
  for (const SessionId id : ids) {
    EXPECT_EQ(engine.Ask(id).status().code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(engine.Stats().live_sessions, 0u);
}

// ---- (3) mid-drain re-publish rolls forward ---------------------------------

TEST(EpochDrain, RePublishMidDrainConvergesOnTheNewestEpoch) {
  const DrainCase c = std::move(Cases().front());
  EngineOptions options;
  options.drain.batch_size = 4;  // many batch boundaries = many
  options.drain.tick_budget_ms = 1;  // supersede checkpoints
  Engine engine(options);
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();

  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  std::vector<SessionId> ids;
  for (int i = 0; i < 200; ++i) {
    ExactOracle oracle(c.hierarchy.reach(), target);
    auto id = engine.Open("greedy");
    ASSERT_TRUE(id.ok());
    DriveIdle(engine, *id, oracle, 1);
    ids.push_back(*id);
  }

  // Two publishes back to back: the second lands while the first drain is
  // pending or sweeping. Whether the worker had picked the first job up
  // yet (rolled_forward) or not (pending job replaced), the invariant is
  // the same: the pipeline must converge on the LAST epoch and every idle
  // session must land there, exactly once.
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();

  const DrainStats d = engine.DrainProgress();
  EXPECT_EQ(d.drains, 2u);  // the initial publish enqueues nothing
  EXPECT_EQ(d.target_epoch, engine.epoch());
  EXPECT_EQ(engine.epoch(), 3u);
  EXPECT_EQ(d.sessions_remaining, 0u);

  const EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.sessions_by_epoch.size(), 1u);
  EXPECT_EQ(stats.sessions_by_epoch.begin()->first, 3u);
  EXPECT_EQ(stats.sessions_by_epoch.begin()->second, ids.size());
  for (const SessionId id : ids) {
    ExactOracle rest(c.hierarchy.reach(), target);
    EXPECT_EQ(Drive(engine, id, rest, SIZE_MAX), target);
    ASSERT_TRUE(engine.Close(id).ok());
  }
}

// ---- (4) concurrent stress: live traffic vs live drain ----------------------

TEST(EpochDrain, StressTrafficRacesDrainAndRePublishLosslessly) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSearchesPerThread = 12;
  constexpr std::size_t kPublishes = 4;
  const std::vector<std::string> kSpecs = {"greedy", "greedy_naive",
                                           "batched:k=3", "top_down"};

  for (const DrainCase& c : Cases()) {
    SCOPED_TRACE(c.name);
    // Quiescent reference transcripts, one per (spec, target): the weights
    // never change across publishes, so every migration is zero-divergence
    // and racing sessions must reproduce these bit-exactly.
    std::map<std::pair<std::string, NodeId>, std::vector<RecordedQuery>>
        expected;
    {
      EngineOptions ref_options;
      ref_options.drain.background = false;
      Engine ref(ref_options);
      ASSERT_TRUE(ref.Publish(ConfigFor(c)).ok());
      for (const std::string& spec : kSpecs) {
        for (NodeId target = 0; target < c.hierarchy.NumNodes();
             target += 7) {
          ExactOracle oracle(c.hierarchy.reach(), target);
          auto id = ref.Open(spec);
          ASSERT_TRUE(id.ok());
          std::vector<RecordedQuery> qs;
          EXPECT_EQ(Drive(ref, *id, oracle, SIZE_MAX, &qs), target);
          expected[{spec, target}] = std::move(qs);
          ASSERT_TRUE(ref.Close(*id).ok());
        }
      }
    }

    EngineOptions options;  // background drain on, aggressive batching
    options.drain.batch_size = 4;
    options.drain.tick_budget_ms = 1;
    options.drain.max_concurrency = 2;
    Engine engine(options);
    ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t s = 0; s < kSearchesPerThread; ++s) {
          const std::string& spec = kSpecs[(t + s) % kSpecs.size()];
          const NodeId target = static_cast<NodeId>(
              ((t * kSearchesPerThread + s) % (c.hierarchy.NumNodes() / 7)) *
              7);
          ExactOracle oracle(c.hierarchy.reach(), target);
          auto id = engine.Open(spec);
          if (!id.ok()) {
            failures.fetch_add(1);
            continue;
          }
          std::vector<RecordedQuery> qs;
          if (Drive(engine, *id, oracle, SIZE_MAX, &qs) != target) {
            failures.fetch_add(1);
          } else if (qs != expected[{spec, target}]) {
            mismatches.fetch_add(1);
          }
          if (!engine.Close(*id).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    // Publisher thread: repeated identical-weight publishes, each handing
    // a fresh drain to the worker while the previous may still be running.
    threads.emplace_back([&] {
      for (std::size_t p = 0; p < kPublishes; ++p) {
        if (!engine.Publish(ConfigFor(c)).ok()) {
          failures.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
    for (std::thread& thread : threads) {
      thread.join();
    }
    engine.WaitForDrain();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);
    // No session lost, duplicated, or left behind: every search closed its
    // session, so the store must be empty, and the drain idle on the
    // newest epoch.
    const EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.live_sessions, 0u);
    EXPECT_TRUE(stats.sessions_by_epoch.empty());
    EXPECT_EQ(stats.drain.phase, DrainPhase::kIdle);
    EXPECT_EQ(stats.drain.target_epoch, engine.epoch());
    EXPECT_EQ(engine.epoch(), kPublishes + 1);
    EXPECT_EQ(stats.drain.failed, 0u);
  }
}

}  // namespace
}  // namespace aigs
