#include "util/ascii_table.h"

#include <algorithm>

#include "util/common.h"

namespace aigs {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AIGS_CHECK(!headers_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  AIGS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        line += " | ";
      }
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) {
      out += "-+-";
    }
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace aigs
