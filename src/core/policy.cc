#include "core/policy.h"

namespace aigs {

void SearchSession::OnChoice(std::span<const NodeId> choices, int answer) {
  (void)choices;
  (void)answer;
  AIGS_CHECK(false && "this policy does not ask multiple-choice questions");
}

void SearchSession::OnReachBatch(std::span<const NodeId> nodes,
                                 const std::vector<bool>& answers) {
  (void)nodes;
  (void)answers;
  AIGS_CHECK(false && "this policy does not ask batched questions");
}

Status SearchSession::TryOnReachBatch(std::span<const NodeId> nodes,
                                      const std::vector<bool>& answers) {
  OnReachBatch(nodes, answers);
  return Status::OK();
}

}  // namespace aigs
