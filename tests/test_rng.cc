#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace aigs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(6);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++hits[static_cast<std::size_t>(rng.UniformInt(10))];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 1500);  // expected 2000 each; generous slack
    EXPECT_LT(h, 2500);
  }
}

TEST(Rng, UniformIntInclusiveEndpoints) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.UniformIntInclusive(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformReal();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  double sum = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);  // mean = 1/rate
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    heads += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / 20000, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // probability of identity is ~1/50!
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(14);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.Next() == child.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace aigs
