// String-spec construction of policies: "greedy", "batched:k=8",
// "migs:choices=4,ordered=true" — the single place that maps policy names to
// factories. Benches, the CLI and tests all construct policies through the
// registry, so a new scenario is a spec string instead of hand-wired code.
//
// Spec grammar:
//   spec    := name [":" option ("," option)*]
//   option  := key "=" value
// Values never contain ',' or ':'; list-valued options (the scripted
// policy's question order) separate elements with '+'.
//
// The global registry is pre-populated with every built-in policy —
// GreedyTree/DAG (and the auto-dispatching "greedy"), GreedyNaive,
// BatchedGreedy, CostSensitiveGreedy, MIGS, WIGS, TopDown and Scripted.
// Factories reject unknown option keys, so typos fail with a Status instead
// of silently running the default configuration.
#ifndef AIGS_CORE_POLICY_REGISTRY_H_
#define AIGS_CORE_POLICY_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Everything a policy factory may bind to. `hierarchy` and `distribution`
/// are required; `cost_model` only by cost-aware policies (factories that
/// need it return FailedPrecondition when it is absent).
struct PolicyContext {
  const Hierarchy* hierarchy = nullptr;
  const Distribution* distribution = nullptr;
  const CostModel* cost_model = nullptr;
};

/// Parsed option map of a policy spec. Factories consume the keys they
/// understand; Create() rejects any leftover key so misspelled options
/// surface as errors.
class PolicyOptions {
 public:
  PolicyOptions() = default;

  /// Parses "key=value,key=value" (empty input → empty options).
  static StatusOr<PolicyOptions> Parse(std::string_view text);

  /// Typed accessors; the key is marked consumed even when absent (the
  /// fallback then applies).
  StatusOr<std::int64_t> ConsumeInt(const std::string& key,
                                    std::int64_t fallback);
  StatusOr<double> ConsumeDouble(const std::string& key, double fallback);
  StatusOr<bool> ConsumeBool(const std::string& key, bool fallback);
  /// Required '+'-separated node-id list ("12+7+3").
  StatusOr<std::vector<NodeId>> ConsumeNodeList(const std::string& key);
  /// Free-form string value.
  StatusOr<std::string> ConsumeString(const std::string& key,
                                      std::string fallback);

  /// OK iff every provided key was consumed by the factory.
  Status VerifyAllConsumed() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

/// A parsed "name:options" spec.
struct PolicySpec {
  std::string name;
  PolicyOptions options;

  static StatusOr<PolicySpec> Parse(std::string_view spec);
};

/// Name → factory registry.
class PolicyRegistry {
 public:
  using Factory = std::function<StatusOr<std::unique_ptr<Policy>>(
      const PolicyContext&, PolicyOptions&)>;

  /// The process-wide registry, pre-populated with the built-in policies on
  /// first access.
  static PolicyRegistry& Global();

  /// Registers a factory; fails on duplicate names. Names are matched
  /// case-sensitively and by convention are lower_snake_case.
  Status Register(std::string name, std::string help, Factory factory);

  /// Parses `spec` and builds the policy. Errors: unknown name, malformed
  /// options, unconsumed option keys, or factory-specific failures (e.g.
  /// cost_sensitive without a cost model).
  StatusOr<std::unique_ptr<Policy>> Create(std::string_view spec,
                                           const PolicyContext& context) const;

  bool Contains(const std::string& name) const;

  struct Entry {
    std::string name;
    std::string help;
  };
  /// All registered names with their help lines, sorted by name.
  std::vector<Entry> List() const;

 private:
  // name → (help, factory)
  std::map<std::string, std::pair<std::string, Factory>> factories_;
};

}  // namespace aigs

#endif  // AIGS_CORE_POLICY_REGISTRY_H_
