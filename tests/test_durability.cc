// Durable session store: WAL framing, checkpoints, and crash recovery.
//  (1) WAL round trips, torn tails, and bit rot at the frame layer;
//  (2) deterministic shutdown → Recover round trips for every registry
//      policy on tree and DAG catalogs (bit-identical Save blobs, original
//      ids), with and without an intervening checkpoint;
//  (3) crash injection: a child process killed (SIGKILL) at randomized
//      points between WAL append and ack — recovery must restore every
//      acked session exactly; only the single in-flight operation may be
//      ahead of or behind the ack stream;
//  (4) recovery/TTL interplay under an injected wall clock;
//  (5) Save and Checkpoint under concurrent Answer traffic;
//  (6) adversarial SessionCodec decode (truncations, bit flips, garbage).
#include "service/durable_store.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "service/engine.h"
#include "service/session_codec.h"
#include "service/wal.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

/// Self-cleaning scratch directory for one test's durable store.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("aigs_durability_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AIGS_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
  AIGS_CHECK(out.good());
}

/// The newest WAL segment in a durable directory (recovery's final input).
std::string NewestSegment(const std::string& dir) {
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && (newest.empty() || name > newest)) {
      newest = entry.path().string();
    }
  }
  AIGS_CHECK(!newest.empty());
  return newest;
}

// ---- shared catalog fixtures (mirrors test_service.cc) ---------------------

struct ServiceCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
};

std::vector<ServiceCase>& ServiceCases() {
  static std::vector<ServiceCase>* cases = [] {
    auto* out = new std::vector<ServiceCase>();
    Rng rng(99);
    Hierarchy tree = MustBuild(RandomTree(45, rng));
    Distribution tree_dist =
        ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
    out->push_back({"tree", std::move(tree), std::move(tree_dist)});
    Hierarchy dag = MustBuild(RandomDag(45, rng, 0.4));
    Distribution dag_dist = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
    out->push_back({"dag", std::move(dag), std::move(dag_dist)});
    return out;
  }();
  return *cases;
}

std::vector<std::string> SpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

std::shared_ptr<const CostModel> SomeCosts(std::size_t n) {
  Rng rng(7);
  return std::make_shared<const CostModel>(
      CostModel::UniformRandom(n, 1, 9, rng));
}

CatalogConfig ConfigFor(const ServiceCase& c,
                        std::vector<std::string> specs) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(c.hierarchy);
  config.distribution = c.distribution;
  config.cost_model = SomeCosts(c.hierarchy.NumNodes());
  config.policy_specs = std::move(specs);
  return config;
}

/// Deterministic inline-drain engine options (no background threads: the
/// crash tests fork(), and forked children must not inherit worker state).
EngineOptions InlineEngineOptions() {
  EngineOptions opts;
  opts.sessions.ttl_millis = 0;
  opts.drain.background = false;
  return opts;
}

TranscriptStep StepFrom(const Query& q, const SessionAnswer& a) {
  TranscriptStep step;
  step.kind = q.kind;
  step.nodes = q.kind == Query::Kind::kReach ? std::vector<NodeId>{q.node}
                                             : q.choices;
  step.yes = a.yes;
  step.batch_answers = a.batch;
  step.choice = a.choice;
  return step;
}

/// The canonical one-line step encoding, without the trailing newline.
std::string StepLine(const TranscriptStep& step) {
  std::string out;
  SessionCodec::AppendStepKey(step, &out);
  out.pop_back();
  return out;
}

/// Answers up to `max_steps` questions with the oracle; true when done.
bool Drive(Engine& engine, SessionId id, Oracle& oracle,
           std::size_t max_steps) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return true;
    }
    const Status s = engine.Answer(id, AnswerFromOracle(*q, oracle));
    AIGS_CHECK(s.ok());
  }
  return false;
}

// ---- (1) WAL frame layer ---------------------------------------------------

TEST(Wal, RoundTripsBinaryPayloads) {
  TempDir dir("wal_roundtrip");
  std::filesystem::create_directories(dir.path());
  const std::string path = dir.path() + "/wal-000001.log";
  const std::vector<std::string> payloads = {
      "open 1 1000\naigs-session/2\n",
      std::string("\x00\x01\xFF binary \n\n payload", 21),
      "",  // empty payloads are legal frames
      std::string(100000, 'x'),
  };
  {
    auto writer = WalWriter::Open(path, {FsyncPolicy::kAlways, 1});
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
    EXPECT_EQ((*writer)->records(), payloads.size());
    EXPECT_EQ((*writer)->syncs(), payloads.size());  // always = every append
  }
  auto scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, payloads);
  EXPECT_EQ(scan->torn_bytes, 0u);
}

TEST(Wal, IntervalPolicyBatchesFsyncs) {
  TempDir dir("wal_interval");
  std::filesystem::create_directories(dir.path());
  auto writer =
      WalWriter::Open(dir.path() + "/w.log", {FsyncPolicy::kInterval, 8});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 20; ++i) {
    // Two-step concat dodges a GCC 12 -Wrestrict false positive in the
    // inlined char* + string&& operator+.
    std::string record = "r";
    record += std::to_string(i);
    ASSERT_TRUE((*writer)->Append(record).ok());
  }
  EXPECT_EQ((*writer)->syncs(), 2u);  // at records 8 and 16
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->syncs(), 3u);
}

TEST(Wal, TornTailIsDiscardedNeverFatal) {
  TempDir dir("wal_torn");
  std::filesystem::create_directories(dir.path());
  const std::string path = dir.path() + "/w.log";
  {
    auto writer = WalWriter::Open(path, {FsyncPolicy::kNone, 1});
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*writer)->Append("record-" + std::to_string(i)).ok());
    }
  }
  const std::string intact = ReadFile(path);

  // Truncation mid-frame: the last record's tail is gone.
  WriteFile(path, intact.substr(0, intact.size() - 3));
  auto scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 4u);
  EXPECT_GT(scan->torn_bytes, 0u);

  // Garbage appended after valid frames: counted as torn, frames intact.
  WriteFile(path, intact + "\x07garbage that is not a frame");
  scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 5u);
  EXPECT_GT(scan->torn_bytes, 0u);

  // A flipped bit mid-file fails that frame's CRC; everything behind the
  // damaged frame is untrusted (its framing derives from damaged bytes).
  std::string flipped = intact;
  flipped[intact.size() / 2] ^= 0x10;
  WriteFile(path, flipped);
  scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(scan->records.size(), 5u);
  for (std::size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i], "record-" + std::to_string(i));
  }

  // Missing file: an empty scan, not an error.
  auto missing = ReadWal(dir.path() + "/does-not-exist.log");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
}

TEST(Wal, ParseFsyncPolicy) {
  auto always = ParseFsyncPolicy("always");
  ASSERT_TRUE(always.ok());
  EXPECT_EQ(always->policy, FsyncPolicy::kAlways);
  auto interval = ParseFsyncPolicy("interval:16");
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval->policy, FsyncPolicy::kInterval);
  EXPECT_EQ(interval->interval, 16u);
  EXPECT_EQ(FormatFsyncPolicy(*interval), "interval:16");
  auto none = ParseFsyncPolicy("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->policy, FsyncPolicy::kNone);
  EXPECT_FALSE(ParseFsyncPolicy("interval:0").ok());
  EXPECT_FALSE(ParseFsyncPolicy("interval:x").ok());
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

// ---- (2) deterministic shutdown → Recover round trips ----------------------

/// Runs every registry policy through open + a few answers, shuts the
/// engine down (destructor flush), recovers into a fresh engine, and
/// demands bit-identical Save blobs under the original ids.
void RoundTripCase(const ServiceCase& c, bool checkpoint_midway) {
  TempDir dir(std::string("roundtrip_") + c.name +
              (checkpoint_midway ? "_ckpt" : ""));
  const std::vector<std::string> specs = SpecsFor(c.hierarchy);
  std::map<SessionId, std::string> expected;  // id -> final Save blob
  SessionId closed_id = 0;
  {
    Engine engine(InlineEngineOptions());
    ASSERT_TRUE(engine.Publish(ConfigFor(c, specs)).ok());
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    dopts.sync = {FsyncPolicy::kInterval, 4};
    dopts.checkpoint_every = 0;  // manual only: the test picks the moment
    ASSERT_TRUE(engine.EnableDurability(dopts).ok());
    ASSERT_TRUE(engine.durable());

    std::size_t spec_index = 0;
    for (const std::string& spec : specs) {
      auto opened = engine.Open(spec);
      ASSERT_TRUE(opened.ok()) << spec << ": " << opened.status().ToString();
      ExactOracle oracle(c.hierarchy.reach(),
                         static_cast<NodeId>(c.hierarchy.NumNodes() - 1));
      Drive(engine, *opened, oracle, 3);
      auto blob = engine.Save(*opened);
      ASSERT_TRUE(blob.ok());
      expected[*opened] = *blob;
      if (checkpoint_midway && ++spec_index == specs.size() / 2) {
        // Half the sessions come back from the checkpoint, half from the
        // WAL tail written after it.
        ASSERT_TRUE(engine.Checkpoint().ok());
      }
    }

    // One closed session must stay closed across recovery.
    auto doomed = engine.Open(specs.front());
    ASSERT_TRUE(doomed.ok());
    closed_id = *doomed;
    ASSERT_TRUE(engine.Close(closed_id).ok());
    ASSERT_TRUE(engine.FlushDurable().ok());
  }

  Engine engine(InlineEngineOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c, specs)).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.sync = {FsyncPolicy::kInterval, 4};
  auto recovery = engine.Recover(dopts);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->recovered, expected.size());
  EXPECT_EQ(recovery->expired_dropped, 0u);
  EXPECT_EQ(recovery->replay_failures, 0u);
  EXPECT_EQ(recovery->divergent_sessions, 0u);  // same catalog: exact replay
  EXPECT_EQ(recovery->malformed_records, 0u);
  EXPECT_EQ(recovery->torn_tails, 0u);  // graceful shutdown tears nothing
  if (checkpoint_midway) {
    EXPECT_GT(recovery->checkpoint_sessions, 0u);
  }
  EXPECT_TRUE(engine.durable());

  for (const auto& [id, blob] : expected) {
    auto roundtripped = engine.Save(id);
    ASSERT_TRUE(roundtripped.ok()) << "session " << id << " not recovered";
    EXPECT_EQ(*roundtripped, blob) << "session " << id;
  }
  EXPECT_FALSE(engine.Save(closed_id).ok());
  // Recovered ids are never reissued: a fresh session gets a fresh id.
  auto fresh = engine.Open(specs.front());
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, expected.rbegin()->first);
  EXPECT_EQ(engine.Stats().recovered, expected.size());
}

TEST(DurableRecovery, RoundTripEveryPolicyWalOnly) {
  for (const ServiceCase& c : ServiceCases()) {
    SCOPED_TRACE(c.name);
    RoundTripCase(c, /*checkpoint_midway=*/false);
  }
}

TEST(DurableRecovery, RoundTripEveryPolicyThroughCheckpoint) {
  for (const ServiceCase& c : ServiceCases()) {
    SCOPED_TRACE(c.name);
    RoundTripCase(c, /*checkpoint_midway=*/true);
  }
}

TEST(DurableRecovery, TornSegmentTailLosesOnlyTheTail) {
  const ServiceCase& c = ServiceCases().front();
  TempDir dir("torn_tail");
  SessionId id = 0;
  {
    Engine engine(InlineEngineOptions());
    ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    dopts.sync = {FsyncPolicy::kAlways, 1};
    dopts.checkpoint_every = 0;
    ASSERT_TRUE(engine.EnableDurability(dopts).ok());
    auto opened = engine.Open("greedy");
    ASSERT_TRUE(opened.ok());
    id = *opened;
    ExactOracle oracle(c.hierarchy.reach(), 7);
    Drive(engine, id, oracle, 3);
  }
  // Simulate a crash mid-append: chop bytes off the newest segment's tail.
  const std::string segment = NewestSegment(dir.path());
  const std::string intact = ReadFile(segment);
  WriteFile(segment, intact.substr(0, intact.size() - 5));

  Engine engine(InlineEngineOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  auto recovery = engine.Recover(dopts);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->torn_tails, 1u);
  EXPECT_GT(recovery->torn_bytes, 0u);
  // The damaged record was the last answer: the session survives with a
  // strict prefix of its transcript (or, if the open record itself was the
  // casualty, not at all — here 3 answers follow the open, so it must).
  ASSERT_EQ(recovery->recovered, 1u);
  auto blob = engine.Save(id);
  ASSERT_TRUE(blob.ok());
  auto decoded = SessionCodec::Decode(*blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->steps.size(), 2u);  // 3 acked, last record torn
}

TEST(DurableRecovery, EnableDurabilityRefusesExistingState) {
  const ServiceCase& c = ServiceCases().front();
  TempDir dir("refuse_existing");
  {
    Engine engine(InlineEngineOptions());
    ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    ASSERT_TRUE(engine.EnableDurability(dopts).ok());
    ASSERT_TRUE(engine.Open("greedy").ok());
    // Double enable on a live engine is also refused.
    EXPECT_EQ(engine.EnableDurability(dopts).code(),
              StatusCode::kFailedPrecondition);
  }
  Engine engine(InlineEngineOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  EXPECT_EQ(engine.EnableDurability(dopts).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.durable());
  auto recovery = engine.Recover(dopts);  // the sanctioned path
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->recovered, 1u);
}

TEST(DurableRecovery, RecoverRequiresAPublishedSnapshot) {
  TempDir dir("recover_no_snapshot");
  Engine engine(InlineEngineOptions());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  EXPECT_FALSE(engine.Recover(dopts).ok());
}

TEST(DurableRecovery, CheckpointAndFlushWithoutDurability) {
  Engine engine(InlineEngineOptions());
  EXPECT_EQ(engine.Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.FlushDurable().ok());  // graceful shutdown is a no-op
  EXPECT_FALSE(engine.durable());
}

TEST(DurableRecovery, AutoCheckpointTriggersOffTheHotPath) {
  const ServiceCase& c = ServiceCases().front();
  TempDir dir("auto_ckpt");
  Engine engine(InlineEngineOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.sync = {FsyncPolicy::kNone, 1};
  dopts.checkpoint_every = 5;
  ASSERT_TRUE(engine.EnableDurability(dopts).ok());
  EXPECT_EQ(engine.Stats().durability.checkpoints, 1u);  // the initial one

  for (int i = 0; i < 12; ++i) {  // 12 open records cross the threshold twice
    ASSERT_TRUE(engine.Open("greedy").ok());
  }

  const EngineStats stats = engine.Stats();
  EXPECT_GE(stats.durability.checkpoints, 3u);
  EXPECT_LT(stats.durability.records_since_checkpoint, 5u);
  EXPECT_EQ(stats.durability.appends, 12u);
}

// ---- (3) crash injection ---------------------------------------------------

/// Everything the child acked over the pipe before dying.
struct AckedOps {
  std::set<SessionId> opened;
  std::set<SessionId> closed;
  std::map<SessionId, std::vector<std::string>> steps;  // acked step lines
  bool done = false;  // the child outlived its kill countdown
};

/// Child-process body: serve scripted traffic against a durable engine
/// whose after-append hook SIGKILLs the process on the `kill_at`-th record
/// — after the append (durable; fsync=always) but before the ack. Each
/// acked operation is reported over `fd` first, so the parent knows the
/// exact durable/acked boundary. Exit 42 = harness bug, never expected.
[[noreturn]] void RunCrashChild(const ServiceCase& c, const std::string& spec,
                                const std::string& dir, int kill_at, int fd) {
  const auto ack = [fd](const std::string& line) {
    const std::string out = line + "\n";
    if (::write(fd, out.data(), out.size()) !=
        static_cast<ssize_t>(out.size())) {
      ::_exit(42);
    }
  };

  Engine engine(InlineEngineOptions());
  if (!engine.Publish(ConfigFor(c, {spec})).ok()) {
    ::_exit(42);
  }
  std::atomic<int> appends{0};
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.sync = {FsyncPolicy::kAlways, 1};
  dopts.checkpoint_every = 7;  // auto-checkpoints interleave with traffic
  dopts.after_append_hook = [&appends, kill_at] {
    if (appends.fetch_add(1) + 1 == kill_at) {
      ::raise(SIGKILL);
    }
  };
  if (!engine.EnableDurability(dopts).ok()) {
    ::_exit(42);
  }

  const NodeId n = static_cast<NodeId>(c.hierarchy.NumNodes());
  const NodeId targets[3] = {0, static_cast<NodeId>(n / 2),
                             static_cast<NodeId>(n - 1)};
  SessionId ids[3];
  std::vector<std::unique_ptr<ExactOracle>> oracles;
  for (int s = 0; s < 3; ++s) {
    auto opened = engine.Open(spec);
    if (!opened.ok()) {
      ::_exit(42);
    }
    ids[s] = *opened;
    ack("open " + std::to_string(ids[s]));
    oracles.push_back(
        std::make_unique<ExactOracle>(c.hierarchy.reach(), targets[s]));
  }
  bool live[3] = {true, true, true};
  for (int round = 0; round < 4096 && (live[0] || live[1] || live[2]);
       ++round) {
    for (int s = 0; s < 3; ++s) {
      if (!live[s]) {
        continue;
      }
      auto q = engine.Ask(ids[s]);
      if (!q.ok()) {
        ::_exit(42);
      }
      if (q->kind == Query::Kind::kDone) {
        live[s] = false;
        continue;
      }
      const SessionAnswer answer = AnswerFromOracle(*q, *oracles[s]);
      if (!engine.Answer(ids[s], answer).ok()) {
        ::_exit(42);
      }
      ack("step " + std::to_string(ids[s]) + " " +
          StepLine(StepFrom(*q, answer)));
    }
  }
  if (!engine.Close(ids[0]).ok()) {
    ::_exit(42);
  }
  ack("close " + std::to_string(ids[0]));
  ack("done");
  ::_exit(0);
}

AckedOps ParseAcks(const std::string& raw) {
  AckedOps acked;
  std::size_t start = 0;
  while (start < raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string::npos) {
      break;  // a torn final line would mean an ack raced the kill; the
              // child writes each ack in one atomic pipe write, so: never
    }
    const std::string line = raw.substr(start, end - start);
    start = end + 1;
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb == "done") {
      acked.done = true;
      continue;
    }
    SessionId id = 0;
    in >> id;
    if (verb == "open") {
      acked.opened.insert(id);
    } else if (verb == "close") {
      acked.closed.insert(id);
    } else if (verb == "step") {
      std::string rest;
      std::getline(in, rest);
      acked.steps[id].push_back(rest.substr(1));  // skip the separator space
    }
  }
  return acked;
}

/// Fork, crash the child at record `kill_at`, recover in the parent, and
/// assert the acked-prefix contract: every acked session is back under its
/// original id with the acked steps an exact transcript prefix; only the
/// single in-flight operation (durable but unacked) may add one trailing
/// step, erase one session, or add one unacked session.
void RunCrashCase(const ServiceCase& c, const std::string& spec,
                  int kill_at) {
  SCOPED_TRACE(c.name + "/" + spec + "/kill@" + std::to_string(kill_at));
  TempDir dir("crash");
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipefd[0]);
    RunCrashChild(c, spec, dir.path(), kill_at, pipefd[1]);
  }
  ::close(pipefd[1]);
  std::string raw;
  char buf[4096];
  for (ssize_t n = 0; (n = ::read(pipefd[0], buf, sizeof(buf))) > 0;) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  const bool killed = WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
  const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  ASSERT_TRUE(killed || clean) << "child harness failure, status " << wstatus;
  const AckedOps acked = ParseAcks(raw);
  ASSERT_EQ(acked.done, clean);
  // A kill during the open burst legitimately acks fewer than 3 opens.
  ASSERT_LE(acked.opened.size(), 3u);
  if (clean) {
    ASSERT_EQ(acked.opened.size(), 3u);
  }

  Engine engine(InlineEngineOptions());
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {spec})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.sync = {FsyncPolicy::kAlways, 1};
  auto recovery = engine.Recover(dopts);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  // SIGKILL lands between ops (inside the hook), never mid-write: the log
  // ends at a frame boundary, so nothing is torn and nothing malformed.
  EXPECT_EQ(recovery->torn_tails, 0u);
  EXPECT_EQ(recovery->malformed_records, 0u);
  EXPECT_EQ(recovery->replay_failures, 0u);
  EXPECT_EQ(recovery->divergent_sessions, 0u);

  const std::size_t slack = killed ? 1 : 0;
  std::size_t missing = 0;
  for (const SessionId id : acked.opened) {
    if (acked.closed.count(id) != 0) {
      // Acked close: the session must be gone.
      EXPECT_FALSE(engine.Save(id).ok()) << "closed session " << id;
      continue;
    }
    auto blob = engine.Save(id);
    if (!blob.ok()) {
      // Only possible casualty: the in-flight op was this session's close
      // (its record durable, its ack never sent).
      ++missing;
      continue;
    }
    auto decoded = SessionCodec::Decode(*blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto it = acked.steps.find(id);
    const std::vector<std::string> want =
        it == acked.steps.end() ? std::vector<std::string>{} : it->second;
    ASSERT_GE(decoded->steps.size(), want.size())
        << "session " << id << " lost acked steps";
    ASSERT_LE(decoded->steps.size(), want.size() + slack)
        << "session " << id << " has more than the one in-flight step";
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(StepLine(decoded->steps[i]), want[i])
          << "session " << id << " step " << i;
    }
  }
  EXPECT_LE(missing, slack);
}

TEST(CrashInjection, EveryPolicyAtRandomizedKillPoints) {
  Rng rng(20260807);
  for (const ServiceCase& c : ServiceCases()) {
    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      for (int trial = 0; trial < 2; ++trial) {
        // Kill points span the open burst, steady-state answer traffic,
        // and (via checkpoint_every=7 in the child) checkpoints.
        const int kill_at =
            static_cast<int>(1 + rng.UniformInt(trial == 0 ? 6 : 34));
        RunCrashCase(c, spec, kill_at);
      }
    }
  }
}

TEST(CrashInjection, OutlivedCountdownRecoversEverything) {
  // The countdown never fires: the clean-exit flavor of the same harness
  // (close acked, every transcript exact — slack 0).
  RunCrashCase(ServiceCases().front(), "greedy", 1 << 20);
}

// ---- (4) recovery/TTL interplay --------------------------------------------

/// Two sessions, one kept warm; recovery under a 1 s TTL and an injected
/// wall clock must revive the warm one and drop the idle one.
void TtlCase(bool through_checkpoint) {
  const ServiceCase& c = ServiceCases().front();
  TempDir dir(through_checkpoint ? "ttl_ckpt" : "ttl_wal");
  std::uint64_t wall = 1'000'000;  // fake wall clock (Unix-ish millis)
  std::uint64_t mono = 500'000;    // fake monotonic session clock
  SessionId warm_id = 0, idle_id = 0;
  {
    EngineOptions opts = InlineEngineOptions();
    opts.sessions.clock_millis = [&mono] { return mono; };
    Engine engine(opts);
    ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    dopts.sync = {FsyncPolicy::kAlways, 1};
    dopts.checkpoint_every = 0;
    dopts.wall_clock_millis = [&wall] { return wall; };
    ASSERT_TRUE(engine.EnableDurability(dopts).ok());

    auto warm = engine.Open("greedy");
    auto idle = engine.Open("greedy");
    ASSERT_TRUE(warm.ok() && idle.ok());
    warm_id = *warm;
    idle_id = *idle;
    wall += 500;
    mono += 500;
    ExactOracle oracle(c.hierarchy.reach(), 9);
    Drive(engine, warm_id, oracle, 1);  // refreshes warm's last activity
    if (through_checkpoint) {
      ASSERT_TRUE(engine.Checkpoint().ok());
    }
  }

  EngineOptions opts = InlineEngineOptions();
  opts.sessions.ttl_millis = 1000;
  Engine engine(opts);
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  // 1200 ms past the idle session's last activity, 700 ms past the warm
  // one's — exactly one side of the 1000 ms TTL each.
  const std::uint64_t recovery_wall = 1'001'200;
  dopts.wall_clock_millis = [recovery_wall] { return recovery_wall; };
  auto recovery = engine.Recover(dopts);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->recovered, 1u);
  EXPECT_EQ(recovery->expired_dropped, 1u);
  if (through_checkpoint) {
    EXPECT_EQ(recovery->checkpoint_sessions, 2u);
  }
  EXPECT_TRUE(engine.Save(warm_id).ok());
  EXPECT_FALSE(engine.Save(idle_id).ok());
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.expired_dropped, 1u);
  ASSERT_TRUE(stats.has_recovery);
  EXPECT_EQ(stats.last_recovery.expired_dropped, 1u);
}

TEST(RecoveryTtl, WalRecordsCarryLastActivity) {
  TtlCase(/*through_checkpoint=*/false);
}

TEST(RecoveryTtl, CheckpointsCarryLastActivity) {
  TtlCase(/*through_checkpoint=*/true);
}

TEST(RecoveryTtl, ZeroTtlNeverDrops) {
  const ServiceCase& c = ServiceCases().front();
  TempDir dir("ttl_zero");
  std::uint64_t wall = 1'000'000;
  SessionId id = 0;
  {
    Engine engine(InlineEngineOptions());
    ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    dopts.wall_clock_millis = [&wall] { return wall; };
    ASSERT_TRUE(engine.EnableDurability(dopts).ok());
    auto opened = engine.Open("greedy");
    ASSERT_TRUE(opened.ok());
    id = *opened;
  }
  Engine engine(InlineEngineOptions());  // ttl_millis = 0
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {"greedy"})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.wall_clock_millis = [] { return std::uint64_t{1} << 50; };  // eons on
  auto recovery = engine.Recover(dopts);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->recovered, 1u);
  EXPECT_EQ(recovery->expired_dropped, 0u);
  EXPECT_TRUE(engine.Save(id).ok());
}

// ---- SessionManager id plumbing --------------------------------------------

TEST(SessionManagerIds, InsertWithIdReservesAndCollides) {
  SessionManagerOptions options;
  options.num_shards = 4;
  options.ttl_millis = 0;
  SessionManager manager(options);
  EXPECT_EQ(manager.InsertWithId(0, std::make_shared<ServiceSession>()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(manager.InsertWithId(5, std::make_shared<ServiceSession>()).ok());
  EXPECT_EQ(manager.InsertWithId(5, std::make_shared<ServiceSession>()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_GE(manager.next_id(), 6u);
  // Fresh inserts never collide with the recovered id space.
  EXPECT_EQ(manager.Insert(std::make_shared<ServiceSession>()), 6u);
  manager.ReserveIds(100);
  EXPECT_EQ(manager.next_id(), 100u);
  manager.ReserveIds(50);  // never lowers the watermark
  EXPECT_EQ(manager.next_id(), 100u);
  EXPECT_EQ(manager.Insert(std::make_shared<ServiceSession>()), 100u);
  EXPECT_TRUE(manager.Find(5).ok());
}

// ---- (5) Save and Checkpoint under concurrent Answer traffic ---------------

TEST(ConcurrentDurability, SaveAndCheckpointUnderAnswerTraffic) {
  Rng rng(4242);
  Hierarchy tree = MustBuild(RandomTree(140, rng));
  Distribution dist = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
  ServiceCase c{"stress", std::move(tree), std::move(dist)};
  // The scripted policy with a complete question order makes transcripts
  // long (~n questions for a deep target), so savers race a wide window.
  const std::vector<std::string> specs = SpecsFor(c.hierarchy);
  const std::string& spec = specs[specs.size() - (c.hierarchy.is_tree() ? 3 : 1)];
  ASSERT_TRUE(spec.starts_with("scripted:order="));

  TempDir dir("concurrent");
  EngineOptions opts = InlineEngineOptions();
  Engine engine(opts);
  ASSERT_TRUE(engine.Publish(ConfigFor(c, {spec})).ok());
  DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.sync = {FsyncPolicy::kInterval, 8};
  dopts.checkpoint_every = 0;
  ASSERT_TRUE(engine.EnableDurability(dopts).ok());

  constexpr int kSessions = 3;
  std::vector<SessionId> ids;
  std::vector<NodeId> targets;
  for (int s = 0; s < kSessions; ++s) {
    auto opened = engine.Open(spec);
    ASSERT_TRUE(opened.ok());
    ids.push_back(*opened);
    // Late nodes in the scripted order take the most questions to reach.
    targets.push_back(static_cast<NodeId>(c.hierarchy.NumNodes() - 1 - s));
  }

  std::atomic<bool> driving{true};
  std::atomic<std::uint64_t> saves{0};
  std::vector<std::vector<std::string>> blobs(kSessions);
  std::mutex blobs_mu;

  std::vector<std::thread> threads;
  // Drivers: one per session, full search to completion.
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      ExactOracle oracle(c.hierarchy.reach(), targets[s]);
      AIGS_CHECK(Drive(engine, ids[s], oracle, 1u << 20));
    });
  }
  // Savers: snapshot every session as fast as they can.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (driving.load(std::memory_order_relaxed)) {
        for (int s = 0; s < kSessions; ++s) {
          auto blob = engine.Save(ids[s]);
          if (blob.ok()) {
            std::lock_guard<std::mutex> lock(blobs_mu);
            blobs[s].push_back(*std::move(blob));
          }
        }
        saves.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Checkpointer: rotate the log under live traffic.
  threads.emplace_back([&] {
    while (driving.load(std::memory_order_relaxed)) {
      AIGS_CHECK(engine.Checkpoint().ok());
      std::this_thread::yield();
    }
  });
  for (int s = 0; s < kSessions; ++s) {
    threads[s].join();
  }
  driving.store(false);
  for (std::size_t t = kSessions; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_GT(saves.load(), 0u);

  // Every saved blob decodes and replays to a prefix of the final state.
  std::vector<std::vector<TranscriptStep>> finals;
  for (int s = 0; s < kSessions; ++s) {
    auto blob = engine.Save(ids[s]);
    ASSERT_TRUE(blob.ok());
    auto decoded = SessionCodec::Decode(*blob);
    ASSERT_TRUE(decoded.ok());
    finals.push_back(decoded->steps);
  }
  for (int s = 0; s < kSessions; ++s) {
    for (const std::string& blob : blobs[s]) {
      auto decoded = SessionCodec::Decode(blob);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      ASSERT_LE(decoded->steps.size(), finals[s].size());
      EXPECT_TRUE(std::equal(decoded->steps.begin(), decoded->steps.end(),
                             finals[s].begin()))
          << "saved blob is not a prefix of session " << ids[s];
    }
  }

  // And the durable state — checkpoints raced answers throughout — must
  // recover every completed transcript bit-identically.
  ASSERT_TRUE(engine.FlushDurable().ok());
  Engine recovered(InlineEngineOptions());
  ASSERT_TRUE(recovered.Publish(ConfigFor(c, {spec})).ok());
  DurabilityOptions ropts;
  ropts.dir = dir.path();
  auto recovery = recovered.Recover(ropts);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->recovered, static_cast<std::size_t>(kSessions));
  EXPECT_EQ(recovery->replay_failures, 0u);
  EXPECT_EQ(recovery->malformed_records, 0u);
  for (int s = 0; s < kSessions; ++s) {
    auto blob = recovered.Save(ids[s]);
    ASSERT_TRUE(blob.ok());
    auto decoded = SessionCodec::Decode(*blob);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->steps, finals[s]) << "session " << ids[s];
  }
}

// ---- (6) adversarial SessionCodec decode -----------------------------------

SerializedSession AdversarialFixture() {
  SerializedSession session;
  session.fingerprint = 0xDEADBEEFCAFEF00DULL;
  session.hierarchy_fingerprint = 0x0123456789ABCDEFULL;
  session.epoch = 3;
  session.policy_spec = "batched:k=3";
  session.steps.push_back({Query::Kind::kReach, {17}, true, {}, -1, false});
  session.steps.push_back({Query::Kind::kReachBatch,
                           {4, 9, 12},
                           false,
                           {true, false, true},
                           -1,
                           true});
  session.steps.push_back({Query::Kind::kChoice, {3, 5, 8}, false, {}, 2,
                           false});
  session.steps.push_back({Query::Kind::kReach, {2}, false, {}, -1, false});
  return session;
}

TEST(SessionCodecAdversarial, EveryTruncationFailsOrYieldsAPrefix) {
  const SerializedSession base = AdversarialFixture();
  const std::string blob = SessionCodec::Encode(base);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    auto decoded = SessionCodec::Decode(blob.substr(0, len));
    if (!decoded.ok()) {
      continue;  // rejected with a Status — the expected common case
    }
    // A truncation can only decode if it still ends in a complete, 'end'-
    // terminated document; then it must be a faithful prefix, never a
    // scrambled session.
    EXPECT_EQ(decoded->fingerprint, base.fingerprint);
    EXPECT_EQ(decoded->policy_spec, base.policy_spec);
    ASSERT_LE(decoded->steps.size(), base.steps.size());
    EXPECT_TRUE(std::equal(decoded->steps.begin(), decoded->steps.end(),
                           base.steps.begin()))
        << "truncation at " << len << " scrambled the transcript";
  }
}

TEST(SessionCodecAdversarial, RandomBitFlipsNeverAbort) {
  const std::string blob = SessionCodec::Encode(AdversarialFixture());
  Rng rng(1337);
  for (int trial = 0; trial < 4000; ++trial) {
    std::string mutated = blob;
    const int flips = 1 + static_cast<int>(rng.UniformInt(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.UniformInt(mutated.size()));
      mutated[pos] ^= static_cast<char>(1u << rng.UniformInt(8));
    }
    // Must return a Status (ok or not) without aborting or faulting; the
    // sanitizer jobs make the "without faulting" half load-bearing.
    (void)SessionCodec::Decode(mutated);
  }
}

TEST(SessionCodecAdversarial, RandomGarbageNeverAborts) {
  Rng rng(7331);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage(rng.UniformInt(300), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(256));
    }
    EXPECT_FALSE(SessionCodec::Decode(garbage).ok());
    // Same bytes behind a valid header: the body parser gets the fuzz.
    (void)SessionCodec::Decode("aigs-session/2\n" + garbage);
  }
}

TEST(SessionCodecAdversarial, RejectsCraftedHeadersAndTrailers) {
  const std::string valid = SessionCodec::Encode(AdversarialFixture());
  // strtoull-style lenience is gone: signs, 0x prefixes, and over-long
  // digests are malformed, not silently wrapped.
  EXPECT_FALSE(SessionCodec::Decode("aigs-session/1\nfingerprint -1\n"
                                    "epoch 1\npolicy greedy\nsteps 0\nend\n")
                   .ok());
  EXPECT_FALSE(SessionCodec::Decode("aigs-session/1\nfingerprint 0x12\n"
                                    "epoch 1\npolicy greedy\nsteps 0\nend\n")
                   .ok());
  EXPECT_FALSE(
      SessionCodec::Decode("aigs-session/1\nfingerprint 11112222333344445\n"
                           "epoch 1\npolicy greedy\nsteps 0\nend\n")
          .ok());
  // Content after the 'end' trailer means splicing, not a saved session.
  EXPECT_FALSE(SessionCodec::Decode(valid + "reach 3 y\n").ok());
  EXPECT_FALSE(SessionCodec::Decode(valid + valid).ok());
  // A step-count line that promises more than the input carries.
  EXPECT_FALSE(
      SessionCodec::Decode("aigs-session/2\nfingerprint 0\nhierarchy 0\n"
                           "epoch 1\npolicy greedy\nsteps 184467440737095\n"
                           "end\n")
          .ok());
  // The unmodified blob still round-trips after all that suspicion.
  EXPECT_TRUE(SessionCodec::Decode(valid).ok());
}

}  // namespace
}  // namespace aigs
