// Table V reproduction: cost under synthetic probability settings on the
// ImageNet-like DAG.
//
// Paper values (full scale):
//   Equal       | 123.31 | 126.12 | 34.56 | 31.48
//   Uniform     | 125.82 | 124.66 | 34.55 | 28.66
//   Exponential | 125.41 | 127.39 | 34.57 | 27.00
//   Zipf        | 125.24 | 133.48 | 34.74 | 14.41
#include "bench/bench_common.h"
#include "util/ascii_table.h"
#include "util/rng.h"

namespace aigs::bench {
namespace {

int Main() {
  PrintBanner("Table V: cost under probability settings (ImageNet)");
  const Dataset dataset = MakeImageNetDataset(DatasetScale());
  const Hierarchy& h = dataset.hierarchy;
  AsciiTable table({"Distribution", "TopDown", "MIGS", "WIGS", "GreedyDAG"});
  const std::size_t reps = Reps();

  struct Row {
    const char* name;
    Distribution (*make)(std::size_t, Rng&);
    bool randomized;
  };
  const Row kRows[] = {
      {"Equal", +[](std::size_t n, Rng&) { return EqualDistribution(n); },
       false},
      {"Uniform",
       +[](std::size_t n, Rng& rng) {
         return UniformRandomDistribution(n, rng);
       },
       true},
      {"Exponential",
       +[](std::size_t n, Rng& rng) {
         return ExponentialRandomDistribution(n, rng);
       },
       true},
      {"Zipf",
       +[](std::size_t n, Rng& rng) {
         return ZipfRandomDistribution(n, 2.0, rng);
       },
       true},
  };
  for (const Row& row : kRows) {
    const std::size_t runs = row.randomized ? reps : 1;
    CompetitorCosts sum;
    for (std::size_t r = 0; r < runs; ++r) {
      Rng rng(2000 + 37 * r);
      const Distribution dist = row.make(h.NumNodes(), rng);
      const CompetitorCosts c = EvaluateCompetitors(h, dist);
      sum.top_down += c.top_down;
      sum.migs += c.migs;
      sum.wigs += c.wigs;
      sum.greedy += c.greedy;
    }
    const auto denom = static_cast<double>(runs);
    table.AddRow({row.name, FormatDouble(sum.top_down / denom),
                  FormatDouble(sum.migs / denom),
                  FormatDouble(sum.wigs / denom),
                  FormatDouble(sum.greedy / denom)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper: Equal 123.31/126.12/34.56/31.48 ; Uniform "
      "125.82/124.66/34.55/28.66 ;\n       Exponential "
      "125.41/127.39/34.57/27.00 ; Zipf 125.24/133.48/34.74/14.41\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
