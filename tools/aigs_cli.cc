// aigs — command-line front end for the library.
//
//   aigs stats    <hierarchy.txt>
//       Print node/edge counts, height, max degree, type; warn about
//       redundant (transitively implied) edges.
//   aigs reduce   <in.txt> <out.txt>
//       Write the transitive reduction of a hierarchy.
//   aigs evaluate <hierarchy.txt> <counts.txt> [policy-spec]
//       Expected/median/p99/max question counts for one policy. The policy
//       is any PolicyRegistry spec, e.g. greedy, wigs, batched:k=8,
//       migs:choices=0 (default greedy); see 'aigs policies'.
//   aigs policies
//       List the registered policy names and their options.
//   aigs search   <hierarchy.txt> [counts.txt]
//       Interactive search: answer the policy's questions with y/n.
//   aigs serve    <hierarchy.txt> [counts.txt] [policy-spec...]
//       Service REPL over an Engine: open/ask/answer/save/resume
//       ID-addressed sessions, publish new snapshot epochs, inspect state.
//       Type 'help' at the prompt for the command list.
//   aigs demo
//       Interactive search on the built-in vehicle hierarchy.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/aigs.h"
#include "data/builtin.h"
#include "data/dataset_io.h"
#include "eval/cost_profile.h"
#include "eval/evaluator.h"
#include "eval/runner.h"
#include "net/server.h"
#include "graph/graph_io.h"
#include "graph/transitive_reduction.h"
#include "prob/weight_io.h"
#include "service/engine.h"
#include "util/env.h"
#include "util/string_util.h"

namespace aigs::cli {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: aigs <command> [args]\n"
               "  stats    <hierarchy.txt>\n"
               "  reduce   <in.txt> <out.txt>\n"
               "  evaluate <hierarchy.txt> <counts.txt> [policy-spec]\n"
               "  policies\n"
               "  search   <hierarchy.txt> [counts.txt]\n"
               "  serve    <hierarchy-spec> [counts.txt] [policy-spec...]\n"
               "           [--listen host:port] [--workers N]\n"
               "  demo\n"
               "hierarchy-spec is a file path, builtin:{vehicle|fig2|fig3}, "
               "or\nsynthetic:{tree|dag}:N[:seed].\n"
               "policy-spec is a PolicyRegistry name plus options, e.g. "
               "greedy, wigs,\nbatched:k=8, migs:choices=0 — run 'aigs "
               "policies' for the full list.\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdPolicies() {
  for (const auto& entry : PolicyRegistry::Global().List()) {
    std::printf("%-16s %s\n", entry.name.c_str(), entry.help.c_str());
  }
  return 0;
}

int CmdStats(const std::string& path) {
  auto graph = LoadHierarchy(path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  const Digraph& g = *graph;
  std::printf("nodes:       %zu\n", g.NumNodes());
  std::printf("edges:       %zu\n", g.NumEdges());
  std::printf("height:      %d\n", g.Height());
  std::printf("max degree:  %zu\n", g.MaxOutDegree());
  std::printf("type:        %s\n", g.IsTree() ? "tree" : "DAG");
  std::printf("root:        %u%s\n", g.root(),
              g.Label(g.root()).empty()
                  ? ""
                  : (" (" + g.Label(g.root()) + ")").c_str());
  auto reduced = TransitiveReduction(g);
  if (reduced.ok() && reduced->removed_edges > 0) {
    std::printf("note:        %zu redundant edge(s); run 'aigs reduce'\n",
                reduced->removed_edges);
  }
  return 0;
}

int CmdReduce(const std::string& in, const std::string& out) {
  auto graph = LoadHierarchy(in);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto reduced = TransitiveReduction(*graph);
  if (!reduced.ok()) {
    return Fail(reduced.status());
  }
  if (const Status s = SaveHierarchy(reduced->graph, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("removed %zu redundant edge(s); wrote %s\n",
              reduced->removed_edges, out.c_str());
  return 0;
}

int CmdEvaluate(const std::string& hierarchy_path,
                const std::string& counts_path, const std::string& policy) {
  auto graph = LoadHierarchy(hierarchy_path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  auto counts = LoadDistribution(counts_path);
  if (!counts.ok()) {
    return Fail(counts.status());
  }
  if (counts->size() != hierarchy->NumNodes()) {
    return Fail(Status::InvalidArgument(
        "count file does not match the hierarchy's node count"));
  }
  PolicyContext context;
  context.hierarchy = &*hierarchy;
  context.distribution = &*counts;
  auto made = PolicyRegistry::Global().Create(policy, context);
  if (!made.ok()) {
    return Fail(made.status());
  }
  EvalOptions options;
  options.threads =
      static_cast<int>(std::max<std::int64_t>(0, EnvInt("AIGS_THREADS", 0)));
  const EvalStats stats = EvaluateExact(**made, *hierarchy, *counts, options);
  const CostProfile profile(stats.per_target_cost, *counts);
  std::printf("policy:       %s\n", (*made)->name().c_str());
  std::printf("E[questions]: %.4f\n", stats.expected_cost);
  std::printf("median:       %u\n", profile.Median());
  std::printf("p90:          %u\n", profile.P90());
  std::printf("p99:          %u\n", profile.P99());
  std::printf("max:          %llu\n",
              static_cast<unsigned long long>(stats.max_cost));
  std::printf("entropy (lower bound): %.4f bits\n", counts->EntropyBits());
  return 0;
}

int RunInteractive(const Hierarchy& h, const Distribution& dist) {
  const auto policy = MakeGreedyPolicy(h, dist);
  auto session = policy->NewSession();
  std::printf("think of one of the %zu categories; answer y/n.\n",
              h.NumNodes());
  int questions = 0;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      const std::string& label = h.graph().Label(q.node);
      std::printf("=> %s (%d questions)\n",
                  label.empty() ? std::to_string(q.node).c_str()
                                : label.c_str(),
                  questions);
      return 0;
    }
    const std::string& label = h.graph().Label(q.node);
    std::printf("Q%d: under '%s'? [y/n] ", ++questions,
                label.empty() ? std::to_string(q.node).c_str()
                              : label.c_str());
    std::fflush(stdout);
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr ||
        (buffer[0] != 'y' && buffer[0] != 'n')) {
      std::printf("\n(bye)\n");
      return 0;
    }
    session->OnReach(q.node, buffer[0] == 'y');
  }
}

int CmdSearch(const std::string& hierarchy_path,
              const std::string& counts_path) {
  auto graph = LoadHierarchy(hierarchy_path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  Distribution dist = EqualDistribution(hierarchy->NumNodes());
  if (!counts_path.empty()) {
    auto counts = LoadDistribution(counts_path);
    if (!counts.ok()) {
      return Fail(counts.status());
    }
    if (counts->size() != hierarchy->NumNodes()) {
      return Fail(Status::InvalidArgument(
          "count file does not match the hierarchy's node count"));
    }
    dist = *std::move(counts);
  }
  return RunInteractive(*hierarchy, dist);
}

int CmdDemo() {
  auto hierarchy = Hierarchy::Build(BuildVehicleHierarchy());
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }
  return RunInteractive(*hierarchy, VehicleDistribution());
}

// ---- serve: Engine-backed session REPL -------------------------------------

std::string NodeLabel(const Hierarchy& h, NodeId v) {
  const std::string& label = h.graph().Label(v);
  return label.empty() ? std::to_string(v)
                       : std::to_string(v) + " '" + label + "'";
}

void PrintQuery(const Hierarchy& h, SessionId id, const Query& q) {
  switch (q.kind) {
    case Query::Kind::kDone:
      std::printf("session %llu: done — target is %s\n",
                  static_cast<unsigned long long>(id),
                  NodeLabel(h, q.node).c_str());
      break;
    case Query::Kind::kReach:
      std::printf("session %llu: is the item under %s? (answer %llu y|n)\n",
                  static_cast<unsigned long long>(id),
                  NodeLabel(h, q.node).c_str(),
                  static_cast<unsigned long long>(id));
      break;
    case Query::Kind::kReachBatch: {
      std::printf("session %llu: batch of %zu questions (answer %llu "
                  "<pattern like yn...>):\n",
                  static_cast<unsigned long long>(id), q.choices.size(),
                  static_cast<unsigned long long>(id));
      for (std::size_t i = 0; i < q.choices.size(); ++i) {
        std::printf("  [%zu] under %s?\n", i,
                    NodeLabel(h, q.choices[i]).c_str());
      }
      break;
    }
    case Query::Kind::kChoice: {
      std::printf("session %llu: which of these contains the item? "
                  "(answer %llu <index>, -1 = none)\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(id));
      for (std::size_t i = 0; i < q.choices.size(); ++i) {
        std::printf("  [%zu] %s\n", i, NodeLabel(h, q.choices[i]).c_str());
      }
      break;
    }
  }
}

void ServeHelp() {
  std::printf(
      "commands:\n"
      "  open [policy-spec]     start a session (default: first prebuilt "
      "spec)\n"
      "  ask <id>               show the pending question\n"
      "  answer <id> <value>    y|n for reach, yn... pattern for a batch,\n"
      "                         index (-1 = none) for a choice question\n"
      "  save <id> <file>       serialize the session transcript\n"
      "  resume <file>          restore a saved session (new id; exact "
      "replay)\n"
      "  migrate <id>           replay a live session onto the current "
      "epoch\n"
      "                         (divergence-tolerant; idle sessions also "
      "migrate\n"
      "                         automatically after publish)\n"
      "  warm                   re-seed the current epoch's plan trie from "
      "the\n"
      "                         previous epoch's hottest prefixes\n"
      "  close <id>             discard a session\n"
      "  sessions               live session count\n"
      "  stats                  request traffic (per-op + rejected-by-"
      "status),\n"
      "                         per-epoch session counts, per-epoch plan-"
      "trie\n"
      "                         counters (seeded vs organic hits), "
      "migrations,\n"
      "                         persistence (wal bytes, records since "
      "checkpoint,\n"
      "                         last fsync, last recovery summary)\n"
      "  persist <dir> [policy] attach a durable session store to a FRESH "
      "dir;\n"
      "                         every acked open/answer/close appends a WAL\n"
      "                         record (policy: always | interval:N | none,\n"
      "                         default interval:64)\n"
      "  checkpoint             snapshot live sessions now and truncate the "
      "log\n"
      "  recover <dir> [policy] rebuild sessions from a durable dir "
      "(checkpoint\n"
      "                         + WAL tail), keep logging into it\n"
      "  epoch                  current snapshot epoch + fingerprint\n"
      "  drain                  background drain progress (phase, sessions\n"
      "                         remaining, warm-seed and sweep counters)\n"
      "  publish <counts.txt>   load new counts, publish a new epoch — an "
      "O(1)\n"
      "                         swap; trie warm-seeding and the idle-"
      "session\n"
      "                         sweep run on the background drain worker\n"
      "  policies               prebuilt policy specs\n"
      "  quit                   exit\n");
}

/// Applies a REPL answer token to the pending query's kind.
Status AnswerFromToken(Engine& engine, SessionId id,
                       const std::string& token) {
  auto pending = engine.Ask(id);
  if (!pending.ok()) {
    return pending.status();
  }
  switch (pending->kind) {
    case Query::Kind::kDone:
      return Status::FailedPrecondition("session already finished");
    case Query::Kind::kReach:
      if (token != "y" && token != "n") {
        return Status::InvalidArgument("reach questions take y or n");
      }
      return engine.Answer(id, SessionAnswer::Reach(token == "y"));
    case Query::Kind::kReachBatch: {
      std::vector<bool> answers;
      for (const char c : token) {
        if (c != 'y' && c != 'n') {
          return Status::InvalidArgument(
              "batch questions take a y/n pattern, e.g. ynny");
        }
        answers.push_back(c == 'y');
      }
      return engine.Answer(id, SessionAnswer::Batch(std::move(answers)));
    }
    case Query::Kind::kChoice: {
      auto index = ParseInt64(token);
      if (!index.ok()) {
        return Status::InvalidArgument("choice questions take an index");
      }
      return engine.Answer(id,
                           SessionAnswer::Choice(static_cast<int>(*index)));
    }
  }
  return Status::Internal("unreachable");
}

/// Set by SIGTERM/SIGINT: the serve loop drains out and flushes the WAL.
volatile std::sig_atomic_t g_serve_shutdown = 0;

void HandleServeSignal(int) { g_serve_shutdown = 1; }

/// Installs the handler WITHOUT SA_RESTART, so a signal interrupts the
/// blocking fgets (EINTR) and the loop can run its graceful flush instead
/// of dying mid-group-commit.
void InstallServeSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

int CmdServe(const std::string& hierarchy_path,
             const std::vector<std::string>& rest) {
  auto graph = LoadHierarchySpec(hierarchy_path);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    return Fail(hierarchy.status());
  }

  // Flags first, then positional args after the hierarchy: registry specs
  // stay specs, the first non-spec is the counts file.
  std::string counts_path;
  std::string listen_text;
  std::size_t workers = 0;
  std::vector<std::string> specs;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    if (arg == "--listen" || arg == "--workers") {
      if (i + 1 >= rest.size()) {
        return Fail(Status::InvalidArgument(arg + " needs a value"));
      }
      const std::string& value = rest[++i];
      if (arg == "--listen") {
        listen_text = value;
      } else {
        auto parsed = ParseUint64(value);
        if (!parsed.ok()) {
          return Fail(parsed.status());
        }
        workers = static_cast<std::size_t>(*parsed);
      }
      continue;
    }
    const std::string name = arg.substr(0, arg.find(':'));
    if (PolicyRegistry::Global().Contains(name)) {
      specs.push_back(arg);
    } else if (counts_path.empty()) {
      counts_path = arg;
    } else {
      return Fail(Status::InvalidArgument(
          "'" + arg + "' is neither a registered policy spec nor the "
          "(already given) counts file"));
    }
  }
  if (specs.empty()) {
    specs = {"greedy"};
  }

  Distribution dist = EqualDistribution(hierarchy->NumNodes());
  if (!counts_path.empty()) {
    auto counts = LoadDistribution(counts_path);
    if (!counts.ok()) {
      return Fail(counts.status());
    }
    if (counts->size() != hierarchy->NumNodes()) {
      return Fail(Status::InvalidArgument(
          "count file does not match the hierarchy's node count"));
    }
    dist = *std::move(counts);
  }

  Engine engine;
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(*hierarchy);
  config.distribution = std::move(dist);
  config.policy_specs = specs;
  if (auto published = engine.Publish(std::move(config)); !published.ok()) {
    return Fail(published.status());
  }
  // A dropped client (REPL pipe or TCP peer) must surface as a failed
  // write, never a process-killing SIGPIPE.
  net::IgnoreSigpipe();

  std::unique_ptr<net::AigsServer> server;
  if (!listen_text.empty()) {
    auto endpoint = net::ParseEndpoint(listen_text);
    if (!endpoint.ok()) {
      return Fail(endpoint.status());
    }
    net::ServerOptions server_options;
    server_options.listen = *endpoint;
    server_options.workers = workers;
    server = std::make_unique<net::AigsServer>(engine, server_options);
    if (const Status s = server->Start(); !s.ok()) {
      return Fail(s);
    }
    std::printf("listening on %s (aigs-wire/1)\n",
                server->endpoint().ToString().c_str());
  }
  std::printf("serving %zu categories at epoch %llu; 'help' lists "
              "commands.\n",
              hierarchy->NumNodes(),
              static_cast<unsigned long long>(engine.epoch()));

  const auto warn = [](const Status& status) {
    std::printf("error: %s\n", status.ToString().c_str());
  };
  // Graceful shutdown: stop the network front end (drains its workers,
  // closes every connection), then fsync the WAL (regardless of policy) so
  // an orderly SIGTERM/quit/EOF loses nothing even under fsync=interval or
  // none.
  const auto shutdown = [&engine, &server, &warn](const char* why) {
    if (server != nullptr) {
      server->Stop();
      std::printf("%s: network listener stopped\n", why);
    }
    if (engine.durable()) {
      if (const Status s = engine.FlushDurable(); s.ok()) {
        std::printf("%s: wal flushed, sessions durable\n", why);
      } else {
        warn(s);
        return 1;
      }
    }
    return 0;
  };
  InstallServeSignalHandlers();
  char buffer[4096];
  for (;;) {
    // A write interrupted by a handled signal (EINTR — the handlers are
    // installed without SA_RESTART) or failed against a dropped pipe
    // (EPIPE, with SIGPIPE ignored above) poisons stdio's error flag;
    // clear it so one lost write never wedges or kills the loop.
    if (std::ferror(stdout)) {
      std::clearerr(stdout);
    }
    std::printf("> ");
    std::fflush(stdout);
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) {
      std::printf("\n");
      if (server != nullptr && !g_serve_shutdown) {
        // Daemon mode: `aigs serve ... --listen ... < /dev/null &` keeps
        // the network front end up after stdin closes; only a signal (or
        // a network-level stop) ends it.
        std::printf("stdin closed; serving on %s until SIGTERM/SIGINT\n",
                    server->endpoint().ToString().c_str());
        std::fflush(stdout);
        while (!g_serve_shutdown) {
          pause();
        }
      }
      return shutdown(g_serve_shutdown ? "signal" : "eof");
    }
    if (g_serve_shutdown) {
      return shutdown("signal");
    }
    std::istringstream line{std::string(buffer)};
    std::string command;
    line >> command;
    if (command.empty()) {
      continue;
    }
    if (command == "quit" || command == "exit") {
      return shutdown("quit");
    }
    if (command == "help") {
      ServeHelp();
    } else if (command == "open") {
      std::string spec;
      line >> spec;
      auto id = engine.Open(spec.empty() ? specs.front() : spec);
      if (!id.ok()) {
        warn(id.status());
        continue;
      }
      std::printf("session %llu opened (epoch %llu)\n",
                  static_cast<unsigned long long>(*id),
                  static_cast<unsigned long long>(engine.epoch()));
    } else if (command == "migrate") {
      unsigned long long raw_id = 0;
      if (!(line >> raw_id)) {
        std::printf("usage: migrate <id>\n");
        continue;
      }
      auto result = engine.Migrate(static_cast<SessionId>(raw_id));
      if (!result.ok()) {
        warn(result.status());
        continue;
      }
      if (result->from_epoch == result->to_epoch) {
        std::printf("session %llu already on epoch %llu\n", raw_id,
                    static_cast<unsigned long long>(result->to_epoch));
      } else {
        std::printf("session %llu migrated: epoch %llu -> %llu, %zu "
                    "step(s), %zu divergent\n",
                    raw_id,
                    static_cast<unsigned long long>(result->from_epoch),
                    static_cast<unsigned long long>(result->to_epoch),
                    result->steps, result->divergent_steps);
        std::printf("(ask %llu again — the new epoch may pose a different "
                    "question)\n", raw_id);
      }
    } else if (command == "warm") {
      auto seeded = engine.Warm();
      if (!seeded.ok()) {
        warn(seeded.status());
        continue;
      }
      std::printf("replayed %zu hot prefix(es) from the previous epoch's "
                  "trie into the current one\n", *seeded);
    } else if (command == "ask" || command == "answer" ||
               command == "close" || command == "save") {
      unsigned long long raw_id = 0;
      if (!(line >> raw_id)) {
        std::printf("usage: %s <id> ...\n", command.c_str());
        continue;
      }
      const SessionId id = raw_id;
      if (command == "ask") {
        auto q = engine.Ask(id);
        q.ok() ? PrintQuery(*hierarchy, id, *q) : warn(q.status());
      } else if (command == "answer") {
        std::string token;
        if (!(line >> token)) {
          std::printf("usage: answer <id> <value>\n");
          continue;
        }
        if (const Status s = AnswerFromToken(engine, id, token); !s.ok()) {
          warn(s);
          continue;
        }
        auto q = engine.Ask(id);  // echo the next question immediately
        q.ok() ? PrintQuery(*hierarchy, id, *q) : warn(q.status());
      } else if (command == "close") {
        if (const Status s = engine.Close(id); s.ok()) {
          std::printf("session %llu closed\n", raw_id);
        } else {
          warn(s);
        }
      } else {
        std::string path;
        if (!(line >> path)) {
          std::printf("usage: save <id> <file>\n");
          continue;
        }
        auto blob = engine.Save(id);
        if (!blob.ok()) {
          warn(blob.status());
          continue;
        }
        std::ofstream out(path);
        out << *blob;
        out.close();
        if (out.good()) {
          std::printf("saved session %llu to %s\n", raw_id, path.c_str());
        } else {
          std::printf("error: cannot write %s\n", path.c_str());
        }
      }
    } else if (command == "resume") {
      std::string path;
      if (!(line >> path)) {
        std::printf("usage: resume <file>\n");
        continue;
      }
      std::ifstream in(path);
      if (!in) {
        std::printf("error: cannot read %s\n", path.c_str());
        continue;
      }
      std::stringstream blob;
      blob << in.rdbuf();
      auto id = engine.Resume(blob.str());
      if (!id.ok()) {
        warn(id.status());
        continue;
      }
      std::printf("resumed as session %llu\n",
                  static_cast<unsigned long long>(*id));
      auto q = engine.Ask(*id);
      q.ok() ? PrintQuery(*hierarchy, *id, *q) : warn(q.status());
    } else if (command == "sessions") {
      std::printf("%zu live session(s)\n", engine.sessions().size());
    } else if (command == "stats") {
      const EngineStats s = engine.Stats();
      std::printf("epoch %llu, %zu live session(s)\n",
                  static_cast<unsigned long long>(s.epoch),
                  s.live_sessions);
      for (const auto& [epoch, count] : s.sessions_by_epoch) {
        std::printf("  epoch %llu: %zu session(s)\n",
                    static_cast<unsigned long long>(epoch), count);
      }
      const OpStats& ops = s.ops;
      std::printf("traffic: %llu request(s) — %llu open, %llu ask, %llu "
                  "answer, %llu save, %llu resume, %llu migrate, %llu "
                  "close\n",
                  static_cast<unsigned long long>(ops.total()),
                  static_cast<unsigned long long>(ops.opens),
                  static_cast<unsigned long long>(ops.asks),
                  static_cast<unsigned long long>(ops.answers),
                  static_cast<unsigned long long>(ops.saves),
                  static_cast<unsigned long long>(ops.resumes),
                  static_cast<unsigned long long>(ops.migrates),
                  static_cast<unsigned long long>(ops.closes));
      if (ops.rejected > 0) {
        std::printf("  rejected: %llu",
                    static_cast<unsigned long long>(ops.rejected));
        for (std::size_t code = 0; code < ops.rejected_by_code.size();
             ++code) {
          if (ops.rejected_by_code[code] > 0) {
            std::printf(" — %llu %s",
                        static_cast<unsigned long long>(
                            ops.rejected_by_code[code]),
                        std::string(StatusCodeToString(
                                        static_cast<StatusCode>(code)))
                            .c_str());
          }
        }
        std::printf("\n");
      }
      if (!s.plan_cache_enabled) {
        std::printf("plan cache: disabled\n");
      } else {
        for (const auto& [epoch, c] : s.plan_cache_by_epoch) {
          std::printf("plan trie (epoch %llu): %llu hit(s) — %llu seeded / "
                      "%llu organic — %llu miss(es), %llu eviction(s), "
                      "hit rate %.1f%%\n",
                      static_cast<unsigned long long>(epoch),
                      static_cast<unsigned long long>(c.hits),
                      static_cast<unsigned long long>(c.seeded_hits),
                      static_cast<unsigned long long>(c.hits -
                                                      c.seeded_hits),
                      static_cast<unsigned long long>(c.misses),
                      static_cast<unsigned long long>(c.evictions),
                      100.0 * c.hit_rate());
          std::printf("  %llu insert(s) — %llu warm-seeded / %llu organic "
                      "— %zu entr%s, ~%zu KiB resident\n",
                      static_cast<unsigned long long>(c.inserts),
                      static_cast<unsigned long long>(c.seeded_inserts),
                      static_cast<unsigned long long>(c.inserts -
                                                      c.seeded_inserts),
                      c.entries, c.entries == 1 ? "y" : "ies",
                      c.bytes >> 10);
        }
      }
      std::printf("migrations: %llu session(s) migrated, %llu failure(s)\n",
                  static_cast<unsigned long long>(s.sessions_migrated),
                  static_cast<unsigned long long>(s.migration_failures));
      if (!s.durable) {
        std::printf("persistence: off ('persist <dir>' to enable)\n");
      } else {
        const DurableStoreStats& p = s.durability;
        std::printf("persistence: %s (fsync %s), segment %llu — %llu "
                    "byte(s), %llu record(s) since checkpoint, %llu "
                    "checkpoint(s)\n",
                    p.dir.c_str(), p.fsync_policy.c_str(),
                    static_cast<unsigned long long>(p.segment_seq),
                    static_cast<unsigned long long>(p.wal_bytes),
                    static_cast<unsigned long long>(
                        p.records_since_checkpoint),
                    static_cast<unsigned long long>(p.checkpoints));
        std::printf("  %llu append(s) (%llu failed), %llu fsync(s) of the "
                    "current segment, last fsync wall-ms %llu\n",
                    static_cast<unsigned long long>(p.appends),
                    static_cast<unsigned long long>(p.append_failures),
                    static_cast<unsigned long long>(p.wal_syncs),
                    static_cast<unsigned long long>(p.last_sync_wall_ms));
        if (s.has_recovery) {
          const RecoveryStats& r = s.last_recovery;
          std::printf("  last recovery: %zu recovered (%zu from the "
                      "checkpoint, %llu wal record(s)), %zu expired "
                      "dropped, %zu replay failure(s), %llu torn tail(s)\n",
                      r.recovered, r.checkpoint_sessions,
                      static_cast<unsigned long long>(r.wal_records),
                      r.expired_dropped, r.replay_failures,
                      static_cast<unsigned long long>(r.torn_tails));
        }
      }
      if (s.drain.background) {
        std::printf("drain: %s, %zu session(s) remaining, last batch %zu\n",
                    DrainPhaseName(s.drain.phase),
                    s.drain.sessions_remaining, s.drain.last_batch);
      }
    } else if (command == "drain") {
      const DrainStats d = engine.DrainProgress();
      if (!d.background) {
        std::printf("background draining is off — publishes warm-seed and "
                    "sweep inline\n");
        continue;
      }
      std::printf("phase %s, target epoch %llu\n", DrainPhaseName(d.phase),
                  static_cast<unsigned long long>(d.target_epoch));
      std::printf("  warm-seed: %zu / %zu hot prefix(es) replayed\n",
                  d.warm_seeded, d.warm_total);
      std::printf("  sweep: %zu session(s) remaining, %llu batch(es) run, "
                  "last batch %zu\n",
                  d.sessions_remaining,
                  static_cast<unsigned long long>(d.batches), d.last_batch);
      std::printf("  lifetime: %llu drain(s) — %llu completed, %llu rolled "
                  "forward to a newer epoch\n",
                  static_cast<unsigned long long>(d.drains),
                  static_cast<unsigned long long>(d.completed),
                  static_cast<unsigned long long>(d.rolled_forward));
      std::printf("  sessions: %llu migrated, %llu failed, %llu pinned "
                  "mid-question, %llu retried busy, %llu expired\n",
                  static_cast<unsigned long long>(d.migrated),
                  static_cast<unsigned long long>(d.failed),
                  static_cast<unsigned long long>(d.skipped_pinned),
                  static_cast<unsigned long long>(d.retried_busy),
                  static_cast<unsigned long long>(d.expired));
    } else if (command == "persist" || command == "recover") {
      DurabilityOptions dopts;
      if (!(line >> dopts.dir)) {
        std::printf("usage: %s <dir> [always|interval:N|none]\n",
                    command.c_str());
        continue;
      }
      std::string policy = "interval:64";
      line >> policy;
      auto sync = ParseFsyncPolicy(policy);
      if (!sync.ok()) {
        warn(sync.status());
        continue;
      }
      dopts.sync = *sync;
      if (command == "persist") {
        if (const Status s = engine.EnableDurability(dopts); !s.ok()) {
          warn(s);
          continue;
        }
        std::printf("persisting to %s (fsync %s)\n", dopts.dir.c_str(),
                    FormatFsyncPolicy(dopts.sync).c_str());
      } else {
        auto r = engine.Recover(dopts);
        if (!r.ok()) {
          warn(r.status());
          continue;
        }
        std::printf("recovered %zu session(s) from %s (%zu from the "
                    "checkpoint, %llu wal record(s), %zu expired dropped, "
                    "%zu replay failure(s), %llu torn tail(s))\n",
                    r->recovered, dopts.dir.c_str(), r->checkpoint_sessions,
                    static_cast<unsigned long long>(r->wal_records),
                    r->expired_dropped, r->replay_failures,
                    static_cast<unsigned long long>(r->torn_tails));
      }
    } else if (command == "checkpoint") {
      if (const Status s = engine.Checkpoint(); !s.ok()) {
        warn(s);
        continue;
      }
      const EngineStats s = engine.Stats();
      std::printf("checkpointed %zu session(s) (checkpoint #%llu)\n",
                  s.live_sessions,
                  static_cast<unsigned long long>(s.durability.checkpoints));
    } else if (command == "epoch") {
      const auto snap = engine.snapshot();
      std::printf("epoch %llu, catalog fingerprint %016llx\n",
                  static_cast<unsigned long long>(snap->epoch()),
                  static_cast<unsigned long long>(snap->fingerprint()));
    } else if (command == "publish") {
      std::string path;
      if (!(line >> path)) {
        std::printf("usage: publish <counts.txt>\n");
        continue;
      }
      auto counts = LoadDistribution(path);
      if (!counts.ok()) {
        warn(counts.status());
        continue;
      }
      if (counts->size() != hierarchy->NumNodes()) {
        warn(Status::InvalidArgument(
            "count file does not match the hierarchy's node count"));
        continue;
      }
      CatalogConfig next;
      next.hierarchy = UnownedHierarchy(*hierarchy);
      next.distribution = *std::move(counts);
      next.policy_specs = specs;
      const auto swap_start = std::chrono::steady_clock::now();
      auto published = engine.Publish(std::move(next));
      const double swap_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - swap_start)
              .count();
      if (!published.ok()) {
        warn(published.status());
        continue;
      }
      std::printf("published epoch %llu — swap took %.3f ms (trie warm-"
                  "seeding and the idle-session sweep continue in the "
                  "background; see 'drain'; sessions mid-question stay on "
                  "their epoch)\n",
                  static_cast<unsigned long long>((*published)->epoch()),
                  swap_ms);
    } else if (command == "policies") {
      for (const std::string& spec : engine.snapshot()->policy_specs()) {
        std::printf("  %s\n", spec.c_str());
      }
    } else {
      std::printf("unknown command '%s'; try 'help'\n", command.c_str());
    }
  }
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "stats" && argc == 3) {
    return CmdStats(argv[2]);
  }
  if (command == "reduce" && argc == 4) {
    return CmdReduce(argv[2], argv[3]);
  }
  if (command == "evaluate" && (argc == 4 || argc == 5)) {
    return CmdEvaluate(argv[2], argv[3], argc == 5 ? argv[4] : "greedy");
  }
  if (command == "policies" && argc == 2) {
    return CmdPolicies();
  }
  if (command == "search" && (argc == 3 || argc == 4)) {
    return CmdSearch(argv[2], argc == 4 ? argv[3] : "");
  }
  if (command == "serve" && argc >= 3) {
    return CmdServe(argv[2],
                    std::vector<std::string>(argv + 3, argv + argc));
  }
  if (command == "demo" && argc == 2) {
    return CmdDemo();
  }
  return Usage();
}

}  // namespace
}  // namespace aigs::cli

int main(int argc, char** argv) { return aigs::cli::Main(argc, argv); }
