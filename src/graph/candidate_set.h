// Candidate-set bookkeeping shared by search sessions on DAG hierarchies.
//
// Throughout a search the candidate set C is `R(root) minus a union of
// R(q_i)` over no-answered queries q_i. Since those sets are downward closed,
// reachability restricted to alive nodes coincides with global reachability
// (DESIGN.md §2), which is what makes the cheap BFS updates below sound.
#ifndef AIGS_GRAPH_CANDIDATE_SET_H_
#define AIGS_GRAPH_CANDIDATE_SET_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/traversal.h"
#include "util/bitset.h"

namespace aigs {

/// Tracks which nodes are still possible targets during one search session.
class CandidateSet {
 public:
  /// Starts with every node alive.
  explicit CandidateSet(const Digraph& g)
      : graph_(&g), alive_(g.NumNodes(), true), alive_count_(g.NumNodes()),
        scratch_(g.NumNodes()) {}

  /// Number of alive nodes.
  std::size_t alive_count() const { return alive_count_; }

  /// True iff v is still a candidate.
  bool IsAlive(NodeId v) const { return alive_.Test(v); }

  /// Underlying bitset (read-only).
  const DynamicBitset& bits() const { return alive_; }

  /// Applies a yes-answer for query q: candidates become R(q) ∩ C.
  /// Returns the nodes that were removed.
  void RestrictToReachable(NodeId q, std::vector<NodeId>* removed = nullptr);

  /// Applies a no-answer for query q: candidates become C \ R(q).
  /// Appends the removed nodes (R(q) ∩ C) to `removed` if non-null.
  void RemoveReachable(NodeId q, std::vector<NodeId>* removed = nullptr);

  /// Removes exactly one node (no reachability expansion) — used when the
  /// caller computed the removal set itself (e.g. batched answers).
  void KillOne(NodeId v) {
    AIGS_CHECK(IsAlive(v));
    alive_.Reset(v);
    --alive_count_;
  }

  /// Copies another set's membership without reallocating (both sets must
  /// wrap the same graph). Lets per-round simulation scratch reuse one
  /// member set instead of copy-constructing a fresh one per round.
  void ResetFrom(const CandidateSet& other) {
    AIGS_DCHECK(graph_ == other.graph_);
    alive_ = other.alive_;
    alive_count_ = other.alive_count_;
  }

  /// The single remaining candidate; requires alive_count() == 1.
  NodeId SoleCandidate() const;

 private:
  const Digraph* graph_;
  DynamicBitset alive_;
  std::size_t alive_count_;
  BfsScratch scratch_;
};

}  // namespace aigs

#endif  // AIGS_GRAPH_CANDIDATE_SET_H_
