#include "net/loadgen.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>

#include "eval/runner.h"
#include "net/shard_router.h"
#include "net/wire.h"
#include "oracle/oracle.h"
#include "util/percentile.h"
#include "util/rng.h"

namespace aigs::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Which request a connection's session loop sends next.
enum class Phase { kOpen, kAsk, kAnswer, kClose };

struct Conn {
  int fd = -1;
  std::size_t shard = 0;
  bool retired = false;  // connection died or budget left nothing to send
  bool in_flight = false;

  Phase phase = Phase::kOpen;
  SessionId session = 0;
  NodeId target = 0;
  Query pending_query;

  std::string out;          // remaining bytes of the current request
  std::string in;           // partial response bytes
  Clock::time_point sent_at;
};

std::uint64_t NearestRankUs(const std::vector<std::uint64_t>& sorted_ns,
                            double quantile) {
  return NearestRankSorted(std::span<const std::uint64_t>(sorted_ns),
                           quantile) /
         1000;
}

}  // namespace

StatusOr<LoadgenResult> RunLoadgen(const LoadgenOptions& options) {
  if (options.targets.empty()) {
    return Status::InvalidArgument("loadgen needs at least one target");
  }
  if (options.hierarchy == nullptr) {
    return Status::InvalidArgument(
        "loadgen needs the served hierarchy to answer questions");
  }
  if (options.connections == 0) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.max_requests == 0 && options.duration_ms == 0) {
    return Status::InvalidArgument(
        "set max_requests and/or duration_ms — an unbounded closed loop "
        "never returns");
  }
  IgnoreSigpipe();

  const Hierarchy& hierarchy = *options.hierarchy;
  const std::size_t num_nodes = hierarchy.NumNodes();
  const bool sharded = options.targets.size() > 1;
  const ShardRing ring(options.targets, options.vnodes);
  Rng rng(Mix64(options.seed));

  LoadgenResult result;
  std::vector<std::uint64_t> latencies_ns;
  latencies_ns.reserve(options.max_requests != 0
                           ? std::min<std::uint64_t>(options.max_requests,
                                                     1u << 22)
                           : 1u << 16);
  std::uint64_t issued = 0;

  // Draws the proposed id for a fresh session: 0 (server assigns) on one
  // target; on several, rejection-sampled until the ShardRing places it on
  // this connection's shard — the exact placement a ShardRouter computes.
  const auto propose_id = [&](const Conn& conn) -> SessionId {
    if (!sharded) {
      return 0;
    }
    for (;;) {
      const SessionId id = rng.Next();
      if (id != 0 && ring.ShardFor(id) == conn.shard) {
        return id;
      }
    }
  };

  const auto start = Clock::now();
  const auto out_of_time = [&] {
    return options.duration_ms != 0 &&
           Clock::now() - start >= std::chrono::milliseconds(
                                       options.duration_ms);
  };
  const auto can_issue = [&] {
    return (options.max_requests == 0 || issued < options.max_requests) &&
           !out_of_time();
  };

  // Builds and enqueues the next request of `conn`'s session loop.
  const auto issue = [&](Conn& conn) {
    WireRequest request;
    switch (conn.phase) {
      case Phase::kOpen:
        request.op = WireOp::kOpen;
        request.id = propose_id(conn);
        request.text = options.policy_spec;
        break;
      case Phase::kAsk:
        request.op = WireOp::kAsk;
        request.id = conn.session;
        break;
      case Phase::kAnswer: {
        request.op = WireOp::kAnswer;
        request.id = conn.session;
        ExactOracle oracle(hierarchy.reach(), conn.target);
        request.answer = AnswerFromOracle(conn.pending_query, oracle);
        break;
      }
      case Phase::kClose:
        request.op = WireOp::kClose;
        request.id = conn.session;
        break;
    }
    conn.out = EncodeRequest(request);
    conn.sent_at = Clock::now();
    conn.in_flight = true;
    ++issued;
  };

  // Advances the session state machine on one completed round trip.
  const auto handle_response = [&](Conn& conn, const WireResponse& response) {
    const auto now = Clock::now();
    latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - conn.sent_at)
            .count()));
    ++result.requests;
    conn.in_flight = false;
    if (!response.ok()) {
      ++result.errors;
      // Recover by abandoning the session: close it if addressable,
      // otherwise start fresh (the server's TTL reaps leftovers).
      if (conn.phase != Phase::kClose && conn.session != 0) {
        conn.phase = Phase::kClose;
      } else {
        conn.session = 0;
        conn.phase = Phase::kOpen;
      }
      return;
    }
    switch (conn.phase) {
      case Phase::kOpen:
        conn.session = response.id;
        conn.target = static_cast<NodeId>(rng.UniformInt(num_nodes));
        conn.phase = Phase::kAsk;
        break;
      case Phase::kAsk:
        if (response.query.kind == Query::Kind::kDone) {
          if (response.query.node != conn.target) {
            ++result.wrong_targets;
          }
          conn.phase = Phase::kClose;
        } else {
          conn.pending_query = response.query;
          conn.phase = Phase::kAnswer;
        }
        break;
      case Phase::kAnswer:
        conn.phase = Phase::kAsk;
        break;
      case Phase::kClose:
        ++result.sessions_completed;
        conn.session = 0;
        conn.phase = Phase::kOpen;
        break;
    }
  };

  // Dial all connections up front (blocking), then run them nonblocking.
  std::vector<Conn> conns(options.connections);
  std::size_t live = 0;
  Status last_dial = Status::OK();
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].shard = i % options.targets.size();
    auto fd = DialTcp(options.targets[conns[i].shard],
                      options.connect_timeout_ms);
    if (!fd.ok()) {
      last_dial = fd.status();
      conns[i].retired = true;
      continue;
    }
    conns[i].fd = *fd;
    if (const Status s = SetNonBlocking(*fd); !s.ok()) {
      CloseFd(*fd);
      conns[i].retired = true;
      last_dial = s;
      continue;
    }
    ++live;
  }
  if (live == 0) {
    return Status::IOError("no loadgen connection could be established (" +
                           last_dial.message() + ")");
  }
  for (Conn& conn : conns) {
    if (!conn.retired && can_issue()) {
      issue(conn);
    } else if (!conn.retired) {
      CloseFd(conn.fd);
      conn.retired = true;
      --live;
    }
  }

  const auto retire = [&](Conn& conn) {
    CloseFd(conn.fd);
    conn.fd = -1;
    conn.retired = true;
    conn.in_flight = false;
    --live;
  };

  std::vector<pollfd> pollfds;
  std::vector<Conn*> polled;
  char buffer[16384];
  while (live > 0 && !out_of_time()) {
    pollfds.clear();
    polled.clear();
    bool any_in_flight = false;
    for (Conn& conn : conns) {
      if (conn.retired) {
        continue;
      }
      if (!conn.in_flight) {
        retire(conn);  // budget exhausted for this connection
        continue;
      }
      any_in_flight = true;
      pollfds.push_back(
          {conn.fd,
           static_cast<short>(conn.out.empty() ? POLLIN : POLLOUT), 0});
      polled.push_back(&conn);
    }
    if (!any_in_flight) {
      break;
    }
    int rc = ::poll(pollfds.data(), pollfds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      return Status::IOError("poll failed during the load run");
    }
    for (std::size_t i = 0; i < pollfds.size(); ++i) {
      Conn& conn = *polled[i];
      const short revents = pollfds[i].revents;
      if (revents == 0 || conn.retired) {
        continue;
      }
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        ++result.errors;
        retire(conn);
        continue;
      }
      if ((revents & POLLOUT) != 0 && !conn.out.empty()) {
        const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                                 MSG_NOSIGNAL);
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK) {
          ++result.errors;
          retire(conn);
          continue;
        }
        if (n > 0) {
          conn.out.erase(0, static_cast<std::size_t>(n));
        }
      }
      if ((revents & POLLIN) != 0) {
        bool dead = false;
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
          if (n > 0) {
            conn.in.append(buffer, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            dead = true;
            break;
          }
          if (errno == EINTR) {
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          dead = true;
          break;
        }
        // Closed loop: at most one response is outstanding, but drain
        // whatever arrived before deciding the connection's fate.
        std::string_view payload;
        std::size_t consumed = 0;
        while (ExtractFrame(conn.in, &payload, &consumed, nullptr) ==
               FrameStatus::kFrame) {
          WireResponse response;
          const Status decoded = DecodeResponsePayload(payload, &response);
          conn.in.erase(0, consumed);
          if (!decoded.ok()) {
            dead = true;
            break;
          }
          handle_response(conn, response);
          if (can_issue()) {
            issue(conn);
          }
        }
        if (dead || ExtractFrame(conn.in, &payload, &consumed, nullptr) ==
                        FrameStatus::kCorrupt) {
          if (conn.in_flight) {
            ++result.errors;
          }
          retire(conn);
        }
      }
    }
  }
  for (Conn& conn : conns) {
    if (!conn.retired) {
      CloseFd(conn.fd);
    }
  }

  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  result.wall_ms = wall_ns / 1e6;
  result.throughput_rps =
      wall_ns > 0 ? static_cast<double>(result.requests) / (wall_ns / 1e9)
                  : 0;
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    result.p50_us = static_cast<double>(NearestRankUs(latencies_ns, 0.50));
    result.p99_us = static_cast<double>(NearestRankUs(latencies_ns, 0.99));
    double sum_ns = 0;
    for (const std::uint64_t ns : latencies_ns) {
      sum_ns += static_cast<double>(ns);
    }
    result.mean_us =
        sum_ns / static_cast<double>(latencies_ns.size()) / 1000.0;
  }
  if (result.requests == 0) {
    return Status::IOError(
        "the load run completed no requests — is the server up and serving "
        "the same hierarchy?");
  }
  return result;
}

}  // namespace aigs::net
