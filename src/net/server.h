// AigsServer — the epoll-based TCP front end that puts an Engine on the
// network. One acceptor thread distributes connections round-robin across
// N worker event loops; each worker owns its connections outright (their
// fds, read/write buffers, and idle clocks), so no per-request lock is
// shared between workers — the Engine's own thread safety is the only
// synchronization on the hot path.
//
// Protocol: aigs-wire/1 (net/wire.h), one request frame in, one response
// frame out, pipelining allowed (a client may send several requests before
// reading). Malformed frames that can still be attributed to a request
// (valid framing, bad payload) get an error response; corrupt framing
// (CRC mismatch, absurd length) closes the connection — frame boundaries
// are length-derived, so there is nothing to resynchronize on.
//
// Shutdown: Stop() wakes every loop, closes all connections, joins the
// threads, and then flushes the durable store (the PR-7 SIGTERM seam) —
// an orderly stop loses nothing even under fsync=interval.
#ifndef AIGS_NET_SERVER_H_
#define AIGS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/net_util.h"
#include "net/wire.h"
#include "service/engine.h"
#include "util/status.h"

namespace aigs::net {

struct ServerOptions {
  /// Bind address; port 0 picks an ephemeral port (read it back via
  /// port() — the tests' and bench's no-collision loopback setup).
  Endpoint listen{"127.0.0.1", 0};
  /// Worker event loops. 0 = min(4, hardware_concurrency).
  std::size_t workers = 0;
  /// Connections idle longer than this are closed (0 = never). Idle scans
  /// piggyback on the epoll timeout, so enforcement granularity is
  /// ~idle_timeout_ms/2.
  std::uint32_t idle_timeout_ms = 60'000;
  /// Per-frame payload cap handed to ExtractFrame.
  std::size_t max_payload = kMaxFramePayload;
  int backlog = 128;
};

/// Maps one decoded request onto the Engine's session API and packages the
/// result (or its Status) as the response. Shared by the server's workers
/// and the in-process transcript-equivalence checks in the network bench.
WireResponse HandleRequest(Engine& engine, const WireRequest& request);

class AigsServer {
 public:
  /// The engine must outlive the server.
  AigsServer(Engine& engine, ServerOptions options);
  ~AigsServer();

  AigsServer(const AigsServer&) = delete;
  AigsServer& operator=(const AigsServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. Once OK the
  /// server is reachable on port().
  Status Start();

  /// Graceful shutdown (idempotent): stop accepting, close every
  /// connection, join all threads, flush the durable store.
  void Stop();

  /// The bound port (resolves ephemeral binds); 0 before Start().
  std::uint16_t port() const { return port_; }
  Endpoint endpoint() const { return {options_.listen.host, port_}; }

  /// Connections accepted over the server's lifetime / open right now.
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_open() const {
    return open_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker& worker);
  /// Drains the worker's read buffer of complete frames: dispatch,
  /// respond, or (on corrupt framing) mark the connection for close.
  void ServeConnection(Worker& worker, int fd);

  Engine& engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;

  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
};

}  // namespace aigs::net

#endif  // AIGS_NET_SERVER_H_
