#include "eval/online.h"

#include <memory>
#include <string>

#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"
#include "prob/empirical.h"
#include "service/engine.h"
#include "util/rng.h"

namespace aigs {

StatusOr<OnlineSeries> RunOnlineLearning(const Hierarchy& hierarchy,
                                         const Distribution& real_dist,
                                         const OnlineOptions& options) {
  if (real_dist.size() != hierarchy.NumNodes()) {
    return Status::InvalidArgument("distribution size mismatch");
  }
  if (options.num_objects == 0 || options.block_size == 0 ||
      options.num_traces == 0 ||
      options.num_objects % options.block_size != 0) {
    return Status::InvalidArgument(
        "num_objects must be a positive multiple of block_size");
  }
  const std::size_t num_blocks = options.num_objects / options.block_size;
  const std::size_t publish_every =
      options.publish_every == 0 ? options.block_size : options.publish_every;
  const AliasTable sampler(real_dist);

  // The learned counts stay raw integers, so the snapshot policies must not
  // re-round them (matches the paper's live-count setting).
  const std::string policy_spec = hierarchy.is_tree()
                                      ? "greedy_tree:rounded=false"
                                      : "greedy_dag:rounded=false";

  std::vector<long double> block_cost_sum(num_blocks, 0);
  long double grand_sum = 0;

  // Inline drains: the evaluator publishes many epochs back to back and
  // measures costs deterministically — background batching and thread
  // scheduling have no business in the numbers.
  EngineOptions engine_options;
  engine_options.drain.background = false;
  Engine engine(engine_options);
  std::uint64_t epochs_published = 0;
  const auto publish = [&](const EmpiricalCounts& counts) -> Status {
    CatalogConfig config;
    config.hierarchy = UnownedHierarchy(hierarchy);
    config.distribution = counts.ToDistribution();
    config.policy_specs = {policy_spec};
    AIGS_RETURN_NOT_OK(engine.Publish(std::move(config)).status());
    ++epochs_published;
    return Status::OK();
  };

  for (std::size_t trace = 0; trace < options.num_traces; ++trace) {
    Rng rng(options.seed + trace);
    EmpiricalCounts counts(hierarchy.NumNodes(), options.prior);
    AIGS_RETURN_NOT_OK(publish(counts));
    std::size_t since_publish = 0;

    for (std::size_t block = 0; block < num_blocks; ++block) {
      std::uint64_t block_queries = 0;
      for (std::size_t i = 0; i < options.block_size; ++i) {
        if (since_publish >= publish_every) {
          // The learned counts advance one epoch; sessions opened below see
          // the refreshed distribution, in-flight ones are untouched.
          AIGS_RETURN_NOT_OK(publish(counts));
          since_publish = 0;
        }
        const NodeId target = sampler.Sample(rng);
        ExactOracle oracle(hierarchy.reach(), target);
        AIGS_ASSIGN_OR_RETURN(const SessionId id, engine.Open(policy_spec));
        AIGS_ASSIGN_OR_RETURN(const SearchResult r,
                              RunSearch(engine, id, oracle));
        AIGS_RETURN_NOT_OK(engine.Close(id));
        AIGS_CHECK(r.target == target);
        block_queries += r.UnitCost();
        counts.Observe(target);
        ++since_publish;
      }
      block_cost_sum[block] += static_cast<long double>(block_queries) /
                               static_cast<long double>(options.block_size);
      grand_sum += static_cast<long double>(block_queries);
    }
  }

  OnlineSeries series;
  series.avg_cost_per_block.resize(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    series.avg_cost_per_block[b] = static_cast<double>(
        block_cost_sum[b] / static_cast<long double>(options.num_traces));
  }
  series.overall_avg_cost = static_cast<double>(
      grand_sum / static_cast<long double>(options.num_traces *
                                           options.num_objects));
  series.epochs_published = epochs_published;
  return series;
}

}  // namespace aigs
