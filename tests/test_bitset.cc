#include "util/bitset.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace aigs {
namespace {

TEST(DynamicBitset, StartsClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(DynamicBitset, ConstructAllSet) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_TRUE(b.Test(69));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitset, AssignWritesEitherValue) {
  DynamicBitset b(10);
  b.Assign(3, true);
  EXPECT_TRUE(b.Test(3));
  b.Assign(3, false);
  EXPECT_FALSE(b.Test(3));
}

TEST(DynamicBitset, SetAllRespectsTail) {
  DynamicBitset b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitset, BooleanAlgebra) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  a.Set(1);
  a.Set(100);
  a.Set(199);
  b.Set(100);
  b.Set(150);

  DynamicBitset and_result = a;
  and_result.AndWith(b);
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Test(100));

  DynamicBitset or_result = a;
  or_result.OrWith(b);
  EXPECT_EQ(or_result.Count(), 4u);

  DynamicBitset andnot_result = a;
  andnot_result.AndNotWith(b);
  EXPECT_EQ(andnot_result.Count(), 2u);
  EXPECT_TRUE(andnot_result.Test(1));
  EXPECT_TRUE(andnot_result.Test(199));
}

TEST(DynamicBitset, IntersectionCountAndIntersects) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  for (std::size_t i = 0; i < 128; i += 2) {
    a.Set(i);
  }
  for (std::size_t i = 0; i < 128; i += 3) {
    b.Set(i);
  }
  // Multiples of 6 in [0, 128): 22 values.
  EXPECT_EQ(a.IntersectionCount(b), 22u);
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset odd(128);
  odd.Set(1);
  EXPECT_FALSE(a.Intersects(odd));
}

TEST(DynamicBitset, FindFirst) {
  DynamicBitset b(300);
  EXPECT_EQ(b.FindFirst(), 300u);
  b.Set(250);
  EXPECT_EQ(b.FindFirst(), 250u);
  b.Set(70);
  EXPECT_EQ(b.FindFirst(), 70u);
}

TEST(DynamicBitset, ForEachSetBitAscending) {
  DynamicBitset b(500);
  const std::set<std::size_t> expected = {0, 63, 64, 65, 127, 128, 499};
  for (const std::size_t i : expected) {
    b.Set(i);
  }
  std::vector<std::size_t> seen;
  b.ForEachSetBit([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>(expected.begin(), expected.end()));
}

TEST(DynamicBitset, ForEachSetBitIntersection) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(5);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(7);
  std::vector<std::size_t> seen;
  a.ForEachSetBitIntersection(b, [&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{50, 99}));
}

TEST(DynamicBitset, ResizeGrowWithValue) {
  DynamicBitset b(10, true);
  b.Resize(100, true);
  EXPECT_EQ(b.Count(), 100u);
  b.Resize(5);
  EXPECT_EQ(b.Count(), 5u);
  EXPECT_EQ(b.size(), 5u);
}

TEST(DynamicBitset, EqualityIncludesSize) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  EXPECT_EQ(a, b);
  b.Set(3);
  EXPECT_FALSE(a == b);
  DynamicBitset c(11);
  EXPECT_FALSE(a == c);
}

TEST(DynamicBitset, MaskedWeightedSumMatchesScalarLoop) {
  Rng rng(11);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 1 + rng.UniformInt(300);
    DynamicBitset a(n);
    DynamicBitset mask(n);
    std::vector<Weight> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        a.Set(i);
      }
      if (rng.Bernoulli(0.5)) {
        mask.Set(i);
      }
      weights[i] = rng.UniformInt(1000);
    }
    Weight expected_masked = 0;
    Weight expected_all = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected_all += a.Test(i) ? weights[i] : 0;
      expected_masked += (a.Test(i) && mask.Test(i)) ? weights[i] : 0;
    }
    EXPECT_EQ(a.MaskedWeightedSum(mask, weights), expected_masked);
    EXPECT_EQ(a.WeightedSum(weights), expected_all);
    const DynamicBitset::CountAndWeight cw =
        a.MaskedCountAndWeightedSum(mask, weights);
    EXPECT_EQ(cw.count, a.IntersectionCount(mask));
    EXPECT_EQ(cw.weight, expected_masked);
  }
}

TEST(DynamicBitset, BlockedWeightedSumMatchesBitwiseKernel) {
  // The blocked kernel (BlockedWeights: full-word settle + complement
  // gather) must agree with the per-bit reference across densities,
  // including all-set words, majority-set words (the subtract path), and
  // partial tail words.
  Rng rng(13);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.UniformInt(400);
    const double density = rng.UniformReal();
    DynamicBitset a(n);
    DynamicBitset mask(n);
    std::vector<Weight> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(density)) {
        a.Set(i);
      }
      if (rng.Bernoulli(0.9)) {
        mask.Set(i);
      }
      weights[i] = rng.UniformInt(1000);
    }
    const BlockedWeights blocked(weights);
    EXPECT_EQ(a.MaskedWeightedSum(mask, blocked),
              a.MaskedWeightedSum(mask, weights));
    const DynamicBitset::CountAndWeight fused =
        a.MaskedCountAndWeightedSum(mask, blocked);
    const DynamicBitset::CountAndWeight reference =
        a.MaskedCountAndWeightedSum(mask, weights);
    EXPECT_EQ(fused.count, reference.count);
    EXPECT_EQ(fused.weight, reference.weight);
  }
  // Degenerate shapes: the fully-set mask over a partial last word must hit
  // the block-sum fast path without reading past the weight vector.
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{128}, std::size_t{190}}) {
    DynamicBitset all(n, true);
    std::vector<Weight> weights(n);
    Weight total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = i + 1;
      total += weights[i];
    }
    const BlockedWeights blocked(weights);
    EXPECT_EQ(all.MaskedWeightedSum(all, blocked), total) << "n=" << n;
  }
}

TEST(DynamicBitset, RangeOperationsMatchScalarLoops) {
  Rng rng(12);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.UniformInt(300);
    DynamicBitset reference(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        reference.Set(i);
      }
    }
    const std::size_t begin = rng.UniformInt(n + 1);
    const std::size_t end = begin + rng.UniformInt(n + 1 - begin);

    std::size_t expected_count = 0;
    std::vector<std::size_t> expected_positions;
    for (std::size_t i = begin; i < end; ++i) {
      if (reference.Test(i)) {
        ++expected_count;
        expected_positions.push_back(i);
      }
    }
    EXPECT_EQ(reference.CountInRange(begin, end), expected_count);
    std::vector<std::size_t> positions;
    reference.ForEachSetBitInRange(
        begin, end, [&](std::size_t i) { positions.push_back(i); });
    EXPECT_EQ(positions, expected_positions);

    DynamicBitset cleared = reference;
    cleared.ClearRange(begin, end);
    DynamicBitset kept = reference;
    kept.KeepOnlyRange(begin, end);
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_range = i >= begin && i < end;
      EXPECT_EQ(cleared.Test(i), reference.Test(i) && !in_range) << i;
      EXPECT_EQ(kept.Test(i), reference.Test(i) && in_range) << i;
    }
  }
}

TEST(DynamicBitset, RandomizedAgainstReferenceSet) {
  Rng rng(7);
  DynamicBitset b(257);
  std::set<std::size_t> reference;
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::size_t>(rng.UniformInt(257));
    if (rng.Bernoulli(0.5)) {
      b.Set(i);
      reference.insert(i);
    } else {
      b.Reset(i);
      reference.erase(i);
    }
  }
  EXPECT_EQ(b.Count(), reference.size());
  for (std::size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(b.Test(i), reference.count(i) > 0) << i;
  }
}

}  // namespace
}  // namespace aigs
