#include "graph/reachability.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace aigs {
namespace {

/// Reference reachability by BFS.
bool ReachesBrute(const Digraph& g, NodeId u, NodeId v) {
  for (const NodeId x : CollectReachable(g, u)) {
    if (x == v) {
      return true;
    }
  }
  return false;
}

TEST(Reachability, TreeModeUsesEuler) {
  Rng rng(1);
  const Digraph g = RandomTree(40, rng);
  const ReachabilityIndex index(g);
  EXPECT_TRUE(index.euler_mode());
}

TEST(Reachability, DagModeUsesClosure) {
  Rng rng(2);
  const Digraph g = RandomDag(40, rng, 0.5);
  const ReachabilityIndex index(g);
  EXPECT_FALSE(index.euler_mode());
}

TEST(Reachability, MatchesBruteForceOnTrees) {
  Rng rng(3);
  const Digraph g = RandomTree(60, rng);
  const ReachabilityIndex index(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(index.Reaches(u, v), ReachesBrute(g, u, v))
          << u << " -> " << v;
    }
  }
}

TEST(Reachability, MatchesBruteForceOnDags) {
  Rng rng(4);
  const Digraph g = RandomDag(60, rng, 0.6);
  const ReachabilityIndex index(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(index.Reaches(u, v), ReachesBrute(g, u, v))
          << u << " -> " << v;
    }
  }
}

TEST(Reachability, SelfReachability) {
  Rng rng(5);
  for (const bool dag : {false, true}) {
    const Digraph g =
        dag ? RandomDag(30, rng, 0.4) : RandomTree(30, rng);
    const ReachabilityIndex index(g);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_TRUE(index.Reaches(v, v));
    }
  }
}

TEST(Reachability, RootReachesEverything) {
  Rng rng(6);
  const Digraph g = RandomDag(50, rng, 0.3);
  const ReachabilityIndex index(g);
  EXPECT_EQ(index.ReachableCount(g.root()), g.NumNodes());
}

TEST(Reachability, ReachableCountMatchesForEach) {
  Rng rng(7);
  const Digraph g = RandomDag(45, rng, 0.5);
  const ReachabilityIndex index(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::size_t count = 0;
    index.ForEachReachable(v, [&count](NodeId) { ++count; });
    EXPECT_EQ(count, index.ReachableCount(v));
  }
}

TEST(Reachability, WeightOfReachableSetMatchesBrute) {
  Rng rng(8);
  for (const bool dag : {false, true}) {
    const Digraph g = dag ? RandomDag(50, rng, 0.5) : RandomTree(50, rng);
    const ReachabilityIndex index(g);
    std::vector<Weight> weights(g.NumNodes());
    for (auto& w : weights) {
      w = rng.UniformInt(1000);
    }
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      Weight expected = 0;
      for (const NodeId x : CollectReachable(g, v)) {
        expected += weights[x];
      }
      EXPECT_EQ(index.WeightOfReachableSet(v, weights), expected);
    }
  }
}

TEST(Reachability, AllReachableSetWeightsMatchesPerNode) {
  Rng rng(9);
  for (const bool dag : {false, true}) {
    const Digraph g = dag ? RandomDag(55, rng, 0.4) : RandomTree(55, rng);
    const ReachabilityIndex index(g);
    std::vector<Weight> weights(g.NumNodes());
    for (auto& w : weights) {
      w = rng.UniformInt(100) + 1;
    }
    const std::vector<Weight> all = index.AllReachableSetWeights(weights);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(all[v], index.WeightOfReachableSet(v, weights));
    }
  }
}

TEST(Traversal, CollectReachableIncludesStart) {
  Rng rng(10);
  const Digraph g = RandomTree(20, rng);
  const auto reachable = CollectReachable(g, 5);
  EXPECT_NE(std::find(reachable.begin(), reachable.end(), 5),
            reachable.end());
}

TEST(Traversal, AncestorsInverseOfReachability) {
  Rng rng(11);
  const Digraph g = RandomDag(40, rng, 0.5);
  const ReachabilityIndex index(g);
  for (NodeId v = 0; v < g.NumNodes(); v += 7) {
    const auto ancestors = CollectAncestors(g, v);
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      const bool is_ancestor =
          std::find(ancestors.begin(), ancestors.end(), a) != ancestors.end();
      EXPECT_EQ(is_ancestor, index.Reaches(a, v));
    }
  }
}

TEST(Traversal, FilteredBfsRespectsFilter) {
  // Chain 0 -> 1 -> 2 -> 3; blocking node 2 hides node 3.
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  ASSERT_TRUE(g.Finalize().ok());
  BfsScratch scratch(g.NumNodes());
  std::vector<NodeId> visited;
  scratch.ForwardBfs(
      g, 0, [](NodeId v) { return v != 2; },
      [&visited](NodeId v) { visited.push_back(v); });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 1}));
}

}  // namespace
}  // namespace aigs
