#include "graph/transitive_reduction.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(TransitiveReduction, RemovesShortcutEdge) {
  // 0 -> 1 -> 2 plus the shortcut 0 -> 2.
  Digraph g;
  g.AddNodes(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  ASSERT_TRUE(g.Finalize().ok());
  auto reduced = TransitiveReduction(g);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->removed_edges, 1u);
  EXPECT_EQ(reduced->graph.NumEdges(), 2u);
  EXPECT_TRUE(reduced->graph.IsTree());
}

TEST(TransitiveReduction, TreeIsAlreadyReduced) {
  Rng rng(1);
  const Digraph g = RandomTree(60, rng);
  auto reduced = TransitiveReduction(g);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->removed_edges, 0u);
  EXPECT_EQ(reduced->graph.NumEdges(), g.NumEdges());
}

TEST(TransitiveReduction, DiamondIsKept) {
  // Diamonds have no redundant edges: both parents are needed.
  const Digraph g = DiamondChain(3);
  auto reduced = TransitiveReduction(g);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->removed_edges, 0u);
}

TEST(TransitiveReduction, PreservesReachability) {
  Rng rng(2);
  for (int round = 0; round < 10; ++round) {
    const Digraph g = RandomDag(50, rng, 0.8);
    auto reduced = TransitiveReduction(g);
    ASSERT_TRUE(reduced.ok());
    const ReachabilityIndex before(g);
    const ReachabilityIndex after(reduced->graph);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_EQ(before.Reaches(u, v), after.Reaches(u, v))
            << u << " -> " << v;
      }
    }
  }
}

TEST(TransitiveReduction, Idempotent) {
  Rng rng(3);
  const Digraph g = RandomDag(40, rng, 0.6);
  auto once = TransitiveReduction(g);
  ASSERT_TRUE(once.ok());
  auto twice = TransitiveReduction(once->graph);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->removed_edges, 0u);
  EXPECT_EQ(twice->graph.NumEdges(), once->graph.NumEdges());
}

TEST(TransitiveReduction, PreservesLabelsAndIds) {
  Digraph g;
  g.AddNode("root");
  g.AddNode("mid");
  g.AddNode("leaf");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  ASSERT_TRUE(g.Finalize().ok());
  auto reduced = TransitiveReduction(g);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->graph.Label(0), "root");
  EXPECT_EQ(reduced->graph.Label(1), "mid");
  EXPECT_EQ(reduced->graph.Label(2), "leaf");
}

TEST(TransitiveReduction, RemovesManyEdgesFromDenseDag) {
  // Total order 0 < 1 < ... < 9 with every forward edge: the reduction is
  // the chain.
  Digraph g;
  g.AddNodes(10);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) {
      g.AddEdge(u, v);
    }
  }
  ASSERT_TRUE(g.Finalize().ok());
  auto reduced = TransitiveReduction(g);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->graph.NumEdges(), 9u);
  EXPECT_EQ(reduced->removed_edges, 45u - 9u);
}

}  // namespace
}  // namespace aigs
