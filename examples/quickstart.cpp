// Quickstart: build a category hierarchy, attach a target distribution, and
// run the greedy interactive search against a simulated oracle — the
// 30-line tour of the public API.
#include <cstdio>

#include "core/aigs.h"
#include "data/builtin.h"
#include "eval/evaluator.h"
#include "eval/runner.h"

using namespace aigs;  // NOLINT — example brevity

int main() {
  // 1. The Fig. 1 vehicle hierarchy with its object proportions
  //    (Vehicle 4%, Car 2%, Nissan 8%, Honda 4%, Mercedes 2%,
  //     Maxima 40%, Sentra 40%).
  VehicleNodes nodes;
  auto hierarchy = Hierarchy::Build(BuildVehicleHierarchy(&nodes));
  if (!hierarchy.ok()) {
    std::fprintf(stderr, "%s\n", hierarchy.status().ToString().c_str());
    return 1;
  }
  const Distribution dist = VehicleDistribution();

  // 2. The greedy policy (GreedyTree here — the hierarchy is a tree).
  const auto policy = MakeGreedyPolicy(*hierarchy, dist);

  // 3. One interactive search: the oracle plays a crowd that knows the
  //    hidden answer ("this image shows a Sentra").
  ExactOracle oracle(hierarchy->reach(), nodes.sentra);
  auto session = policy->NewSession();
  std::printf("-- interactive search transcript --\n");
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      std::printf("identified: %s\n\n",
                  hierarchy->graph().Label(q.node).c_str());
      break;
    }
    const bool yes = oracle.Reach(q.node);
    std::printf("is it reachable from '%s'?  -> %s\n",
                hierarchy->graph().Label(q.node).c_str(), yes ? "yes" : "no");
    session->OnReach(q.node, yes);
  }

  // 4. Expected cost over the whole distribution (Definition 7).
  const EvalStats stats = EvaluateExact(*policy, *hierarchy, dist);
  std::printf("expected #questions per object: %.2f (worst case %llu)\n",
              stats.expected_cost,
              static_cast<unsigned long long>(stats.max_cost));
  return 0;
}
