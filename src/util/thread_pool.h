// Fixed-size worker pool used by the exact expected-cost evaluator to fan
// per-target searches across cores. Searches are independent (immutable
// shared base state + per-session overlays), so results are deterministic
// regardless of scheduling.
#ifndef AIGS_UTIL_THREAD_POOL_H_
#define AIGS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aigs {

/// Simple fixed-size thread pool with a blocking task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until all complete. fn must be thread-safe for
  /// distinct i.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t min_chunk = 1);

  /// Runs fn(s) for s in [0, shards) on the pool and blocks until all of
  /// THESE tasks complete. Unlike Wait(), completion is tracked per call —
  /// concurrent RunShards callers sharing one pool don't entangle, which is
  /// what lets the parallel index builders run on a caller's (or the
  /// default) pool instead of spawning nested ones. shards == 1 runs inline.
  /// Must not be called from one of the pool's own worker threads: the
  /// blocking wait would eat a worker the shards may need.
  void RunShards(std::size_t shards, const std::function<void(std::size_t)>& fn);

  /// Hardware-concurrency-sized default pool shared by evaluators.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace aigs

#endif  // AIGS_UTIL_THREAD_POOL_H_
