#include "graph/digraph.h"

#include <gtest/gtest.h>

#include "data/builtin.h"

namespace aigs {
namespace {

TEST(Digraph, EmptyGraphRejected) {
  Digraph g;
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(Digraph, SingleNodeIsItsOwnRoot) {
  Digraph g;
  const NodeId v = g.AddNode("only");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.root(), v);
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.IsTree());
  EXPECT_TRUE(g.IsLeaf(v));
  EXPECT_EQ(g.Height(), 0);
}

TEST(Digraph, ChildrenPreserveInsertionOrder) {
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 3);
  ASSERT_TRUE(g.Finalize().ok());
  const auto children = g.Children(0);
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], 2u);
  EXPECT_EQ(children[1], 1u);
  EXPECT_EQ(children[2], 3u);
}

TEST(Digraph, ParentsAreRecorded) {
  Digraph g;
  g.AddNodes(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);
  ASSERT_TRUE(g.Finalize().ok());
  const auto parents = g.Parents(2);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(Digraph, DuplicateEdgeRejected) {
  Digraph g;
  g.AddNodes(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(Digraph, CycleRejected) {
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);  // cycle 1 -> 2 -> 3 -> 1
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(Digraph, TwoNodeCycleHasNoSource) {
  Digraph g;
  g.AddNodes(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(Digraph, MultiRootGetsDummyRoot) {
  Digraph g;
  g.AddNodes(3);  // three isolated roots
  ASSERT_TRUE(g.Finalize(/*add_dummy_root=*/true).ok());
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.Label(g.root()), "<root>");
  EXPECT_EQ(g.OutDegree(g.root()), 3u);
  EXPECT_TRUE(g.IsTree());
}

TEST(Digraph, MultiRootRejectedWithoutDummy) {
  Digraph g;
  g.AddNodes(2);
  EXPECT_FALSE(g.Finalize(/*add_dummy_root=*/false).ok());
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  Digraph g;
  g.AddNodes(6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(2, 5);
  ASSERT_TRUE(g.Finalize().ok());
  const auto& topo = g.TopologicalOrder();
  std::vector<std::size_t> position(g.NumNodes());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    position[topo[i]] = i;
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId c : g.Children(u)) {
      EXPECT_LT(position[u], position[c]);
    }
  }
}

TEST(Digraph, DepthIsLongestPath) {
  // Diamond with a shortcut: depth must take the longer route.
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);  // shortcut
  g.AddEdge(2, 3);
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.Depth(0), 0);
  EXPECT_EQ(g.Depth(1), 1);
  EXPECT_EQ(g.Depth(2), 2);
  EXPECT_EQ(g.Depth(3), 3);
  EXPECT_EQ(g.Height(), 3);
}

TEST(Digraph, TreeDetection) {
  Digraph tree;
  tree.AddNodes(3);
  tree.AddEdge(0, 1);
  tree.AddEdge(0, 2);
  ASSERT_TRUE(tree.Finalize().ok());
  EXPECT_TRUE(tree.IsTree());

  Digraph dag;
  dag.AddNodes(3);
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 2);  // second parent for node 2
  ASSERT_TRUE(dag.Finalize().ok());
  EXPECT_FALSE(dag.IsTree());
}

TEST(Digraph, MaxOutDegree) {
  Digraph g;
  g.AddNodes(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.MaxOutDegree(), 3u);
}

TEST(Digraph, LabelsViaSetLabel) {
  Digraph g;
  g.AddNodes(2);
  g.SetLabel(1, "leaf");
  g.AddEdge(0, 1);
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.Label(0), "");
  EXPECT_EQ(g.Label(1), "leaf");
}

TEST(Digraph, VehicleHierarchyStats) {
  const Digraph g = BuildVehicleHierarchy();
  EXPECT_EQ(g.NumNodes(), 7u);
  EXPECT_EQ(g.NumEdges(), 6u);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.Height(), 3);
  EXPECT_EQ(g.MaxOutDegree(), 3u);
  EXPECT_EQ(g.Label(g.root()), "Vehicle");
}

TEST(Digraph, FinalizeTwiceFails) {
  Digraph g;
  g.AddNode();
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_FALSE(g.Finalize().ok());
}

}  // namespace
}  // namespace aigs
