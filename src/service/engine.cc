#include "service/engine.h"

#include <utility>

namespace aigs {
namespace {

const char* KindName(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kReach:
      return "reach";
    case Query::Kind::kReachBatch:
      return "reach-batch";
    case Query::Kind::kChoice:
      return "choice";
    case Query::Kind::kDone:
      return "done";
  }
  return "?";
}

}  // namespace

Engine::Engine(EngineOptions options)
    : sessions_(std::move(options.sessions)) {}

StatusOr<std::shared_ptr<const CatalogSnapshot>> Engine::Publish(
    CatalogConfig config) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<const CatalogSnapshot> snapshot,
      CatalogSnapshot::Build(std::move(config), next_epoch_));
  ++next_epoch_;
  snapshot_ = snapshot;
  return snapshot;
}

std::shared_ptr<const CatalogSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Engine::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ == nullptr ? 0 : snapshot_->epoch();
}

StatusOr<SessionId> Engine::Open(const std::string& policy_spec) {
  const std::shared_ptr<const CatalogSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  AIGS_ASSIGN_OR_RETURN(const Policy* policy, snap->PolicyFor(policy_spec));
  auto session = std::make_shared<ServiceSession>();
  session->snapshot = snap;
  session->policy_spec = policy_spec;
  session->policy = policy;
  session->search = policy->NewSession();
  return sessions_.Insert(std::move(session));
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::FindSession(SessionId id) {
  return sessions_.Find(id);
}

StatusOr<Query> Engine::Ask(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->search->Next();
}

Status Engine::Answer(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  const Query query = session->search->Next();
  if (query.kind == Query::Kind::kDone) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " already identified its target; nothing to answer");
  }
  // Service-boundary guard for the SearchSession default-fatal paths: a
  // mismatched answer kind is a client error, not a process abort.
  if (answer.kind != query.kind) {
    return Status::InvalidArgument(
        std::string("pending question expects a ") + KindName(query.kind) +
        " answer, got " + KindName(answer.kind));
  }

  TranscriptStep step;
  step.kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kReach:
      step.nodes = {query.node};
      step.yes = answer.yes;
      session->search->OnReach(query.node, answer.yes);
      break;
    case Query::Kind::kReachBatch:
      if (answer.batch.size() != query.choices.size()) {
        return Status::InvalidArgument(
            "batch answer has " + std::to_string(answer.batch.size()) +
            " entries; the pending batch asks " +
            std::to_string(query.choices.size()) + " questions");
      }
      step.nodes = query.choices;
      step.batch_answers = answer.batch;
      // Content validation too: a mutually inconsistent round (it would
      // eliminate every candidate) bounces with InvalidArgument and leaves
      // the question pending — never the fatal in-process path.
      AIGS_RETURN_NOT_OK(
          session->search->TryOnReachBatch(query.choices, answer.batch));
      break;
    case Query::Kind::kChoice:
      if (answer.choice < -1 ||
          answer.choice >= static_cast<int>(query.choices.size())) {
        return Status::OutOfRange(
            "choice answer " + std::to_string(answer.choice) +
            " outside [-1, " + std::to_string(query.choices.size()) + ")");
      }
      step.nodes = query.choices;
      step.choice = answer.choice;
      session->search->OnChoice(query.choices, answer.choice);
      break;
    case Query::Kind::kDone:
      AIGS_CHECK(false);  // handled above
  }
  session->transcript.push_back(std::move(step));
  return Status::OK();
}

StatusOr<std::string> Engine::Save(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  SerializedSession out;
  out.fingerprint = session->snapshot->fingerprint();
  out.epoch = session->snapshot->epoch();
  out.policy_spec = session->policy_spec;
  out.steps = session->transcript;
  return SessionCodec::Encode(out);
}

StatusOr<SessionId> Engine::Resume(const std::string& serialized) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  const std::shared_ptr<const CatalogSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session was recorded on a different catalog (fingerprint "
        "mismatch); replay would not be exact");
  }
  AIGS_ASSIGN_OR_RETURN(const Policy* policy,
                        snap->PolicyFor(saved.policy_spec));

  auto session = std::make_shared<ServiceSession>();
  session->snapshot = snap;
  session->policy_spec = saved.policy_spec;
  session->policy = policy;
  session->search = policy->NewSession();

  // Replay with verification: determinism (Definition 6) guarantees the
  // fresh session regenerates the recorded questions in order; any
  // divergence means the catalog or policy changed under us.
  for (std::size_t i = 0; i < saved.steps.size(); ++i) {
    const TranscriptStep& step = saved.steps[i];
    const Query query = session->search->Next();
    const bool matches =
        query.kind == step.kind &&
        (query.kind == Query::Kind::kReach
             ? (step.nodes.size() == 1 && query.node == step.nodes[0])
             : query.choices == step.nodes);
    if (!matches) {
      return Status::Internal(
          "transcript replay diverged at step " + std::to_string(i) +
          ": the snapshot no longer reproduces the saved question sequence");
    }
    switch (step.kind) {
      case Query::Kind::kReach:
        session->search->OnReach(step.nodes[0], step.yes);
        break;
      case Query::Kind::kReachBatch:
        if (step.batch_answers.size() != step.nodes.size()) {
          return Status::InvalidArgument(
              "saved batch step " + std::to_string(i) +
              " has mismatched answer count");
        }
        // A crafted blob may contain an inconsistent round the live engine
        // would have rejected; reject it here the same way.
        AIGS_RETURN_NOT_OK(
            session->search->TryOnReachBatch(step.nodes, step.batch_answers));
        break;
      case Query::Kind::kChoice:
        session->search->OnChoice(step.nodes, step.choice);
        break;
      case Query::Kind::kDone:
        return Status::InvalidArgument("saved transcript contains a 'done' "
                                       "step");
    }
    session->transcript.push_back(step);
  }
  return sessions_.Insert(std::move(session));
}

Status Engine::Close(SessionId id) { return sessions_.Erase(id); }

}  // namespace aigs
