#include "core/split_weight_index.h"

#include <algorithm>

namespace aigs {

SplitWeightBase::SplitWeightBase(const Hierarchy& hierarchy,
                                 const std::vector<Weight>& weights)
    : hierarchy_(&hierarchy),
      reach_(&hierarchy.reach()),
      node_weights_(&weights),
      euler_(hierarchy.reach().euler_mode()) {
  AIGS_CHECK(weights.size() == hierarchy.NumNodes());
  const std::size_t n = hierarchy.NumNodes();
  if (euler_) {
    euler_prefix_.resize(n + 1);
    euler_prefix_[0] = 0;
    for (std::uint32_t t = 0; t < n; ++t) {
      euler_prefix_[t + 1] =
          euler_prefix_[t] + weights[reach_->NodeAtEuler(t)];
    }
    total_ = euler_prefix_[n];
  } else {
    full_reach_weight_ = reach_->AllReachableSetWeights(weights);
    compressed_ =
        reach_->storage() == ReachabilityIndex::Storage::kCompressedClosure;
    if (compressed_) {
      // Sessions keep their alive bitsets in the compressed closure's
      // position space, so the weight table (and its block sums) must be
      // permuted the same way.
      const CompressedClosure& cc = reach_->compressed();
      pos_weights_.resize(n);
      for (std::size_t p = 0; p < n; ++p) {
        pos_weights_[p] = weights[cc.node_at_pos(p)];
      }
      pos_blocked_ = BlockedWeights(pos_weights_);
    } else {
      blocked_ = BlockedWeights(weights);
    }
    total_ = 0;
    for (const Weight w : weights) {
      total_ += w;
    }
  }
}

SplitWeightIndex::SplitWeightIndex(const SplitWeightBase& base)
    : base_(&base),
      euler_(base.euler_mode()),
      compressed_(base.compressed_mode()) {
  Reset();
}

void SplitWeightIndex::Reset() {
  const std::size_t n = base_->hierarchy().NumNodes();
  root_ = base_->hierarchy().root();
  alive_count_ = n;
  total_alive_ = base_->Total();
  if (euler_) {
    window_begin_ = 0;
    window_end_ = static_cast<std::uint32_t>(n);
    removed_.clear();
    removed_prefix_weight_.assign(1, 0);
    removed_prefix_count_.assign(1, 0);
  } else {
    materialized_ = false;
  }
}

void SplitWeightIndex::ResetFrom(const SplitWeightIndex& other) {
  AIGS_DCHECK(base_ == other.base_);
  root_ = other.root_;
  alive_count_ = other.alive_count_;
  total_alive_ = other.total_alive_;
  if (euler_) {
    window_begin_ = other.window_begin_;
    window_end_ = other.window_end_;
    removed_ = other.removed_;
    removed_prefix_weight_ = other.removed_prefix_weight_;
    removed_prefix_count_ = other.removed_prefix_count_;
  } else {
    materialized_ = other.materialized_;
    if (materialized_) {
      alive_ = other.alive_;
    }
  }
}

// ---- removed-interval bookkeeping (Euler mode) ------------------------------

std::size_t SplitWeightIndex::FirstRemovedAtOrAfter(std::uint32_t pos) const {
  return static_cast<std::size_t>(
      std::lower_bound(removed_.begin(), removed_.end(), pos,
                       [](const RemovedRange& r, std::uint32_t p) {
                         return r.begin < p;
                       }) -
      removed_.begin());
}

void SplitWeightIndex::RebuildRemovedPrefixes(std::size_t from) {
  removed_prefix_weight_.resize(removed_.size() + 1);
  removed_prefix_count_.resize(removed_.size() + 1);
  if (from == 0) {
    removed_prefix_weight_[0] = 0;
    removed_prefix_count_[0] = 0;
    from = 1;
  }
  for (std::size_t i = from; i <= removed_.size(); ++i) {
    const RemovedRange& r = removed_[i - 1];
    removed_prefix_weight_[i] = removed_prefix_weight_[i - 1] +
                                base_->EulerRangeWeight(r.begin, r.end);
    removed_prefix_count_[i] =
        removed_prefix_count_[i - 1] + (r.end - r.begin);
  }
}

Weight SplitWeightIndex::RemovedWeightWithin(std::uint32_t a,
                                             std::uint32_t b) const {
  // Laminarity: an interval with begin ∈ [a, b) is nested inside [a, b).
  const std::size_t lo = FirstRemovedAtOrAfter(a);
  const std::size_t hi = FirstRemovedAtOrAfter(b);
  return removed_prefix_weight_[hi] - removed_prefix_weight_[lo];
}

std::uint32_t SplitWeightIndex::RemovedCountWithin(std::uint32_t a,
                                                   std::uint32_t b) const {
  const std::size_t lo = FirstRemovedAtOrAfter(a);
  const std::size_t hi = FirstRemovedAtOrAfter(b);
  return removed_prefix_count_[hi] - removed_prefix_count_[lo];
}

bool SplitWeightIndex::CoveredByRemoved(std::uint32_t a,
                                        std::uint32_t b) const {
  const std::size_t idx = FirstRemovedAtOrAfter(a + 1);
  // removed_[idx - 1] is the last interval starting at or before a.
  return idx > 0 && removed_[idx - 1].end >= b;
}

void SplitWeightIndex::MarkWindowDead(std::uint32_t begin,
                                      std::uint32_t end) {
  window_begin_ = begin;
  window_end_ = end;
  removed_.clear();
  if (begin < end) {
    removed_.push_back(RemovedRange{begin, end});
  }
  RebuildRemovedPrefixes(0);
  alive_count_ = 0;
  total_alive_ = 0;
}

// ---- state queries ----------------------------------------------------------

bool SplitWeightIndex::IsAlive(NodeId v) const {
  if (euler_) {
    const std::uint32_t t = base_->reach().EulerBegin(v);
    return t >= window_begin_ && t < window_end_ &&
           !CoveredByRemoved(t, t + 1);
  }
  if (!materialized_) {
    return true;
  }
  return alive_.Test(compressed_ ? base_->reach().compressed().pos(v) : v);
}

NodeId SplitWeightIndex::Target() const {
  AIGS_CHECK(alive_count_ == 1);
  if (euler_) {
    std::uint32_t pos = window_begin_;
    for (const RemovedRange& r : removed_) {
      if (r.begin > pos) {
        break;
      }
      pos = r.end;
    }
    AIGS_DCHECK(pos < window_end_);
    return base_->reach().NodeAtEuler(pos);
  }
  if (!materialized_) {
    return base_->hierarchy().root();  // n == 1
  }
  if (compressed_) {
    return base_->reach().compressed().node_at_pos(alive_.FindFirst());
  }
  return static_cast<NodeId>(alive_.FindFirst());
}

Weight SplitWeightIndex::ReachWeight(NodeId v) const {
  if (euler_) {
    const std::uint32_t a =
        std::max(window_begin_, base_->reach().EulerBegin(v));
    const std::uint32_t b = std::min(window_end_, base_->reach().EulerEnd(v));
    if (a >= b || CoveredByRemoved(a, b)) {
      return 0;
    }
    return base_->EulerRangeWeight(a, b) - RemovedWeightWithin(a, b);
  }
  if (!materialized_) {
    return base_->FullReachWeight(v);
  }
  if (compressed_) {
    return base_->reach()
        .compressed()
        .IntersectCountAndWeight(v, alive_, base_->pos_blocked_weights())
        .weight;
  }
  return alive_.MaskedWeightedSum(base_->reach().ClosureRow(v),
                                  base_->blocked_weights());
}

std::size_t SplitWeightIndex::ReachCount(NodeId v) const {
  if (euler_) {
    const std::uint32_t a =
        std::max(window_begin_, base_->reach().EulerBegin(v));
    const std::uint32_t b = std::min(window_end_, base_->reach().EulerEnd(v));
    if (a >= b || CoveredByRemoved(a, b)) {
      return 0;
    }
    return (b - a) - RemovedCountWithin(a, b);
  }
  if (!materialized_) {
    return base_->reach().ReachableCount(v);
  }
  if (compressed_) {
    return base_->reach().compressed().IntersectCount(v, alive_);
  }
  return alive_.IntersectionCount(base_->reach().ClosureRow(v));
}

// ---- answer application -----------------------------------------------------

void SplitWeightIndex::MaterializeAllAlive() {
  const std::size_t n = base_->hierarchy().NumNodes();
  if (alive_.size() != n) {
    alive_.Resize(n, true);
  } else {
    alive_.SetAll();
  }
  materialized_ = true;
}

void SplitWeightIndex::ApplyYes(NodeId q) {
  // A batched round can apply a yes for an ancestor of an earlier yes of
  // the same round (it adds no information). The root only ever moves DOWN
  // (to nodes the current root reaches), preserving the invariant that
  // every candidate is reachable from root() through alive nodes — which
  // the rooted selection descents rely on.
  const bool moves_down = base_->reach().Reaches(root_, q);
  if (euler_) {
    const std::uint32_t a =
        std::max(window_begin_, base_->reach().EulerBegin(q));
    const std::uint32_t b = std::min(window_end_, base_->reach().EulerEnd(q));
    if (moves_down) {
      root_ = q;
    }
    if (a >= b) {
      // R(q) is disjoint from the window: nothing survives.
      MarkWindowDead(window_begin_, window_begin_);
      return;
    }
    if (CoveredByRemoved(a, b)) {
      // q itself is dead: R(q) ∩ C is empty.
      MarkWindowDead(a, b);
      return;
    }
    // Keep only the removed intervals nested inside the new window (an
    // interval is either nested or disjoint — laminarity).
    const std::size_t lo = FirstRemovedAtOrAfter(a);
    const std::size_t hi = FirstRemovedAtOrAfter(b);
    if (lo > 0) {
      removed_.erase(removed_.begin(),
                     removed_.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    removed_.resize(hi - lo);
    window_begin_ = a;
    window_end_ = b;
    RebuildRemovedPrefixes(0);
    total_alive_ = base_->EulerRangeWeight(a, b) - RemovedWeightWithin(a, b);
    alive_count_ = (b - a) - RemovedCountWithin(a, b);
    return;
  }
  if (compressed_) {
    const CompressedClosure& cc = base_->reach().compressed();
    if (!materialized_) {
      if (alive_.size() != cc.num_nodes()) {
        alive_.Resize(cc.num_nodes());
      } else {
        alive_.ClearAll();
      }
      cc.ExpandRowInto(q, alive_);
      materialized_ = true;
      total_alive_ = base_->FullReachWeight(q);
      alive_count_ = base_->reach().ReachableCount(q);
    } else {
      const DynamicBitset::CountAndWeight cw =
          cc.IntersectCountAndWeight(q, alive_, base_->pos_blocked_weights());
      total_alive_ = cw.weight;
      alive_count_ = cw.count;
      cc.IntersectInto(q, alive_);
    }
    if (moves_down) {
      root_ = q;
    }
    return;
  }
  const DynamicBitset& row = base_->reach().ClosureRow(q);
  if (!materialized_) {
    alive_ = row;
    materialized_ = true;
    total_alive_ = base_->FullReachWeight(q);
    alive_count_ = base_->reach().ReachableCount(q);
  } else {
    total_alive_ =
        alive_.MaskedWeightedSum(row, base_->blocked_weights());
    alive_count_ = alive_.IntersectionCount(row);
    alive_.AndWith(row);
  }
  if (moves_down) {
    root_ = q;
  }
}

void SplitWeightIndex::ApplyNo(NodeId q) {
  if (euler_) {
    const std::uint32_t a =
        std::max(window_begin_, base_->reach().EulerBegin(q));
    const std::uint32_t b = std::min(window_end_, base_->reach().EulerEnd(q));
    if (a >= b || CoveredByRemoved(a, b)) {
      return;  // R(q) is disjoint from the candidates or already dead
    }
    const Weight dead_weight =
        base_->EulerRangeWeight(a, b) - RemovedWeightWithin(a, b);
    const std::uint32_t dead_count = (b - a) - RemovedCountWithin(a, b);
    // Replace the intervals nested inside [a, b) with the one merged
    // interval.
    const std::size_t lo = FirstRemovedAtOrAfter(a);
    const std::size_t hi = FirstRemovedAtOrAfter(b);
    removed_.erase(removed_.begin() + static_cast<std::ptrdiff_t>(lo),
                   removed_.begin() + static_cast<std::ptrdiff_t>(hi));
    removed_.insert(removed_.begin() + static_cast<std::ptrdiff_t>(lo),
                    RemovedRange{a, b});
    RebuildRemovedPrefixes(lo);
    total_alive_ -= dead_weight;
    alive_count_ -= dead_count;
    return;
  }
  if (!materialized_) {
    MaterializeAllAlive();
  }
  if (compressed_) {
    const CompressedClosure& cc = base_->reach().compressed();
    const DynamicBitset::CountAndWeight cw =
        cc.IntersectCountAndWeight(q, alive_, base_->pos_blocked_weights());
    total_alive_ -= cw.weight;
    alive_count_ -= cw.count;
    cc.SubtractFrom(q, alive_);
    return;
  }
  const DynamicBitset& row = base_->reach().ClosureRow(q);
  total_alive_ -= alive_.MaskedWeightedSum(row, base_->blocked_weights());
  alive_count_ -= alive_.IntersectionCount(row);
  alive_.AndNotWith(row);
}

Status SplitWeightIndex::TryApplyObservedReach(NodeId q, bool yes) {
  if (q >= base_->hierarchy().NumNodes()) {
    return Status::OutOfRange("observed question node " + std::to_string(q) +
                              " outside the hierarchy");
  }
  const std::size_t inside = ReachCount(q);
  const std::size_t alive = AliveCount();
  if (yes) {
    if (inside == 0) {
      return Status::InvalidArgument(
          "observed yes for node " + std::to_string(q) +
          " would eliminate every candidate (inconsistent transcript)");
    }
    if (!IsAlive(q)) {
      if (inside == alive) {
        return Status::OK();  // no information; root must not move to q
      }
      return Status::Unimplemented(
          "observed yes for eliminated node " + std::to_string(q) +
          " still splits the candidates — not a same-hierarchy transcript");
    }
    ApplyYes(q);
    return Status::OK();
  }
  if (inside == 0) {
    return Status::OK();  // already known
  }
  if (inside == alive) {
    return Status::InvalidArgument(
        "observed no for node " + std::to_string(q) +
        " would eliminate every candidate (inconsistent transcript)");
  }
  // ApplyNo tolerates an eliminated q (the root never moves on a no), so
  // no aliveness restriction here.
  ApplyNo(q);
  return Status::OK();
}

void SplitWeightIndex::ApplyBatch(std::span<const NodeId> nodes,
                                  const std::vector<bool>& answers) {
  AIGS_CHECK(nodes.size() == answers.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (answers[i]) {
      ApplyYes(nodes[i]);
    } else {
      ApplyNo(nodes[i]);
    }
  }
}

// ---- selection --------------------------------------------------------------

MiddlePoint SplitWeightIndex::FindMiddlePoint() const {
  AIGS_DCHECK(alive_count_ > 1);
  const Digraph& g = base_->hierarchy().graph();
  const Weight total = total_alive_;
  MiddlePoint best;

  // Dominance-pruned descent from the root (the rooted generalization of
  // Algorithm 6's BFS). Weights are non-increasing along alive paths
  // (R(child) ∩ C ⊆ R(parent) ∩ C), so below a node with w ≤ total − w every
  // descendant's diff is ≥ the node's own; descending further can only
  // matter when the node ties the best diff seen so far (an equal-weight
  // descendant may have a smaller id). Expanding exactly those nodes visits
  // every global minimizer, making the (diff, id) argmin identical to the
  // naive full scan's.
  if (visited_.size() != g.NumNodes()) {
    visited_.Resize(g.NumNodes());
  }
  visited_.NewEpoch();
  queue_.clear();
  queue_.push_back(root_);
  visited_.Visit(root_);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    for (const NodeId v : g.Children(u)) {
      if (visited_.IsVisited(v) || !IsAlive(v)) {
        continue;
      }
      visited_.Visit(v);
      const Weight w = ReachWeight(v);
      // Overflow-safe |2w − total| as |w − (total − w)|; w ≤ total.
      const Weight rest = total - w;
      const Weight diff = w > rest ? w - rest : rest - w;
      if (best.node == kInvalidNode || diff < best.split_diff ||
          (diff == best.split_diff && v < best.node)) {
        best.node = v;
        best.split_diff = diff;
        best.reach_weight = w;
      }
      if (w > rest || diff <= best.split_diff) {
        queue_.push_back(v);
      }
    }
  }
  AIGS_CHECK(best.node != kInvalidNode);
  return best;
}

MiddlePoint SplitWeightIndex::FindSplittingMiddlePoint() const {
  const Weight total = total_alive_;
  const std::size_t count = alive_count_;
  MiddlePoint best;

  if (euler_) {
    // Pruned/rooted descent (the PR-2 follow-up): instead of the flat scan
    // over every alive candidate, BFS down from the current root. A node
    // covering the whole candidate set (|R(v) ∩ C| = |C|) is a wasted
    // question, but splitting nodes may sit below it, so it always expands;
    // a splitting node expands under the same dominance rule as
    // FindMiddlePoint (w > total − w, or it ties the best diff seen — an
    // equal-weight descendant with a smaller id could win the tie-break).
    // Subtree weights are non-increasing along alive paths, so a pruned
    // splitting node's descendants all carry a strictly worse diff than the
    // current best and can never become the (diff, id) argmin: the result
    // is bit-identical to the flat scan. Post-yes intersection states win
    // the most — their windows concentrate mass near the root, which is
    // exactly where the dominance rule cuts the frontier.
    const Digraph& g = base_->hierarchy().graph();
    if (visited_.size() != g.NumNodes()) {
      visited_.Resize(g.NumNodes());
    }
    visited_.NewEpoch();
    queue_.clear();
    queue_.push_back(root_);
    visited_.Visit(root_);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId u = queue_[head];
      for (const NodeId v : g.Children(u)) {
        if (visited_.IsVisited(v) || !IsAlive(v)) {
          continue;
        }
        visited_.Visit(v);
        if (ReachCount(v) == count) {
          queue_.push_back(v);  // covering: wasted question, keep descending
          continue;
        }
        const Weight w = ReachWeight(v);
        const Weight rest = total - w;
        const Weight diff = w > rest ? w - rest : rest - w;
        if (best.node == kInvalidNode || diff < best.split_diff ||
            (diff == best.split_diff && v < best.node)) {
          best.node = v;
          best.split_diff = diff;
          best.reach_weight = w;
        }
        if (w > rest || diff <= best.split_diff) {
          queue_.push_back(v);
        }
      }
    }
    return best;
  }

  const bool closure_fused = materialized_;
  ForEachAlive([&](NodeId v) {
    // The count gates the "splits the set" requirement, the weight feeds
    // the diff. Materialized closure mode fuses both into one word scan
    // (per-chunk over compressed rows); the other modes check the (cheap)
    // count first and skip the weight sum for covering nodes.
    Weight w;
    if (closure_fused) {
      const DynamicBitset::CountAndWeight cw =
          compressed_
              ? base_->reach().compressed().IntersectCountAndWeight(
                    v, alive_, base_->pos_blocked_weights())
              : alive_.MaskedCountAndWeightedSum(base_->reach().ClosureRow(v),
                                                base_->blocked_weights());
      if (cw.count == count) {
        return;  // "yes" is certain; the question is wasted
      }
      w = cw.weight;
    } else {
      if (ReachCount(v) == count) {
        return;  // "yes" is certain; the question is wasted
      }
      w = ReachWeight(v);
    }
    const Weight rest = total - w;
    const Weight diff = w > rest ? w - rest : rest - w;
    if (best.node == kInvalidNode || diff < best.split_diff ||
        (diff == best.split_diff && v < best.node)) {
      best.node = v;
      best.split_diff = diff;
      best.reach_weight = w;
    }
  });
  return best;
}

}  // namespace aigs
