#include "service/session_codec.h"

#include <cinttypes>
#include <cstdio>

#include "util/string_util.h"

namespace aigs {
namespace {

constexpr const char kMagicV1[] = "aigs-session/1";
constexpr const char kMagicV2[] = "aigs-session/2";

std::string JoinNodes(const std::vector<NodeId>& nodes) {
  std::string out;
  for (const NodeId v : nodes) {
    if (!out.empty()) {
      out += '+';
    }
    out += std::to_string(v);
  }
  return out;
}

StatusOr<std::vector<NodeId>> ParseNodes(std::string_view text) {
  std::vector<NodeId> nodes;
  for (const std::string_view part : Split(text, '+')) {
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t id, ParseUint64(part));
    if (id >= kInvalidNode) {
      return Status::OutOfRange("node id out of range in transcript: " +
                                std::string(part));
    }
    nodes.push_back(static_cast<NodeId>(id));
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("empty node list in transcript");
  }
  return nodes;
}

Status MalformedLine(std::size_t line_no, std::string_view line) {
  return Status::InvalidArgument("malformed session line " +
                                 std::to_string(line_no) + ": '" +
                                 std::string(line) + "'");
}

StatusOr<std::uint64_t> ParseHexDigest(std::string_view text) {
  // Hand-rolled instead of strtoull: the digest is attacker-reachable
  // (saved blobs, WAL records), and strtoull quietly accepts signs,
  // leading whitespace, "0x", and out-of-range values that wrap.
  const std::string_view hex = Trim(text);
  if (hex.empty() || hex.size() > 16) {
    return Status::InvalidArgument("malformed hex digest '" +
                                   std::string(hex) + "'");
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("malformed hex digest '" +
                                     std::string(hex) + "'");
    }
    value = value << 4 | static_cast<std::uint64_t>(digit);
  }
  return value;
}

}  // namespace

std::string SessionCodec::Encode(const SerializedSession& session) {
  std::string out = std::string(kMagicV2) + "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "fingerprint %016" PRIx64 "\n",
                session.fingerprint);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "hierarchy %016" PRIx64 "\n",
                session.hierarchy_fingerprint);
  out += buffer;
  out += "epoch " + std::to_string(session.epoch) + "\n";
  out += "policy " + session.policy_spec + "\n";
  out += "steps " + std::to_string(session.steps.size()) + "\n";
  for (const TranscriptStep& step : session.steps) {
    AppendStepKey(step, &out);
    if (step.diverged) {
      // The flag rides after the content fields so flagged and unflagged
      // lines share the AppendStepKey prefix (and hence the trie edges).
      out.insert(out.size() - 1, " d");
    }
  }
  out += "end\n";
  return out;
}

void SessionCodec::AppendStepKey(const TranscriptStep& step,
                                 std::string* out) {
  switch (step.kind) {
    case Query::Kind::kReach:
      *out += "reach " + std::to_string(step.nodes[0]) +
              (step.yes ? " y\n" : " n\n");
      break;
    case Query::Kind::kReachBatch: {
      std::string pattern;
      for (const bool yes : step.batch_answers) {
        pattern += yes ? 'y' : 'n';
      }
      *out += "batch " + JoinNodes(step.nodes) + " " + pattern + "\n";
      break;
    }
    case Query::Kind::kChoice:
      *out += "choice " + JoinNodes(step.nodes) + " " +
              std::to_string(step.choice) + "\n";
      break;
    case Query::Kind::kDone:
      AIGS_CHECK(false && "kDone never appears in a transcript");
  }
}

StatusOr<TranscriptStep> SessionCodec::ParseStepLine(std::string_view line) {
  std::vector<std::string_view> fields = Split(Trim(line), ' ');
  TranscriptStep step;
  if (fields.size() == 4 && fields[3] == "d") {
    step.diverged = true;
    fields.pop_back();
  }
  if (fields.size() != 3) {
    return Status::InvalidArgument("malformed transcript step '" +
                                   std::string(Trim(line)) + "'");
  }
  if (fields[0] == "reach") {
    step.kind = Query::Kind::kReach;
    AIGS_ASSIGN_OR_RETURN(step.nodes, ParseNodes(fields[1]));
    if (step.nodes.size() != 1 || (fields[2] != "y" && fields[2] != "n")) {
      return Status::InvalidArgument("malformed reach step '" +
                                     std::string(Trim(line)) + "'");
    }
    step.yes = fields[2] == "y";
  } else if (fields[0] == "batch") {
    step.kind = Query::Kind::kReachBatch;
    AIGS_ASSIGN_OR_RETURN(step.nodes, ParseNodes(fields[1]));
    if (fields[2].size() != step.nodes.size()) {
      return Status::InvalidArgument("malformed batch step '" +
                                     std::string(Trim(line)) + "'");
    }
    for (const char c : fields[2]) {
      if (c != 'y' && c != 'n') {
        return Status::InvalidArgument("malformed batch step '" +
                                       std::string(Trim(line)) + "'");
      }
      step.batch_answers.push_back(c == 'y');
    }
  } else if (fields[0] == "choice") {
    step.kind = Query::Kind::kChoice;
    AIGS_ASSIGN_OR_RETURN(step.nodes, ParseNodes(fields[1]));
    AIGS_ASSIGN_OR_RETURN(const std::int64_t answer, ParseInt64(fields[2]));
    if (answer < -1 ||
        answer >= static_cast<std::int64_t>(step.nodes.size())) {
      return Status::InvalidArgument("malformed choice step '" +
                                     std::string(Trim(line)) + "'");
    }
    step.choice = static_cast<int>(answer);
  } else {
    return Status::InvalidArgument("unknown transcript step '" +
                                   std::string(Trim(line)) + "'");
  }
  return step;
}

StatusOr<SerializedSession> SessionCodec::Decode(const std::string& text) {
  SerializedSession session;
  const std::vector<std::string_view> lines = Split(text, '\n');
  std::size_t i = 0;
  const auto next_line = [&]() -> std::string_view {
    while (i < lines.size() && Trim(lines[i]).empty()) {
      ++i;
    }
    return i < lines.size() ? Trim(lines[i++]) : std::string_view();
  };

  const std::string_view magic = next_line();
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) {
    return Status::InvalidArgument(
        "not a saved session (missing 'aigs-session/1|2' header)");
  }

  std::string_view line = next_line();
  if (!line.starts_with("fingerprint ")) {
    return MalformedLine(i, line);
  }
  if (auto digest = ParseHexDigest(line.substr(12)); digest.ok()) {
    session.fingerprint = *digest;
  } else {
    return MalformedLine(i, line);
  }

  if (v2) {
    line = next_line();
    if (!line.starts_with("hierarchy ")) {
      return MalformedLine(i, line);
    }
    if (auto digest = ParseHexDigest(line.substr(10)); digest.ok()) {
      session.hierarchy_fingerprint = *digest;
    } else {
      return MalformedLine(i, line);
    }
  }

  line = next_line();
  if (!line.starts_with("epoch ")) {
    return MalformedLine(i, line);
  }
  AIGS_ASSIGN_OR_RETURN(session.epoch, ParseUint64(Trim(line.substr(6))));

  line = next_line();
  if (!line.starts_with("policy ")) {
    return MalformedLine(i, line);
  }
  session.policy_spec = std::string(Trim(line.substr(7)));
  if (session.policy_spec.empty()) {
    return Status::InvalidArgument("saved session names no policy");
  }

  line = next_line();
  if (!line.starts_with("steps ")) {
    return MalformedLine(i, line);
  }
  AIGS_ASSIGN_OR_RETURN(const std::uint64_t num_steps,
                        ParseUint64(Trim(line.substr(6))));
  // Each step occupies one line, so a count beyond the remaining input is
  // malformed — checked before reserve() so an absurd attacker-controlled
  // count cannot throw std::length_error out of this API.
  if (num_steps > lines.size() - i) {
    return Status::InvalidArgument(
        "saved session promises " + std::to_string(num_steps) +
        " steps but only " + std::to_string(lines.size() - i) +
        " lines follow");
  }
  session.steps.reserve(num_steps);
  for (std::uint64_t s = 0; s < num_steps; ++s) {
    line = next_line();
    auto step = ParseStepLine(line);
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kOutOfRange) {
        return step.status();  // node id overflow keeps its specific error
      }
      return MalformedLine(i, line);
    }
    if (step->diverged && !v2) {
      return MalformedLine(i, line);  // flags are a v2 feature
    }
    session.steps.push_back(*std::move(step));
  }

  if (next_line() != "end") {
    return Status::InvalidArgument("saved session is truncated (missing "
                                   "'end' trailer)");
  }
  // Content past the trailer means the blob was spliced or corrupted; a
  // torn tail should lose data, never smuggle extra lines past the count.
  if (!next_line().empty()) {
    return Status::InvalidArgument(
        "saved session has content after its 'end' trailer");
  }
  return session;
}

}  // namespace aigs
