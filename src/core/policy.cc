#include "core/policy.h"

namespace aigs {

void SearchSession::ApplyReach(NodeId q, bool yes) {
  (void)q;
  (void)yes;
  AIGS_CHECK(false && "this policy does not ask reachability questions");
}

void SearchSession::ApplyChoice(std::span<const NodeId> choices, int answer) {
  (void)choices;
  (void)answer;
  AIGS_CHECK(false && "this policy does not ask multiple-choice questions");
}

void SearchSession::ApplyReachBatch(std::span<const NodeId> nodes,
                                    const std::vector<bool>& answers) {
  (void)nodes;
  (void)answers;
  AIGS_CHECK(false && "this policy does not ask batched questions");
}

Status SearchSession::TryApplyReachBatch(std::span<const NodeId> nodes,
                                         const std::vector<bool>& answers) {
  ApplyReachBatch(nodes, answers);
  return Status::OK();
}

}  // namespace aigs
